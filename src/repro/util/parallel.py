"""Deterministic fan-out over a thread pool.

The emulator is CPU-light, pure Python per work unit, so threads (no pickling,
shared read-only state) are the right pool flavour; results always come back
in submission order regardless of worker count, so any ``jobs`` value yields
byte-identical downstream artefacts.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Hard ceiling on worker threads (beyond this the GIL is the bottleneck).
MAX_JOBS = 64


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: 0 or negative means "all cores"."""
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, min(int(jobs), MAX_JOBS))


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], *, jobs: int = 1
) -> list[R]:
    """Apply ``fn`` to every item, fanning out across ``jobs`` threads.

    Results are returned in input order; the first worker exception
    propagates to the caller (matching a plain loop's failure behaviour).
    Items are sharded into contiguous chunks — a handful per worker, so the
    pool amortises scheduling over many items while still load-balancing
    uneven work units.
    """
    seq: Sequence[T] = items if isinstance(items, (list, tuple)) else list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(seq) <= 1:
        return [fn(x) for x in seq]
    jobs = min(jobs, len(seq))
    chunk = max(1, len(seq) // (jobs * 4))
    shards = [seq[i : i + chunk] for i in range(0, len(seq), chunk)]

    def run_shard(shard: Sequence[T]) -> list[R]:
        return [fn(x) for x in shard]

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        out: list[R] = []
        for shard_result in pool.map(run_shard, shards):
            out.extend(shard_result)
        return out
