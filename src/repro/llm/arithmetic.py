"""RQ1 arithmetic solver with a slip model.

Given a parsed roofline question, the correct procedure is one division and
one comparison. Non-reasoning models occasionally slip — the emulator's slip
modes mirror the error patterns visible in LLM arithmetic studies: inverting
the comparison near the boundary, or botching the division when the operands
are awkward. Chain-of-thought examples scaffold the procedure and lower the
slip rate (Table 1: CoT lifts gpt-4o-mini from 90% to 100%).
"""

from __future__ import annotations

from repro.llm.config import ModelConfig
from repro.llm.promptio import RooflineQuery
from repro.types import Boundedness
from repro.util.rng import RngStream


def solve_roofline(
    query: RooflineQuery,
    model: ModelConfig,
    rng: RngStream,
) -> Boundedness:
    """Answer one RQ1 question under the model's slip profile."""
    balance = query.peak_gflops / query.bandwidth_gbs
    correct = (
        Boundedness.BANDWIDTH if query.ai < balance else Boundedness.COMPUTE
    )
    slip_p = (
        model.arithmetic_slip_cot
        if query.has_chain_of_thought_examples
        else model.arithmetic_slip
    )
    # More worked examples slightly reinforce the procedure.
    if query.num_examples >= 8:
        slip_p *= 0.8
    elif query.num_examples >= 4:
        slip_p *= 0.9
    if slip_p <= 0.0:
        return correct
    # Slips are likelier near the balance point (a wrong division or a
    # rounding error only matters when the margin is thin).
    margin = abs(query.ai - balance) / max(balance, 1e-9)
    proximity_boost = 2.0 if margin < 0.25 else 1.0
    if rng.bernoulli(min(0.95, slip_p * proximity_boost)):
        return correct.other
    return correct
