"""Sharded sweep subsystem (repro.eval.shard).

Three layers of guarantees:

* **Planner properties** (hypothesis): shard plans are a partition —
  pairwise disjoint, complete, balanced within one unit — and stable under
  any reordering of the input grid.
* **Merge properties** (hypothesis): for any split of an entry set across
  shard stores (overlaps included), the merged store equals the
  directly-written store byte-for-byte.
* **End-to-end**: running every shard of a real (model × GPU × RQ × kernel)
  grid through separate engines/stores, then merging, yields a cache that
  replays the full matrix with zero new completions and a report identical
  to the unsharded run.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.engine import (
    CachedResponse,
    DiskResponseStore,
    EvalEngine,
    MERGE_PROVENANCE_FILENAME,
)
from repro.eval.matrix import run_matrix
from repro.eval.shard import (
    CacheMergeConflict,
    WorkUnit,
    grid_units,
    merge_caches,
    parse_shard_spec,
    plan_shards,
    run_shard,
)
from repro.llm import get_model
from repro.roofline.hardware import get_gpu


class TestShardSpec:
    @pytest.mark.parametrize("spec,expected", [
        ("0/1", (0, 1)),
        ("2/3", (2, 3)),
        (" 1/4 ", (1, 4)),
        ("0/16", (0, 16)),
    ])
    def test_valid(self, spec, expected):
        assert parse_shard_spec(spec) == expected

    @pytest.mark.parametrize("spec", [
        "3/3", "4/3", "-1/3", "0/0", "0/-1", "1", "a/b", "1/2/3", "", "/",
    ])
    def test_invalid(self, spec):
        with pytest.raises(ValueError):
            parse_shard_spec(spec)


def _units(n: int) -> list[WorkUnit]:
    return [
        WorkUnit(f"m{i % 3}", f"g{i % 2}", "rq2", f"uid-{i}") for i in range(n)
    ]


#: Unique work-unit lists over small alphabets (collisions across fields
#: exercise the canonical sort's tie-breaking).
unit_lists = st.lists(
    st.builds(
        WorkUnit,
        model_name=st.sampled_from(["m0", "m1", "m2"]),
        gpu_name=st.sampled_from(["g0", "g1"]),
        rq=st.sampled_from(["rq2", "rq3"]),
        uid=st.integers(min_value=0, max_value=200).map(lambda i: f"u{i}"),
    ),
    min_size=1,
    max_size=60,
    unique=True,
)


class TestPlannerProperties:
    @settings(max_examples=60, deadline=None)
    @given(units=unit_lists, num_shards=st.integers(1, 8))
    def test_plan_is_a_balanced_partition(self, units, num_shards):
        plan = plan_shards(units, num_shards)
        assert plan.num_shards == num_shards
        flat = [u for shard in plan.shards for u in shard]
        # Complete and disjoint: every unit exactly once.
        assert sorted(flat) == sorted(units)
        assert len(set(flat)) == len(flat) == len(units)
        # Balanced within one unit.
        sizes = [len(shard) for shard in plan.shards]
        assert max(sizes) - min(sizes) <= 1

    @settings(max_examples=40, deadline=None)
    @given(
        units=unit_lists,
        num_shards=st.integers(1, 8),
        data=st.data(),
    )
    def test_plan_stable_under_reordering(self, units, num_shards, data):
        shuffled = data.draw(st.permutations(units))
        assert plan_shards(shuffled, num_shards) == plan_shards(
            units, num_shards
        )

    def test_duplicates_rejected(self):
        units = _units(4) + [_units(4)[0]]
        with pytest.raises(ValueError, match="duplicate"):
            plan_shards(units, 2)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(_units(4), 0)

    def test_more_shards_than_units_gives_empty_shards(self):
        plan = plan_shards(_units(2), 5)
        assert plan.total_units == 2
        assert sum(1 for s in plan.shards if s) == 2

    def test_shard_index_validated(self):
        plan = plan_shards(_units(4), 2)
        with pytest.raises(IndexError):
            plan.shard(2)

    def test_grid_units_cartesian(self):
        units = grid_units(["a", "b"], ["g"], ("rq2", "rq3"), ["u1", "u2"])
        assert len(units) == 2 * 1 * 2 * 2
        assert len(set(units)) == len(units)


def _entry(i: int) -> CachedResponse:
    return CachedResponse(
        text=f"Compute {i}",
        input_tokens=i,
        output_tokens=1,
        reasoning_tokens=0,
        model=f"model-{i % 2}",
    )


def _key(i: int) -> str:
    return f"{i:064x}"


def _entry_files(root) -> dict:
    from pathlib import Path

    root = Path(root)
    return {p.name: p.read_bytes() for p in root.glob("responses-*.bin")}


class TestMergeProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n_entries=st.integers(1, 24),
        n_shards=st.integers(1, 5),
        data=st.data(),
    )
    def test_merge_equals_single_store_byte_for_byte(
        self, tmp_path_factory, n_entries, n_shards, data
    ):
        """Any assignment of entries to shard stores — overlaps included —
        merges into exactly the store a single writer would produce."""
        root = tmp_path_factory.mktemp("merge-prop")
        single = DiskResponseStore(root / "single")
        shards = [DiskResponseStore(root / f"shard-{j}") for j in range(n_shards)]
        for i in range(n_entries):
            single.put(_key(i), _entry(i))
            # Each entry lands on >= 1 shard; duplicates are legal (a
            # retried shard re-computes identical content).
            owners = data.draw(
                st.sets(
                    st.integers(0, n_shards - 1), min_size=1, max_size=n_shards
                )
            )
            for j in owners:
                shards[j].put(_key(i), _entry(i))
        report = merge_caches(
            [s.root for s in shards], root / "merged"
        )
        assert _entry_files(root / "merged") == _entry_files(root / "single")
        assert report.merged == n_entries


class TestMergeCaches:
    def test_conflict_raises(self, tmp_path):
        a = DiskResponseStore(tmp_path / "a")
        b = DiskResponseStore(tmp_path / "b")
        a.put(_key(1), _entry(1))
        b.put(_key(1), _entry(2))  # same key, different content
        with pytest.raises(CacheMergeConflict, match="merge conflict"):
            merge_caches([a.root, b.root], tmp_path / "merged")

    def test_conflict_with_existing_dest(self, tmp_path):
        dest = DiskResponseStore(tmp_path / "merged")
        dest.put(_key(1), _entry(1))
        src = DiskResponseStore(tmp_path / "src")
        src.put(_key(1), _entry(2))
        with pytest.raises(CacheMergeConflict):
            merge_caches([src.root], dest.root)

    def test_missing_and_empty_sources_tolerated(self, tmp_path):
        real = DiskResponseStore(tmp_path / "real")
        real.put(_key(1), _entry(1))
        (tmp_path / "empty").mkdir()
        report = merge_caches(
            [tmp_path / "missing", tmp_path / "empty", real.root],
            tmp_path / "merged",
        )
        assert report.merged == 1
        assert set(report.empty_sources) == {
            str(tmp_path / "missing"), str(tmp_path / "empty"),
        }
        assert len(DiskResponseStore(tmp_path / "merged")) == 1

    def test_duplicates_counted_not_copied(self, tmp_path):
        a = DiskResponseStore(tmp_path / "a")
        b = DiskResponseStore(tmp_path / "b")
        for i in range(3):
            a.put(_key(i), _entry(i))
        b.put(_key(0), _entry(0))  # overlap, identical bytes
        b.put(_key(9), _entry(9))
        report = merge_caches([a.root, b.root], tmp_path / "merged")
        assert report.merged == 4
        assert report.duplicates == 1
        assert dict(report.per_source) == {
            str(a.root): 3, str(b.root): 1,
        }

    def test_size_bound_honored(self, tmp_path):
        a = DiskResponseStore(tmp_path / "a")
        for i in range(8):
            a.put(_key(i), _entry(i))
        entry_size = a.size_bytes() // 8
        report = merge_caches(
            [a.root], tmp_path / "merged", max_bytes=entry_size * 3
        )
        assert report.evicted > 0
        merged = DiskResponseStore(tmp_path / "merged")
        assert merged.size_bytes() <= entry_size * 3

    def test_provenance_recorded_and_in_manifest(self, tmp_path):
        a = DiskResponseStore(tmp_path / "shard-a")
        b = DiskResponseStore(tmp_path / "shard-b")
        a.put(_key(0), _entry(0))
        a.put(_key(1), _entry(1))
        b.put(_key(2), _entry(2))
        merge_caches([a.root, b.root], tmp_path / "merged")
        merged = DiskResponseStore(tmp_path / "merged")
        manifest = merged.manifest()
        assert dict(manifest.per_source) == {
            str(a.root): 2, str(b.root): 1,
        }
        text = manifest.render()
        assert f"merged from {a.root}: 2" in text
        # The sidecar is not an entry: counts and sizes ignore it.
        assert manifest.entries == 3
        assert len(merged) == 3

    def test_provenance_sidecar_survives_repeat_merge(self, tmp_path):
        a = DiskResponseStore(tmp_path / "a")
        b = DiskResponseStore(tmp_path / "b")
        a.put(_key(0), _entry(0))
        b.put(_key(1), _entry(1))
        merge_caches([a.root], tmp_path / "merged")
        merge_caches([b.root], tmp_path / "merged")
        merged = DiskResponseStore(tmp_path / "merged")
        assert dict(merged.manifest().per_source) == {
            str(a.root): 1, str(b.root): 1,
        }

    def test_conflict_abort_preserves_partial_provenance(self, tmp_path):
        good = DiskResponseStore(tmp_path / "good")
        good.put(_key(0), _entry(0))
        bad = DiskResponseStore(tmp_path / "bad")
        bad.put(_key(1), _entry(1))
        dest = DiskResponseStore(tmp_path / "merged")
        dest.put(_key(1), _entry(2))  # conflicts with bad's entry
        with pytest.raises(CacheMergeConflict):
            merge_caches([good.root, bad.root], dest.root)
        # good's entry stayed installed and stayed labelled, so a retry
        # without the bad source still reports where it came from.
        assert dest.provenance() == {_key(0): str(good.root)}
        retry = merge_caches([good.root], dest.root)
        assert retry.duplicates == 1
        assert dict(dest.manifest().per_source) == {str(good.root): 1}

    def test_reinstalled_key_takes_new_source_label(self, tmp_path):
        a = DiskResponseStore(tmp_path / "a")
        b = DiskResponseStore(tmp_path / "b")
        a.put(_key(0), _entry(0))
        b.put(_key(0), _entry(0))  # same bytes: a legal duplicate
        merge_caches([a.root], tmp_path / "merged")
        merged = DiskResponseStore(tmp_path / "merged")
        # Size-bound churn: the entry is evicted, then re-merged from b.
        merged._segment_path("responses-", _key(0)[:2]).unlink()
        merge_caches([b.root], tmp_path / "merged")
        # The stale a-label was pruned, not resurrected.
        assert merged.provenance() == {_key(0): str(b.root)}
        assert dict(merged.manifest().per_source) == {str(b.root): 1}

    def test_torn_provenance_sidecar_reads_as_none(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        store.put(_key(0), _entry(0))
        (tmp_path / MERGE_PROVENANCE_FILENAME).write_text("{not json")
        assert store.provenance() == {}
        assert store.manifest().per_source == ()

    def test_clear_removes_sidecar(self, tmp_path):
        a = DiskResponseStore(tmp_path / "a")
        a.put(_key(0), _entry(0))
        merge_caches([a.root], tmp_path / "merged")
        merged = DiskResponseStore(tmp_path / "merged")
        merged.clear()
        assert not (tmp_path / "merged" / MERGE_PROVENANCE_FILENAME).exists()
        assert len(merged) == 0


#: The end-to-end grid: small enough for tier-1, wide enough to span two
#: GPUs and both balance remainders (2 models x 2 GPUs x 8 kernels = 32
#: units over 3 shards -> 11/11/10).
E2E_MODELS = ("o3-mini-high", "gpt-4o-mini")
E2E_GPUS = ("V100", "H100")
E2E_LIMIT = 8
E2E_SHARDS = 3


class TestShardedSweepEndToEnd:
    @pytest.fixture(scope="class")
    def sharded(self, tmp_path_factory, dataset):
        root = tmp_path_factory.mktemp("sharded-sweep")
        models = [get_model(n) for n in E2E_MODELS]
        gpus = [get_gpu(n) for n in E2E_GPUS]
        reports = []
        for i in range(E2E_SHARDS):
            store = DiskResponseStore(root / f"shard-{i}")
            engine = EvalEngine(jobs=2, store=store)
            reports.append(
                run_shard(
                    models,
                    gpus,
                    shard_index=i,
                    num_shards=E2E_SHARDS,
                    rqs=("rq2",),
                    limit=E2E_LIMIT,
                    engine=engine,
                )
            )
        merge_report = merge_caches(
            [root / f"shard-{i}" for i in range(E2E_SHARDS)], root / "merged"
        )
        return root, models, gpus, reports, merge_report

    def test_shards_cover_the_grid(self, sharded):
        _, _, _, reports, _ = sharded
        total = len(E2E_MODELS) * len(E2E_GPUS) * E2E_LIMIT
        assert sum(r.units for r in reports) == total
        assert all(r.total_units == total for r in reports)
        sizes = sorted(r.units for r in reports)
        assert max(sizes) - min(sizes) <= 1

    def test_merged_cache_equals_single_run_byte_for_byte(
        self, sharded, tmp_path
    ):
        root, models, gpus, _, merge_report = sharded
        single = DiskResponseStore(tmp_path / "single")
        run_matrix(
            models, gpus, rqs=("rq2",), limit=E2E_LIMIT,
            engine=EvalEngine(jobs=2, store=single),
        )
        assert _entry_files(root / "merged") == _entry_files(single.root)
        assert merge_report.merged == len(single)
        assert merge_report.duplicates == 0

    def test_merged_replay_is_hit_only_and_report_identical(self, sharded):
        root, models, gpus, _, _ = sharded
        warm = EvalEngine(jobs=2, store=DiskResponseStore(root / "merged"))
        replayed = run_matrix(
            models, gpus, rqs=("rq2",), limit=E2E_LIMIT, engine=warm
        )
        assert warm.stats.completions == 0
        assert warm.stats.hits == len(E2E_MODELS) * len(E2E_GPUS) * E2E_LIMIT
        fresh = run_matrix(
            models, gpus, rqs=("rq2",), limit=E2E_LIMIT, engine=EvalEngine()
        )
        assert replayed == fresh
        assert replayed.digest() == fresh.digest()
        assert replayed.render() == fresh.render()

    def test_rerun_of_a_shard_is_all_hits(self, sharded):
        root, models, gpus, reports, _ = sharded
        store = DiskResponseStore(root / "shard-0")
        engine = EvalEngine(jobs=2, store=store)
        again = run_shard(
            models, gpus, shard_index=0, num_shards=E2E_SHARDS,
            rqs=("rq2",), limit=E2E_LIMIT, engine=engine,
        )
        assert again == reports[0]
        assert engine.stats.completions == 0
        assert engine.stats.hits == reports[0].units

    def test_shard_report_renders(self, sharded):
        _, _, _, reports, _ = sharded
        text = reports[0].render()
        assert f"Shard 0/{E2E_SHARDS}" in text
        assert "V100" in text and "H100" in text


class TestRunShardValidation:
    def test_unknown_rq_rejected(self):
        with pytest.raises(ValueError, match="unknown matrix regime"):
            run_shard(
                [get_model("o1")], [get_gpu("V100")],
                shard_index=0, num_shards=2, rqs=("rq1",),
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            run_shard([], [get_gpu("V100")], shard_index=0, num_shards=1)
        with pytest.raises(ValueError):
            run_shard([get_model("o1")], [], shard_index=0, num_shards=1)

    def test_out_of_range_shard_rejected(self, dataset):
        with pytest.raises(IndexError):
            run_shard(
                [get_model("o1")], [get_gpu("V100")],
                shard_index=3, num_shards=3, limit=2,
            )
