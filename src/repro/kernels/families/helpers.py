"""Shared machinery for family builders.

Every family builder follows the same recipe: draw deterministic variant
parameters (sizes, block shape, host verbosity), construct the kernel IR,
and assemble a :class:`~repro.kernels.program.ProgramSpec` with a consistent
argv → binding chain. :func:`assemble` owns the recipe; the per-family code
only supplies the interesting part (the kernel body).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.kernels.ir import (
    ArrayDecl,
    Cast,
    Const,
    DType,
    Kernel,
    Let,
    ScalarParam,
    Scope,
    Store,
    Var,
    aff,
    mul,
)
from repro.kernels.launch import (
    CommandLine,
    Dim3,
    KernelInstance,
    LaunchConfig,
    plan_launch_1d,
    plan_launch_2d,
    validate_launch,
)
from repro.kernels.program import ProgramSpec
from repro.types import Language
from repro.util.rng import RngStream

#: 1-D problem sizes: a mix of powers of two and "awkward" sizes, spanning
#: roughly 128 Ki to 8 Mi elements.
SIZES_1D = (
    1 << 17,
    200_000,
    1 << 18,
    500_000,
    1 << 19,
    1_000_000,
    1 << 20,
    2_000_000,
    1 << 21,
    1 << 22,
    6_000_000,
    1 << 23,
)

SIDES_2D = (512, 640, 768, 1024, 1280, 1536, 2048, 2560)
SIDES_3D = (48, 64, 96, 128, 160, 192)
ITER_COUNTS = (32, 64, 100, 128, 200, 256, 500)
BLOCKS_1D = (128, 256, 256, 512)


def variant_rng(family: str, variant: int, language: Language) -> RngStream:
    """The deterministic stream for one (family, variant, language)."""
    return RngStream("family", family, variant, language.value)


def draw_size_1d(rng: RngStream) -> int:
    return int(rng.choice(SIZES_1D))


def draw_side_2d(rng: RngStream) -> int:
    return int(rng.choice(SIDES_2D))


def draw_side_3d(rng: RngStream) -> int:
    return int(rng.choice(SIDES_3D))


def draw_iters(rng: RngStream) -> int:
    return int(rng.choice(ITER_COUNTS))


def draw_block_1d(rng: RngStream) -> int:
    return int(rng.choice(BLOCKS_1D))


def _distractor_kernel(shape: int, tag: int, flag: str) -> Kernel:
    """Auxiliary kernels that pad programs with realistic secondary work.

    These appear *after* the main kernel in source order (the paper queries
    only the first kernel of each program), acting as source-level
    distractors the way real benchmarks carry init/cleanup/reporting
    kernels.
    """
    from repro.kernels.ir import BinOp, BinOpKind, load

    f32 = DType.F32
    base = flag.split("*")[0]
    gxf = Cast(Var("gx", DType.I32), f32)
    arr = ArrayDecl("aux_buf", f32, flag, Scope.GLOBAL, is_output=True)
    vload = load("aux_buf", aff("gx"), f32)
    shapes = {
        0: (  # linear init
            Store("aux_buf", aff("gx"), mul(gxf, Const(0.001, f32)), f32),
        ),
        1: (  # decay rescale
            Let("v", vload, f32),
            Store("aux_buf", aff("gx"), mul(Var("v", f32), Const(0.98, f32)), f32),
        ),
        2: (  # clamp pass
            Let("v", vload, f32),
            Store(
                "aux_buf", aff("gx"),
                BinOp(BinOpKind.MIN,
                      BinOp(BinOpKind.MAX, Var("v", f32), Const(-10.0, f32), f32),
                      Const(10.0, f32), f32),
                f32,
            ),
        ),
        3: (  # square accumulate
            Let("v", vload, f32),
            Store(
                "aux_buf", aff("gx"),
                mul(Var("v", f32), mul(Var("v", f32), Const(0.5, f32), f32), f32),
                f32,
            ),
        ),
        4: (  # offset shift
            Let("v", vload, f32),
            Store("aux_buf", aff("gx"),
                  mul(Var("v", f32), Const(1.0625, f32), f32), f32),
        ),
        5: (  # zero fill
            Store("aux_buf", aff("gx"), mul(gxf, Const(0.0, f32)), f32),
        ),
    }
    names = {
        0: "init_aux", 1: "rescale_aux", 2: "clamp_aux",
        3: "square_aux", 4: "drift_aux", 5: "clear_aux",
    }
    return Kernel(
        name=f"{names[shape % 6]}_{tag}",
        arrays=(arr,),
        params=(ScalarParam(base, DType.I32),),
        body=shapes[shape % 6],
        work_items=base,
    )


def assemble(
    *,
    family: str,
    variant: int,
    language: Language,
    rng: RngStream,
    kernel: Kernel,
    flags: Mapping[str, int],
    binding_exprs: Mapping[str, str | int],
    description: str,
    block: int | None = None,
    block2d: tuple[int, int] | None = None,
    extra_instances: Sequence[KernelInstance] = (),
    tags: Sequence[str] = (),
    allow_distractors: bool = True,
) -> ProgramSpec:
    """Build a :class:`ProgramSpec` around one main kernel.

    ``flags`` become the executable's command line (and the host code's
    parsed variables); ``binding_exprs`` maps each kernel scalar parameter
    to a flag name or a literal. Launch geometry is derived from the
    kernel's work-item extents. A deterministic fraction of variants gains
    distractor kernels and higher host verbosity, which widens the source
    token distribution like real benchmark suites do.
    """
    cmdline = CommandLine(prog=family, flags=tuple(flags.items()))
    env = {
        p: (v if isinstance(v, int) else cmdline.bindings()[v])
        for p, v in binding_exprs.items()
    }
    from repro.kernels.ir import eval_scalar

    if kernel.work_items_y is None:
        work = eval_scalar(kernel.work_items, env)
        launch = plan_launch_1d(work, block or draw_block_1d(rng))
    else:
        wx = eval_scalar(kernel.work_items, env)
        wy = eval_scalar(kernel.work_items_y, env)
        bx, by = block2d or (16, 16)
        launch = plan_launch_2d(wx, wy, bx, by)

    main = KernelInstance(
        kernel=kernel, launch=launch, binding_exprs=tuple(binding_exprs.items())
    )
    validate_launch(main, cmdline)

    # Bloat level drives the source-length distribution so the 8e3-token
    # pruning cutoff (paper §2.2) bites: CUDA programs carry more utility
    # machinery than OMP ports, matching the paper's per-language keep rates
    # (297/446 CUDA vs 242/303 OMP surviving the cutoff).
    if language is Language.CUDA:
        bloat = int(rng.choice([0] * 6 + [1] * 7 + [2] * 7))
    else:
        bloat = int(rng.choice([0] * 11 + [1] * 5 + [2] * 4))

    instances: list[KernelInstance] = [main, *extra_instances]

    if bloat >= 2:
        # Alternate implementations of the main kernel (a warmup/v2 copy),
        # as real suites ship for comparison runs.
        import dataclasses

        for suffix in ("warmup", "v2", "v3_unrolled", "v4_vectorized", "reference"):
            alt = dataclasses.replace(kernel, name=f"{kernel.name}_{suffix}")
            instances.append(
                KernelInstance(
                    kernel=alt, launch=launch,
                    binding_exprs=tuple(binding_exprs.items()),
                )
            )

    if allow_distractors:
        base_distract = rng.choice([0, 0, 0, 1, 1, 2])
        n_distract = int(base_distract) + (2 if bloat == 1 else 0) + (9 if bloat == 2 else 0)
        first_flag = next(iter(flags))
        shape0 = rng.randint(0, 6)
        for d in range(n_distract):
            dk = _distractor_kernel(shape0 + d, d, first_flag)
            inst = KernelInstance(
                kernel=dk,
                launch=plan_launch_1d(flags[first_flag], 256),
                binding_exprs=((first_flag, first_flag),),
            )
            validate_launch(inst, cmdline)
            instances.append(inst)

    if bloat == 0:
        verbosity = int(rng.choice([0, 1, 1, 1, 2]))
        split = bool(rng.bernoulli(0.3))
        util = 0
    elif bloat == 1:
        verbosity = 2
        split = bool(rng.bernoulli(0.6))
        util = 1
    else:
        verbosity = 2
        split = True
        util = 2
    return ProgramSpec(
        name=f"{family}-v{variant + 1}",
        family=family,
        variant=variant,
        language=language,
        kernels=tuple(instances),
        cmdline=cmdline,
        description=description,
        host_verbosity=verbosity,
        split_files=split,
        util_header=util,
        tags=tuple(tags),
    )
