"""Tests for repro.util.stats — chi-squared machinery and box stats.

The chi-squared implementation is cross-validated against scipy (available
in the dev environment, deliberately not a runtime dependency).
"""

import numpy as np
import pytest
import scipy.stats

from repro.util.stats import (
    BoxStats,
    chi2_sf,
    chi_squared_independence,
    describe,
    five_number_summary,
)


class TestChi2Sf:
    @pytest.mark.parametrize("df", [1, 2, 3, 5, 10, 30])
    @pytest.mark.parametrize("x", [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 60.0])
    def test_matches_scipy(self, df, x):
        ours = chi2_sf(x, df)
        ref = scipy.stats.chi2.sf(x, df)
        assert ours == pytest.approx(ref, rel=1e-9, abs=1e-12)

    def test_at_zero(self):
        assert chi2_sf(0.0, 3) == 1.0

    def test_negative_x(self):
        assert chi2_sf(-1.0, 3) == 1.0

    def test_bad_df(self):
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)

    def test_monotone_decreasing(self):
        vals = [chi2_sf(x, 4) for x in (0.5, 1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(vals, vals[1:]))


class TestChiSquaredIndependence:
    def test_matches_scipy(self):
        table = [[30, 70], [45, 55], [25, 75]]
        ours = chi_squared_independence(table)
        stat, p, dof, expected = scipy.stats.chi2_contingency(table, correction=False)
        assert ours.statistic == pytest.approx(stat)
        assert ours.p_value == pytest.approx(p)
        assert ours.dof == dof
        assert np.allclose(ours.expected, expected)

    def test_homogeneous_table_not_significant(self):
        res = chi_squared_independence([[50, 50], [50, 50], [51, 49]])
        assert res.p_value > 0.9
        assert not res.significant_at_05

    def test_skewed_table_significant(self):
        res = chi_squared_independence([[90, 10], [10, 90]])
        assert res.significant_at_05

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            chi_squared_independence([[1, 2]])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            chi_squared_independence([[1, -2], [3, 4]])

    def test_zero_margin_raises(self):
        with pytest.raises(ValueError):
            chi_squared_independence([[0, 0], [1, 2]])


class TestFiveNumberSummary:
    def test_simple(self):
        s = five_number_summary([1, 2, 3, 4, 5])
        assert s.minimum == 1
        assert s.median == 3
        assert s.maximum == 5
        assert s.n == 5

    def test_outlier_detection(self):
        vals = list(range(1, 21)) + [1000]
        s = five_number_summary(vals)
        assert 1000 in s.outliers
        assert s.whisker_high < 1000

    def test_whiskers_within_data(self):
        vals = [3, 1, 4, 1, 5, 9, 2, 6]
        s = five_number_summary(vals)
        assert s.minimum <= s.whisker_low <= s.q1
        assert s.q3 <= s.whisker_high <= s.maximum

    def test_iqr(self):
        s = five_number_summary(list(range(101)))
        assert s.iqr == pytest.approx(50.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            five_number_summary([])

    def test_single_value(self):
        s = five_number_summary([7.0])
        assert s.minimum == s.median == s.maximum == 7.0
        assert s.outliers == ()


class TestDescribe:
    def test_fields(self):
        d = describe([1.0, 2.0, 3.0])
        assert d["n"] == 3
        assert d["mean"] == pytest.approx(2.0)
        assert d["median"] == pytest.approx(2.0)

    def test_std_single_sample(self):
        assert describe([5.0])["std"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe([])
