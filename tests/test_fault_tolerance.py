"""Fault-tolerant sweeps: retry, fault injection, journal, kill-and-resume.

Pins the robustness contracts:

* the shared sync retry driver recovers from transient failures under the
  policy's attempt bound, floors backoff by ``retry_after`` hints, and
  propagates non-transient errors on the first attempt;
* a seeded :class:`~repro.util.faults.FaultPlan` selects the same units
  however the sweep is scheduled, so collect-mode runs under the same
  plan produce byte-identical digests;
* ``failure_mode="collect"`` records exhausted units as
  :class:`~repro.eval.runner.FailedUnit` entries (excluded from records
  and usage), and ``max_failures`` aborts exactly at the threshold;
* the sweep journal survives torn tails, records exactly once per key,
  and lets a resumed engine skip journaled units with zero re-issued
  completions;
* a sweep SIGKILLed mid-run resumes to a byte-identical report.
"""

import os
import random
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.engine import (
    DiskResponseStore,
    EvalEngine,
    MaxFailuresExceeded,
    resolve_failure_mode,
)
from repro.eval.journal import DEFAULT_JOURNAL_NAME, JOURNAL_VERSION, SweepJournal
from repro.llm import get_model
from repro.prompts import build_classify_prompt
from repro.util.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_fault_plan,
    reset_active_fault_plan,
    set_active_fault_plan,
)
from repro.util.retry import RetryPolicy, TransientError, retry_call

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def classify_items(samples, n):
    return [
        (s.uid, build_classify_prompt(s).text, s.label) for s in samples[:n]
    ]


class TestSyncRetry:
    def _policy(self, attempts=4):
        return RetryPolicy(max_attempts=attempts, base_delay_s=0.0, jitter=0.0)

    def test_recovers_within_attempt_bound(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("blip")
            return "ok"

        sleeps = []
        assert retry_call(
            flaky, policy=self._policy(), sleep=sleeps.append
        ) == "ok"
        assert len(calls) == 3
        assert len(sleeps) == 2

    def test_exhaustion_raises_the_last_error(self):
        def always():
            raise TransientError("down")

        with pytest.raises(TransientError, match="down"):
            retry_call(always, policy=self._policy(2), sleep=lambda _s: None)

    def test_non_transient_propagates_immediately(self):
        calls = []

        def bug():
            calls.append(1)
            raise KeyError("not weather")

        with pytest.raises(KeyError):
            retry_call(bug, policy=self._policy(), sleep=lambda _s: None)
        assert len(calls) == 1

    def test_retry_after_hint_floors_the_delay(self):
        class Limited(TransientError):
            retry_after = 9.0

        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise Limited("429")
            return "ok"

        sleeps = []
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.001, max_delay_s=0.001, jitter=0.0
        )
        assert retry_call(flaky, policy=policy, sleep=sleeps.append) == "ok"
        assert sleeps == [9.0]

    def test_on_retry_sees_each_failed_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise TransientError("blip")
            return "ok"

        retry_call(
            flaky,
            policy=self._policy(),
            sleep=lambda _s: None,
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert seen == [0, 1]

    def test_jitter_is_reproducible_per_rng_seed(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.05)
        a = [policy.backoff_delay(i, random.Random(7)) for i in range(4)]
        b = [policy.backoff_delay(i, random.Random(7)) for i in range(4)]
        assert a == b


class TestFaultPlanParsing:
    def test_round_trip(self):
        spec = "seed=7;provider_error:rate=0.25,attempts=2;torn_write:rate=0.5"
        plan = FaultPlan.parse(spec)
        assert plan.seed == 7
        assert plan.specs[0] == FaultSpec(
            "provider_error", rate=0.25, attempts=2
        )
        assert FaultPlan.parse(plan.describe()).specs == plan.specs

    @pytest.mark.parametrize("bad", [
        "seed=x",
        "frobnicate:rate=1",
        "provider_error:rate=2.0",
        "provider_error:bogus=1",
        "worker_death",  # needs after=N
        "provider_error:attempts=0",
    ])
    def test_bad_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_unknown_kind_error_lists_valid_kinds(self):
        with pytest.raises(ValueError, match="provider_error"):
            FaultPlan.parse("frobnicate:rate=1")

    def test_selection_is_order_independent(self):
        plan = FaultPlan.parse("seed=3;provider_error:rate=0.4")
        tokens = [f"unit-{i}" for i in range(64)]
        spec = plan.specs[0]
        forward = [plan._selected(spec, t) for t in tokens]
        backward = [plan._selected(spec, t) for t in reversed(tokens)]
        assert forward == list(reversed(backward))
        assert 0 < sum(forward) < len(tokens)

    def test_env_plan_memoized_per_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=5;torn_write:rate=1")
        reset_active_fault_plan()
        assert active_fault_plan() is active_fault_plan()
        set_active_fault_plan(None)  # explicit off beats the env
        assert active_fault_plan() is None
        reset_active_fault_plan()
        assert active_fault_plan() is not None


class TestCollectMode:
    def test_unknown_failure_mode_lists_choices(self):
        with pytest.raises(ValueError, match="fail_fast"):
            resolve_failure_mode("explode")
        with pytest.raises(ValueError):
            EvalEngine(failure_mode="explode")

    def test_fail_fast_propagates_exhausted_units(self, balanced_samples):
        set_active_fault_plan(
            FaultPlan.parse("provider_error:rate=1,attempts=99")
        )
        engine = EvalEngine(retry=RetryPolicy(max_attempts=2, base_delay_s=0))
        with pytest.raises(InjectedFault):
            engine.run(
                get_model("gpt-4o-mini"), classify_items(balanced_samples, 3)
            )

    @pytest.mark.parametrize("backend,jobs", [
        ("sequential", 1), ("thread", 4), ("process", 2),
    ])
    def test_collect_records_failures_deterministically(
        self, balanced_samples, backend, jobs, monkeypatch
    ):
        plan_spec = "seed=11;provider_error:rate=0.3,attempts=99"
        # Process workers inherit the plan through the environment.
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan_spec)
        reset_active_fault_plan()
        items = classify_items(balanced_samples, 16)
        model = get_model("gpt-4o-mini")

        def run_once():
            engine = EvalEngine(
                jobs=jobs,
                backend=backend,
                failure_mode="collect",
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            )
            return engine.run(model, items), engine.stats

        first, stats = run_once()
        second, _ = run_once()
        assert first.failures
        assert len(first.records) + len(first.failures) == len(items)
        assert first.digest() == second.digest()
        assert stats.failed == len(first.failures)
        if backend != "process":
            # One counted retry per exhausted unit (workers in other
            # processes can't call back into the parent's stats).
            assert stats.retries == len(first.failures)
        recorded = {r.item_id for r in first.records}
        assert all(f.item_id not in recorded for f in first.failures)
        assert "failed" in stats.summary()

    def test_collect_failures_survive_to_json_and_render(
        self, balanced_samples
    ):
        set_active_fault_plan(
            FaultPlan.parse("seed=2;provider_error:rate=0.4,attempts=99")
        )
        engine = EvalEngine(
            failure_mode="collect",
            retry=RetryPolicy(max_attempts=1),
        )
        result = engine.run(
            get_model("gpt-4o-mini"), classify_items(balanced_samples, 10)
        )
        assert result.failures
        payload = result.to_json()
        assert len(payload["failures"]) == len(result.failures)
        assert "Failed units" in result.render()

    def test_clean_run_digest_unchanged_by_collect_mode(
        self, balanced_samples
    ):
        items = classify_items(balanced_samples, 8)
        model = get_model("gpt-4o-mini")
        plain = EvalEngine().run(model, items)
        collected = EvalEngine(failure_mode="collect").run(model, items)
        assert collected == plain
        assert collected.digest() == plain.digest()
        assert "failures" not in plain.to_json()

    def test_max_failures_aborts_exactly_at_threshold(self, balanced_samples):
        set_active_fault_plan(
            FaultPlan.parse("provider_error:rate=1,attempts=99")
        )
        engine = EvalEngine(
            backend="sequential",
            failure_mode="collect",
            max_failures=3,
            retry=RetryPolicy(max_attempts=1),
        )
        with pytest.raises(MaxFailuresExceeded) as excinfo:
            engine.run(
                get_model("gpt-4o-mini"), classify_items(balanced_samples, 10)
            )
        assert excinfo.value.threshold == 3
        assert engine.stats.failed == 3

    def test_max_failures_must_be_positive(self):
        with pytest.raises(ValueError):
            EvalEngine(max_failures=0)

    def test_injected_faults_recovered_by_retry_leave_results_clean(
        self, balanced_samples
    ):
        items = classify_items(balanced_samples, 8)
        model = get_model("gpt-4o-mini")
        baseline = EvalEngine().run(model, items)
        set_active_fault_plan(
            FaultPlan.parse("seed=4;provider_error:rate=0.5,attempts=1")
        )
        engine = EvalEngine(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        )
        recovered = engine.run(model, items)
        assert recovered == baseline
        assert engine.stats.retries > 0
        assert engine.stats.failed == 0


class TestSweepJournal:
    def test_record_checkpoint_reload(self, tmp_path):
        path = tmp_path / DEFAULT_JOURNAL_NAME
        journal = SweepJournal(path, label="test sweep")
        journal.record("m:unit-1", "a" * 64)
        journal.record("m:unit-2", "b" * 64)
        journal.record("m:unit-1", "a" * 64)  # dedup by key
        assert len(journal) == 2
        assert not path.exists()  # durable only after checkpoint
        journal.checkpoint()
        reloaded = SweepJournal(path)
        assert len(reloaded) == 2
        assert reloaded.completed("a" * 64)
        assert not reloaded.completed("c" * 64)
        stats = reloaded.stats()
        assert stats.entries == 2
        assert stats.sweeps == 1
        assert "2 journaled unit(s)" in stats.render()

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / DEFAULT_JOURNAL_NAME
        journal = SweepJournal(path)
        journal.record("m:u1", "a" * 64)
        journal.record("m:u2", "b" * 64)
        journal.checkpoint()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"unit": "m:u3", "ke')  # crash mid-append
        reloaded = SweepJournal(path)
        assert len(reloaded) == 2

    def test_foreign_journal_version_is_distrusted(self, tmp_path):
        path = tmp_path / DEFAULT_JOURNAL_NAME
        journal = SweepJournal(path, label="old")
        journal.record("m:u1", "a" * 64)
        journal.checkpoint()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"journal": "repro-journal-v99", "sweep": "new"}\n')
        assert JOURNAL_VERSION != "repro-journal-v99"
        assert len(SweepJournal(path)) == 0

    def test_stats_at_missing_path_is_none(self, tmp_path):
        assert SweepJournal.stats_at(tmp_path / "nope.jsonl") is None

    def test_checkpoint_interval_env(self, monkeypatch):
        from repro.eval.journal import (
            DEFAULT_CHECKPOINT_INTERVAL,
            checkpoint_interval,
        )

        monkeypatch.delenv("REPRO_JOURNAL_INTERVAL", raising=False)
        assert checkpoint_interval() == DEFAULT_CHECKPOINT_INTERVAL
        monkeypatch.setenv("REPRO_JOURNAL_INTERVAL", "2")
        assert checkpoint_interval() == 2
        monkeypatch.setenv("REPRO_JOURNAL_INTERVAL", "junk")
        assert checkpoint_interval() == DEFAULT_CHECKPOINT_INTERVAL


class TestJournaledEngine:
    def test_resume_skips_journaled_units_with_zero_completions(
        self, tmp_path, balanced_samples
    ):
        items = classify_items(balanced_samples, 10)
        model = get_model("gpt-4o-mini")
        root = tmp_path / "cache"
        path = root / DEFAULT_JOURNAL_NAME

        store = DiskResponseStore(root)
        first = EvalEngine(
            store=store, journal=SweepJournal(path, label="first")
        ).run(model, items)
        assert len(SweepJournal(path)) == len(items)

        resumed_store = DiskResponseStore(root)
        engine = EvalEngine(
            store=resumed_store, journal=SweepJournal(path, label="resume")
        )
        resumed = engine.run(model, items)
        assert resumed == first
        assert resumed.digest() == first.digest()
        assert engine.stats.hits == len(items)
        assert engine.stats.completions == 0

    def test_journaled_but_evicted_entries_recompute(
        self, tmp_path, balanced_samples
    ):
        items = classify_items(balanced_samples, 4)
        model = get_model("gpt-4o-mini")
        root = tmp_path / "cache"
        path = root / DEFAULT_JOURNAL_NAME
        store = DiskResponseStore(root)
        baseline = EvalEngine(
            store=store, journal=SweepJournal(path, label="first")
        ).run(model, items)
        store.clear()  # the journal now over-claims
        engine = EvalEngine(
            store=DiskResponseStore(root),
            journal=SweepJournal(path, label="retry"),
        )
        assert engine.run(model, items) == baseline
        assert engine.stats.misses == len(items)

    def test_interrupted_sweep_checkpoints_the_flushed_chunks(
        self, tmp_path, balanced_samples, monkeypatch
    ):
        monkeypatch.setenv("REPRO_JOURNAL_INTERVAL", "2")
        items = classify_items(balanced_samples, 10)
        root = tmp_path / "cache"
        path = root / DEFAULT_JOURNAL_NAME
        engine = EvalEngine(
            store=DiskResponseStore(root),
            journal=SweepJournal(path, label="crashy"),
            backend="sequential",
            failure_mode="collect",
            max_failures=1,
            retry=RetryPolicy(max_attempts=1),
        )

        model = get_model("gpt-4o-mini")
        completed_before_fault = 4
        calls = {"n": 0}
        original = type(model).complete

        def flaky(self, prompt, *, temperature=None, top_p=None):
            calls["n"] += 1
            if calls["n"] > completed_before_fault:
                raise TransientError("injected mid-sweep outage")
            return original(
                self, prompt, temperature=temperature, top_p=top_p
            )

        monkeypatch.setattr(type(model), "complete", flaky)
        with pytest.raises(MaxFailuresExceeded):
            engine.run(model, items)
        # The finally-checkpoint journaled every flushed chunk (2 chunks
        # of 2 units) even though the run aborted.
        assert len(SweepJournal(path)) == completed_before_fault


class TestKillAndResume:
    @pytest.mark.slow
    def test_sigkill_mid_sweep_resumes_byte_identical(self, tmp_path):
        env = {
            **os.environ,
            "PYTHONPATH": SRC_DIR,
            "REPRO_PROFILE_CACHE": str(tmp_path / "profile-cache"),
            "REPRO_ARTIFACT_CACHE": str(tmp_path / "artifact-cache"),
            "REPRO_JOURNAL_INTERVAL": "2",
            "REPRO_CACHE_DIR": str(tmp_path / "control-cache"),
        }
        env.pop("REPRO_FAULT_PLAN", None)
        argv = [
            sys.executable, "-m", "repro.cli", "rq2",
            "--model", "gpt-4o-mini", "--limit", "12",
        ]
        control = subprocess.run(
            argv, capture_output=True, text=True, env=env, check=True
        )

        crash_env = {**env, "REPRO_CACHE_DIR": str(tmp_path / "crash-cache")}
        crashed = subprocess.run(
            [*argv, "--resume",
             "--inject-faults", "seed=1;worker_death:after=6"],
            capture_output=True, text=True, env=crash_env,
        )
        assert crashed.returncode == -signal.SIGKILL

        journal_path = Path(crash_env["REPRO_CACHE_DIR"]) / DEFAULT_JOURNAL_NAME
        journaled = len(SweepJournal(journal_path))
        assert 0 < journaled < 12  # died mid-sweep, after some checkpoints

        resumed = subprocess.run(
            [*argv, "--resume"],
            capture_output=True, text=True, env=crash_env, check=True,
        )

        def report(text):
            return "\n".join(
                line for line in text.splitlines()
                if not line.startswith("cache:")
            )

        assert report(resumed.stdout) == report(control.stdout)
        stats = re.search(r"cache: (\d+) hits, (\d+) misses", resumed.stdout)
        hits, misses = int(stats.group(1)), int(stats.group(2))
        # Zero re-issued completions for journaled units: each is a pure
        # store hit, and only the unjournaled remainder recomputes.
        assert hits == journaled
        assert misses == 12 - journaled
