"""Shared fixtures.

The paper-sized dataset pipeline costs a few seconds to build; it is
session-scoped and shared across test modules. Smaller fixtures (mini
corpus, single programs) are derived cheaply.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_response_cache(tmp_path, monkeypatch):
    """Keep CLI/default disk caches out of the working tree during tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "response-cache"))
    monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path / "profile-cache"))
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path / "artifact-cache"))
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    # CLI invocations install process-global stores (and maybe a fault
    # plan); forget them so each test sees only its own environment.
    from repro.gpusim.store import reset_active_profile_store
    from repro.store.text import reset_active_artifact_cache
    from repro.util.faults import reset_active_fault_plan

    reset_active_profile_store()
    reset_active_artifact_cache()
    reset_active_fault_plan()
    yield
    reset_active_profile_store()
    reset_active_artifact_cache()
    reset_active_fault_plan()


@pytest.fixture(scope="session")
def dataset():
    """The full paper dataset pipeline (built once per test session)."""
    from repro.dataset import paper_dataset

    return paper_dataset()


@pytest.fixture(scope="session")
def corpus():
    """The full 749-program corpus."""
    from repro.kernels.corpus import default_corpus

    return default_corpus()


@pytest.fixture(scope="session")
def mini_corpus():
    """A small corpus for fast structural tests."""
    from repro.kernels.corpus import build_corpus

    return build_corpus(30, 20)


@pytest.fixture(scope="session")
def tokenizer():
    from repro.tokenizer import corpus_tokenizer

    return corpus_tokenizer()


@pytest.fixture(scope="session")
def device():
    from repro.gpusim import default_device

    return default_device()


@pytest.fixture(scope="session")
def balanced_samples(dataset):
    return list(dataset.balanced)
