"""Deterministic, seeded fault injection for chaos-testing sweeps.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultSpec` rules,
parsed from a compact spec string (``$REPRO_FAULT_PLAN`` or
``--inject-faults``)::

    seed=7;provider_error:rate=0.25,attempts=2;torn_write:rate=0.5
    seed=1;worker_death:after=5
    rate_limit:rate=0.1,attempts=1,retry_after=0.01;enospc:rate=0.2

Fault kinds:

* completion faults, raised inside the engine's per-unit retry loop —
  ``provider_error`` (a 5xx-shaped :class:`InjectedFault`),
  ``provider_timeout`` (:class:`InjectedTimeout`), and ``rate_limit``
  (:class:`InjectedRateLimit`, optional ``retry_after`` hint). A selected
  unit fails its first ``attempts`` attempts and then succeeds, so
  ``attempts < max_attempts`` exercises recovery-by-retry while
  ``attempts >= max_attempts`` exhausts the policy into a
  ``FailedUnit``;
* segment-write faults, applied in ``ArtifactStore._write_segment`` —
  ``torn_write`` (truncated file), ``forged_index`` (a span pointing
  outside the body), ``version_skew`` (payload version mangled),
  ``enospc`` (the write raises ``OSError(ENOSPC)``), and ``stale_tmp``
  (a dead-pid ``*.tmp.*`` file appears beside the segment). Each fires
  **once** per (kind, segment) so a later rewrite can heal the store —
  corruption is an event, not a curse;
* ``worker_death:after=N`` — the process SIGKILLs itself on its N-th
  completion attempt, the crash the journal/resume path exists for;
* serving faults, raised inside the async engine's per-candidate retry
  loop — ``provider_brownout:provider=L,after=K,attempts=N`` (a sustained
  window: matching attempts K+1..K+N against provider label ``L`` all
  fail, exercising breakers and failover) and
  ``slow_tail:rate=R,ms=M`` (hash-selected calls answer ``M`` ms late,
  exercising hedged requests). Any completion fault may also carry
  ``provider=L`` to target one provider; targeted specs never fire on
  the batch path.

Determinism: whether a fault fires for a given token is a pure function
of ``(seed, kind, token)`` via :func:`repro.util.hashing.stable_hash_u64`
— never of execution order — so thread scheduling cannot change which
units fail, and two runs under the same plan fail identically (the
``failure_mode="collect"`` digest test pins this). ``rate`` is the
per-token selection probability.
"""

from __future__ import annotations

import errno
import os
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.hashing import stable_hash_u64
from repro.util.retry import AttemptTimeout, TransientError

#: Environment variable holding a fault-plan spec string.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

COMPLETION_FAULT_KINDS = ("provider_error", "provider_timeout", "rate_limit")
#: Serve-path faults: ``provider_brownout`` (a counter-window of sustained
#: failures against one provider — every matching attempt in the window
#: fails, modelling a vendor outage rather than per-unit weather) and
#: ``slow_tail:rate=...,ms=...`` (pure-hash-selected calls answer ``ms``
#: milliseconds late, the tail the hedging path exists for). Both honour
#: an optional ``provider=<label>`` filter so a plan can brown out the
#: primary while its failover target stays healthy.
PROVIDER_FAULT_KINDS = ("provider_brownout", "slow_tail")
SEGMENT_FAULT_KINDS = (
    "torn_write",
    "forged_index",
    "version_skew",
    "enospc",
    "stale_tmp",
)
PROCESS_FAULT_KINDS = ("worker_death",)
FAULT_KINDS = (
    COMPLETION_FAULT_KINDS
    + PROVIDER_FAULT_KINDS
    + SEGMENT_FAULT_KINDS
    + PROCESS_FAULT_KINDS
)

#: A pid no live process can hold on stock Linux (pid_max caps at 2^22),
#: so injected tmp files always read as leaked by a dead writer.
_DEAD_PID = 3999999


class InjectedFault(TransientError):
    """A 5xx-shaped transient failure injected by the active fault plan."""


class InjectedTimeout(AttemptTimeout):
    """An injected attempt-deadline overrun."""


class InjectedRateLimit(InjectedFault):
    """An injected 429; ``retry_after`` floors the backoff like the real one."""

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: fire ``kind`` on ``rate`` of tokens.

    ``attempts`` is how many leading attempts of a selected completion
    fail before it succeeds; ``after`` arms ``worker_death`` on the N-th
    attempt process-wide; ``retry_after`` rides on injected 429s.
    """

    kind: str
    rate: float = 1.0
    attempts: int = 1
    after: int = 0
    retry_after: float | None = None
    provider: str = ""
    ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(valid: {', '.join(FAULT_KINDS)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.attempts < 1:
            raise ValueError(f"fault attempts must be >= 1, got {self.attempts}")
        if self.kind == "worker_death" and self.after < 1:
            raise ValueError("worker_death requires after=N with N >= 1")
        if self.kind == "slow_tail" and self.ms <= 0:
            raise ValueError("slow_tail requires ms=M with M > 0")


_SPEC_FIELDS = {
    "rate": float,
    "attempts": int,
    "after": int,
    "retry_after": float,
    "provider": str,
    "ms": float,
}


@dataclass
class FaultPlan:
    """A seeded set of fault rules, shared process-wide once activated.

    One-shot bookkeeping (which segment faults already fired, how many
    completion attempts the death counter has seen) is mutable state under
    a lock; the *selection* of what fails is stateless and order-free.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    _fired: set = field(default_factory=set, repr=False)
    _attempts_seen: int = field(default=0, repr=False)
    # Per-spec call counters driving provider_brownout windows.
    _window_seen: dict = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- parsing -------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a spec string (see module docstring for the grammar)."""
        seed = 0
        specs: list[FaultSpec] = []
        for part in filter(None, (p.strip() for p in text.split(";"))):
            if part.startswith("seed="):
                try:
                    seed = int(part[len("seed="):])
                except ValueError:
                    raise ValueError(f"bad fault-plan seed: {part!r}") from None
                continue
            kind, _, params = part.partition(":")
            kwargs: dict = {}
            for param in filter(None, (p.strip() for p in params.split(","))):
                name, eq, value = param.partition("=")
                if not eq or name not in _SPEC_FIELDS:
                    raise ValueError(
                        f"bad fault param {param!r} for {kind!r} "
                        f"(valid: {', '.join(_SPEC_FIELDS)})"
                    )
                try:
                    kwargs[name] = _SPEC_FIELDS[name](value)
                except ValueError:
                    raise ValueError(
                        f"bad value for fault param {param!r}"
                    ) from None
            specs.append(FaultSpec(kind.strip(), **kwargs))
        return cls(seed=seed, specs=tuple(specs))

    def describe(self) -> str:
        """A round-trippable spec string (``parse(describe())`` == plan)."""
        parts = [f"seed={self.seed}"]
        for s in self.specs:
            params = [f"rate={s.rate:g}"]
            if s.attempts != 1:
                params.append(f"attempts={s.attempts}")
            if s.after:
                params.append(f"after={s.after}")
            if s.retry_after is not None:
                params.append(f"retry_after={s.retry_after:g}")
            if s.provider:
                params.append(f"provider={s.provider}")
            if s.ms:
                params.append(f"ms={s.ms:g}")
            parts.append(f"{s.kind}:{','.join(params)}")
        return ";".join(parts)

    # -- selection -----------------------------------------------------------
    def _selected(self, spec: FaultSpec, token: str) -> bool:
        """Order-independent per-token coin flip at ``spec.rate``."""
        if spec.rate >= 1.0:
            return True
        if spec.rate <= 0.0:
            return False
        draw = stable_hash_u64("fault", self.seed, spec.kind, token) / 2.0**64
        return draw < spec.rate

    def _fire_once(self, spec: FaultSpec, token: str) -> bool:
        """Selection gated to a single firing per (kind, token)."""
        if not self._selected(spec, token):
            return False
        with self._lock:
            mark = (spec.kind, token)
            if mark in self._fired:
                return False
            self._fired.add(mark)
        return True

    # -- completion-path hooks -----------------------------------------------
    @staticmethod
    def _raise_completion(spec: FaultSpec, where: str) -> None:
        if spec.kind == "provider_timeout":
            raise InjectedTimeout(f"injected timeout: {where}")
        if spec.kind == "rate_limit":
            raise InjectedRateLimit(
                f"injected rate limit: {where}",
                retry_after=spec.retry_after,
            )
        raise InjectedFault(f"injected provider error: {where}")

    def completion_fault(self, token: str, attempt: int) -> None:
        """Raise this unit's injected fault for ``attempt`` (0-based), if
        any; also drives the ``worker_death`` counter. Called by the engine
        before each real completion attempt. Provider-targeted specs
        (``provider=...``) are serve-path faults and never fire here."""
        for spec in self.specs:
            if spec.kind != "worker_death":
                continue
            with self._lock:
                self._attempts_seen += 1
                fatal = self._attempts_seen == spec.after
            if fatal:
                os.kill(os.getpid(), signal.SIGKILL)
        for spec in self.specs:
            if spec.kind not in COMPLETION_FAULT_KINDS or spec.provider:
                continue
            if attempt >= spec.attempts or not self._selected(spec, token):
                continue
            self._raise_completion(
                spec, f"unit {token[:12]} attempt {attempt + 1}"
            )

    # -- serve-path hooks ----------------------------------------------------
    def provider_fault(self, provider: str, token: str, attempt: int) -> None:
        """The serving engine's twin of :meth:`completion_fault`.

        ``provider`` is the candidate's label (``family:model``); specs
        carrying ``provider=...`` fire only against that label, bare specs
        fire against every provider. ``provider_brownout`` is a *window*:
        a per-spec counter of matching attempts, of which numbers
        ``(after, after + attempts]`` all fail — sustained unavailability
        that exhausts retries and opens circuit breakers, then lifts so
        half-open probes can close them again. Never SIGKILLs: process
        death is a batch-sweep fault, not a serving one.
        """
        for index, spec in enumerate(self.specs):
            if spec.provider and spec.provider != provider:
                continue
            if spec.kind == "provider_brownout":
                with self._lock:
                    seen = self._window_seen.get(index, 0) + 1
                    self._window_seen[index] = seen
                if spec.after < seen <= spec.after + spec.attempts:
                    raise InjectedFault(
                        f"injected brownout: {provider} attempt {seen} "
                        f"of window ({spec.after}, "
                        f"{spec.after + spec.attempts}]"
                    )
                continue
            if spec.kind not in COMPLETION_FAULT_KINDS:
                continue
            if attempt >= spec.attempts or not self._selected(spec, token):
                continue
            self._raise_completion(
                spec, f"{provider} unit {token[:12]} attempt {attempt + 1}"
            )

    def slow_tail_delay(self, provider: str, token: str) -> float | None:
        """Seconds of injected tail latency for this call, or ``None``.

        Selection is the same pure ``(seed, kind, token)`` hash as every
        other fault — which calls land in the slow tail never depends on
        execution order, so hedge-winner tests replay exactly.
        """
        for spec in self.specs:
            if spec.kind != "slow_tail":
                continue
            if spec.provider and spec.provider != provider:
                continue
            if self._selected(spec, token):
                return spec.ms / 1000.0
        return None

    # -- store-path hook -----------------------------------------------------
    def mangle_segment(
        self, path: Path, payload: dict, entries: dict, data: bytes
    ) -> bytes:
        """Corrupt (or veto) one segment write.

        ``data`` is the encoded segment about to be written; the return
        value is written in its place via the normal tmp+replace dance, so
        torn bytes still arrive atomically — modelling corruption that
        happened *before* this process attached, which is what the doctor
        fscks for. May raise ``OSError(ENOSPC)`` instead.
        """
        from repro.store.base import encode_segment  # late: avoid cycle

        token = path.name
        for spec in self.specs:
            if spec.kind not in SEGMENT_FAULT_KINDS:
                continue
            if not self._fire_once(spec, token):
                continue
            if spec.kind == "enospc":
                raise OSError(errno.ENOSPC, f"injected ENOSPC writing {token}")
            if spec.kind == "stale_tmp":
                side = path.with_suffix(f".tmp.{_DEAD_PID}.0")
                try:
                    side.write_bytes(data[: max(1, len(data) // 2)])
                except OSError:
                    pass
                continue  # the real write proceeds untouched
            if spec.kind == "torn_write":
                cut = stable_hash_u64("cut", self.seed, token) % max(1, len(data))
                data = data[:cut]
            elif spec.kind == "version_skew":
                skewed = dict(payload)
                skewed["version"] = f"{payload.get('version', '')}+fault-skew"
                data = encode_segment(skewed, entries)
            elif spec.kind == "forged_index":
                data = _forge_index(data)
        return data


def _forge_index(data: bytes) -> bytes:
    """Rewrite the last index span to point far outside the body — the
    header still parses, the entry reads as a per-entry miss."""
    from repro.store.base import _KEY_BLOB_PREFIX, _SEGMENT_HEADER, _SPAN

    if len(data) < _SEGMENT_HEADER.size:
        return data[: len(data) // 2]  # too small to forge: tear instead
    _, _, meta_len, index_len = _SEGMENT_HEADER.unpack_from(data, 0)
    index_start = _SEGMENT_HEADER.size + meta_len
    body_start = index_start + index_len
    spans_len = index_len - _KEY_BLOB_PREFIX.size
    if body_start > len(data) or spans_len < _SPAN.size:
        return data[: len(data) // 2]  # empty index: tear instead
    forged = _SPAN.pack(1 << 40, 7)
    return data[: body_start - _SPAN.size] + forged + data[body_start:]


# ---------------------------------------------------------------------------
# Process-wide active plan (mirrors the active-store pattern)
# ---------------------------------------------------------------------------

_ACTIVE_LOCK = threading.Lock()
_ACTIVE: FaultPlan | None = None
_ACTIVE_SET = False
_ENV_CACHE: tuple[str, FaultPlan] | None = None


def set_active_fault_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide; ``None`` explicitly disables faults
    even when ``$REPRO_FAULT_PLAN`` is set."""
    global _ACTIVE, _ACTIVE_SET
    with _ACTIVE_LOCK:
        _ACTIVE = plan
        _ACTIVE_SET = True


def reset_active_fault_plan() -> None:
    """Drop any installed plan; the env spec (if any) applies again."""
    global _ACTIVE, _ACTIVE_SET
    with _ACTIVE_LOCK:
        _ACTIVE = None
        _ACTIVE_SET = False


def active_fault_plan() -> FaultPlan | None:
    """The installed plan, else one parsed from ``$REPRO_FAULT_PLAN``
    (memoized per spec text so worker processes, which inherit the env,
    share one plan instance and its one-shot state), else ``None``."""
    global _ENV_CACHE
    with _ACTIVE_LOCK:
        if _ACTIVE_SET:
            return _ACTIVE
        text = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not text:
            return None
        if _ENV_CACHE is not None and _ENV_CACHE[0] == text:
            return _ENV_CACHE[1]
        plan = FaultPlan.parse(text)
        _ENV_CACHE = (text, plan)
        return plan
