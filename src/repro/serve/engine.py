"""The asyncio twin of :class:`repro.eval.engine.EvalEngine`.

:class:`AsyncEvalEngine` serves completions concurrently from an event
loop while preserving the batch engine's contract bit for bit:

* **Same cache keys.** Misses and hits go through the same
  :func:`repro.eval.engine.cache_key` digests over the same
  :class:`~repro.llm.config.ModelConfig`/prompt/sampling inputs, against
  the same injectable :class:`~repro.eval.engine.ResponseStore` — a
  served completion warms the batch CLI's cache and vice versa.
* **Same results.** :meth:`AsyncEvalEngine.run` assembles records with
  the sync engine's ``_make_record`` and meters usage in item order, so
  for the same grid it returns a byte-identical
  :class:`~repro.eval.runner.RunResult` (pinned by digest in the tests)
  and writes byte-identical cache segments.

What the async path adds over the sync one:

* **Request coalescing.** Identical in-flight prompts (same cache key)
  share one upstream completion: the first arrival owns the request, the
  rest await its future. With deterministic providers the duplicates'
  responses are exact, and with real APIs coalescing is what keeps a
  burst of identical queries from billing N times.
* **Retry/backoff + rate limiting.** Every upstream call runs under a
  :class:`~repro.serve.retry.RetryPolicy` (bounded attempts, jittered
  exponential backoff, jittered per-attempt deadlines) and an optional
  :class:`~repro.serve.retry.RateLimiter` token bucket, acquired inside
  each attempt so backed-off retries re-queue behind fresh work.

Store calls run in worker threads (:func:`asyncio.to_thread`) so disk
segment reads never stall the loop; the stores' own locking makes that
safe, and inside :meth:`run` writes batch through ``store.deferred()``
exactly like the sync engine.
"""

from __future__ import annotations

import asyncio
import random
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence

from repro.eval.engine import (
    CachedResponse,
    CacheStats,
    ResponseStore,
    _make_record,
    cache_key,
)
from repro.llm.base import LlmResponse
from repro.llm.pricing import UsageMeter
from repro.serve.providers import ProviderClient
from repro.serve.retry import RateLimiter, RetryPolicy, Sleep, call_with_retry


@dataclass
class ServeStats(CacheStats):
    """Engine accounting plus the serving-only counters.

    ``coalesced`` waiters piggybacked on another request's completion (they
    are *not* hits or misses — the owning request books those); the
    ``retries`` counter (upstream re-attempts after retryable failures) is
    inherited from :class:`CacheStats` now that the sync engine retries
    too.
    """

    coalesced: int = 0

    def summary(self) -> str:
        return (
            f"{super().summary()}, {self.coalesced} coalesced, "
            f"{self.retries} retries"
        )


class AsyncEvalEngine:
    """Concurrent cached evaluation against one or more providers.

    One engine spans a service lifetime: its ``stats`` describe all
    traffic served and its ``_inflight`` table coalesces concurrent
    duplicates across every entry point (single :meth:`complete` calls
    and :meth:`run` batches alike).

    All state mutation happens on one event loop (the inflight table is
    touched with no ``await`` between lookup and insert, so no lock is
    needed); blocking work — model inference, disk segment I/O — is
    pushed to worker threads.
    """

    def __init__(
        self,
        *,
        store: ResponseStore | None = None,
        retry: RetryPolicy | None = None,
        limiter: RateLimiter | None = None,
        max_concurrency: int = 64,
        rng: random.Random | None = None,
        sleep: Sleep = asyncio.sleep,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.store = store
        self.retry = retry or RetryPolicy()
        self.limiter = limiter
        self.max_concurrency = max_concurrency
        self.stats = ServeStats()
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._inflight: dict[str, asyncio.Future[LlmResponse]] = {}

    # -- single completion ---------------------------------------------------
    async def complete(
        self,
        provider: ProviderClient,
        prompt: str,
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ) -> LlmResponse:
        """One completion: cache hit, coalesced join, or owned upstream call."""
        if self.store is None:
            response = await self._upstream(
                provider, prompt, temperature=temperature, top_p=top_p
            )
            self.stats._bump("uncached")
            return response

        key = cache_key(provider.config, prompt, temperature, top_p)
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats._bump("coalesced")
            return await asyncio.shield(existing)
        # No await between the miss above and this insert: on one event
        # loop that makes check-then-set atomic, so every concurrent
        # duplicate lands in the branch above.
        future: asyncio.Future[LlmResponse] = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        try:
            cached = await asyncio.to_thread(self.store.get, key)
            if cached is not None:
                self.stats._bump("hits")
                response = cached.to_response(provider.name)
            else:
                response = await self._upstream(
                    provider, prompt, temperature=temperature, top_p=top_p
                )
                await asyncio.to_thread(
                    self.store.put, key, CachedResponse.from_response(response)
                )
                self.stats._bump("misses")
            future.set_result(response)
            return response
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # consumed: a waiterless failure isn't a leak
            raise
        finally:
            self._inflight.pop(key, None)

    async def _upstream(
        self,
        provider: ProviderClient,
        prompt: str,
        *,
        temperature: float | None,
        top_p: float | None,
    ) -> LlmResponse:
        """One provider call under the rate limiter and retry policy."""

        async def attempt() -> LlmResponse:
            if self.limiter is not None:
                # Acquired per attempt: a retry after backoff waits its
                # turn again rather than holding a stale reservation.
                await self.limiter.acquire()
            return await provider.complete(
                prompt, temperature=temperature, top_p=top_p
            )

        return await call_with_retry(
            attempt,
            policy=self.retry,
            rng=self._rng,
            sleep=self._sleep,
            on_retry=lambda _attempt, _exc: self.stats._bump("retries"),
        )

    # -- batched evaluation --------------------------------------------------
    async def run(
        self,
        provider: ProviderClient,
        items: Sequence[tuple[str, str, object]],
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ):
        """Evaluate ``items`` of (item_id, prompt, truth) concurrently.

        The async counterpart of :meth:`EvalEngine.run`: identical
        records in identical order, usage metered in item order — the
        returned :class:`~repro.eval.runner.RunResult` and the store
        contents are byte-identical to the sync engine's for the same
        grid, whatever ``max_concurrency``.
        """
        from repro.eval.runner import RunResult

        items = list(items)
        if not items:
            raise ValueError("no items to run")

        gate = asyncio.Semaphore(self.max_concurrency)

        async def bounded(prompt: str) -> LlmResponse:
            async with gate:
                return await self.complete(
                    provider, prompt, temperature=temperature, top_p=top_p
                )

        deferred = getattr(self.store, "deferred", None)
        with deferred() if deferred is not None else nullcontext():
            responses = await asyncio.gather(
                *(bounded(prompt) for _, prompt, _ in items)
            )

        records = [
            _make_record(item_id, truth, response)
            for (item_id, _, truth), response in zip(items, responses)
        ]
        meter = UsageMeter(provider.config)
        for response in responses:
            meter.record(response.usage)
        return RunResult(
            model_name=provider.name,
            records=tuple(records),
            usage=meter.summary(),
        )
