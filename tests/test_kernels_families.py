"""Tests for the benchmark family registry and builders."""

import pytest

from repro.gpusim import profile_first_kernel
from repro.kernels.families import all_families, families_for, get_family
from repro.kernels.launch import validate_launch
from repro.roofline import RTX_3080, classify_kernel
from repro.types import Boundedness, Language


class TestRegistry:
    def test_family_count(self):
        # ~90 families per DESIGN.md (exact count pinned to catch accidents)
        assert len(all_families()) == 92

    def test_groups_present(self):
        groups = {f.group for f in all_families().values()}
        assert groups == {
            "streaming", "stencil", "linalg", "physics",
            "mathheavy", "integer", "misc",
        }

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            get_family("definitely-not-a-family")

    def test_cuda_superset_of_omp(self):
        cuda = {f.name for f in families_for(Language.CUDA)}
        omp = {f.name for f in families_for(Language.OMP)}
        assert omp <= cuda
        assert len(cuda) > len(omp)  # some families are CUDA-only

    def test_cuda_only_families(self):
        omp = {f.name for f in families_for(Language.OMP)}
        for name in ("gemm_tiled", "nbody_tiled", "batch_gemm4"):
            assert name not in omp


class TestBuilders:
    @pytest.mark.parametrize("name", sorted(all_families()))
    def test_every_family_builds_and_validates(self, name):
        fam = get_family(name)
        for language in fam.languages:
            spec = fam.build(0, language)
            assert spec.family == name
            assert spec.language is language
            for inst in spec.kernels:
                validate_launch(inst, spec.cmdline)

    @pytest.mark.parametrize("name", sorted(all_families()))
    def test_every_family_profiles(self, name):
        fam = get_family(name)
        spec = fam.build(1, fam.languages[0])
        profile = profile_first_kernel(spec)
        assert profile.counters.dram_bytes > 0
        assert profile.counters.time_s > 0

    def test_variants_differ(self):
        fam = get_family("saxpy")
        a = fam.build(0, Language.CUDA)
        b = fam.build(2, Language.CUDA)
        assert a.cmdline.argv_string() != b.cmdline.argv_string() or (
            a.host_verbosity != b.host_verbosity
        ) or a.split_files != b.split_files

    def test_determinism(self):
        fam = get_family("nbody_naive")
        a = fam.build(3, Language.CUDA)
        b = fam.build(3, Language.CUDA)
        assert a == b


class TestLabelTendencies:
    """Family groups must deliver their intended roofline behaviour —
    these anchors keep the corpus's label mix from drifting."""

    def _label(self, name: str, variant: int = 0, language=Language.CUDA):
        spec = get_family(name).build(variant, language)
        profile = profile_first_kernel(spec)
        return classify_kernel(
            profile.counters.intensity_profile(), RTX_3080.rooflines()
        ).label

    @pytest.mark.parametrize("name", ["saxpy", "vecadd", "triad", "veccopy"])
    def test_streaming_is_bandwidth_bound(self, name):
        assert self._label(name) is Boundedness.BANDWIDTH

    @pytest.mark.parametrize(
        "name", ["nbody_naive", "lj_force", "coulomb_grid", "mandelbrot"]
    )
    def test_pairwise_and_fractal_are_compute_bound(self, name):
        # variant 2 is single-precision in these families
        assert self._label(name, variant=4) is Boundedness.COMPUTE

    def test_gemm_naive_is_compute_bound(self):
        assert self._label("gemm_naive", variant=2) is Boundedness.COMPUTE

    def test_transpose_is_bandwidth_bound(self):
        assert self._label("transpose_naive", variant=2) is Boundedness.BANDWIDTH

    def test_xorshift_rounds_are_integer_compute_bound(self):
        assert self._label("xorshift_stream") is Boundedness.COMPUTE

    def test_histogram_is_bandwidth_bound(self):
        assert self._label("histogram") is Boundedness.BANDWIDTH
