"""Store-engine hardening: torn writes, concurrency, lifecycle sweeps.

The binary segment codec (``repro.store.base``) backs all three store
families; this module pins the failure-mode contracts the codec promises:

* a segment truncated at **any** byte boundary reads as an empty segment —
  never an exception, never a partial entry;
* concurrent writers on one store lose no entries and leave every segment
  valid;
* stale ``*.tmp.<pid>.<tid>`` droppings are swept and version-skewed
  segments garbage-collected;
* the byte-count env parsers of all three stores agree on junk handling;
* results stay digest-identical with the store off, cold, warm, and with a
  legacy per-entry-JSON cache dir standing in for a binary one.
"""

import json
import os
import threading

import pytest

from repro.eval.engine import (
    CachedResponse,
    DiskResponseStore,
    EvalEngine,
)
from repro.eval.matrix import run_matrix
from repro.llm import get_model
from repro.roofline.hardware import get_gpu
from repro.store.base import SEGMENT_MAGIC, encode_segment, parse_max_bytes


def _response(i: int) -> CachedResponse:
    return CachedResponse(
        text=f"Compute {i}",
        input_tokens=i,
        output_tokens=1,
        reasoning_tokens=0,
        model="test-model",
    )


class TestTornWrites:
    def test_every_truncation_boundary_reads_as_empty(self, tmp_path):
        """Atomic-replace should prevent torn segments, but a dying disk
        or filesystem bug must still degrade to a cache miss."""
        store = DiskResponseStore(tmp_path)
        keys = [f"ab{i:062x}" for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, _response(i))
        seg = store._segment_path("responses-", "ab")
        payload = seg.read_bytes()
        assert payload.startswith(SEGMENT_MAGIC)
        for cut in range(len(payload)):
            seg.write_bytes(payload[:cut])
            for key in keys:
                assert store.get(key) is None, f"cut={cut} served a hit"
        # A fresh put over the torn file repairs the segment wholesale.
        seg.write_bytes(payload[: len(payload) // 2])
        store.put(keys[0], _response(0))
        assert store.get(keys[0]) == _response(0)

    def test_trailing_garbage_reads_as_empty(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        key = "cd" + "0" * 62
        store.put(key, _response(1))
        seg = store._segment_path("responses-", "cd")
        seg.write_bytes(seg.read_bytes() + b"\x00garbage")
        assert store.get(key) is None  # total-size check rejects the file

    def test_entry_span_past_eof_reads_as_empty(self, tmp_path):
        """A forged index pointing past the body must not crash the mmap
        reader."""
        store = DiskResponseStore(tmp_path)
        seg = store._segment_path("responses-", "ee")
        seg.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": store.version, "key": "ee"}
        data = bytearray(encode_segment(payload, {"ee" + "0" * 62: {"x": 1}}))
        seg.write_bytes(bytes(data[:-4]) + b"\xff\xff\xff\x7f")
        assert store.get("ee" + "0" * 62) is None


class TestConcurrentWriters:
    def test_parallel_puts_lose_nothing(self, tmp_path):
        """Writers racing on the same and different shards: every entry
        survives, every segment stays readable."""
        store = DiskResponseStore(tmp_path)
        n_threads, per_thread = 8, 24
        barrier = threading.Barrier(n_threads)
        errors: list[BaseException] = []

        def writer(t: int) -> None:
            try:
                barrier.wait()
                for i in range(per_thread):
                    # Even i: all threads share shard "aa" (merge races);
                    # odd i: per-thread shard (replace races).
                    prefix = "aa" if i % 2 == 0 else f"{t:02x}"
                    key = f"{prefix}{t:02x}{i:02x}{'0' * 58}"
                    store.put(key, _response(t * 1000 + i))
                    assert store.get(key) == _response(t * 1000 + i)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        live = {k for k, _ in store.iter_entries()}
        assert len(live) == n_threads * per_thread
        assert len(store) == n_threads * per_thread

    def test_deferred_writers_flush_cleanly(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        errors: list[BaseException] = []

        def writer(t: int) -> None:
            try:
                with store.deferred():
                    for i in range(16):
                        key = f"bb{t:02x}{i:02x}{'0' * 58}"
                        store.put(key, _response(t * 100 + i))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert len(store) == 4 * 16


class TestConcurrentReaderCorruption:
    """Truncated/forged segments installed *while readers probe them*.

    Corruption always arrives the way real writers produce it — a whole
    new file via ``os.replace`` (new inode) — never in-place truncation,
    which could SIGBUS a reader holding the old mmap. Under that
    discipline a concurrent reader must see each key as either its entry
    or a miss; never an exception, never garbage.
    """

    def _install(self, seg, data: bytes) -> None:
        # ".install" dodges both the segment suffix scan and the
        # "*.tmp.*" sweep glob, so no store helper touches it mid-test.
        staging = seg.with_name(seg.name + ".install")
        staging.write_bytes(data)
        os.replace(staging, seg)

    def test_probing_readers_never_raise(self, tmp_path):
        from repro.util.faults import _forge_index

        store = DiskResponseStore(tmp_path / "cache")
        keys = [f"{i:02x}" + "0" * 62 for i in range(4)]
        for i, key in enumerate(keys):
            store.put(key, _response(i))
        seg = store._segment_path("responses-", keys[0][:2])
        healthy = seg.read_bytes()

        stop = threading.Event()
        errors: list[BaseException] = []

        def prober() -> None:
            probe = DiskResponseStore(tmp_path / "cache")
            expected = {
                key: _response(i) for i, key in enumerate(keys)
            }
            try:
                while not stop.is_set():
                    for key in keys:
                        got = probe.get(key)
                        assert got is None or got == expected[key]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=prober) for _ in range(4)]
        for th in threads:
            th.start()
        try:
            # Sweep truncation boundaries, then a forged index span, then
            # restore — all under live readers.
            for cut in range(0, len(healthy), 7):
                self._install(seg, healthy[:cut])
            self._install(seg, _forge_index(healthy))
            self._install(seg, healthy)
        finally:
            stop.set()
            for th in threads:
                th.join()
        assert not errors
        assert DiskResponseStore(tmp_path / "cache").get(keys[0]) == _response(0)

    def test_forged_segment_is_per_entry_miss_only(self, tmp_path):
        from repro.util.faults import _forge_index

        store = DiskResponseStore(tmp_path / "cache")
        key = "ab" + "0" * 62
        store.put(key, _response(1))
        seg = store._segment_path("responses-", key[:2])
        self._install(seg, _forge_index(seg.read_bytes()))
        fresh = DiskResponseStore(tmp_path / "cache")
        assert fresh.get(key) is None  # miss, not an exception
        # The next put repairs the segment wholesale.
        fresh.put(key, _response(2))
        assert DiskResponseStore(tmp_path / "cache").get(key) == _response(2)


class TestDeferredExceptionSafety:
    """The deterministic exception contract of ``ArtifactStore.deferred()``:
    clean outermost exit flushes; exceptional exit (any BaseException,
    KeyboardInterrupt included) discards the pending buffer — except
    batches already spilled to disk by the flush interval, which stay."""

    def test_clean_exit_flushes(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        with store.deferred():
            store.put("aa" + "0" * 62, _response(0))
            assert not store._segment_path("responses-", "aa").exists()
        assert store._segment_path("responses-", "aa").exists()
        assert store.get("aa" + "0" * 62) == _response(0)

    @pytest.mark.parametrize("exc_type", [RuntimeError, KeyboardInterrupt])
    def test_exceptional_exit_discards_pending(self, tmp_path, exc_type):
        store = DiskResponseStore(tmp_path)
        key = "aa" + "0" * 62
        with pytest.raises(exc_type):
            with store.deferred():
                store.put(key, _response(0))
                raise exc_type("abort mid-sweep")
        # Nothing flushed while unwinding, and nothing left buffered: the
        # entry is simply gone (a cache miss, recomputed next run).
        assert not store._pending
        assert store._pending_entries == 0
        assert store.get(key) is None
        assert not store._segment_path("responses-", "aa").exists()
        # The store stays fully usable afterwards.
        store.put(key, _response(1))
        assert store.get(key) == _response(1)

    def test_interval_spilled_batches_survive_abort(self, tmp_path):
        """An aborted sweep loses at most one flush interval of warmth."""
        store = DiskResponseStore(tmp_path)
        interval = store.DEFERRED_FLUSH_ENTRIES
        with pytest.raises(KeyboardInterrupt):
            with store.deferred():
                for i in range(interval + 5):
                    store.put(f"aa{i:062x}", _response(i))
                raise KeyboardInterrupt
        # The first `interval` puts spilled to disk mid-block and persist;
        # only the unflushed tail is discarded.
        assert len(store) == interval
        assert store.get(f"aa{0:062x}") == _response(0)
        assert store.get(f"aa{interval:062x}") is None

    def test_exception_caught_inside_outer_block_keeps_buffer(self, tmp_path):
        """Discard is an *unwinding* decision: a nested block's exception
        handled inside the outer block must not drop the outer batch."""
        store = DiskResponseStore(tmp_path)
        outer_key = "aa" + "0" * 62
        inner_key = "bb" + "0" * 62
        with store.deferred():
            store.put(outer_key, _response(0))
            with pytest.raises(RuntimeError):
                with store.deferred():
                    store.put(inner_key, _response(1))
                    raise RuntimeError("inner failure, handled by caller")
            # Inner exceptional exit at depth > 0 defers to the outer block.
            assert store.get(outer_key) == _response(0)
        assert store.get(outer_key) == _response(0)
        assert store.get(inner_key) == _response(1)

    def test_nested_clean_exits_flush_once_at_outermost(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        key = "cc" + "0" * 62
        with store.deferred():
            with store.deferred():
                store.put(key, _response(2))
            assert not store._segment_path("responses-", "cc").exists()
        assert store.get(key) == _response(2)


class TestLifecycleSweeps:
    def test_stale_tmp_files_swept_on_init_and_evict(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        store.put("ab" + "0" * 62, _response(0))
        dead = tmp_path / "responses-ab.bin.tmp.999999999.123"
        dead.write_bytes(b"orphan")
        # Re-opening the directory sweeps droppings from dead writers.
        DiskResponseStore(tmp_path)
        assert not dead.exists()
        dead.write_bytes(b"orphan")
        store.evict()
        assert not dead.exists()

    def test_live_tmp_files_kept_and_counted(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        mine = tmp_path / f"responses-ab.bin.tmp.{os.getpid()}.7"
        mine.write_bytes(b"x" * 128)
        DiskResponseStore(tmp_path)  # init sweep must spare a live writer
        assert mine.exists()
        assert store.size_bytes() >= 128  # tmp bytes count against the bound

    def test_version_skewed_segments_gced_on_evict(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        store.put("ab" + "0" * 62, _response(0))
        skewed = store._segment_path("responses-", "zz")
        skewed.write_bytes(
            encode_segment({"version": "paleolithic", "key": "zz"}, {})
        )
        assert store.stale_segment_count() == 1
        assert store.manifest().stale_segments == 1
        store.evict()
        assert not skewed.exists()
        assert store.stale_segment_count() == 0
        assert store.get("ab" + "0" * 62) == _response(0)  # live data spared


class TestSizeEnvParsers:
    """One contract, three parsers: the response cache, the profile store,
    and the artifact cache must agree on how byte bounds parse."""

    CASES = [
        ("repro.eval.engine", "default_cache_max_bytes",
         "REPRO_CACHE_MAX_BYTES"),
        ("repro.gpusim.store", "default_profile_cache_max_bytes",
         "REPRO_PROFILE_CACHE_MAX_BYTES"),
        ("repro.store.text", "default_artifact_cache_max_bytes",
         "REPRO_ARTIFACT_CACHE_MAX_BYTES"),
    ]

    @pytest.fixture(params=CASES, ids=[c[2] for c in CASES])
    def parser(self, request, monkeypatch):
        import importlib

        module, fn, env = request.param
        return getattr(importlib.import_module(module), fn), env, monkeypatch

    def test_valid_integer(self, parser):
        fn, env, monkeypatch = parser
        monkeypatch.setenv(env, "123456")
        assert fn() == 123456

    def test_unset_and_blank_mean_unbounded(self, parser):
        fn, env, monkeypatch = parser
        monkeypatch.delenv(env, raising=False)
        assert fn() is None
        monkeypatch.setenv(env, "   ")
        assert fn() is None

    def test_zero_means_zero(self, parser):
        fn, env, monkeypatch = parser
        monkeypatch.setenv(env, "0")
        assert fn() == 0

    @pytest.mark.parametrize("raw", ["junk", "1.5e9", "10MB", "-1"])
    def test_junk_warns_and_falls_back(self, parser, raw):
        fn, env, monkeypatch = parser
        monkeypatch.setenv(env, raw)
        with pytest.warns(RuntimeWarning, match=env):
            assert fn() is None

    def test_parse_max_bytes_names_its_source(self):
        with pytest.warns(RuntimeWarning, match="SOME_ENV"):
            assert parse_max_bytes("nope", source="SOME_ENV") is None


#: Small but two-axis grid: enough to exercise both RQs' cache traffic.
_MODELS = ("o3-mini-high",)
_GPUS = ("V100",)
_LIMIT = 6


class TestDigestInvariance:
    def _run(self, engine) -> tuple[str, object]:
        models = [get_model(n) for n in _MODELS]
        gpus = [get_gpu(n) for n in _GPUS]
        result = run_matrix(
            models, gpus, rqs=("rq2",), limit=_LIMIT, engine=engine
        )
        return result.digest(), result

    def test_off_cold_warm_and_legacy_all_identical(self, tmp_path, dataset):
        off_digest, off = self._run(EvalEngine())

        store = DiskResponseStore(tmp_path / "binary")
        cold_digest, _ = self._run(EvalEngine(jobs=2, store=store))
        warm_engine = EvalEngine(jobs=2, store=DiskResponseStore(tmp_path / "binary"))
        warm_digest, warm = self._run(warm_engine)
        assert cold_digest == off_digest
        assert warm_digest == off_digest
        assert warm.render() == off.render()
        assert warm_engine.stats.completions == 0

        # Rebuild the same cache as a PR-5-era per-entry-JSON directory:
        # the binary-native engine must replay it hit-for-hit.
        legacy_root = tmp_path / "legacy"
        for key, blob in store.iter_entries():
            path = legacy_root / key[:2] / f"{key}.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(blob)
        legacy_engine = EvalEngine(
            jobs=2, store=DiskResponseStore(legacy_root)
        )
        legacy_digest, _ = self._run(legacy_engine)
        assert legacy_digest == off_digest
        assert legacy_engine.stats.completions == 0

    def test_legacy_blobs_round_trip_byte_exactly(self, tmp_path):
        """The glue the legacy replay relies on: a canonical blob decoded
        and re-encoded through CachedResponse is the identical bytes."""
        store = DiskResponseStore(tmp_path)
        key = "ab" + "0" * 62
        store.put(key, _response(3))
        blob = store.get_blob(key)
        rebuilt = json.dumps(
            CachedResponse.from_dict(json.loads(blob)).to_dict(),
            sort_keys=True,
        ).encode("utf-8")
        assert rebuilt == blob
