"""Emulator handlers for the question-decomposition protocol.

Models the behavioural hypotheses behind the paper's future-work direction:
focused sub-tasks keep a model's attention on one thing at a time, so

* spec extraction (step 1) is near-trivial — errors are rare decimal slips;
* work estimation (step 2) derails less often than the holistic zero-shot
  read (the kernel is the *only* thing in the prompt), but its quality is
  still bounded by the model's code-reading ability (``analysis_depth``);
* the final verdict (step 3) is RQ1-grade arithmetic over an explicit rule,
  which every model in Table 1 already does at 90-100%.

None of this changes the calibrated RQ1-RQ3 behaviour; it only adds the new
prompt shapes.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.llm.config import ModelConfig
from repro.types import Boundedness, Language
from repro.util.hashing import stable_hash_hex
from repro.util.rng import RngStream

STEP1_MARKER = "Report the hardware limits"
STEP2_MARKER = "Estimate the per-thread work"
STEP3_MARKER = "Apply the roofline verdict"

_SPECS_RE = re.compile(
    r"peak single-precision performance of\s+([\d.]+)\s*GFLOP/s.*?"
    r"peak double-precision performance of\s+([\d.]+)\s*GFLOP/s.*?"
    r"peak integer performance of\s+([\d.]+)\s*GINTOP/s.*?"
    r"max bandwidth of\s+([\d.]+)\s*GB/s",
    re.DOTALL,
)
_KERNEL_RE = re.compile(r"the (CUDA|OMP) kernel called ([A-Za-z_][A-Za-z_0-9]*)")
_ARGV_RE = re.compile(r"launched as:\s*(.+?)\.\s*$", re.MULTILINE)
_SOURCE_RE = re.compile(
    r"Below is the source code of the (?:CUDA|OMP) program:\s*\n"
)
_STEP3_WORK_RE = re.compile(
    r"([\d.eE+-]+) single-precision FLOPs, ([\d.eE+-]+) double-precision "
    r"FLOPs, and ([\d.eE+-]+) integer operations while moving "
    r"([\d.eE+-]+) bytes",
)
_STEP3_PEAKS_RE = re.compile(
    r"([\d.eE+-]+) GFLOP/s single-precision, ([\d.eE+-]+) GFLOP/s "
    r"double-precision, ([\d.eE+-]+) GINTOP/s integer, with "
    r"([\d.eE+-]+) GB/s",
)


def handles(prompt: str) -> bool:
    return any(m in prompt for m in (STEP1_MARKER, STEP2_MARKER, STEP3_MARKER))


def answer(prompt: str, config: ModelConfig) -> str:
    """Dispatch a decomposition sub-prompt to its handler."""
    if STEP1_MARKER in prompt:
        return _answer_step1(prompt, config)
    if STEP2_MARKER in prompt:
        return _answer_step2(prompt, config)
    if STEP3_MARKER in prompt:
        return _answer_step3(prompt, config)
    raise ValueError("not a decomposition prompt")


# -- step 1: spec extraction ---------------------------------------------------

def _answer_step1(prompt: str, config: ModelConfig) -> str:
    m = _SPECS_RE.search(prompt)
    if m is None:
        return "SP=0 DP=0 INT=0 BW=0"
    values = [float(g) for g in m.groups()]
    rng = RngStream("llm", config.name, "extract", stable_hash_hex(prompt))
    if not config.reasoning:
        # Rare decimal slip: one value off by a factor of ten.
        slip_p = min(0.06, config.base_fail * 0.05)
        for i in range(4):
            if rng.child(i).bernoulli(slip_p):
                values[i] *= 10.0 if rng.child(i, "dir").bernoulli(0.5) else 0.1
    return (
        f"SP={values[0]:.4g} DP={values[1]:.4g} "
        f"INT={values[2]:.4g} BW={values[3]:.4g}"
    )


# -- step 2: per-thread work estimation ---------------------------------------

def _answer_step2(prompt: str, config: ModelConfig) -> str:
    from repro.analysis import analyze_kernel, find_kernel
    from repro.llm.promptio import estimate_prompt_tokens

    km = _KERNEL_RE.search(prompt)
    sm = _SOURCE_RE.search(prompt)
    am = _ARGV_RE.search(prompt)
    if km is None or sm is None:
        return "SP_OPS=1 DP_OPS=0 INT_OPS=1 BYTES=8"
    language = Language.CUDA if km.group(1) == "CUDA" else Language.OMP
    kernel_name = km.group(2)
    source = prompt[sm.end():]
    argv = am.group(1).strip() if am else ""
    argv_values: dict[str, int] = {}
    toks = argv.split()
    for t, v in zip(toks, toks[1:]):
        if t.startswith("--") and v.lstrip("-").isdigit():
            argv_values[t[2:]] = int(v)

    code_rng = RngStream(
        "llm", config.name, "decompose-estimate",
        stable_hash_hex(source, kernel_name),
    )
    tokens = estimate_prompt_tokens(prompt)
    # Focused sub-task: the derail probability is a fraction of the
    # holistic zero-shot read's.
    p_derail = min(0.95, 0.6 * config.fail_probability(tokens))
    derailed = code_rng.child("attention").uniform() < p_derail

    # Crude skim estimates: counts keyed on surface features only. These are
    # what a model produces when it cannot genuinely trace the code.
    math_fns = len(re.findall(r"\b(?:sqrtf?|expf?|logf?|sinf?|cosf?|tanhf?)\s*\(", source))
    loops = source.count("for (")
    arrays = len(set(re.findall(r"([A-Za-z_][A-Za-z_0-9]*)\s*\[", source)))
    u = code_rng.child("crude")
    crude = {
        "sp": max(1.0, (2.0 + 4.0 * math_fns) * (4.0 ** min(loops, 3)) * u.uniform(0.2, 5.0)),
        "dp": max(0.0, (1.0 if "double" in source else 0.0) * (2.0 + 2.0 * math_fns) * u.uniform(0.3, 3.0)),
        "int": max(1.0, (3.0 + loops * 4.0) * u.uniform(0.3, 3.0)),
        "bytes": max(4.0, 4.0 * arrays * u.uniform(0.5, 4.0)),
    }

    deep = None
    if not derailed:
        try:
            kernel = find_kernel(source, kernel_name, language)
            est = analyze_kernel(kernel, param_values=argv_values, branch_taken=0.5)
            deep = {
                "sp": est.ops_sp,
                "dp": est.ops_dp,
                "int": est.ops_int,
                "bytes": est.bytes_per_thread,
            }
            guess = est.guess_fraction
        except Exception:
            deep = None

    if deep is None:
        vals = crude
    else:
        # Decomposition forces the sub-task, but cannot conjure reading
        # ability: the reported numbers interpolate (log-space) between the
        # genuine trace and the crude skim by the model's analysis depth,
        # then carry focused-read noise (half the holistic sigma).
        depth = config.analysis_depth
        sigma = config.deep_noise * 0.5 * (1.0 + guess * 0.5)
        noise = code_rng.child("noise")
        vals = {}
        for key in ("sp", "dp", "int", "bytes"):
            d, c = deep[key], crude[key]
            if d <= 0.0 and c <= 0.0:
                vals[key] = 0.0
                continue
            d = max(d, 1e-3)
            c = max(c, 1e-3)
            blended = math.exp(depth * math.log(d) + (1.0 - depth) * math.log(c))
            vals[key] = blended * math.exp(noise.child(key).normal(0.0, sigma) * 0.69)
        if deep["dp"] <= 0.0 and crude["dp"] <= 0.0:
            vals["dp"] = 0.0

    return (
        f"SP_OPS={vals['sp']:.4g} DP_OPS={vals['dp']:.4g} "
        f"INT_OPS={vals['int']:.4g} BYTES={max(0.5, vals['bytes']):.4g}"
    )


# -- step 3: the verdict --------------------------------------------------------

def _answer_step3(prompt: str, config: ModelConfig) -> str:
    wm = _STEP3_WORK_RE.search(prompt)
    pm = _STEP3_PEAKS_RE.search(prompt)
    if wm is None or pm is None:
        return "Bandwidth"
    sp_ops, dp_ops, int_ops, byts = (float(g) for g in wm.groups())
    sp_peak, dp_peak, int_peak, bw = (float(g) for g in pm.groups())
    if byts <= 0 or bw <= 0:
        return "Bandwidth"
    compute_bound = any(
        peak > 0 and ops / byts >= peak / bw
        for ops, peak in ((sp_ops, sp_peak), (dp_ops, dp_peak), (int_ops, int_peak))
    )
    verdict = Boundedness.COMPUTE if compute_bound else Boundedness.BANDWIDTH
    # The explicit rule in the prompt scaffolds the arithmetic like CoT.
    rng = RngStream("llm", config.name, "verdict", stable_hash_hex(prompt))
    if rng.bernoulli(config.arithmetic_slip_cot):
        verdict = verdict.other
    return verdict.word
