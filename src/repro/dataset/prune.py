"""Token-count pruning (paper §2.2).

*"To homogenize queried source codes and drop long inputs, we set a cutoff
of 8e3 tokens"* — programs whose concatenated source exceeds the cutoff are
dropped before balancing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.records import Sample

#: The paper's cutoff.
TOKEN_CUTOFF = 8000


@dataclass(frozen=True)
class PruneReport:
    """Before/after counts of the pruning step."""

    cutoff: int
    total_before: int
    total_after: int
    cuda_before: int
    cuda_after: int
    omp_before: int
    omp_after: int

    @property
    def kept_fraction(self) -> float:
        return self.total_after / self.total_before if self.total_before else 0.0


def prune_by_tokens(
    samples: list[Sample], cutoff: int = TOKEN_CUTOFF
) -> tuple[list[Sample], PruneReport]:
    """Drop samples whose source exceeds ``cutoff`` tokens."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    kept = [s for s in samples if s.token_count <= cutoff]
    from repro.types import Language

    def count(pop: list[Sample], lang: Language) -> int:
        return sum(1 for s in pop if s.language is lang)

    report = PruneReport(
        cutoff=cutoff,
        total_before=len(samples),
        total_after=len(kept),
        cuda_before=count(samples, Language.CUDA),
        cuda_after=count(kept, Language.CUDA),
        omp_before=count(samples, Language.OMP),
        omp_after=count(kept, Language.OMP),
    )
    return kept, report
