"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables/figures and prints a
paper-vs-measured comparison. The heavyweight artefacts (dataset, prompts)
are session-scoped so individual benches time only their own experiment.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def dataset():
    from repro.dataset import paper_dataset

    return paper_dataset()


@pytest.fixture(scope="session")
def balanced(dataset):
    return list(dataset.balanced)
