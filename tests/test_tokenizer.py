"""Tests for the BPE tokenizer."""

import pytest

from repro.tokenizer import BpeTokenizer, pretokenize
from repro.tokenizer.bpe import _word_to_symbols


class TestPretokenize:
    def test_identifiers_with_leading_space(self):
        assert pretokenize("int foo") == ["int", " foo"]

    def test_numbers_split(self):
        assert "1024" in pretokenize("x = 1024;")

    def test_punctuation_runs(self):
        toks = pretokenize("a += b;")
        assert "+=" in toks

    def test_roundtrip_concatenation(self):
        text = "for (int i = 0; i < n; i++) { x[i] = 0.5f * y[i]; }\n"
        assert "".join(pretokenize(text)) == text


class TestTraining:
    def test_learns_frequent_pairs(self):
        tok = BpeTokenizer.train(["the the the the the"], num_merges=10)
        assert len(tok.merges) > 0
        # "the" should become few tokens
        assert len(tok.tokenize("the")) <= 2

    def test_zero_merges(self):
        tok = BpeTokenizer.train(["abc"], num_merges=0)
        assert tok.merges == []
        assert tok.tokenize("abc") == ["a", "b", "c"]

    def test_negative_merges_rejected(self):
        with pytest.raises(ValueError):
            BpeTokenizer.train(["x"], num_merges=-1)

    def test_min_pair_count_stops_training(self):
        tok = BpeTokenizer.train(["abcdef"], num_merges=100, min_pair_count=2)
        assert tok.merges == []  # every pair unique

    def test_deterministic(self):
        corpus = ["float x = a[i] * b[i];"] * 3
        t1 = BpeTokenizer.train(corpus, num_merges=20)
        t2 = BpeTokenizer.train(corpus, num_merges=20)
        assert t1.merges == t2.merges


class TestEncoding:
    @pytest.fixture(scope="class")
    def tok(self):
        corpus = [
            "for (int i = 0; i < n; i++) { out[i] = alpha * x[i] + y[i]; }",
            "float alpha = 2.0f; const float *x; float *y;",
        ] * 4
        return BpeTokenizer.train(corpus, num_merges=60)

    def test_encode_decode_roundtrip(self, tok):
        text = "float alpha = 2.0f;"
        assert tok.decode(tok.encode(text)) == text

    def test_roundtrip_unseen_text(self, tok):
        text = "__global__ void k(double *zz) { zz[0] = 1.0; }"
        assert tok.decode(tok.encode(text)) == text

    def test_count_matches_encode(self, tok):
        text = "for (int i = 0; i < n; i++) y[i] = x[i];"
        assert tok.count_tokens(text) == len(tok.encode(text))

    def test_compression(self, tok):
        text = "for (int i = 0; i < n; i++) { out[i] = alpha * x[i] + y[i]; }"
        assert tok.count_tokens(text) < len(text)

    def test_empty_text(self, tok):
        assert tok.encode("") == []
        assert tok.count_tokens("") == 0

    def test_decode_unknown_id_raises(self, tok):
        with pytest.raises(ValueError):
            tok.decode([10**9])

    def test_vocab_size_grows_with_merges(self):
        small = BpeTokenizer.train(["aaaa bbbb aaaa bbbb"], num_merges=2)
        assert small.vocab_size == 256 + len(small.merges)


class TestPersistence:
    def test_json_roundtrip(self):
        tok = BpeTokenizer.train(["hello world hello world"], num_merges=10)
        restored = BpeTokenizer.from_json(tok.to_json())
        text = "hello world"
        assert restored.encode(text) == tok.encode(text)


class TestCorpusTokenizer:
    def test_corpus_tokenizer_properties(self, tokenizer):
        assert tokenizer.vocab_size > 500
        sample = "__global__ void saxpy_kernel(const float *x, float *y, float a, int n)"
        count = tokenizer.count_tokens(sample)
        # code-like compression: between 2 and 5 chars/token
        assert len(sample) / 5 < count < len(sample) / 2

    def test_cached_singleton(self, tokenizer):
        from repro.tokenizer import corpus_tokenizer

        assert corpus_tokenizer() is tokenizer
