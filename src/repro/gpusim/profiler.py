"""The kernel profiler: walks kernel IR and produces dynamic counters.

This is the simulator's stand-in for running ``ncu``/``nvprof`` on real
hardware (paper §2.1): it executes the IR *symbolically* — multiplying
per-statement costs by thread counts, loop trip counts, and branch taken
fractions — and passes every global-memory access site through the
coalescing/cache model of :mod:`repro.gpusim.memory`.

Counts depend on runtime facts (argv-derived sizes, taken fractions, cache
footprints) that are invisible to a static reading of the source, which is
exactly the gap the paper's LLMs have to bridge.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping

from repro.gpusim.counters import ProfileCounters
from repro.gpusim.device import DeviceModel, default_device
from repro.gpusim.memory import (
    AccessSite,
    aggregate_traffic,
    batch_site_traffic,
    coalescing_quality,
)
from repro.gpusim.timing import TimingBreakdown, estimate_time
from repro.kernels.ir import (
    AffineIndex,
    Assign,
    AtomicAdd,
    BinOp,
    BinOpKind,
    Call,
    CallFn,
    Cast,
    Comment,
    Const,
    DType,
    DynamicIndex,
    Expr,
    For,
    If,
    Index,
    Kernel,
    Let,
    Load,
    Scope,
    Select,
    Stmt,
    Store,
    SyncThreads,
    Var,
    eval_scalar,
)
from repro.kernels.launch import CommandLine, KernelInstance
from repro.kernels.program import ProgramSpec
from repro.types import OpClass

# ---------------------------------------------------------------------------
# Operation cost tables (ops per executed instruction)
# ---------------------------------------------------------------------------

_FLOP_BINOP = {
    BinOpKind.ADD: 1.0,
    BinOpKind.SUB: 1.0,
    BinOpKind.MUL: 1.0,
    BinOpKind.DIV: 4.0,
    BinOpKind.MIN: 1.0,
    BinOpKind.MAX: 1.0,
    BinOpKind.LT: 1.0,
    BinOpKind.GT: 1.0,
    BinOpKind.LE: 1.0,
    BinOpKind.GE: 1.0,
    BinOpKind.EQ: 1.0,
}

_INT_BINOP = {
    BinOpKind.ADD: 1.0,
    BinOpKind.SUB: 1.0,
    BinOpKind.MUL: 1.0,
    BinOpKind.DIV: 4.0,
    BinOpKind.MOD: 4.0,
    BinOpKind.MIN: 1.0,
    BinOpKind.MAX: 1.0,
    BinOpKind.AND: 1.0,
    BinOpKind.OR: 1.0,
    BinOpKind.XOR: 1.0,
    BinOpKind.SHL: 1.0,
    BinOpKind.SHR: 1.0,
    BinOpKind.LT: 1.0,
    BinOpKind.GT: 1.0,
    BinOpKind.LE: 1.0,
    BinOpKind.GE: 1.0,
    BinOpKind.EQ: 1.0,
    BinOpKind.LAND: 1.0,
    BinOpKind.LOR: 1.0,
}

#: FLOP-equivalent cost of math intrinsics, and their SFU issue weight.
_CALL_COST: dict[CallFn, tuple[float, float]] = {
    CallFn.SQRT: (4.0, 1.0),
    CallFn.RSQRT: (4.0, 1.0),
    CallFn.EXP: (8.0, 1.0),
    CallFn.LOG: (8.0, 1.0),
    CallFn.SIN: (8.0, 1.0),
    CallFn.COS: (8.0, 1.0),
    CallFn.TANH: (12.0, 2.0),
    CallFn.POW: (16.0, 2.0),
    CallFn.FABS: (1.0, 0.0),
    CallFn.FMA: (2.0, 0.0),
    CallFn.ERF: (16.0, 2.0),
    CallFn.FLOOR: (1.0, 0.0),
}


def _op_class(dtype: DType) -> OpClass:
    if dtype is DType.F32:
        return OpClass.SP
    if dtype is DType.F64:
        return OpClass.DP
    return OpClass.INT


@dataclass
class _Accumulator:
    ops: dict[OpClass, float] = field(
        default_factory=lambda: {OpClass.SP: 0.0, OpClass.DP: 0.0, OpClass.INT: 0.0}
    )
    sfu_ops: float = 0.0
    sites: list[AccessSite] = field(default_factory=list)

    def add_ops(self, op_class: OpClass, count: float) -> None:
        self.ops[op_class] += count


class _Walker:
    """Symbolic executor for one kernel invocation.

    Entirely device-independent: ops, SFU issue weights, trip counts, and
    access-site geometry depend only on the kernel IR and the launch-time
    bindings. The device enters in phase 2 (:func:`finalize_profile`).
    """

    def __init__(
        self,
        kernel: Kernel,
        bindings: Mapping[str, int],
        launched_threads: int,
        block_x: int = 256,
        block_y: int = 1,
    ) -> None:
        self.kernel = kernel
        self.bindings = dict(bindings)
        self.acc = _Accumulator()
        # Extents of the implicit parallel dimensions (global and block-local).
        nx = eval_scalar(kernel.work_items, bindings)
        self.sym_extents: dict[str, int] = {"gx": nx, "lx": block_x, "ly": block_y}
        self.active = nx
        if kernel.work_items_y is not None:
            ny = eval_scalar(kernel.work_items_y, bindings)
            self.sym_extents["gy"] = ny
            self.active = nx * ny
        self.active = min(self.active, launched_threads)
        self._array_elems = {
            a.name: eval_scalar(a.size, bindings) for a in kernel.arrays
        }
        self._array_scope = {a.name: a.scope for a in kernel.arrays}

    # -- entry point --------------------------------------------------------
    def run(self) -> _Accumulator:
        # Bounds-guard compare executed by every launched thread.
        self.acc.add_ops(OpClass.INT, float(self.active))
        self._walk(self.kernel.body, float(self.active))
        return self.acc

    # -- statements ----------------------------------------------------------
    def _walk(self, body: tuple[Stmt, ...], execs: float) -> None:
        for stmt in body:
            if isinstance(stmt, Comment):
                continue
            if isinstance(stmt, (Let, Assign)):
                self._expr_cost(stmt.expr, execs)
            elif isinstance(stmt, Store):
                self._expr_cost(stmt.expr, execs)
                self._access(stmt.array, stmt.index, stmt.dtype, execs, write=True)
            elif isinstance(stmt, AtomicAdd):
                self._expr_cost(stmt.expr, execs)
                self._access(
                    stmt.array, stmt.index, stmt.dtype, execs, write=True, atomic=True
                )
            elif isinstance(stmt, If):
                self._expr_cost(stmt.cond, execs)
                if stmt.then:
                    self._walk(stmt.then, execs * stmt.taken_fraction)
                if stmt.els:
                    self._walk(stmt.els, execs * (1.0 - stmt.taken_fraction))
            elif isinstance(stmt, For):
                trips = self._trip_count(stmt)
                # Loop bookkeeping: increment + compare per iteration.
                self.acc.add_ops(OpClass.INT, 2.0 * trips * execs)
                self.sym_extents[stmt.var] = trips
                self._walk(stmt.body, execs * trips)
                del self.sym_extents[stmt.var]
            elif isinstance(stmt, SyncThreads):
                continue
            else:  # pragma: no cover - exhaustiveness guard
                raise TypeError(f"profiler cannot walk statement {stmt!r}")

    def _trip_count(self, loop: For) -> int:
        extent = eval_scalar(loop.extent, self.bindings)
        span = extent - loop.start
        if span <= 0:
            return 0
        step = abs(loop.step)
        return (span + step - 1) // step

    # -- expressions ---------------------------------------------------------
    def _expr_cost(self, expr: Expr, execs: float) -> None:
        if isinstance(expr, (Const, Var)):
            return
        if isinstance(expr, Load):
            self._access(expr.array, expr.index, expr.dtype, execs, write=False)
            return
        if isinstance(expr, BinOp):
            self._expr_cost(expr.lhs, execs)
            self._expr_cost(expr.rhs, execs)
            if expr.dtype.is_float:
                cost = _FLOP_BINOP.get(expr.op)
                if cost is None:
                    raise ValueError(f"float binop {expr.op} has no cost")
                self.acc.add_ops(_op_class(expr.dtype), cost * execs)
            else:
                cost = _INT_BINOP.get(expr.op)
                if cost is None:
                    raise ValueError(f"int binop {expr.op} has no cost")
                self.acc.add_ops(OpClass.INT, cost * execs)
            return
        if isinstance(expr, Call):
            for a in expr.args:
                self._expr_cost(a, execs)
            flop_cost, sfu_weight = _CALL_COST[expr.fn]
            self.acc.add_ops(_op_class(expr.dtype), flop_cost * execs)
            if expr.dtype.is_float:
                self.acc.sfu_ops += sfu_weight * execs
            return
        if isinstance(expr, Cast):
            self._expr_cost(expr.expr, execs)
            self.acc.add_ops(_op_class(expr.dtype), 1.0 * execs)
            return
        if isinstance(expr, Select):
            self._expr_cost(expr.cond, execs)
            self._expr_cost(expr.if_true, execs)
            self._expr_cost(expr.if_false, execs)
            self.acc.add_ops(_op_class(expr.dtype), 1.0 * execs)
            return
        raise TypeError(f"profiler cannot cost expression {expr!r}")

    # -- memory accesses -----------------------------------------------------
    def _access(
        self,
        array: str,
        index: Index,
        dtype: DType,
        execs: float,
        *,
        write: bool,
        atomic: bool = False,
    ) -> None:
        # Address arithmetic is integer work regardless of scope.
        if isinstance(index, AffineIndex):
            addr_ops = max(1.0, 2.0 * len(index.terms)) if index.terms else 0.0
        else:
            self._expr_cost(index.expr, execs)
            addr_ops = 2.0
        self.acc.add_ops(OpClass.INT, addr_ops * execs)

        scope = self._array_scope.get(array)
        if scope is None:
            raise KeyError(f"kernel {self.kernel.name}: access to undeclared array {array!r}")
        if scope is Scope.SHARED:
            return  # on-chip: no DRAM traffic

        elems = self._array_elems[array]
        if isinstance(index, DynamicIndex):
            footprint = min(elems, eval_scalar(index.range_hint, self.bindings))
            site = AccessSite(
                array=array,
                elem_size=dtype.size,
                is_write=write,
                executions=execs,
                gx_stride=1,
                footprint_elems=float(footprint),
                pattern=index.pattern,
                is_atomic=atomic,
            )
        else:
            combined: dict[str, int] = {}
            for sym, coeff in index.terms:
                combined[sym] = combined.get(sym, 0) + eval_scalar(coeff, self.bindings)
            # Adjacent threads of a warp differ by 1 in both gx and lx, so
            # the inter-thread stride is the sum of those coefficients.
            gx_stride = combined.get("gx", 0) + combined.get("lx", 0)
            prod = 1.0
            span = 1.0
            for sym, coeff in combined.items():
                extent = self.sym_extents.get(sym, 1)
                prod *= max(1, extent)
                span += abs(coeff) * max(0, extent - 1)
            footprint = min(float(elems), prod, span)
            site = AccessSite(
                array=array,
                elem_size=dtype.size,
                is_write=write,
                executions=execs,
                gx_stride=gx_stride,
                footprint_elems=footprint,
                pattern="affine",
                is_atomic=atomic,
            )
        self.acc.sites.append(site)


# ---------------------------------------------------------------------------
# Public API — phase 1 (device-independent symbolic trace)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SymbolicTrace:
    """Phase 1 of a profile: the device-independent result of the IR walk.

    Everything here depends only on (kernel IR, launch geometry, argv
    bindings) — op counts by class, SFU issue weight, and the merged
    global-memory access sites. One trace finalizes against any number of
    devices (:func:`finalize_profile`), so a 6-GPU matrix sweep walks each
    kernel once instead of six times; it also serialises to JSON bit-exactly
    for the persistent profile store (:mod:`repro.gpusim.store`).

    ``sites`` are already :func:`~repro.gpusim.memory.merge_sites`-merged
    (merging is device-independent and idempotent), in first-seen walker
    order, so phase 2 aggregates them in the same float-addition order as
    the seed single-pass profiler.
    """

    kernel_name: str
    sp_ops: float
    dp_ops: float
    int_ops: float
    sfu_ops: float
    sites: tuple[AccessSite, ...]

    def ops(self) -> dict[OpClass, float]:
        """Op counts keyed by class, in the accumulator's SP/DP/INT order."""
        return {
            OpClass.SP: self.sp_ops,
            OpClass.DP: self.dp_ops,
            OpClass.INT: self.int_ops,
        }

    def to_dict(self) -> dict:
        return {
            "kernel_name": self.kernel_name,
            "sp_ops": self.sp_ops,
            "dp_ops": self.dp_ops,
            "int_ops": self.int_ops,
            "sfu_ops": self.sfu_ops,
            "sites": [s.to_dict() for s in self.sites],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SymbolicTrace":
        return cls(
            kernel_name=str(data["kernel_name"]),
            sp_ops=float(data["sp_ops"]),
            dp_ops=float(data["dp_ops"]),
            int_ops=float(data["int_ops"]),
            sfu_ops=float(data["sfu_ops"]),
            sites=tuple(AccessSite.from_dict(s) for s in data["sites"]),
        )


def symbolic_trace(instance: KernelInstance, cmdline: CommandLine) -> SymbolicTrace:
    """Phase 1: walk one kernel invocation symbolically (no device needed)."""
    from repro.gpusim.memory import merge_sites

    bindings = instance.resolve_bindings(cmdline)
    walker = _Walker(
        instance.kernel,
        bindings,
        instance.launch.total_threads,
        block_x=instance.launch.block.x,
        block_y=instance.launch.block.y,
    )
    acc = walker.run()
    return SymbolicTrace(
        kernel_name=instance.kernel.name,
        sp_ops=acc.ops[OpClass.SP],
        dp_ops=acc.ops[OpClass.DP],
        int_ops=acc.ops[OpClass.INT],
        sfu_ops=acc.sfu_ops,
        sites=tuple(merge_sites(acc.sites)),
    )


# ---------------------------------------------------------------------------
# Public API — phase 2 (per-device finalize)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KernelProfile:
    """Counters plus the timing breakdown for one kernel invocation."""

    counters: ProfileCounters
    timing: TimingBreakdown
    coalescing: float

    def to_dict(self) -> dict:
        return {
            "counters": self.counters.to_dict(),
            "timing": self.timing.to_dict(),
            "coalescing": self.coalescing,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KernelProfile":
        return cls(
            counters=ProfileCounters.from_dict(data["counters"]),
            timing=TimingBreakdown.from_dict(data["timing"]),
            coalescing=float(data["coalescing"]),
        )


def _finalize_from_traffic(
    trace: SymbolicTrace,
    device: DeviceModel,
    uid: str,
    read_b: float,
    write_b: float,
    useful_b: float,
    txn_b: float,
) -> KernelProfile:
    """Shared phase-2 tail: jitter + timing from aggregated traffic."""
    quality = coalescing_quality(useful_b, txn_b)

    rng = device.efficiency_stream(uid or trace.kernel_name)
    noise = rng.child("counter-noise")
    sigma = device.counter_noise_sigma

    def jitter(x: float) -> float:
        if x <= 0.0:
            return 0.0
        return x * noise.lognormal(0.0, sigma)

    ops = {oc: jitter(v) for oc, v in trace.ops().items()}
    dram_read = jitter(read_b)
    dram_write = jitter(write_b)
    # Every real kernel invocation moves at least a few cache lines
    # (arguments, instruction fetch); avoids zero-byte degenerate profiles.
    floor_bytes = 32.0 * device.sector_bytes
    dram_read = max(dram_read, floor_bytes)

    timing = estimate_time(
        ops=ops,
        sfu_ops=trace.sfu_ops,
        dram_bytes=dram_read + dram_write,
        coalescing=quality,
        device=device,
        rng=rng.child("timing"),
    )
    counters = ProfileCounters(
        kernel_name=trace.kernel_name,
        sp_flops=ops[OpClass.SP],
        dp_flops=ops[OpClass.DP],
        int_ops=ops[OpClass.INT],
        dram_read_bytes=dram_read,
        dram_write_bytes=dram_write,
        time_s=timing.total_s,
    )
    return KernelProfile(counters=counters, timing=timing, coalescing=quality)


def finalize_profile(
    trace: SymbolicTrace,
    device: DeviceModel | None = None,
    *,
    uid: str = "",
) -> KernelProfile:
    """Phase 2: turn a symbolic trace into one device's profile.

    Reproduces the seed single-pass profiler bit-for-bit: traffic
    aggregation, counter jitter, and timing draw from the same streams in
    the same order. ``uid`` keys the per-kernel noise/efficiency draws
    (defaults to the kernel name, matching :func:`profile_kernel`).
    """
    device = device or default_device()
    read_b, write_b, useful_b, txn_b = aggregate_traffic(
        trace.sites, device, assume_merged=True
    )
    return _finalize_from_traffic(
        trace, device, uid, read_b, write_b, useful_b, txn_b
    )


def finalize_profiles(
    traces: list[SymbolicTrace],
    device: DeviceModel | None = None,
    *,
    uids: list[str] | None = None,
) -> list[KernelProfile]:
    """Phase 2 over a whole batch: one vectorized traffic pass per device.

    Bit-identical to mapping :func:`finalize_profile` over the batch. The
    per-site coalescing/reuse model runs once over preallocated float64
    columns spanning every trace's sites
    (:func:`~repro.gpusim.memory.batch_site_traffic`, elementwise-exact),
    then each trace reduces its own slice with sequential Python float
    additions — the same order the scalar aggregator uses, so the sums
    match bit for bit. The per-kernel RNG draws (counter jitter, timing)
    are keyed by uid and independent across kernels, so they stay scalar.
    """
    device = device or default_device()
    traces = list(traces)
    if uids is None:
        uids = [""] * len(traces)
    flat: list[AccessSite] = []
    bounds = [0]
    for trace in traces:
        flat.extend(trace.sites)
        bounds.append(len(flat))
    if flat:
        read_a, write_a, useful_a, txn_a = batch_site_traffic(flat, device)
        reads, writes = read_a.tolist(), write_a.tolist()
        usefuls, txns = useful_a.tolist(), txn_a.tolist()
    else:
        reads = writes = usefuls = txns = []
    profiles: list[KernelProfile] = []
    for trace, uid, lo, hi in zip(traces, uids, bounds, bounds[1:]):
        r = w = u = t = 0.0
        for i in range(lo, hi):
            r += reads[i]
            w += writes[i]
            u += usefuls[i]
            t += txns[i]
        profiles.append(
            _finalize_from_traffic(trace, device, uid, r, w, u, t)
        )
    return profiles


def profile_kernel(
    instance: KernelInstance,
    cmdline: CommandLine,
    device: DeviceModel | None = None,
    *,
    uid: str = "",
) -> KernelProfile:
    """Profile one kernel invocation (the paper profiles first invocations).

    ``uid`` keys the deterministic per-kernel efficiency/noise draws; pass
    the program uid so identical kernels in different programs land at
    different (realistic) points under the roofline.

    Composed of the two phases — :func:`symbolic_trace` then
    :func:`finalize_profile` — and byte-identical to the seed single-pass
    profiler.
    """
    return finalize_profile(
        symbolic_trace(instance, cmdline),
        device,
        uid=uid or instance.kernel.name,
    )


def profile_first_kernel(
    spec: ProgramSpec, device: DeviceModel | None = None
) -> KernelProfile:
    """Profile a program's first kernel — the paper's per-program sample."""
    return profile_kernel(
        spec.first_kernel, spec.cmdline, device, uid=spec.uid
    )


# ---------------------------------------------------------------------------
# Batched corpus profiling (digest-keyed, store-backed)
# ---------------------------------------------------------------------------

# Profiling is deterministic in (program, device), so a batch of programs
# needs exactly one pass per device; every experiment that re-derives
# samples shares it. Batches are memoized by *content digest* — SHA-256
# over (program IR, launch, argv, uid) and the device parameters — so two
# structurally equal corpora share one pass, the memo layers over the
# persistent profile store (same key discipline), and no id()-reuse
# hazards exist. The memo is a small LRU: each entry is a ~749-profile
# dict, and six scenario devices plus the default fit comfortably.
_MEMO_LOCK = threading.Lock()
_PROFILE_MEMO: "OrderedDict[tuple[str, str, str], dict[str, KernelProfile]]" = OrderedDict()
_PROFILE_MEMO_CAP = 16

# Device-independent traces, keyed by program digest, shared across every
# device pass in the process. Bounded: on overflow the oldest half is
# dropped (traces are cheap to rebuild, one walk each).
_TRACE_MEMO: dict[str, SymbolicTrace] = {}
_TRACE_MEMO_CAP = 4096

#: Sentinel: "use the process-wide active profile store" (see
#: :func:`repro.gpusim.store.active_profile_store`). Pass ``store=None``
#: to force store-less profiling.
_ACTIVE_STORE = object()


def _install_traces(traces: Mapping[str, SymbolicTrace]) -> None:
    with _MEMO_LOCK:
        _TRACE_MEMO.update(traces)
        if len(_TRACE_MEMO) > _TRACE_MEMO_CAP:
            for stale in list(_TRACE_MEMO)[: _TRACE_MEMO_CAP // 2]:
                del _TRACE_MEMO[stale]


def profile_programs(
    programs,
    device: DeviceModel | None = None,
    *,
    jobs: int = 1,
    store=_ACTIVE_STORE,
) -> dict[str, KernelProfile]:
    """Profile each program's first kernel as one batched two-phase pass.

    Returns uid → :class:`KernelProfile` in input order. The pass

    * serves whole profiles from ``store`` (a
      :class:`~repro.gpusim.store.ProfileStore`; defaults to the
      process-wide active store, ``None`` disables) — a warm store means a
      cold process walks **zero** kernels;
    * reuses device-independent traces across devices (memory first, then
      the store), so only programs never seen by any device pay the walk;
    * fans phase 1+2 of the misses over ``jobs`` worker threads;
    * is memoized per (program-set digest, device digest, store root), so
      repeated experiment runs in one process profile each batch exactly
      once — and writes every newly computed profile/trace back to the
      store.
    """
    from repro.gpusim.store import (
        active_profile_store,
        device_profile_key,
        program_profile_key,
    )
    from repro.util.hashing import stable_hash_hex
    from repro.util.parallel import parallel_map

    device = device or default_device()
    if store is _ACTIVE_STORE:
        store = active_profile_store()
    programs = list(programs)
    pkeys = [program_profile_key(p) for p in programs]
    dkey = device_profile_key(device)
    # The store rides in the memo key: a batch first profiled store-less
    # (or against a different root) must not memo-shadow the pass that
    # would have written this store — warmth is part of the contract.
    store_tag = str(store.root) if store is not None else ""
    memo_key = (stable_hash_hex(*pkeys), dkey, store_tag)
    with _MEMO_LOCK:
        hit = _PROFILE_MEMO.get(memo_key)
        if hit is not None:
            _PROFILE_MEMO.move_to_end(memo_key)
            return hit

    stored: dict[str, KernelProfile] = {}
    if store is not None and programs:
        stored = store.get_profiles(device, pkeys)
    missing = [(p, k) for p, k in zip(programs, pkeys) if k not in stored]

    computed: dict[str, KernelProfile] = {}
    if missing:
        traces: dict[str, SymbolicTrace] = {
            k: _TRACE_MEMO[k] for _, k in missing if k in _TRACE_MEMO
        }
        if store is not None:
            need = [k for _, k in missing if k not in traces]
            if need:
                traces.update(store.get_traces(need))
        walked: dict[str, SymbolicTrace] = {}

        def trace_one(item: tuple[ProgramSpec, str]) -> SymbolicTrace:
            program, key = item
            trace = traces.get(key)
            if trace is None:
                trace = symbolic_trace(program.first_kernel, program.cmdline)
                walked[key] = trace
            return trace

        # Phase 1 (the IR walks) fans out over the workers; phase 2 runs
        # as one vectorized finalize over the whole device batch.
        batch = parallel_map(trace_one, missing, jobs=jobs)
        profiles = finalize_profiles(
            batch, device, uids=[p.uid for p, _ in missing]
        )
        computed = {k: prof for (_, k), prof in zip(missing, profiles)}
        if walked:
            _install_traces(walked)
        if store is not None:
            store.put_profiles(device, computed)
            if walked:
                store.put_traces(walked)

    result = {
        p.uid: stored[k] if k in stored else computed[k]
        for p, k in zip(programs, pkeys)
    }
    with _MEMO_LOCK:
        _PROFILE_MEMO[memo_key] = result
        _PROFILE_MEMO.move_to_end(memo_key)
        while len(_PROFILE_MEMO) > _PROFILE_MEMO_CAP:
            _PROFILE_MEMO.popitem(last=False)
    return result


def profile_corpus(
    corpus,
    device: DeviceModel | None = None,
    *,
    jobs: int = 1,
    store=_ACTIVE_STORE,
) -> dict[str, KernelProfile]:
    """Profile every program's first kernel, once, as one batched pass.

    Returns uid → :class:`KernelProfile` in corpus order; see
    :func:`profile_programs` for the store/memo/trace-reuse semantics.
    """
    return profile_programs(corpus.programs, device, jobs=jobs, store=store)
