"""Shared enumerations used across subsystems.

Kept in a leaf module so that :mod:`repro.roofline`, :mod:`repro.kernels`,
:mod:`repro.dataset`, and :mod:`repro.llm` can all import them without
circular dependencies.
"""

from __future__ import annotations

import enum


class Language(str, enum.Enum):
    """Source language of a benchmark program (the paper's CUDA/OMP axis)."""

    CUDA = "cuda"
    OMP = "omp"

    @property
    def display(self) -> str:
        return "CUDA" if self is Language.CUDA else "OMP"


class Boundedness(str, enum.Enum):
    """Roofline classification outcome.

    The paper's response vocabulary is the single word ``Compute`` or
    ``Bandwidth``; :attr:`word` is that canonical response token.
    """

    COMPUTE = "CB"
    BANDWIDTH = "BB"

    @property
    def word(self) -> str:
        return "Compute" if self is Boundedness.COMPUTE else "Bandwidth"

    @classmethod
    def from_word(cls, word: str) -> "Boundedness":
        w = word.strip().strip(".").lower()
        if w in ("compute", "compute-bound", "cb"):
            return cls.COMPUTE
        if w in ("bandwidth", "bandwidth-bound", "memory", "memory-bound", "bb"):
            return cls.BANDWIDTH
        raise ValueError(f"unrecognized boundedness word: {word!r}")

    @property
    def other(self) -> "Boundedness":
        return Boundedness.BANDWIDTH if self is Boundedness.COMPUTE else Boundedness.COMPUTE


class OpClass(str, enum.Enum):
    """Arithmetic operation class; each has its own roofline (paper §2.1)."""

    SP = "sp"     # single-precision floating point
    DP = "dp"     # double-precision floating point
    INT = "int"   # integer ops

    @property
    def display(self) -> str:
        return {OpClass.SP: "SP-FLOP", OpClass.DP: "DP-FLOP", OpClass.INT: "INTOP"}[self]

    @property
    def unit(self) -> str:
        return {OpClass.SP: "GFLOP/s", OpClass.DP: "GFLOP/s", OpClass.INT: "GINTOP/s"}[self]
