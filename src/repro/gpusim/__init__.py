"""GPU execution-model simulator: the reproduction's profiling substrate.

Stands in for the paper's empirical RTX 3080 profiling (§2.1): interprets
kernel IR to produce op counts by precision class, DRAM read/write bytes
through a coalescing + cache-reuse model, and a roofline-informed execution
time. Ground-truth BB/CB labels derive from these counters exactly as the
paper derives them from Nsight metrics.
"""

from repro.gpusim.counters import ProfileCounters, merge_counters
from repro.gpusim.device import DeviceModel, default_device, device_for
from repro.gpusim.memory import (
    AccessSite,
    SiteTraffic,
    aggregate_traffic,
    bytes_per_execution,
    coalescing_quality,
    estimate_site_traffic,
)
from repro.gpusim.profiler import (
    KernelProfile,
    SymbolicTrace,
    finalize_profile,
    finalize_profiles,
    profile_corpus,
    profile_first_kernel,
    profile_kernel,
    profile_programs,
    symbolic_trace,
)
from repro.gpusim.store import (
    PROFILER_VERSION,
    ProfileStore,
    active_profile_store,
    device_profile_key,
    program_profile_key,
    set_active_profile_store,
)
from repro.gpusim.timing import TimingBreakdown, estimate_time

__all__ = [
    "ProfileCounters",
    "merge_counters",
    "DeviceModel",
    "default_device",
    "device_for",
    "AccessSite",
    "SiteTraffic",
    "aggregate_traffic",
    "bytes_per_execution",
    "coalescing_quality",
    "estimate_site_traffic",
    "KernelProfile",
    "SymbolicTrace",
    "symbolic_trace",
    "finalize_profile",
    "finalize_profiles",
    "profile_kernel",
    "profile_first_kernel",
    "profile_corpus",
    "profile_programs",
    "PROFILER_VERSION",
    "ProfileStore",
    "active_profile_store",
    "set_active_profile_store",
    "program_profile_key",
    "device_profile_key",
    "TimingBreakdown",
    "estimate_time",
]
