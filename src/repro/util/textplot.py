"""ASCII rendering of the paper's figures.

Figure 1 is a log-log roofline scatter; Figure 2 is a set of box-and-whisker
plots. The benchmark harness emits these as text so the reproduction is fully
inspectable without a display or plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.util.stats import BoxStats, five_number_summary


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Decade tick positions covering [lo, hi]."""
    lo_exp = math.floor(math.log10(lo))
    hi_exp = math.ceil(math.log10(hi))
    return [10.0 ** e for e in range(lo_exp, hi_exp + 1)]


def ascii_scatter(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 78,
    height: int = 24,
    log_x: bool = True,
    log_y: bool = True,
    x_label: str = "x",
    y_label: str = "y",
    markers: str = "ox+*#@%&",
    title: str | None = None,
) -> str:
    """Render named point series on a character grid.

    Later series overwrite earlier ones where points collide, which makes
    the roofline lines (drawn as a dense series) visible under the kernel
    scatter.
    """
    all_pts = [p for pts in series.values() for p in pts]
    if not all_pts:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_x and x_lo <= 0:
        raise ValueError("log x-axis requires positive x values")
    if log_y and y_lo <= 0:
        raise ValueError("log y-axis requires positive y values")

    def to_col(x: float) -> int:
        if log_x:
            t = (math.log10(x) - math.log10(x_lo)) / max(
                1e-12, math.log10(x_hi) - math.log10(x_lo)
            )
        else:
            t = (x - x_lo) / max(1e-12, x_hi - x_lo)
        return min(width - 1, max(0, int(round(t * (width - 1)))))

    def to_row(y: float) -> int:
        if log_y:
            t = (math.log10(y) - math.log10(y_lo)) / max(
                1e-12, math.log10(y_hi) - math.log10(y_lo)
            )
        else:
            t = (y - y_lo) / max(1e-12, y_hi - y_lo)
        return min(height - 1, max(0, int(round((1.0 - t) * (height - 1)))))

    grid = [[" " for _ in range(width)] for _ in range(height)]
    legend = []
    for i, (name, pts) in enumerate(series.items()):
        mark = markers[i % len(markers)]
        legend.append(f"{mark} = {name}")
        for x, y in pts:
            grid[to_row(y)][to_col(x)] = mark

    lines = []
    if title:
        lines.append(title.center(width + 10))
    y_ticks = {}
    if log_y:
        for tick in _log_ticks(y_lo, y_hi):
            if y_lo <= tick <= y_hi:
                y_ticks[to_row(tick)] = f"{tick:.0e}"
    for r in range(height):
        label = y_ticks.get(r, "")
        lines.append(f"{label:>9} |" + "".join(grid[r]))
    lines.append(" " * 10 + "+" + "-" * width)
    if log_x:
        tick_line = [" "] * (width + 11)
        for tick in _log_ticks(x_lo, x_hi):
            if x_lo <= tick <= x_hi:
                col = 11 + to_col(tick)
                text = f"{tick:.0e}"
                for j, ch in enumerate(text):
                    if col + j < len(tick_line):
                        tick_line[col + j] = ch
        lines.append("".join(tick_line))
    lines.append(f"{'':>11}x: {x_label}   y: {y_label}")
    lines.append(f"{'':>11}" + "   ".join(legend))
    return "\n".join(lines)


def ascii_intervals(
    groups: Mapping[str, tuple[float, float, float]],
    *,
    width: int = 70,
    title: str | None = None,
    value_label: str = "value",
) -> str:
    """Render horizontal (low, estimate, high) interval bars, one per group.

    Layout per group::

        name  [--------*---]        low=.. est=.. high=..

    Used for bootstrap confidence intervals in the stats report.
    """
    if not groups:
        raise ValueError("nothing to plot")
    for name, (low, est, high) in groups.items():
        if not low <= est <= high:
            raise ValueError(
                f"interval for {name!r} is not ordered: ({low}, {est}, {high})"
            )
    lo = min(v[0] for v in groups.values())
    hi = max(v[2] for v in groups.values())
    span = max(1e-12, hi - lo)
    name_w = max(len(n) for n in groups)

    def col(v: float) -> int:
        return min(width - 1, max(0, int(round((v - lo) / span * (width - 1)))))

    lines = []
    if title:
        lines.append(title)
    for name, (low, est, high) in groups.items():
        row = [" "] * width
        for c in range(col(low), col(high) + 1):
            row[c] = "-"
        row[col(low)] = "["
        row[col(high)] = "]"
        row[col(est)] = "*"
        lines.append(
            f"{name:>{name_w}} {''.join(row)}  "
            f"{est:.2f} [{low:.2f}, {high:.2f}]"
        )
    lines.append(
        f"{'':>{name_w}} {lo:.2f}{'':<{max(0, width - 14)}}{hi:.2f}"
        f"  ({value_label})"
    )
    return "\n".join(lines)


def ascii_boxplot(
    groups: Mapping[str, Sequence[float]],
    *,
    width: int = 70,
    title: str | None = None,
    value_label: str = "value",
) -> str:
    """Render horizontal box-and-whisker plots, one row group per sample set.

    Layout per group::

        name  |----[  Q1 |M| Q3  ]-----|   (whiskers, box, median)
    """
    if not groups:
        raise ValueError("nothing to plot")
    stats: dict[str, BoxStats] = {name: five_number_summary(v) for name, v in groups.items()}
    lo = min(s.minimum for s in stats.values())
    hi = max(s.maximum for s in stats.values())
    span = max(1e-12, hi - lo)
    name_w = max(len(n) for n in stats)

    def col(v: float) -> int:
        return min(width - 1, max(0, int(round((v - lo) / span * (width - 1)))))

    lines = []
    if title:
        lines.append(title)
    for name, s in stats.items():
        row = [" "] * width
        for c in range(col(s.whisker_low), col(s.whisker_high) + 1):
            row[c] = "-"
        row[col(s.whisker_low)] = "|"
        row[col(s.whisker_high)] = "|"
        for c in range(col(s.q1), col(s.q3) + 1):
            row[c] = "="
        row[col(s.q1)] = "["
        row[col(s.q3)] = "]"
        row[col(s.median)] = "M"
        for out in s.outliers:
            row[col(out)] = "o"
        lines.append(f"{name:>{name_w}} {''.join(row)}")
        lines.append(
            f"{'':>{name_w}}   n={s.n} min={s.minimum:.0f} q1={s.q1:.0f} "
            f"med={s.median:.0f} q3={s.q3:.0f} max={s.maximum:.0f}"
        )
    lines.append(f"{'':>{name_w}} {lo:.0f}{'':<{max(0, width - 14)}}{hi:.0f}  ({value_label})")
    return "\n".join(lines)
