"""The emulated LLM: a prompt-in, text-out model facade.

The pipeline code path matches a real API integration: build prompt string →
``model.complete(prompt)`` → parse the one-word response → score. The
emulator consumes only the prompt text — ground-truth labels never reach it
— so accuracy differences between models emerge from the quality of their
analysis paths (deep static analysis vs surface cues vs arithmetic slips),
shaped by the capability profiles in :mod:`repro.llm.config`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.arithmetic import solve_roofline
from repro.llm.config import ModelConfig
from repro.llm.heuristic import lexical_logit
from repro.llm.pricing import Usage
from repro.llm.promptio import (
    estimate_prompt_tokens,
    parse_classify_query,
    parse_roofline_query,
)
from repro.llm.reasoner import deep_logit
from repro.llm.sampling import DEFAULT_TEMPERATURE, DEFAULT_TOP_P, SamplingParams, sample_response
from repro.types import Boundedness
from repro.util.hashing import stable_hash_hex
from repro.util.rng import RngStream


@dataclass(frozen=True)
class LlmResponse:
    """One completion."""

    text: str
    usage: Usage
    model_name: str

    def boundedness(self) -> Boundedness:
        """Parse the response word (raises ValueError on off-vocabulary)."""
        return Boundedness.from_word(self.text)


class SamplingNotSupported(ValueError):
    """Raised when sampling params are passed to a reasoning model, matching
    the OpenAI API behaviour the paper notes (§3.2)."""


class LlmModel:
    """One emulated model instance."""

    def __init__(self, config: ModelConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    # -- public API ----------------------------------------------------------
    def complete(
        self,
        prompt: str,
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ) -> LlmResponse:
        """Answer one prompt.

        Reasoning models reject explicit sampling parameters (as their real
        APIs do); non-reasoning models default to the paper's settings
        (temperature 0.1, top_p 0.2).
        """
        if not self.config.supports_sampling_params and (
            temperature is not None or top_p is not None
        ):
            raise SamplingNotSupported(
                f"{self.name} does not accept temperature/top_p overrides"
            )
        params = SamplingParams(
            temperature=DEFAULT_TEMPERATURE if temperature is None else temperature,
            top_p=DEFAULT_TOP_P if top_p is None else top_p,
        )
        rng = self._rng(prompt)
        in_tokens = estimate_prompt_tokens(prompt)

        from repro.llm import decompose_handler

        if decompose_handler.handles(prompt):
            return self._respond(
                decompose_handler.answer(prompt, self.config), in_tokens
            )

        rq1 = parse_roofline_query(prompt)
        if rq1 is not None and parse_classify_query(prompt) is None:
            answer = solve_roofline(rq1, self.config, rng.child("rq1"))
            return self._respond(answer.word, in_tokens)

        query = parse_classify_query(prompt)
        if query is not None:
            answer = self._classify(query, prompt, params, rng)
            return self._respond(answer.word, in_tokens)

        # Off-task prompt: behave like an obliging but unhelpful assistant.
        return self._respond("Bandwidth", in_tokens)

    # -- internals -------------------------------------------------------------
    def _rng(self, prompt: str) -> RngStream:
        """Deterministic per-(model, prompt) stream: repeated queries at
        fixed settings return identical answers (temperature 0.1 in the
        paper made responses 'less diverse and consistent')."""
        return RngStream("llm", self.name, stable_hash_hex(prompt))

    def _respond(self, word: str, in_tokens: int) -> LlmResponse:
        usage = Usage(
            input_tokens=in_tokens,
            output_tokens=1,
            reasoning_tokens=self.config.reasoning_output_tokens,
        )
        return LlmResponse(text=word, usage=usage, model_name=self.name)

    def _classify(self, query, prompt: str, params: SamplingParams, rng: RngStream) -> Boundedness:
        cfg = self.config
        tokens = estimate_prompt_tokens(prompt)

        # Analysis randomness is keyed by the *code being read*, not the
        # full prompt: the model's reading of the same kernel is stable
        # across prompt variants (zero-shot vs few-shot), so RQ2→RQ3 deltas
        # come from the systematic terms (context length, example shots),
        # as in the paper.
        code_rng = RngStream(
            "llm", self.name, "analysis",
            stable_hash_hex(query.source, query.kernel_name),
        )

        lex = lexical_logit(query, cfg, code_rng.child("lex"))

        # Does the deep analysis survive this prompt? Longer prompts bury
        # the kernel deeper ("lost in the middle"), raising the derail
        # probability. The draw is shared across prompt variants so a
        # longer prompt can only derail a superset of the shorter one's
        # failures.
        p_fail = cfg.fail_probability(tokens)
        derailed = code_rng.child("attention").uniform() < p_fail

        depth = cfg.analysis_depth
        if depth > 0.0 and not derailed:
            deep = deep_logit(query, cfg, code_rng.child("deep"))
            if deep.succeeded:
                logit = depth * deep.logit + (1.0 - depth) * lex
            else:
                logit = lex
        else:
            logit = lex
        logit += cfg.response_bias
        if query.has_real_examples:
            logit += cfg.fewshot_bias_shift
        return sample_response(logit, params, rng.child("sample"))
