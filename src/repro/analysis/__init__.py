"""Source-level static analysis: the reasoning engine of the LLM emulator.

Operates purely on source text (lexer → kernel discovery → structural parse
→ op counting → traffic estimation → arithmetic-intensity estimate), seeing
exactly what the paper's LLMs see in a prompt and nothing the profiler
knows.
"""

from repro.analysis.clexer import Token, TokKind, lex, strip_comments
from repro.analysis.cparser import (
    Branch,
    Decl,
    ExprStmt,
    Loop,
    ParamInfo,
    Pragma,
    Return,
    SharedDecl,
    parse_block,
    parse_params,
    walk,
)
from repro.analysis.explain import Explanation, explain_kernel
from repro.analysis.intensity import (
    StaticEstimate,
    analyze_kernel,
    analyze_kernel_detailed,
    classify_static,
)
from repro.analysis.kernelfind import KernelSource, find_kernel, find_kernels, first_kernel
from repro.analysis.memtraffic import AccessEstimate, estimate_access
from repro.analysis.opcount import MATH_COSTS, OpVector, RawAccess, TypeEnv, scan_statement

__all__ = [
    "Token",
    "TokKind",
    "lex",
    "strip_comments",
    "parse_block",
    "parse_params",
    "walk",
    "Branch",
    "Decl",
    "ExprStmt",
    "Loop",
    "Pragma",
    "Return",
    "SharedDecl",
    "ParamInfo",
    "KernelSource",
    "find_kernel",
    "find_kernels",
    "first_kernel",
    "OpVector",
    "RawAccess",
    "TypeEnv",
    "MATH_COSTS",
    "scan_statement",
    "AccessEstimate",
    "estimate_access",
    "StaticEstimate",
    "analyze_kernel",
    "analyze_kernel_detailed",
    "Explanation",
    "explain_kernel",
    "classify_static",
]
