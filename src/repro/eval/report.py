"""Result reporting: the shared :class:`Reportable` protocol and
side-by-side paper-vs-measured comparison tables.

Every experiment-result object — :class:`~repro.eval.runner.RunResult`,
:class:`~repro.eval.matrix.MatrixResult`,
:class:`~repro.analysis.stats.StatsReport` — speaks :class:`Reportable`:
``digest()`` for identity checks, ``render()`` for the terminal, and
``to_json()`` for machine-readable export. The export layer
(:func:`repro.eval.export.write_report`) and the CLI consume the protocol
instead of switching on concrete types.

The comparison-table helpers are used by the benchmark harness to print,
for every experiment, the paper's published value next to this
reproduction's measured value, making the "shape holds" claim inspectable
at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.util.tables import format_table


@runtime_checkable
class Reportable(Protocol):
    """What every experiment-result object can do.

    ``runtime_checkable`` so writers can validate inputs with
    ``isinstance`` — structural only (method presence), which is exactly
    the guarantee the export path needs.
    """

    def digest(self) -> str:
        """Stable SHA-256 identity over the result's value form."""
        ...

    def render(self) -> str:
        """Human-readable terminal rendering."""
        ...

    def to_json(self) -> dict:
        """JSON-serialisable value form (plain dicts/lists/scalars)."""
        ...


@dataclass(frozen=True)
class Comparison:
    """One (metric, paper value, measured value) line item."""

    experiment: str
    metric: str
    paper: float | None
    measured: float

    @property
    def delta(self) -> float | None:
        if self.paper is None:
            return None
        return self.measured - self.paper


def render_comparisons(title: str, comparisons: Sequence[Comparison]) -> str:
    rows = [
        [c.experiment, c.metric, c.paper, c.measured, c.delta]
        for c in comparisons
    ]
    return format_table(
        ["Experiment", "Metric", "Paper", "Measured", "Delta"],
        rows,
        title=title,
    )


def ordering_agreement(
    paper_values: Sequence[float], measured_values: Sequence[float]
) -> float:
    """Kendall-style pairwise ordering agreement in [0, 1].

    1.0 = the measured values rank the models exactly as the paper does.
    Ties (within 0.5 points) in either sequence are skipped.
    """
    if len(paper_values) != len(measured_values):
        raise ValueError("length mismatch")
    agree = 0
    considered = 0
    n = len(paper_values)
    for i in range(n):
        for j in range(i + 1, n):
            dp = paper_values[i] - paper_values[j]
            dm = measured_values[i] - measured_values[j]
            if abs(dp) < 0.5 or abs(dm) < 0.5:
                continue
            considered += 1
            if (dp > 0) == (dm > 0):
                agree += 1
    return agree / considered if considered else 1.0
