"""The async serving layer: adapters, retry/backoff, coalescing, HTTP.

No event-loop plugin is assumed: async scenarios run under
``asyncio.run`` inside plain test functions, with injected RNGs, sleeps,
and clocks so every timing-dependent behaviour is deterministic and the
suite never actually waits out a backoff schedule.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.eval.engine import DiskResponseStore, EvalEngine, MemoryResponseStore
from repro.eval.rq23 import classification_items
from repro.llm.base import LlmResponse
from repro.llm.pricing import Usage
from repro.llm.registry import get_model
from repro.serve import (
    AsyncEvalEngine,
    PredictionServer,
    PredictionService,
    ProviderNotConfigured,
    ProviderTimeout,
    RateLimiter,
    RateLimitError,
    RetryPolicy,
    TransientProviderError,
    call_with_retry,
    emulated_transport,
    provider_family,
    resolve_provider,
)
from repro.serve.providers import (
    WIRE_FAMILIES,
    AnthropicProvider,
    EmulatedProvider,
    GeminiProvider,
    OpenAiProvider,
)


class FaultyProvider:
    """Injected-fault adapter: raises a scripted error per call, then
    delegates to the real emulated model."""

    def __init__(self, model_name: str = "gpt-4o-mini", faults=()):
        self.model = get_model(model_name)
        self.config = self.model.config
        self.faults = list(faults)
        self.calls = 0
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.model.name

    async def complete(self, prompt, *, temperature=None, top_p=None):
        with self._lock:
            index = self.calls
            self.calls += 1
        if index < len(self.faults):
            fault = self.faults[index]
            if fault is not None:
                raise fault
        return self.model.complete(prompt, temperature=temperature, top_p=top_p)


class GatedProvider:
    """Holds every completion until released — lets a test pile up N
    concurrent identical requests before the first one can finish."""

    def __init__(self, model_name: str = "gpt-4o-mini"):
        self.model = get_model(model_name)
        self.config = self.model.config
        self.calls = 0
        self.gate = asyncio.Event()

    @property
    def name(self) -> str:
        return self.model.name

    async def complete(self, prompt, *, temperature=None, top_p=None):
        self.calls += 1
        await self.gate.wait()
        return self.model.complete(prompt, temperature=temperature, top_p=top_p)


def _recording_sleep(log):
    async def sleep(delay):
        log.append(delay)

    return sleep


# -- provider adapters -------------------------------------------------------

WIRE_CASES = [
    ("gpt-4o-2024-11-20", OpenAiProvider),
    ("o3-mini-high", OpenAiProvider),
    ("gemini-2.0-flash-001", GeminiProvider),
]


def test_provider_family_routing():
    assert provider_family("gemini-2.0-flash-001") == "gemini"
    assert provider_family("claude-sonnet-4") == "anthropic"
    assert provider_family("gpt-4o-mini") == "openai"
    assert provider_family("o3-mini-high") == "openai"


@pytest.mark.parametrize("cls", list(WIRE_FAMILIES.values()))
def test_wire_codec_roundtrip(cls):
    model = get_model("gpt-4o-mini")
    provider = cls(model.config)
    payload = provider.encode_request("classify this kernel", 0.1, 0.2)
    prompt, temperature, top_p = cls.decode_request(payload)
    assert (prompt, temperature, top_p) == ("classify this kernel", 0.1, 0.2)
    # None sampling params stay absent on the wire and decode back to None.
    bare = cls.decode_request(provider.encode_request("p", None, None))
    assert bare == ("p", None, None)

    response = LlmResponse(
        text="Compute",
        usage=Usage(input_tokens=123, output_tokens=1, reasoning_tokens=77),
        model_name=model.name,
    )
    decoded = provider.decode_response(cls.encode_response(response))
    assert decoded == response


@pytest.mark.parametrize("model_name,cls", WIRE_CASES)
def test_wire_adapter_matches_emulated(model_name, cls):
    """The full encode → emulated transport → decode path returns exactly
    what the emulated model would: the wire shape is lossless."""
    model = get_model(model_name)
    wire = resolve_provider(model_name, family="wire")
    assert isinstance(wire, cls)
    prompt = "Is the following kernel compute bound or bandwidth bound?"
    direct = model.complete(prompt)
    via_wire = asyncio.run(wire.complete(prompt))
    assert via_wire == direct


def test_unconfigured_wire_provider_raises():
    provider = resolve_provider("o1", family="anthropic")
    assert isinstance(provider, AnthropicProvider)
    with pytest.raises(ProviderNotConfigured):
        asyncio.run(provider.complete("hello"))


def test_resolve_provider_rejects_unknown_family():
    with pytest.raises(ValueError, match="unknown provider family"):
        resolve_provider("o1", family="azure")


def test_malformed_wire_response_is_transient():
    async def bad_transport(payload):
        return {"unexpected": "shape"}

    provider = OpenAiProvider(get_model("o1").config, bad_transport)
    with pytest.raises(TransientProviderError, match="malformed"):
        asyncio.run(provider.complete("hello"))


# -- retry / backoff / rate limiting ----------------------------------------

def test_retry_recovers_from_transient_faults():
    provider = FaultyProvider(faults=[
        TransientProviderError("boom"),
        RateLimitError("slow down"),
    ])
    sleeps: list[float] = []
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.1, jitter=0.5)
    rng = random.Random(7)

    response = asyncio.run(call_with_retry(
        lambda: provider.complete("hello"),
        policy=policy, rng=rng, sleep=_recording_sleep(sleeps),
    ))
    assert response.text in ("Compute", "Bandwidth")
    assert provider.calls == 3          # 2 failures + 1 success
    assert len(sleeps) == 2             # one backoff per failure
    # Jittered exponential schedule: attempt k sleeps in
    # [0.5, 1.5] * base * 2**k, and never more than max_delay * 1.5.
    assert 0.05 <= sleeps[0] <= 0.15
    assert 0.10 <= sleeps[1] <= 0.30


def test_retry_attempts_are_bounded():
    provider = FaultyProvider(faults=[TransientProviderError("boom")] * 10)
    sleeps: list[float] = []
    policy = RetryPolicy(max_attempts=3)
    with pytest.raises(TransientProviderError):
        asyncio.run(call_with_retry(
            lambda: provider.complete("hello"),
            policy=policy, rng=random.Random(0),
            sleep=_recording_sleep(sleeps),
        ))
    assert provider.calls == 3
    assert len(sleeps) == 2             # no sleep after the final failure


def test_retry_honours_rate_limit_retry_after():
    provider = FaultyProvider(
        faults=[RateLimitError("429", retry_after=9.0)]
    )
    sleeps: list[float] = []
    asyncio.run(call_with_retry(
        lambda: provider.complete("hello"),
        policy=RetryPolicy(base_delay_s=0.01),
        rng=random.Random(0), sleep=_recording_sleep(sleeps),
    ))
    assert sleeps == [9.0]              # server hint floors the backoff


def test_retry_does_not_retry_programming_errors():
    provider = FaultyProvider(faults=[ValueError("bug")])
    with pytest.raises(ValueError, match="bug"):
        asyncio.run(call_with_retry(
            lambda: provider.complete("hello"),
            policy=RetryPolicy(), rng=random.Random(0),
        ))
    assert provider.calls == 1


def test_attempt_timeout_surfaces_as_provider_timeout():
    async def hang():
        await asyncio.sleep(30.0)

    policy = RetryPolicy(max_attempts=2, timeout_s=0.01, timeout_jitter=0.0,
                         base_delay_s=0.0, jitter=0.0)
    sleeps: list[float] = []
    with pytest.raises(ProviderTimeout):
        asyncio.run(call_with_retry(
            hang, policy=policy, rng=random.Random(0),
            sleep=_recording_sleep(sleeps),
        ))
    assert len(sleeps) == 1             # timed out, retried once, gave up


def test_jittered_timeouts_vary_per_attempt():
    policy = RetryPolicy(timeout_s=1.0, timeout_jitter=0.25)
    rng = random.Random(3)
    draws = {policy.attempt_timeout(rng) for _ in range(16)}
    assert len(draws) > 1
    assert all(0.75 <= t <= 1.25 for t in draws)


def test_rate_limiter_spaces_acquisitions():
    clock = [0.0]
    waits: list[float] = []

    async def sleep(delay):
        waits.append(delay)
        clock[0] += delay

    limiter = RateLimiter(rate=2.0, burst=2, clock=lambda: clock[0], sleep=sleep)

    async def scenario():
        for _ in range(5):
            await limiter.acquire()

    asyncio.run(scenario())
    # Burst of 2 free, then one matured token per 0.5 s.
    assert waits == pytest.approx([0.5, 0.5, 0.5])


def test_rate_limiter_disabled():
    limiter = RateLimiter(rate=None)

    async def scenario():
        for _ in range(100):
            await limiter.acquire()

    asyncio.run(scenario())             # returns immediately; nothing to assert


# -- the async engine: coalescing + caching ---------------------------------

def test_identical_concurrent_requests_coalesce():
    """N identical in-flight requests → exactly 1 upstream completion."""
    provider = GatedProvider()
    engine = AsyncEvalEngine(store=MemoryResponseStore())
    prompt = "Is this kernel compute bound or bandwidth bound?"
    n = 16

    async def scenario():
        tasks = [
            asyncio.create_task(engine.complete(provider, prompt))
            for _ in range(n)
        ]
        # Let every task reach the inflight table before releasing the gate.
        while provider.calls == 0:
            await asyncio.sleep(0)
        provider.gate.set()
        return await asyncio.gather(*tasks)

    responses = asyncio.run(scenario())
    assert provider.calls == 1
    assert len(set(responses)) == 1     # everyone got the same completion
    assert engine.stats.misses == 1
    assert engine.stats.coalesced == n - 1
    assert engine.stats.completions == 1


def test_distinct_prompts_do_not_coalesce():
    provider = GatedProvider()
    provider.gate.set()
    engine = AsyncEvalEngine(store=MemoryResponseStore())

    async def scenario():
        await asyncio.gather(
            engine.complete(provider, "prompt one"),
            engine.complete(provider, "prompt two"),
        )

    asyncio.run(scenario())
    assert provider.calls == 2
    assert engine.stats.coalesced == 0


def test_coalesced_waiters_share_the_owners_failure():
    provider = FaultyProvider(faults=[ValueError("bug")] * 1)
    engine = AsyncEvalEngine(store=MemoryResponseStore())

    async def scenario():
        results = await asyncio.gather(
            *(engine.complete(provider, "same prompt") for _ in range(4)),
            return_exceptions=True,
        )
        return results

    results = asyncio.run(scenario())
    assert all(isinstance(r, ValueError) for r in results)
    assert provider.calls == 1          # the failure was shared, not repeated


def test_failed_request_leaves_no_inflight_residue():
    provider = FaultyProvider(
        faults=[TransientProviderError("boom")] * 4 + [None]
    )
    engine = AsyncEvalEngine(
        store=MemoryResponseStore(),
        retry=RetryPolicy(max_attempts=1),
    )

    async def scenario():
        with pytest.raises(TransientProviderError):
            await engine.complete(provider, "p")
        assert engine._inflight == {}
        # Later identical request retries upstream from scratch...
        with pytest.raises(TransientProviderError):
            await engine.complete(provider, "p")

    asyncio.run(scenario())


def test_warm_store_serves_without_completions():
    provider = EmulatedProvider(get_model("gpt-4o-mini"))
    store = MemoryResponseStore()
    engine = AsyncEvalEngine(store=store)
    prompt = "Is this compute bound or bandwidth bound?"

    first = asyncio.run(engine.complete(provider, prompt))
    again = asyncio.run(engine.complete(provider, prompt))
    assert again == first
    assert engine.stats.misses == 1
    assert engine.stats.hits == 1
    assert engine.stats.completions == 1


def test_engine_retry_counter_and_recovery():
    provider = FaultyProvider(faults=[
        TransientProviderError("a"), ProviderTimeout("b"),
    ])
    engine = AsyncEvalEngine(
        store=MemoryResponseStore(),
        retry=RetryPolicy(base_delay_s=0.0, jitter=0.0),
        rng=random.Random(0),
    )
    response = asyncio.run(engine.complete(provider, "p"))
    assert response.text in ("Compute", "Bandwidth")
    assert engine.stats.retries == 2
    assert engine.stats.misses == 1


def test_run_rejects_empty_items():
    engine = AsyncEvalEngine()
    provider = EmulatedProvider(get_model("o1"))
    with pytest.raises(ValueError, match="no items"):
        asyncio.run(engine.run(provider, []))


# -- parity with the sync engine --------------------------------------------

@pytest.mark.parametrize("few_shot", [False, True])
def test_async_run_matches_sync_engine_bit_for_bit(
    tmp_path, balanced_samples, few_shot
):
    """The acceptance pin: same grid → identical RunResult digest and
    byte-identical cache directories, at any concurrency."""
    samples = balanced_samples[:12]
    items = classification_items(samples, few_shot=few_shot)
    model = get_model("o3-mini-high")

    sync_store = DiskResponseStore(tmp_path / "sync-cache")
    sync_engine = EvalEngine(jobs=4, store=sync_store)
    sync_result = sync_engine.run(model, items)

    async_store = DiskResponseStore(tmp_path / "async-cache")
    async_engine = AsyncEvalEngine(store=async_store, max_concurrency=8)
    async_result = asyncio.run(
        async_engine.run(EmulatedProvider(model), items)
    )

    assert async_result == sync_result
    assert async_result.digest() == sync_result.digest()

    def snapshot(root):
        return {
            p.relative_to(root): p.read_bytes()
            for p in sorted(root.rglob("*")) if p.is_file()
        }

    sync_files = snapshot(sync_store.root)
    assert sync_files and snapshot(async_store.root) == sync_files

    # And the async-written cache replays through the sync engine.
    replay = EvalEngine(store=async_store)
    assert replay.run(model, items).digest() == sync_result.digest()
    assert replay.stats.hits == len(items)


def test_wire_provider_run_matches_sync_engine(balanced_samples):
    """Parity holds through the wire codecs too, not just the direct shim."""
    samples = balanced_samples[:6]
    items = classification_items(samples, few_shot=False)
    model = get_model("gemini-2.0-flash-001")

    sync_result = EvalEngine(store=MemoryResponseStore()).run(model, items)
    wire = resolve_provider(model.name, family="wire")
    async_result = asyncio.run(
        AsyncEvalEngine(store=MemoryResponseStore()).run(wire, items)
    )
    assert async_result.digest() == sync_result.digest()


# -- the HTTP front end ------------------------------------------------------

def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=60) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _post_json(url: str, payload: dict):
    body = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


@pytest.fixture()
def serving(tmp_path, balanced_samples):
    """A running server over a cache pre-warmed for the first 4 samples."""
    samples = balanced_samples[:4]
    store = DiskResponseStore(tmp_path / "serve-cache")
    model = get_model("o3-mini-high")
    batch = EvalEngine(store=store).run(
        model, classification_items(samples, few_shot=False)
    )
    engine = AsyncEvalEngine(store=store)
    service = PredictionService(engine)
    server = PredictionServer(service, port=0).start()
    try:
        yield server, engine, samples, batch
    finally:
        server.close()


def test_http_health_models_and_errors(serving):
    server, _, _, _ = serving
    status, body = _get_json(f"{server.url}/healthz")
    assert (status, body) == (200, {"status": "ok"})
    status, body = _get_json(f"{server.url}/v1/models")
    assert status == 200 and "o3-mini-high" in body["models"]

    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(f"{server.url}/v1/nope")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(f"{server.url}/v1/classify")   # missing uid
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(f"{server.url}/v1/classify?uid=no/such-kernel")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(f"{server.url}/v1/classify?uid=x&model=made-up-model")
    assert err.value.code == 404


def test_http_warm_queries_make_zero_completions(serving):
    """The tentpole acceptance path: warm-store HTTP queries answer with
    0 new completions and agree with the batch CLI's labels."""
    server, engine, samples, batch = serving
    by_uid = {r.item_id: r for r in batch.records}
    for sample in samples:
        status, body = _get_json(
            f"{server.url}/v1/classify?uid={sample.uid}&model=o3-mini-high"
        )
        assert status == 200
        assert body["cached"] is True
        record = by_uid[sample.uid]
        assert body["prediction"] == record.prediction.word
        assert body["truth"] == sample.label.word
        assert body["correct"] == (record.prediction == sample.label)
    assert engine.stats.completions == 0
    assert engine.stats.hits == len(samples)

    status, stats = _get_json(f"{server.url}/v1/stats")
    assert status == 200
    assert stats["completions"] == 0 and stats["hits"] == len(samples)


def test_http_post_and_cold_query(serving):
    server, engine, samples, _ = serving
    # A regime the warm-up never ran (few-shot) must complete upstream.
    status, body = _post_json(
        f"{server.url}/v1/classify",
        {"uid": samples[0].uid, "model": "o3-mini-high", "few_shot": True},
    )
    assert status == 200
    assert body["cached"] is False
    assert body["few_shot"] is True
    assert engine.stats.completions == 1
    # ... and is cached for the next identical query.
    status, again = _post_json(
        f"{server.url}/v1/classify",
        {"uid": samples[0].uid, "model": "o3-mini-high", "few_shot": True},
    )
    assert again["cached"] is True
    assert again["prediction"] == body["prediction"]
    assert engine.stats.completions == 1


def test_http_samples_listing(serving):
    server, _, _, _ = serving
    status, body = _get_json(f"{server.url}/v1/samples")
    assert status == 200
    listing = body["samples"]
    assert len(listing) >= 300          # the paper's balanced set
    assert all(entry["label"] in ("Compute", "Bandwidth") for entry in listing)
