"""Coordinate-descent calibration of emulator capability knobs.

Tunes, per model, the knobs that control RQ2/RQ3 behaviour so that the
emulator's aggregate metrics land on the paper's Table 1 values. Run
manually; the chosen values are then baked into repro/llm/config.py and
held there by tests/test_calibration.py.

Usage: python scripts/calibrate_models.py
"""

from __future__ import annotations

import dataclasses
import sys

from repro.dataset import paper_dataset
from repro.eval.metrics import MetricReport
from repro.llm.base import LlmModel
from repro.llm.config import ALL_CONFIGS, ModelConfig
from repro.prompts import build_classify_prompt

# Table 1: (RQ2 acc, RQ2 F1, RQ3 acc, RQ3 F1)
PAPER = {
    "o3-mini-high": (64.12, 62.33, 63.53, 60.91),
    "o1": (64.12, 61.67, 61.47, 58.77),
    "o3-mini": (62.06, 60.80, 62.94, 60.88),
    "gpt-4.5-preview": (59.71, 59.45, 60.88, 60.25),
    "o1-mini-2024-09-12": (59.64, 58.91, 56.47, 55.98),
    "gemini-2.0-flash-001": (55.59, 55.45, 53.82, 48.96),
    "gpt-4o-2024-11-20": (52.06, 41.04, 53.24, 44.17),
    "gpt-4o-mini": (50.59, 50.03, 52.35, 50.92),
    "gpt-4o-mini-2024-07-18": (50.29, 49.88, 52.06, 50.46),
}

GRIDS = {
    "base_fail": [0.1, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65,
                  0.7, 0.75, 0.8, 0.85, 0.9, 0.95],
    "response_bias": [-0.6, -0.5, -0.4, -0.3, -0.2, -0.12, -0.08, -0.04,
                      0.0, 0.04, 0.08, 0.12, 0.2],
    "heuristic_skill": [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
    "attention_tokens": [15_000.0, 25_000.0, 40_000.0, 60_000.0, 90_000.0, 150_000.0],
    "fewshot_skill_bonus": [0.0, 0.04, 0.08, 0.12],
    "fewshot_bias_shift": [-0.2, -0.12, -0.06, 0.0, 0.06, 0.12],
    "deep_noise": [0.7, 0.9, 1.1, 1.4, 1.8, 2.2],
}

#: Which knobs each model is allowed to move during calibration.
TUNABLE = {
    "o3-mini-high": ("base_fail", "deep_noise", "attention_tokens"),
    "o1": ("base_fail", "deep_noise", "attention_tokens"),
    "o3-mini": ("base_fail", "deep_noise", "attention_tokens"),
    "gpt-4.5-preview": ("base_fail", "attention_tokens", "fewshot_skill_bonus", "fewshot_bias_shift"),
    "o1-mini-2024-09-12": ("base_fail", "deep_noise", "attention_tokens"),
    "gemini-2.0-flash-001": ("heuristic_skill", "base_fail", "response_bias", "fewshot_bias_shift"),
    "gpt-4o-2024-11-20": ("response_bias", "base_fail", "fewshot_bias_shift"),
    "gpt-4o-mini": ("response_bias", "heuristic_skill", "fewshot_skill_bonus"),
    "gpt-4o-mini-2024-07-18": ("response_bias", "heuristic_skill", "fewshot_skill_bonus"),
}


def objective(cfg: ModelConfig, prompts0, prompts3, truths) -> tuple[float, MetricReport, MetricReport]:
    model = LlmModel(cfg)
    r2 = MetricReport.from_predictions(
        truths, [model.complete(p.text).boundedness() for p in prompts0]
    )
    r3 = MetricReport.from_predictions(
        truths, [model.complete(p.text).boundedness() for p in prompts3]
    )
    t2a, t2f, t3a, t3f = PAPER[cfg.name]
    loss = (
        abs(r2.accuracy - t2a)
        + abs(r3.accuracy - t3a)
        + 0.5 * abs(r2.macro_f1 - t2f)
        + 0.5 * abs(r3.macro_f1 - t3f)
    )
    return loss, r2, r3


def calibrate(cfg: ModelConfig, prompts0, prompts3, truths, rounds: int = 2) -> ModelConfig:
    best_cfg = cfg
    best_loss, _, _ = objective(cfg, prompts0, prompts3, truths)
    for _ in range(rounds):
        improved = False
        for knob in TUNABLE[cfg.name]:
            for value in GRIDS[knob]:
                trial = dataclasses.replace(best_cfg, **{knob: value})
                loss, _, _ = objective(trial, prompts0, prompts3, truths)
                if loss < best_loss - 1e-9:
                    best_loss, best_cfg = loss, trial
                    improved = True
        if not improved:
            break
    return best_cfg


def main() -> int:
    ds = paper_dataset()
    truths = [s.label for s in ds.balanced]
    prompts0 = [build_classify_prompt(s, few_shot=False) for s in ds.balanced]
    prompts3 = [build_classify_prompt(s, few_shot=True) for s in ds.balanced]

    for cfg in ALL_CONFIGS:
        tuned = calibrate(cfg, prompts0, prompts3, truths)
        loss, r2, r3 = objective(tuned, prompts0, prompts3, truths)
        changes = {
            k: getattr(tuned, k)
            for k in TUNABLE[cfg.name]
            if getattr(tuned, k) != getattr(cfg, k)
        }
        t = PAPER[cfg.name]
        print(
            f"{cfg.name:26s} loss={loss:6.2f} "
            f"RQ2 {r2.accuracy:5.2f}/{t[0]:5.2f} f1 {r2.macro_f1:5.2f}/{t[1]:5.2f} | "
            f"RQ3 {r3.accuracy:5.2f}/{t[2]:5.2f} f1 {r3.macro_f1:5.2f}/{t[3]:5.2f} | {changes}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
