"""E9 — Table 1 columns 1-3: model metadata and query-cost accounting.

Verifies the pricing table against the paper and measures what one full RQ2
pass over the 340-sample dataset would cost per model — the economics behind
the paper's RQ3 recommendation to "save money on input token costs by
prompting in zero-shot style with reasoning models".
"""

from __future__ import annotations

from repro.eval.runner import run_queries
from repro.llm import all_models
from repro.prompts import build_classify_prompt
from repro.util.tables import format_table

#: Table 1 column 3 (April 2025 pricing).
PAPER_PRICING = {
    "o3-mini-high": (1.1, 4.4),
    "o1": (15.0, 60.0),
    "o3-mini": (1.1, 4.4),
    "gpt-4.5-preview": (75.0, 150.0),
    "o1-mini-2024-09-12": (1.1, 4.4),
    "gemini-2.0-flash-001": (0.1, 0.4),
    "gpt-4o-2024-11-20": (2.5, 10.0),
    "gpt-4o-mini": (0.15, 0.6),
    "gpt-4o-mini-2024-07-18": (0.15, 0.6),
}


def _run(balanced):
    items0 = [
        (s.uid, build_classify_prompt(s, few_shot=False).text, s.label)
        for s in balanced
    ]
    items3 = [
        (s.uid, build_classify_prompt(s, few_shot=True).text, s.label)
        for s in balanced
    ]
    out = {}
    for model in all_models():
        zero = run_queries(model, items0)
        few = run_queries(model, items3)
        out[model.name] = (zero.usage, few.usage)
    return out


def test_table1_costs(benchmark, balanced):
    usage = benchmark.pedantic(_run, args=(balanced,), rounds=1, iterations=1)

    rows = []
    for model in all_models():
        cfg = model.config
        zero, few = usage[model.name]
        rows.append([
            cfg.name,
            "yes" if cfg.reasoning else "",
            f"${cfg.input_cost_per_m:g} / ${cfg.output_cost_per_m:g}",
            zero["cost_usd"],
            few["cost_usd"],
        ])
    print()
    print(format_table(
        ["Model", "Reasoning", "$/1M in/out", "RQ2 sweep $", "RQ3 sweep $"],
        rows, float_fmt=".3f",
        title="E9 — Table 1 cols 1-3 + measured sweep costs",
    ))

    for model in all_models():
        cfg = model.config
        paper_in, paper_out = PAPER_PRICING[cfg.name]
        assert cfg.input_cost_per_m == paper_in, cfg.name
        assert cfg.output_cost_per_m == paper_out, cfg.name
        zero, few = usage[model.name]
        # Few-shot prompts carry the example code: they must cost more.
        assert few["input_tokens"] > zero["input_tokens"], cfg.name
        assert few["cost_usd"] > zero["cost_usd"], cfg.name

    # The paper's RQ3 takeaway: zero-shot reasoning beats paying for shots.
    o3_zero = usage["o3-mini-high"][0]["cost_usd"]
    o3_few = usage["o3-mini-high"][1]["cost_usd"]
    assert o3_few / o3_zero > 1.5
