"""The :class:`ArtifactStore` base: segments, eviction, atomic writes.

Extracted verbatim from the profile store (PR 4) so that every
content-addressed disk cache in the repo shares one implementation of the
risky parts — atomic read-merge-write segment I/O, corruption-tolerant
reads, and size-bounded oldest-first eviction. Subclasses declare their
``version`` string (recorded in and checked against every segment) and
their ``segment_prefixes`` (the filename prefixes of every segment kind
the store *family* owns — stores sharing one root directory list the
union, so a shared size bound spans all of them).
"""

from __future__ import annotations

import json
import os
import threading
import weakref
from pathlib import Path
from typing import Callable, Iterator, Mapping, TypeVar

T = TypeVar("T")

# ---------------------------------------------------------------------------
# Identity-memoized content keys
# ---------------------------------------------------------------------------

# Content digests cover deep object trees (kernel IR, program specs), so
# they are memoized per object identity — the corpus programs, the
# per-spec DeviceModels, and the trained tokenizer are long-lived shared
# instances. Weakref callbacks evict entries when the object dies, which
# also defuses id() reuse.
_KEY_LOCK = threading.Lock()


def memoized_object_key(
    obj: object, memo: dict, compute: Callable[[object], str]
) -> str:
    """``compute(obj)``, cached per object identity in ``memo``."""
    ident = id(obj)
    with _KEY_LOCK:
        hit = memo.get(ident)
        if hit is not None and hit[0]() is obj:
            return hit[1]
    key = compute(obj)

    # The lock rides in as a default arg: at interpreter shutdown module
    # globals are torn down to None before late weakref callbacks fire.
    def _evict(_ref, *, ident=ident, memo=memo, lock=_KEY_LOCK) -> None:
        with lock:
            memo.pop(ident, None)

    with _KEY_LOCK:
        memo[ident] = (weakref.ref(obj, _evict), key)
    return key


# ---------------------------------------------------------------------------
# The store base
# ---------------------------------------------------------------------------

class ArtifactStore:
    """Disk-backed JSON segments with size-bounded eviction.

    One JSON segment per reuse unit (a device's profiles, a corpus's
    sources, a tokenizer's counts). Writes are atomic and
    read-merge-write, so concurrent writers can at worst lose some of
    each other's *warmth* — entries are content-addressed and
    deterministic, so no interleaving can install a wrong value.

    Pass ``max_bytes`` for a size-bounded store: after each put, whole
    segments are evicted oldest-written-first until the store fits (a
    segment is the reuse unit, so entry-level eviction would buy nothing
    but bookkeeping).
    """

    #: Recorded in every segment payload and checked on read; bump in the
    #: subclass whenever the artifact's semantics change.
    version: str = ""

    #: Filename prefixes of every segment kind this store's family owns.
    #: Size accounting, eviction, and ``clear`` operate over the union, so
    #: stores sharing one root share one bound.
    segment_prefixes: tuple[str, ...] = ()

    def __init__(self, root: str | Path, *, max_bytes: int | None = None):
        self.root = Path(root)
        self.max_bytes = max_bytes if max_bytes and max_bytes > 0 else None

    # -- segment I/O ---------------------------------------------------------
    def _segment_path(self, prefix: str, key: str) -> Path:
        return self.root / f"{prefix}{key[:32]}.json"

    def _segment_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        try:
            return sorted(
                p
                for p in self.root.iterdir()
                if p.name.endswith(".json")
                and p.name.startswith(self.segment_prefixes)
            )
        except OSError:
            return []  # root vanished mid-scan (concurrent wipe)

    def _read_segment(self, path: Path, *, expect_key: str | None) -> dict:
        """A segment's ``entries`` dict; anything unreadable reads as empty.

        ``expect_key`` guards against prefix-truncated filename collisions
        and version skew: a segment whose recorded key differs is ignored.
        """
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or data.get("version") != self.version:
            return {}
        if expect_key is not None and data.get("key") != expect_key:
            return {}
        entries = data.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _write_segment(
        self, path: Path, payload: dict, merge_into: dict
    ) -> None:
        """Atomically install ``payload`` with ``entries`` = merge of the
        segment's current entries and ``merge_into``. Unwritable stores
        degrade to uncached, never crash the computing pass."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(
                f".tmp.{os.getpid()}.{threading.get_ident()}"
            )
            tmp.write_text(
                json.dumps({**payload, "entries": merge_into}, sort_keys=True),
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError:
            return
        self._maybe_evict()

    def _merge_entries(
        self, path: Path, payload: dict, entries: Mapping, *,
        expect_key: str | None,
    ) -> None:
        """Read-merge-write ``entries`` into the segment at ``path``."""
        if not entries:
            return
        merged = self._read_segment(path, expect_key=expect_key)
        merged.update(entries)
        self._write_segment(path, payload, merged)

    def iter_segments(self) -> Iterator[tuple[Path, dict]]:
        """Yield ``(path, payload)`` for every readable current-version
        segment — the raw material for subclass manifests."""
        for path in self._segment_files():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(data, dict) or data.get("version") != self.version:
                continue
            if not isinstance(data.get("entries"), dict):
                continue
            yield path, data

    # -- lifecycle -----------------------------------------------------------
    def size_bytes(self) -> int:
        total = 0
        for p in self._segment_files():
            try:
                total += p.stat().st_size
            except OSError:
                continue
        return total

    def _maybe_evict(self) -> None:
        if self.max_bytes is not None:
            self.evict()

    def evict(self, max_bytes: int | None = None) -> int:
        """Delete oldest-written segments until the store fits ``max_bytes``
        (defaults to the configured bound). Returns segments removed."""
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None or bound <= 0:
            return 0
        stats: list[tuple[float, int, Path]] = []
        total = 0
        for p in self._segment_files():
            try:
                st = p.stat()
            except OSError:
                continue
            stats.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        if total <= bound:
            return 0
        removed = 0
        for _, size, path in sorted(stats):
            if total <= bound:
                break
            try:
                path.unlink()
            except OSError:
                continue  # lost a race with a concurrent evictor
            total -= size
            removed += 1
        return removed

    def clear(self) -> None:
        # Remove only segment files, never the root wholesale: the
        # directory may contain unrelated files.
        for path in self._segment_files():
            try:
                path.unlink()
            except OSError:
                pass
        if not self.root.is_dir():
            return
        for stale in self.root.glob("*.tmp.*"):
            try:
                stale.unlink()
            except OSError:
                pass
