"""Tests for op counting, traffic estimation, and the static AI pipeline."""

import pytest

from repro.analysis import (
    TypeEnv,
    analyze_kernel,
    classify_static,
    find_kernel,
    scan_statement,
)
from repro.analysis.memtraffic import estimate_access
from repro.analysis.opcount import RawAccess
from repro.roofline import RTX_3080
from repro.types import Boundedness, Language, OpClass


def _env():
    env = TypeEnv()
    env.declare_pointer("x", "float")
    env.declare_pointer("y", "float")
    env.declare_pointer("d", "double")
    env.declare_pointer("keys", "int")
    env.declare_scalar("alpha", "float")
    env.declare_scalar("n", "int")
    env.declare_scalar("gx", "int")
    env.declare_scalar("k", "int")
    return env


class TestScanStatement:
    def test_saxpy_statement(self):
        ops, acc = scan_statement("y[gx] = alpha * x[gx] + y[gx]", _env())
        assert ops.sp == pytest.approx(2.0)  # mul + add
        kinds = sorted(a.kind for a in acc)
        assert kinds == ["load", "load", "store"]

    def test_double_expression_classed_dp(self):
        ops, _ = scan_statement("d[gx] = d[gx] * d[gx]", _env())
        assert ops.dp == pytest.approx(1.0)
        assert ops.sp == 0.0

    def test_integer_expression(self):
        ops, _ = scan_statement("keys[gx] = (keys[gx] << 3) ^ keys[gx]", _env())
        assert ops.int_ >= 2.0  # shift + xor (+ addressing)
        assert ops.sp == 0.0

    def test_index_arithmetic_is_integer(self):
        ops, _ = scan_statement("y[gx * n + k] = alpha", _env())
        assert ops.int_ >= 2.0
        assert ops.sp == 0.0

    def test_math_call_cost(self):
        ops, _ = scan_statement("y[gx] = sqrtf(x[gx])", _env())
        assert ops.sp == pytest.approx(4.0)
        assert ops.sfu == pytest.approx(1.0)

    def test_fma_cost(self):
        ops, _ = scan_statement("y[gx] = fmaf(alpha, x[gx], y[gx])", _env())
        assert ops.sp == pytest.approx(2.0)

    def test_division_weighted(self):
        ops, _ = scan_statement("y[gx] = x[gx] / alpha", _env())
        assert ops.sp == pytest.approx(4.0)

    def test_compound_assign_counts_op(self):
        ops, acc = scan_statement("y[gx] += x[gx]", _env())
        assert ops.sp == pytest.approx(1.0)
        assert any(a.kind == "rmw" for a in acc)

    def test_atomic_add_form(self):
        ops, acc = scan_statement("atomicAdd(&y[gx], x[gx])", _env())
        assert any(a.kind == "rmw" and a.array == "y" for a in acc)
        assert any(a.kind == "load" and a.array == "x" for a in acc)

    def test_equality_not_store(self):
        ops, acc = scan_statement("x[gx] == alpha", _env())
        assert all(a.kind == "load" for a in acc)

    def test_scalar_assignment(self):
        ops, acc = scan_statement("acc = x[gx] * alpha", _env())
        assert ops.sp == pytest.approx(1.0)
        assert len(acc) == 1


class TestAccessEstimation:
    def test_unit_stride(self):
        est = estimate_access(RawAccess("x", "gx", "load"), _env(), ())
        assert est.bytes_per_exec == 4.0

    def test_const_stride(self):
        est = estimate_access(RawAccess("x", "4 * gx", "load"), _env(), ())
        assert est.bytes_per_exec == 16.0

    def test_symbolic_stride_uncoalesced(self):
        est = estimate_access(RawAccess("x", "gx * n + k", "load"), _env(), ("k",))
        assert est.bytes_per_exec == 32.0

    def test_broadcast_with_loop_var(self):
        est = estimate_access(RawAccess("x", "k", "load"), _env(), ("k",))
        assert est.bytes_per_exec == pytest.approx(4.0 / 32.0)
        assert est.varying_loops == ("k",)

    def test_invariant_access_nearly_free(self):
        est = estimate_access(RawAccess("x", "0", "load"), _env(), ("k",))
        assert est.bytes_per_exec < 0.01

    def test_dynamic_gather_costs_sector(self):
        est = estimate_access(RawAccess("x", "keys[gx] % n", "load"), _env(), ())
        assert est.is_dynamic
        assert est.bytes_per_exec == 32.0

    def test_shared_array_skipped(self):
        env = _env()
        env.declare_shared("tile", "float")
        assert estimate_access(RawAccess("tile", "k", "load"), env, ("k",)) is None

    def test_double_element_size(self):
        est = estimate_access(RawAccess("d", "gx", "load"), _env(), ())
        assert est.bytes_per_exec == 8.0


CUDA_SAXPY = """
__global__ void saxpy(const float *__restrict__ x, float *__restrict__ y, float alpha, int n)
{
  const int gx = blockIdx.x * blockDim.x + threadIdx.x;
  if (gx >= n) return;
  y[gx] = alpha * x[gx] + y[gx];
}
"""

CUDA_PAIRWISE = """
__global__ void pair_force(const float *__restrict__ px, float *__restrict__ out, float eps, int n)
{
  const int gx = blockIdx.x * blockDim.x + threadIdx.x;
  if (gx >= n) return;
  float xi = px[gx];
  float acc = 0.0f;
  for (int j = 0; j < n; j++) {
    float dx = px[j] - xi;
    float r2 = dx * dx + eps;
    float inv = rsqrtf(r2);
    acc = fmaf(inv, dx, acc);
  }
  out[gx] = acc;
}
"""

OMP_SAXPY = """
void saxpy(const float *x, float *y, float alpha, int n)
{
  #pragma omp target teams distribute parallel for thread_limit(256)
  for (int gx = 0; gx < n; gx++) {
    y[gx] = alpha * x[gx] + y[gx];
  }
}
"""


class TestAnalyzeKernel:
    def test_saxpy_estimate(self):
        k = find_kernel(CUDA_SAXPY, "saxpy", Language.CUDA)
        est = analyze_kernel(k, param_values={"n": 1 << 20})
        # 2 flops over 12 bytes
        assert est.ops_sp == pytest.approx(2.0)
        assert est.bytes_per_thread == pytest.approx(12.0, rel=0.05)
        assert est.intensity(OpClass.SP) == pytest.approx(2 / 12, rel=0.1)

    def test_saxpy_classified_bb(self):
        k = find_kernel(CUDA_SAXPY, "saxpy", Language.CUDA)
        est = analyze_kernel(k, param_values={"n": 1 << 20})
        bp = {oc: rl.balance_point for oc, rl in RTX_3080.rooflines()}
        assert classify_static(est, bp) is Boundedness.BANDWIDTH

    def test_pairwise_classified_cb(self):
        k = find_kernel(CUDA_PAIRWISE, "pair_force", Language.CUDA)
        est = analyze_kernel(k, param_values={"n": 16384})
        bp = {oc: rl.balance_point for oc, rl in RTX_3080.rooflines()}
        assert est.ops_sp > 1000.0  # loop-scaled flops
        assert classify_static(est, bp) is Boundedness.COMPUTE

    def test_trip_count_from_argv(self):
        k = find_kernel(CUDA_PAIRWISE, "pair_force", Language.CUDA)
        small = analyze_kernel(k, param_values={"n": 64})
        large = analyze_kernel(k, param_values={"n": 65536})
        assert large.ops_sp > small.ops_sp * 100

    def test_unresolved_bound_counted(self):
        k = find_kernel(CUDA_PAIRWISE, "pair_force", Language.CUDA)
        est = analyze_kernel(k, param_values={})
        assert est.unresolved_bounds >= 1
        assert est.guess_fraction > 0.0

    def test_omp_thread_loop_unwrapped(self):
        k = find_kernel(OMP_SAXPY, "saxpy", Language.OMP)
        est = analyze_kernel(k, param_values={"n": 1 << 20})
        # same per-thread shape as the CUDA version — the offload loop is
        # the thread dimension, not a sequential loop
        assert est.ops_sp == pytest.approx(2.0)
        assert est.bytes_per_thread == pytest.approx(12.0, rel=0.05)

    def test_guard_not_charged(self):
        k = find_kernel(CUDA_SAXPY, "saxpy", Language.CUDA)
        est = analyze_kernel(k, param_values={"n": 4})
        assert est.branch_sites == 0  # the bounds guard is not a real branch

    def test_ideal_analyst_accuracy_band(self, dataset):
        """The noise-free analyst must clearly beat chance but stay under
        90% — its ceiling is what keeps the paper's task hard (DESIGN.md §5)."""
        bp = {oc: rl.balance_point for oc, rl in RTX_3080.rooflines()}
        right = 0
        for s in dataset.balanced:
            k = find_kernel(s.source, s.kernel_name, s.language)
            vals = {}
            for tok in s.argv.split():
                pass
            est = analyze_kernel(
                k,
                param_values={
                    t[2:]: int(v)
                    for t, v in zip(s.argv.split(), s.argv.split()[1:])
                    if t.startswith("--")
                },
            )
            if classify_static(est, bp) == s.label:
                right += 1
        accuracy = right / len(dataset.balanced)
        assert 0.70 <= accuracy <= 0.90
