"""Tests for prompt construction and the emulator's prompt parsing.

The round trip (build prompt → parse prompt) must recover every structured
fact: this is the contract between repro.prompts and repro.llm.
"""

import pytest

from repro.llm.promptio import (
    estimate_prompt_tokens,
    parse_classify_query,
    parse_roofline_query,
)
from repro.prompts import (
    build_classify_prompt,
    build_rq1_prompt,
    generate_question,
    generate_rq1_questions,
)
from repro.prompts.examples import real_examples
from repro.roofline import RTX_3080
from repro.types import Boundedness, Language, OpClass
from repro.util.rng import RngStream


class TestRq1Prompts:
    def test_question_generation_respects_label(self):
        rng = RngStream("t")
        for want in (Boundedness.BANDWIDTH, Boundedness.COMPUTE):
            for i in range(20):
                q = generate_question(rng.child(i, want.value), force_label=want)
                assert q.truth is want

    def test_workload_is_balanced(self):
        qs = generate_rq1_questions(50)
        assert len(qs) == 100
        cb = sum(1 for q in qs if q.truth is Boundedness.COMPUTE)
        assert cb == 50

    def test_prompt_contains_question_values(self):
        q = generate_question(RngStream("x"))
        prompt = build_rq1_prompt(q, shots=2)
        assert f"{q.ai:.2f} FLOP/Byte" in prompt
        assert "Answer:" in prompt

    def test_cot_examples_marked(self):
        q = generate_question(RngStream("x"))
        plain = build_rq1_prompt(q, shots=2, chain_of_thought=False)
        cot = build_rq1_prompt(q, shots=4, chain_of_thought=True)
        assert "Thought:" not in plain
        assert "Thought:" in cot
        assert "balance point" in cot

    def test_minimum_two_shots(self):
        q = generate_question(RngStream("x"))
        with pytest.raises(ValueError):
            build_rq1_prompt(q, shots=1)

    def test_parse_recovers_final_question(self):
        q = generate_question(RngStream("y"))
        prompt = build_rq1_prompt(q, shots=8, chain_of_thought=True)
        parsed = parse_roofline_query(prompt)
        assert parsed is not None
        assert parsed.ai == pytest.approx(q.ai, abs=0.01)
        assert parsed.bandwidth_gbs == pytest.approx(q.bandwidth_gbs, abs=0.1)
        assert parsed.peak_gflops == pytest.approx(q.peak_gflops, abs=0.01)
        assert parsed.num_examples == 8
        assert parsed.has_chain_of_thought_examples

    def test_parse_rejects_other_text(self):
        assert parse_roofline_query("write me a poem about GPUs") is None


class TestClassifyPrompts:
    def test_prompt_structure(self, balanced_samples):
        s = balanced_samples[0]
        p = build_classify_prompt(s)
        assert "GPU performance analysis expert" in p.text
        assert f"kernel called {s.kernel_name}" in p.text
        assert s.argv in p.text
        assert s.source in p.text
        assert "['Compute', 'Bandwidth']" in p.text

    def test_zero_shot_uses_pseudo_examples(self, balanced_samples):
        p = build_classify_prompt(balanced_samples[0], few_shot=False)
        assert "load_data(large_array)" in p.text

    def test_few_shot_uses_real_examples(self, balanced_samples):
        s = balanced_samples[0]
        p = build_classify_prompt(s, few_shot=True)
        assert "load_data(large_array)" not in p.text
        assert f"Kernel Source Code ({s.language.display})" in p.text

    def test_parse_roundtrip(self, balanced_samples):
        for s in balanced_samples[:25]:
            prompt = build_classify_prompt(s).text
            q = parse_classify_query(prompt)
            assert q is not None, s.uid
            assert q.kernel_name == s.kernel_name
            assert q.language is s.language
            assert q.argv == s.argv
            assert q.block == s.block
            assert q.grid == s.grid
            assert q.sp_peak == pytest.approx(RTX_3080.sp_peak_gflops, abs=0.1)
            assert q.bandwidth == pytest.approx(RTX_3080.bandwidth_gbs, abs=0.1)
            assert s.kernel_name in q.source

    def test_parse_detects_real_examples(self, balanced_samples):
        s = balanced_samples[0]
        q0 = parse_classify_query(build_classify_prompt(s, few_shot=False).text)
        q3 = parse_classify_query(build_classify_prompt(s, few_shot=True).text)
        assert not q0.has_real_examples
        assert q3.has_real_examples

    def test_argv_values(self, balanced_samples):
        s = balanced_samples[0]
        q = parse_classify_query(build_classify_prompt(s).text)
        vals = q.argv_values()
        assert vals  # at least one flag
        for name, v in vals.items():
            assert f"--{name} {v}" in s.argv

    def test_balance_points(self, balanced_samples):
        q = parse_classify_query(build_classify_prompt(balanced_samples[0]).text)
        bp = q.balance_points()
        expected = RTX_3080.rooflines().balance_points()
        for oc in OpClass:
            assert bp[oc] == pytest.approx(expected[oc], rel=0.01)

    def test_parse_rejects_other_text(self):
        assert parse_classify_query("please summarize this paper") is None


class TestRealExamples:
    @pytest.mark.parametrize("language", [Language.CUDA, Language.OMP])
    def test_one_of_each_label(self, language):
        bb, cb = real_examples(language)
        assert bb.label is Boundedness.BANDWIDTH
        assert cb.label is Boundedness.COMPUTE
        assert bb.language is language

    def test_examples_not_in_dataset(self, balanced_samples):
        example_names = set()
        for language in (Language.CUDA, Language.OMP):
            for ex in real_examples(language):
                example_names.add(ex.name)
        dataset_names = {s.program_name for s in balanced_samples}
        assert not (example_names & dataset_names)


class TestTokenEstimate:
    def test_monotone(self):
        assert estimate_prompt_tokens("ab" * 100) > estimate_prompt_tokens("ab")

    def test_minimum_one(self):
        assert estimate_prompt_tokens("") == 1
