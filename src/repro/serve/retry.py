"""Serve-side retry: the shared policy bound to provider errors, plus
the async token-bucket rate limiter.

The schedule machinery (:class:`RetryPolicy`, jittered backoff, attempt
deadlines, the retry drivers) lives in :mod:`repro.util.retry` since the
sync batch engine retries under the same policy; this module re-exports
it unchanged and specializes :func:`call_with_retry` to the provider
error taxonomy — retrying exactly
:data:`~repro.serve.providers.RETRYABLE_ERRORS` and surfacing attempt
deadline overruns as :class:`~repro.serve.providers.ProviderTimeout`.

Determinism note: backoff delays and attempt timeouts are *jittered*
(decorrelating clients that fail together), which makes wall-clock timing
random — but never results. The jitter RNG is injectable for tests, and
``sleep`` is injectable so tests run in virtual time.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Awaitable, Callable

from repro.serve.providers import ProviderTimeout
from repro.util.retry import RetryPolicy, Sleep, TransientError
from repro.util.retry import call_with_retry as _call_with_retry

__all__ = ["RateLimiter", "RetryPolicy", "Sleep", "call_with_retry"]


async def call_with_retry(
    fn: Callable[[], Awaitable],
    *,
    policy: RetryPolicy,
    rng: random.Random | None = None,
    sleep: Sleep = asyncio.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
    deadline: float | None = None,
    clock: Callable[[], float] = time.monotonic,
):
    """Await ``fn()`` with bounded retries under ``policy``.

    Retries every :class:`~repro.util.retry.TransientError` — which the
    provider taxonomy (:data:`~repro.serve.providers.RETRYABLE_ERRORS`)
    and the injected serving faults all subclass; an attempt that
    overruns its jittered deadline is surfaced as
    :class:`~repro.serve.providers.ProviderTimeout` (itself retryable).
    Non-retryable exceptions and the final retryable failure propagate
    unchanged. ``on_retry(attempt, error)`` fires before each backoff
    sleep — the serving engine counts retries through it. ``deadline``
    (absolute, on ``clock``) clips attempts to the caller's remaining
    budget; see :func:`repro.util.retry.call_with_retry`.
    """
    return await _call_with_retry(
        fn,
        policy=policy,
        retryable=(TransientError,),
        rng=rng,
        sleep=sleep,
        on_retry=on_retry,
        timeout_error=lambda attempt, timeout: ProviderTimeout(
            f"attempt {attempt + 1} exceeded {timeout:.3f}s"
        ),
        deadline=deadline,
        clock=clock,
    )


class RateLimiter:
    """Async token bucket: sustained ``rate`` acquisitions/s, bursts of
    ``burst``.

    Single-event-loop discipline: state is mutated only between awaits, so
    no lock is needed. Waiters self-schedule — each sleeps exactly until
    its own token matures — and ``_reserved`` tokens make concurrent
    waiters queue FIFO-fairly instead of stampeding the bucket when it
    refills. ``rate=None`` (or ``<= 0``) disables limiting;
    ``clock``/``sleep`` are injectable for virtual-time tests.
    """

    def __init__(
        self,
        rate: float | None,
        burst: int = 1,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Sleep = asyncio.sleep,
    ) -> None:
        if rate is not None and rate <= 0:
            rate = None
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._sleep = sleep
        self._tokens = float(burst)
        self._reserved = 0.0  # tokens promised to already-queued waiters
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        assert self.rate is not None
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    async def acquire(self) -> None:
        """Take one token, sleeping until the bucket can cover it."""
        if self.rate is None:
            return
        self._refill()
        # Claim a place in line: our token is the (_reserved + 1)-th to
        # mature. Reserving before sleeping keeps arrivals FIFO.
        deficit = self._reserved + 1.0 - self._tokens
        if deficit <= 0:
            self._tokens -= 1.0
            return
        self._reserved += 1.0
        try:
            await self._sleep(deficit / self.rate)
        finally:
            self._reserved -= 1.0
        self._refill()
        self._tokens -= 1.0  # may briefly dip below 0 under cancellation
