"""Persistent, content-addressed profile store.

The response cache (PR 1) made LLM completions replayable across
processes; this module does the same for the other cold-path cost — the
``ncu``-style per-kernel profiles of :mod:`repro.gpusim.profiler`. Every
profile is addressed by SHA-256 over

* the **program digest** — kernel IR, launch geometry, argv bindings, and
  the program uid (the uid keys the deterministic noise draws, so two
  IR-identical programs with different uids profile differently and must
  never share an entry),
* the **device digest** — every :class:`~repro.roofline.hardware.GpuSpec`
  field plus every :class:`~repro.gpusim.device.DeviceModel` simulation
  parameter, and
* :data:`PROFILER_VERSION`, bumped whenever walker/finalize semantics
  change.

Any IR edit, recalibration, or profiler change therefore invalidates
exactly the affected entries; a stale entry can only ever read as a miss,
never as a wrong profile.

Storage is segment-per-device rather than file-per-entry: one profile
pass reads and writes whole device batches, and a single JSON segment
turns a warm 6-device corpus pass into six file reads instead of ~4500.
Phase-1 traces (:class:`~repro.gpusim.profiler.SymbolicTrace`) persist in
their own device-independent segment, so even a device never profiled
before skips the IR walk. Both segment kinds are written atomically
(temp file + :func:`os.replace`) and torn/corrupt/foreign files read as
empty — a put repairs them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.util.hashing import stable_hash_hex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (profiler imports us)
    from repro.gpusim.device import DeviceModel
    from repro.gpusim.profiler import KernelProfile, SymbolicTrace
    from repro.kernels.program import ProgramSpec

#: Bump whenever the walker, traffic model, jitter, or timing semantics
#: change: the version is hashed into every key, so old entries become
#: unreachable (misses) instead of replaying stale counters.
PROFILER_VERSION = "gpusim-profiler-v1"

#: Environment override for the on-disk profile store location.
PROFILE_CACHE_ENV = "REPRO_PROFILE_CACHE"

#: Environment override for the profile store size bound (bytes).
PROFILE_CACHE_MAX_BYTES_ENV = "REPRO_PROFILE_CACHE_MAX_BYTES"

#: Default on-disk profile store directory (the CLI's default; the library
#: attaches no store unless ``$REPRO_PROFILE_CACHE`` is set).
DEFAULT_PROFILE_CACHE_DIRNAME = ".repro-profile-cache"

_SEGMENT_PREFIX_PROFILES = "profiles-"
_SEGMENT_PREFIX_TRACES = "traces-"


def default_profile_cache_dir() -> Path:
    """Where the CLI keeps its profile store (``$REPRO_PROFILE_CACHE`` wins)."""
    return Path(
        os.environ.get(PROFILE_CACHE_ENV) or DEFAULT_PROFILE_CACHE_DIRNAME
    )


def default_profile_cache_max_bytes() -> int | None:
    """``$REPRO_PROFILE_CACHE_MAX_BYTES`` as an int (None = unbounded)."""
    raw = os.environ.get(PROFILE_CACHE_MAX_BYTES_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


# ---------------------------------------------------------------------------
# Content digests
# ---------------------------------------------------------------------------

# Digests are memoized per object identity (the corpus and the per-spec
# DeviceModels are long-lived shared instances); weakref callbacks evict
# entries when the object dies, which also defuses id() reuse.
_KEY_LOCK = threading.Lock()
_PROGRAM_KEYS: dict[int, tuple["weakref.ref", str]] = {}
_DEVICE_KEYS: dict[int, tuple["weakref.ref", str]] = {}


def _memoized_key(obj: object, memo: dict, compute) -> str:
    ident = id(obj)
    with _KEY_LOCK:
        hit = memo.get(ident)
        if hit is not None and hit[0]() is obj:
            return hit[1]
    key = compute(obj)

    # The lock rides in as a default arg: at interpreter shutdown module
    # globals are torn down to None before late weakref callbacks fire.
    def _evict(_ref, *, ident=ident, memo=memo, lock=_KEY_LOCK) -> None:
        with lock:
            memo.pop(ident, None)

    with _KEY_LOCK:
        memo[ident] = (weakref.ref(obj, _evict), key)
    return key


def program_profile_key(program: "ProgramSpec") -> str:
    """SHA-256 content address of one program's profiling inputs.

    Covers the first kernel's IR, launch geometry, and binding expressions
    (via the deterministic ``repr`` of the frozen dataclass tree), the
    command line, the program uid (it keys the noise streams), and the
    profiler version.
    """
    return _memoized_key(program, _PROGRAM_KEYS, _compute_program_key)


def _compute_program_key(program: "ProgramSpec") -> str:
    return stable_hash_hex(
        PROFILER_VERSION,
        program.uid,
        repr(program.first_kernel),
        repr(program.cmdline),
    )


def device_profile_key(device: "DeviceModel") -> str:
    """SHA-256 content address of one device's simulation parameters."""
    return _memoized_key(device, _DEVICE_KEYS, _compute_device_key)


def _compute_device_key(device: "DeviceModel") -> str:
    spec = device.spec
    spec_parts = [getattr(spec, f.name) for f in dataclasses.fields(spec)]
    model_parts = [
        getattr(device, f.name)
        for f in dataclasses.fields(device)
        if f.name != "spec"
    ]
    return stable_hash_hex(PROFILER_VERSION, spec_parts, model_parts)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProfileStoreManifest:
    """Summary of a profile store's contents (``repro-paper cache``)."""

    version: str
    profile_entries: int
    trace_entries: int
    total_bytes: int
    per_device: tuple[tuple[str, int], ...]  # (device name, entries), sorted

    def render(self) -> str:
        lines = [
            f"profiler:  {self.version}",
            f"profiles:  {self.profile_entries}",
            f"traces:    {self.trace_entries}",
            f"bytes:     {self.total_bytes}",
        ]
        for name, count in self.per_device:
            lines.append(f"  {name}: {count}")
        return "\n".join(lines)


class ProfileStore:
    """Disk-backed profile/trace segments with size-bounded eviction.

    One JSON segment per device (plus one per profiler version for the
    device-independent traces). Writes are atomic and read-merge-write, so
    concurrent writers can at worst lose some of each other's *warmth* —
    entries are content-addressed and deterministic, so no interleaving
    can install a wrong value.

    Pass ``max_bytes`` for a size-bounded store: after each put, whole
    segments are evicted oldest-written-first until the store fits (a
    segment is the reuse unit — profile passes read device batches — so
    entry-level eviction would buy nothing but bookkeeping).
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None):
        self.root = Path(root)
        self.max_bytes = max_bytes if max_bytes and max_bytes > 0 else None

    # -- segment I/O ---------------------------------------------------------
    def _profiles_path(self, device_key: str) -> Path:
        return self.root / f"{_SEGMENT_PREFIX_PROFILES}{device_key[:32]}.json"

    def _traces_path(self) -> Path:
        version_key = stable_hash_hex(PROFILER_VERSION)
        return self.root / f"{_SEGMENT_PREFIX_TRACES}{version_key[:32]}.json"

    def _segment_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        try:
            return sorted(
                p
                for p in self.root.iterdir()
                if p.name.endswith(".json")
                and p.name.startswith(
                    (_SEGMENT_PREFIX_PROFILES, _SEGMENT_PREFIX_TRACES)
                )
            )
        except OSError:
            return []  # root vanished mid-scan (concurrent wipe)

    def _read_segment(self, path: Path, *, expect_key: str | None) -> dict:
        """A segment's ``entries`` dict; anything unreadable reads as empty.

        ``expect_key`` guards against prefix-truncated filename collisions
        and version skew: a segment whose recorded key differs is ignored.
        """
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or data.get("version") != PROFILER_VERSION:
            return {}
        if expect_key is not None and data.get("key") != expect_key:
            return {}
        entries = data.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _write_segment(
        self, path: Path, payload: dict, merge_into: dict
    ) -> None:
        """Atomically install ``payload`` with ``entries`` = merge of the
        segment's current entries and ``merge_into``. Unwritable stores
        degrade to uncached, never crash a profile pass."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(
                f".tmp.{os.getpid()}.{threading.get_ident()}"
            )
            tmp.write_text(
                json.dumps({**payload, "entries": merge_into}, sort_keys=True),
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError:
            return
        self._maybe_evict()

    # -- profiles ------------------------------------------------------------
    def get_profiles(
        self, device: "DeviceModel", program_keys: Sequence[str]
    ) -> dict[str, "KernelProfile"]:
        """program key → profile for every requested key present on disk."""
        from repro.gpusim.profiler import KernelProfile

        dkey = device_profile_key(device)
        entries = self._read_segment(
            self._profiles_path(dkey), expect_key=dkey
        )
        out: dict[str, KernelProfile] = {}
        for key in program_keys:
            raw = entries.get(key)
            if raw is None:
                continue
            try:
                out[key] = KernelProfile.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue  # corrupt entry == miss; the re-put repairs it
        return out

    def put_profiles(
        self, device: "DeviceModel", profiles: Mapping[str, "KernelProfile"]
    ) -> None:
        """Merge ``program key → profile`` into the device's segment."""
        if not profiles:
            return
        dkey = device_profile_key(device)
        path = self._profiles_path(dkey)
        entries = self._read_segment(path, expect_key=dkey)
        entries.update(
            {key: prof.to_dict() for key, prof in profiles.items()}
        )
        self._write_segment(
            path,
            {
                "version": PROFILER_VERSION,
                "key": dkey,
                "device": device.spec.name,
            },
            entries,
        )

    # -- traces --------------------------------------------------------------
    def get_traces(
        self, program_keys: Sequence[str]
    ) -> dict[str, "SymbolicTrace"]:
        """program key → phase-1 trace for every requested key on disk."""
        from repro.gpusim.profiler import SymbolicTrace

        entries = self._read_segment(self._traces_path(), expect_key=None)
        out: dict[str, SymbolicTrace] = {}
        for key in program_keys:
            raw = entries.get(key)
            if raw is None:
                continue
            try:
                out[key] = SymbolicTrace.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue
        return out

    def put_traces(self, traces: Mapping[str, "SymbolicTrace"]) -> None:
        if not traces:
            return
        path = self._traces_path()
        entries = self._read_segment(path, expect_key=None)
        entries.update({key: tr.to_dict() for key, tr in traces.items()})
        self._write_segment(
            path, {"version": PROFILER_VERSION}, entries
        )

    # -- lifecycle -----------------------------------------------------------
    def __len__(self) -> int:
        """Total stored profile entries (traces are not counted)."""
        total = 0
        for path in self._segment_files():
            if path.name.startswith(_SEGMENT_PREFIX_PROFILES):
                total += len(self._read_segment(path, expect_key=None))
        return total

    def size_bytes(self) -> int:
        total = 0
        for p in self._segment_files():
            try:
                total += p.stat().st_size
            except OSError:
                continue
        return total

    def _maybe_evict(self) -> None:
        if self.max_bytes is not None:
            self.evict()

    def evict(self, max_bytes: int | None = None) -> int:
        """Delete oldest-written segments until the store fits ``max_bytes``
        (defaults to the configured bound). Returns segments removed."""
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None or bound <= 0:
            return 0
        stats: list[tuple[float, int, Path]] = []
        total = 0
        for p in self._segment_files():
            try:
                st = p.stat()
            except OSError:
                continue
            stats.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        if total <= bound:
            return 0
        removed = 0
        for _, size, path in sorted(stats):
            if total <= bound:
                break
            try:
                path.unlink()
            except OSError:
                continue  # lost a race with a concurrent evictor
            total -= size
            removed += 1
        return removed

    def manifest(self) -> ProfileStoreManifest:
        """Entry counts, bytes, and per-device breakdown. A missing or
        empty directory reads as an empty manifest, never an error."""
        profile_entries = 0
        trace_entries = 0
        total_bytes = 0
        per_device: dict[str, int] = {}
        for path in self._segment_files():
            try:
                total_bytes += path.stat().st_size
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(data, dict) or data.get("version") != PROFILER_VERSION:
                continue
            entries = data.get("entries")
            if not isinstance(entries, dict):
                continue
            if path.name.startswith(_SEGMENT_PREFIX_TRACES):
                trace_entries += len(entries)
            else:
                profile_entries += len(entries)
                name = str(data.get("device", "<unknown device>"))
                per_device[name] = per_device.get(name, 0) + len(entries)
        return ProfileStoreManifest(
            version=PROFILER_VERSION,
            profile_entries=profile_entries,
            trace_entries=trace_entries,
            total_bytes=total_bytes,
            per_device=tuple(sorted(per_device.items())),
        )

    def clear(self) -> None:
        # Remove only segment files, never the root wholesale: the
        # directory may contain unrelated files.
        for path in self._segment_files():
            try:
                path.unlink()
            except OSError:
                pass
        if not self.root.is_dir():
            return
        for stale in self.root.glob("*.tmp.*"):
            try:
                stale.unlink()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Process-wide active store
# ---------------------------------------------------------------------------

# The profile pass sits *under* deep call chains (paper_dataset →
# build_samples → profile_corpus), so the store is configured process-wide
# rather than threaded through every signature: the CLI installs one per
# invocation, the library defaults to $REPRO_PROFILE_CACHE, tests inject
# or disable per call via profile_corpus(store=...).
_ACTIVE_LOCK = threading.Lock()
_active_store: ProfileStore | None = None
_active_configured = False


def set_active_profile_store(store: ProfileStore | None) -> None:
    """Install (or, with ``None``, disable) the process-wide store."""
    global _active_store, _active_configured
    with _ACTIVE_LOCK:
        _active_store = store
        _active_configured = True


def reset_active_profile_store() -> None:
    """Forget any installed store; revert to the ``$REPRO_PROFILE_CACHE``
    fallback (used by tests to undo :func:`set_active_profile_store`)."""
    global _active_store, _active_configured
    with _ACTIVE_LOCK:
        _active_store = None
        _active_configured = False


def active_profile_store() -> ProfileStore | None:
    """The process-wide store: whatever :func:`set_active_profile_store`
    installed, else one rooted at ``$REPRO_PROFILE_CACHE`` when set, else
    ``None`` (profiling stays purely in-memory). The env fallback is
    re-read per call, so monkeypatched environments behave."""
    with _ACTIVE_LOCK:
        if _active_configured:
            return _active_store
    path = os.environ.get(PROFILE_CACHE_ENV, "").strip()
    if not path:
        return None
    return ProfileStore(path, max_bytes=default_profile_cache_max_bytes())
