"""Per-provider client adapters behind one async ``ProviderClient`` face.

The serving layer talks to every completion source — the in-repo emulated
zoo and real OpenAI/Gemini/Anthropic-shaped APIs — through a single async
interface, the multi-provider client pattern of evaluation harnesses that
sweep several vendors' models. An adapter owns exactly the wire-shape
translation:

* request side: prompt + sampling params → the provider's payload dict
  (OpenAI ``messages``, Gemini ``contents``/``generationConfig``,
  Anthropic ``messages`` + ``max_tokens``);
* response side: the provider's response dict → one :class:`LlmResponse`
  (text + token usage, reasoning tokens included where the API reports
  them).

Transports are injected: a wire adapter calls an async
``transport(payload) -> payload`` callable and never imports a vendor SDK,
so the container needs no API keys or client packages. With no transport
configured, a wire adapter raises :class:`ProviderNotConfigured` at call
time — and :func:`emulated_transport` plugs the emulated zoo into any wire
shape, which is how the adapters are exercised (and tested round-trip)
offline.

Error taxonomy: :class:`RateLimitError` (429-shaped, carries an optional
``retry_after``), :class:`ProviderTimeout`, and
:class:`TransientProviderError` are the retryable failures
(:data:`RETRYABLE_ERRORS`) that :mod:`repro.serve.retry` backs off on;
anything else propagates immediately.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Protocol, Sequence, runtime_checkable

from repro.llm.base import LlmModel, LlmResponse
from repro.llm.config import ModelConfig
from repro.llm.pricing import Usage
from repro.llm.registry import get_model
from repro.util.retry import AttemptTimeout, TransientError


class ProviderError(RuntimeError):
    """Base class for completion-provider failures."""


class ProviderNotConfigured(ProviderError):
    """A wire adapter was called with no transport installed."""


class RateLimitError(ProviderError, TransientError):
    """A 429-shaped rejection; ``retry_after`` is the server's hint (s)."""

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class ProviderTimeout(ProviderError, AttemptTimeout):
    """An attempt exceeded its (jittered) deadline."""


class TransientProviderError(ProviderError, TransientError):
    """A retryable upstream hiccup (5xx-shaped, dropped connection)."""


#: The failures worth retrying with backoff; everything else is a bug or a
#: permanent rejection and propagates to the caller on the first attempt.
RETRYABLE_ERRORS = (RateLimitError, ProviderTimeout, TransientProviderError)

#: An async wire call: provider-shaped request dict in, response dict out.
Transport = Callable[[dict], Awaitable[dict]]


@runtime_checkable
class ProviderClient(Protocol):
    """One completion source behind the async serving interface.

    ``config`` is the model's capability profile — the serving engine
    keys its content-addressed cache on it via
    :func:`repro.eval.engine.cache_key`, exactly like the sync engine, so
    served and batch-swept completions share entries.
    """

    config: ModelConfig

    @property
    def name(self) -> str: ...

    async def complete(
        self,
        prompt: str,
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ) -> LlmResponse: ...


class EmulatedProvider:
    """The in-repo emulated zoo behind the provider interface.

    Completions run in a worker thread (:func:`asyncio.to_thread`) so a
    batch of concurrent requests never parks the event loop behind one
    pure-Python analysis pass.
    """

    family = "emulated"

    def __init__(self, model: LlmModel):
        self.model = model
        self.config = model.config

    @property
    def name(self) -> str:
        return self.model.name

    async def complete(
        self,
        prompt: str,
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ) -> LlmResponse:
        return await asyncio.to_thread(
            self.model.complete, prompt, temperature=temperature, top_p=top_p
        )


class WireProvider:
    """Base of the API-shaped adapters: payload codec + injected transport.

    Subclasses implement the four codec hooks; ``complete`` is the shared
    encode → transport → decode pipeline. ``decode_request`` /
    ``encode_response`` are the *server-side* halves, used by
    :func:`emulated_transport` to stand in for the real API (and by the
    tests to prove each codec round-trips).
    """

    #: Human name of the wire protocol, for error messages.
    family: str = ""

    def __init__(self, config: ModelConfig, transport: Transport | None = None):
        self.config = config
        self.transport = transport

    @property
    def name(self) -> str:
        return self.config.name

    # -- codec hooks (subclass responsibility) -------------------------------
    def encode_request(
        self, prompt: str, temperature: float | None, top_p: float | None
    ) -> dict:
        raise NotImplementedError

    @classmethod
    def decode_request(cls, payload: dict) -> tuple[str, float | None, float | None]:
        raise NotImplementedError

    @classmethod
    def encode_response(cls, response: LlmResponse) -> dict:
        raise NotImplementedError

    def decode_response(self, data: dict) -> LlmResponse:
        raise NotImplementedError

    # -- the ProviderClient face --------------------------------------------
    async def complete(
        self,
        prompt: str,
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ) -> LlmResponse:
        if self.transport is None:
            raise ProviderNotConfigured(
                f"no transport configured for {self.family} provider "
                f"{self.name!r}; install one (e.g. "
                "repro.serve.providers.emulated_transport) or use the "
                "emulated provider family"
            )
        payload = self.encode_request(prompt, temperature, top_p)
        data = await self.transport(payload)
        try:
            return self.decode_response(data)
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise TransientProviderError(
                f"malformed {self.family} response for {self.name!r}: {exc}"
            ) from exc


class OpenAiProvider(WireProvider):
    """OpenAI chat-completions wire shape."""

    family = "openai"

    def encode_request(self, prompt, temperature, top_p):
        payload = {
            "model": self.config.name,
            "messages": [{"role": "user", "content": prompt}],
        }
        if temperature is not None:
            payload["temperature"] = temperature
        if top_p is not None:
            payload["top_p"] = top_p
        return payload

    @classmethod
    def decode_request(cls, payload):
        prompt = "".join(
            m["content"] for m in payload["messages"] if m["role"] == "user"
        )
        return prompt, payload.get("temperature"), payload.get("top_p")

    @classmethod
    def encode_response(cls, response):
        u = response.usage
        return {
            "model": response.model_name,
            "choices": [
                {
                    "index": 0,
                    "message": {"role": "assistant", "content": response.text},
                    "finish_reason": "stop",
                }
            ],
            "usage": {
                "prompt_tokens": u.input_tokens,
                "completion_tokens": u.output_tokens + u.reasoning_tokens,
                "completion_tokens_details": {
                    "reasoning_tokens": u.reasoning_tokens
                },
            },
        }

    def decode_response(self, data):
        usage = data.get("usage", {})
        details = usage.get("completion_tokens_details", {})
        reasoning = int(details.get("reasoning_tokens", 0))
        return LlmResponse(
            text=data["choices"][0]["message"]["content"],
            usage=Usage(
                input_tokens=int(usage.get("prompt_tokens", 0)),
                output_tokens=int(usage.get("completion_tokens", 0)) - reasoning,
                reasoning_tokens=reasoning,
            ),
            model_name=self.config.name,
        )


class GeminiProvider(WireProvider):
    """Gemini ``generateContent`` wire shape."""

    family = "gemini"

    def encode_request(self, prompt, temperature, top_p):
        payload = {
            "model": self.config.name,
            "contents": [{"role": "user", "parts": [{"text": prompt}]}],
        }
        generation: dict = {}
        if temperature is not None:
            generation["temperature"] = temperature
        if top_p is not None:
            generation["topP"] = top_p
        if generation:
            payload["generationConfig"] = generation
        return payload

    @classmethod
    def decode_request(cls, payload):
        prompt = "".join(
            part["text"]
            for content in payload["contents"]
            for part in content["parts"]
        )
        generation = payload.get("generationConfig", {})
        return prompt, generation.get("temperature"), generation.get("topP")

    @classmethod
    def encode_response(cls, response):
        u = response.usage
        return {
            "candidates": [
                {
                    "content": {
                        "role": "model",
                        "parts": [{"text": response.text}],
                    },
                    "finishReason": "STOP",
                }
            ],
            "usageMetadata": {
                "promptTokenCount": u.input_tokens,
                "candidatesTokenCount": u.output_tokens,
                "thoughtsTokenCount": u.reasoning_tokens,
            },
        }

    def decode_response(self, data):
        meta = data.get("usageMetadata", {})
        parts = data["candidates"][0]["content"]["parts"]
        return LlmResponse(
            text="".join(p["text"] for p in parts),
            usage=Usage(
                input_tokens=int(meta.get("promptTokenCount", 0)),
                output_tokens=int(meta.get("candidatesTokenCount", 0)),
                reasoning_tokens=int(meta.get("thoughtsTokenCount", 0)),
            ),
            model_name=self.config.name,
        )


class AnthropicProvider(WireProvider):
    """Anthropic messages wire shape."""

    family = "anthropic"

    #: The classification vocabulary is one word; real calls would cap
    #: output there, and the emulated transport ignores it.
    MAX_TOKENS = 16

    def encode_request(self, prompt, temperature, top_p):
        payload = {
            "model": self.config.name,
            "max_tokens": self.MAX_TOKENS,
            "messages": [{"role": "user", "content": prompt}],
        }
        if temperature is not None:
            payload["temperature"] = temperature
        if top_p is not None:
            payload["top_p"] = top_p
        return payload

    @classmethod
    def decode_request(cls, payload):
        prompt = "".join(
            m["content"] for m in payload["messages"] if m["role"] == "user"
        )
        return prompt, payload.get("temperature"), payload.get("top_p")

    @classmethod
    def encode_response(cls, response):
        u = response.usage
        return {
            "content": [{"type": "text", "text": response.text}],
            "stop_reason": "end_turn",
            "usage": {
                "input_tokens": u.input_tokens,
                "output_tokens": u.output_tokens,
                "reasoning_tokens": u.reasoning_tokens,
            },
        }

    def decode_response(self, data):
        usage = data.get("usage", {})
        return LlmResponse(
            text="".join(
                block["text"]
                for block in data["content"]
                if block.get("type") == "text"
            ),
            usage=Usage(
                input_tokens=int(usage.get("input_tokens", 0)),
                output_tokens=int(usage.get("output_tokens", 0)),
                reasoning_tokens=int(usage.get("reasoning_tokens", 0)),
            ),
            model_name=self.config.name,
        )


#: Wire adapter class per provider family name.
WIRE_FAMILIES: dict[str, type[WireProvider]] = {
    "openai": OpenAiProvider,
    "gemini": GeminiProvider,
    "anthropic": AnthropicProvider,
}


def provider_family(model_name: str) -> str:
    """The wire family a model name belongs to, by its vendor prefix."""
    lowered = model_name.lower()
    if lowered.startswith("gemini"):
        return "gemini"
    if lowered.startswith("claude"):
        return "anthropic"
    # The rest of the registry (gpt-*, o1*, o3*) speaks the OpenAI shape.
    return "openai"


def emulated_transport(
    model: LlmModel, provider_cls: type[WireProvider]
) -> Transport:
    """A transport that answers a wire payload from the emulated zoo.

    Decodes the provider-shaped request, completes it with ``model``, and
    re-encodes the response in the same wire shape — the offline stand-in
    for the real HTTP client, exercising both codec halves per call.
    """

    async def transport(payload: dict) -> dict:
        prompt, temperature, top_p = provider_cls.decode_request(payload)
        response = await asyncio.to_thread(
            model.complete, prompt, temperature=temperature, top_p=top_p
        )
        return provider_cls.encode_response(response)

    return transport


def provider_label(client: ProviderClient) -> str:
    """The provider's stable identity: ``family:model``.

    Distinct from ``client.name`` (the model name), which every member of
    a failover chain shares — breakers, fault plans, and the
    ``served_by`` response tag need to tell the chain members apart while
    cache keys (keyed on the shared :class:`ModelConfig`) stay identical
    across them.
    """
    family = getattr(client, "family", "") or "emulated"
    return f"{family}:{client.name}"


def resolve_provider(
    model_name: str,
    *,
    family: str = "emulated",
    transport: Transport | None = None,
    fallbacks: Sequence[str] = (),
) -> ProviderClient | tuple[ProviderClient, ...]:
    """Build one provider client — or a failover chain — for a registry
    model.

    ``family`` picks the adapter: ``"emulated"`` (default) talks to the
    in-process zoo directly; ``"wire"`` picks the model's API-shaped
    adapter (:func:`provider_family`) backed by the emulated transport —
    the full codec path with no network; an explicit family name
    (``"openai"``/``"gemini"``/``"anthropic"``) builds that adapter with
    ``transport`` (a real HTTP client plugs in here), unconfigured if
    ``None``.

    ``fallbacks`` is an ordered list of further family names; when
    non-empty the result is a tuple — the primary first, fallbacks after
    — which the serving engine treats as a failover chain: a request
    whose primary breaker is open or whose retries exhaust moves down
    the chain. Every member serves the same :class:`ModelConfig`, so
    cache keys (and therefore warm-store bytes) are identical whichever
    member answers.
    """
    model = get_model(model_name)
    if family == "emulated":
        primary: ProviderClient = EmulatedProvider(model)
    elif family == "wire":
        cls = WIRE_FAMILIES[provider_family(model_name)]
        primary = cls(model.config, emulated_transport(model, cls))
    else:
        try:
            cls = WIRE_FAMILIES[family]
        except KeyError:
            raise ValueError(
                f"unknown provider family {family!r}; choose from "
                f"{('emulated', 'wire', *sorted(WIRE_FAMILIES))}"
            ) from None
        primary = cls(model.config, transport)
    if not fallbacks:
        return primary
    chain = [primary]
    for fallback in fallbacks:
        client = resolve_provider(
            model_name, family=fallback, transport=transport
        )
        assert not isinstance(client, tuple)  # fallbacks don't nest
        chain.append(client)
    labels = [provider_label(c) for c in chain]
    if len(set(labels)) != len(labels):
        raise ValueError(
            f"failover chain repeats a provider: {', '.join(labels)}"
        )
    return tuple(chain)
