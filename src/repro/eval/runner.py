"""Generic experiment runner: prompts through a model, responses to metrics.

Centralizes response parsing (off-vocabulary responses count as wrong, as
they would under the paper's automated response checking), usage metering,
and per-sample prediction records for downstream analysis. Execution is
delegated to :class:`repro.eval.engine.EvalEngine`, which shards the
(model, item) grid over a worker pool and memoizes responses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.eval.engine import EvalEngine, ResponseStore
from repro.eval.metrics import MetricReport
from repro.llm.base import LlmModel
from repro.types import Boundedness
from repro.util.parallel import DEFAULT_BACKEND


@dataclass(frozen=True)
class PredictionRecord:
    """One query's outcome."""

    item_id: str
    truth: Boundedness
    prediction: Boundedness | None  # None = unparseable response
    response_text: str

    @property
    def correct(self) -> bool:
        return self.prediction is not None and self.prediction == self.truth


@dataclass(frozen=True)
class FailedUnit:
    """One work unit that exhausted its retries (``failure_mode="collect"``).

    Error text comes from the final attempt's exception; under a seeded
    fault plan it is deterministic, so failed units digest stably — two
    runs with the same plan record byte-identical failures.
    """

    item_id: str
    error_type: str
    error: str
    attempts: int

    def render(self) -> str:
        return f"{self.item_id}: {self.error_type} after {self.attempts} attempt(s) — {self.error}"


@dataclass(frozen=True)
class RunResult:
    """One (model, experiment) evaluation.

    ``failures`` holds the units that exhausted their retries when the
    engine ran with ``failure_mode="collect"``; they are excluded from
    ``records`` (and so from metrics) but participate in the digest, so a
    degraded run can never masquerade as a clean one.
    """

    model_name: str
    records: tuple[PredictionRecord, ...]
    usage: dict[str, float]
    failures: tuple[FailedUnit, ...] = ()

    def metrics(self) -> MetricReport:
        truths = [r.truth for r in self.records]
        # Unparseable responses are scored as the wrong class (the paper's
        # prompt design "avoids erratic responses"; ours parse cleanly, but
        # the harness is defensive).
        preds = [
            r.prediction if r.prediction is not None else r.truth.other
            for r in self.records
        ]
        return MetricReport.from_predictions(truths, preds)

    @property
    def accuracy(self) -> float:
        return self.metrics().accuracy

    def digest(self) -> str:
        """SHA-256 over the value form of this result (name, records, usage).

        ``repr`` is value-based and float reprs are exact, so the digest is
        stable across processes and machines — the identity check used to
        assert that sharded, merged, and single-machine sweeps agree.
        """
        parts: tuple = (self.model_name, self.records, sorted(self.usage.items()))
        if self.failures:
            # Appended only when present so clean runs keep their historic
            # digests (the shard-merge and replay suites pin those).
            parts += (self.failures,)
        payload = repr(parts)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def render(self) -> str:
        """One-run metric summary (the :class:`Reportable` rendering)."""
        m = self.metrics()
        from repro.util.tables import format_table

        out = format_table(
            ["Model", "N", "Accuracy", "Macro-F1", "MCC"],
            [[self.model_name, m.n, m.accuracy, m.macro_f1, m.mcc]],
            title=f"Run — {self.model_name} over {m.n} kernels",
        )
        if self.failures:
            lines = "\n".join(f"  {f.render()}" for f in self.failures)
            out += f"\nFailed units ({len(self.failures)}):\n{lines}"
        return out

    def to_json(self) -> dict:
        """JSON value form: metrics plus per-kernel records."""
        m = self.metrics()
        out = {
            "type": "run",
            "model": self.model_name,
            "digest": self.digest(),
            "metrics": {
                "accuracy": m.accuracy,
                "macro_f1": m.macro_f1,
                "mcc": m.mcc,
                "n": m.n,
            },
            "usage": dict(sorted(self.usage.items())),
            "records": [
                {
                    "item_id": r.item_id,
                    "truth": r.truth.word,
                    "prediction": (
                        r.prediction.word if r.prediction is not None else None
                    ),
                    "correct": r.correct,
                }
                for r in self.records
            ],
        }
        if self.failures:
            out["failures"] = [
                {
                    "item_id": f.item_id,
                    "error_type": f.error_type,
                    "error": f.error,
                    "attempts": f.attempts,
                }
                for f in self.failures
            ]
        return out


def run_queries(
    model: LlmModel,
    items: Sequence[tuple[str, str, Boundedness]],
    *,
    temperature: float | None = None,
    top_p: float | None = None,
    jobs: int = 1,
    backend: str = DEFAULT_BACKEND,
    cache: ResponseStore | None = None,
    engine: EvalEngine | None = None,
) -> RunResult:
    """Evaluate ``items`` of (item_id, prompt, truth) against one model.

    ``jobs``/``backend``/``cache`` configure a throwaway engine; pass
    ``engine`` instead to share a pool and hit/miss stats across calls.
    Results are identical at any worker count and on any backend.
    """
    if engine is None:
        engine = EvalEngine(jobs=jobs, store=cache, backend=backend)
    return engine.run(model, items, temperature=temperature, top_p=top_p)
