"""Device execution model: simulation parameters derived from a GPU spec.

Wraps a :class:`~repro.roofline.hardware.GpuSpec` with the microarchitectural
constants the memory and timing models need (DRAM transaction granularity,
usable L2 fraction, achievable-versus-peak efficiency ranges, launch
overhead). Values are representative of Ampere-class hardware; they determine
*shape*, not spec-sheet peaks, which come from the GpuSpec itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.roofline.hardware import GpuSpec, default_gpu
from repro.util.rng import RngStream


@dataclass(frozen=True)
class DeviceModel:
    """Simulation parameters for one device."""

    spec: GpuSpec
    #: DRAM transaction granularity (bytes). Modern NVIDIA parts fetch
    #: 32-byte sectors of a 128-byte line.
    sector_bytes: int = 32
    #: Fraction of L2 usable for inter-thread data reuse before conflict and
    #: streaming evictions defeat it.
    l2_usable_fraction: float = 0.8
    #: Fraction of peak DRAM bandwidth a well-coalesced kernel sustains.
    bandwidth_efficiency: float = 0.88
    #: Achievable fraction of peak compute throughput (range; the per-kernel
    #: draw depends on occupancy and ILP, see :mod:`repro.gpusim.timing`).
    compute_efficiency_lo: float = 0.22
    compute_efficiency_hi: float = 0.72
    #: Special-function (transcendental) throughput as a fraction of the SP
    #: pipe; SFU-heavy kernels bottleneck here.
    sfu_throughput_fraction: float = 0.25
    #: Fixed kernel launch + tail latency.
    launch_overhead_s: float = 4.0e-6
    #: Relative measurement noise applied to counters (profilers never report
    #: perfectly stable byte counts across runs).
    counter_noise_sigma: float = 0.02

    @property
    def l2_capacity_bytes(self) -> float:
        return self.spec.l2_cache_mb * 1024 * 1024 * self.l2_usable_fraction

    @property
    def warp_size(self) -> int:
        return self.spec.warp_size

    def efficiency_stream(self, kernel_uid: str) -> RngStream:
        """Deterministic per-kernel stream for efficiency/noise draws.

        Keyed by device + kernel identity so re-profiling the same kernel is
        bit-stable (and distinct kernels land at distinct points under the
        roofline, as in Figure 1's scatter).
        """
        return RngStream("gpusim", self.spec.name, kernel_uid)


_device_instances: dict[GpuSpec, DeviceModel] = {}


def device_for(spec: GpuSpec) -> DeviceModel:
    """The shared :class:`DeviceModel` for one GPU spec (one per spec value).

    The model is frozen/stateless, and identity-keyed caches (e.g. the
    batched corpus-profile memo) rely on repeated calls returning the same
    object — mirroring :func:`repro.kernels.corpus.default_corpus`. The
    hardware-matrix sweep leans on this: six scenario devices mean exactly
    six memoized corpus-profiling passes, however many experiments consume
    them. Keyed by the (frozen, hashable) spec itself, so a tweaked spec
    sharing a marketing name gets its own device.
    """
    device = _device_instances.get(spec)
    if device is None:
        device = DeviceModel(spec=spec)
        _device_instances[spec] = device
    return device


def default_device() -> DeviceModel:
    """The paper's profiling platform: RTX 3080 (one shared instance)."""
    return device_for(default_gpu())
