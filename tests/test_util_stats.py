"""Tests for repro.util.stats — chi-squared machinery, box stats, and the
significance toolkit (Wilcoxon, A12, bootstrap CIs, Holm correction).

Every from-first-principles routine is cross-validated against scipy
(available in the dev environment, deliberately not a runtime dependency).
"""

import numpy as np
import pytest
import scipy.special
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RngStream
from repro.util.stats import (
    BoxStats,
    a12_magnitude,
    bootstrap_ci,
    chi2_sf,
    chi_squared_independence,
    describe,
    five_number_summary,
    holm_bonferroni,
    norm_cdf,
    norm_ppf,
    norm_sf,
    rankdata_average,
    vargha_delaney_a12,
    wilcoxon_signed_rank,
)


class TestChi2Sf:
    @pytest.mark.parametrize("df", [1, 2, 3, 5, 10, 30])
    @pytest.mark.parametrize("x", [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 60.0])
    def test_matches_scipy(self, df, x):
        ours = chi2_sf(x, df)
        ref = scipy.stats.chi2.sf(x, df)
        assert ours == pytest.approx(ref, rel=1e-9, abs=1e-12)

    def test_at_zero(self):
        assert chi2_sf(0.0, 3) == 1.0

    def test_negative_x(self):
        assert chi2_sf(-1.0, 3) == 1.0

    def test_bad_df(self):
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)

    def test_monotone_decreasing(self):
        vals = [chi2_sf(x, 4) for x in (0.5, 1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(vals, vals[1:]))


class TestChiSquaredIndependence:
    def test_matches_scipy(self):
        table = [[30, 70], [45, 55], [25, 75]]
        ours = chi_squared_independence(table)
        stat, p, dof, expected = scipy.stats.chi2_contingency(table, correction=False)
        assert ours.statistic == pytest.approx(stat)
        assert ours.p_value == pytest.approx(p)
        assert ours.dof == dof
        assert np.allclose(ours.expected, expected)

    def test_homogeneous_table_not_significant(self):
        res = chi_squared_independence([[50, 50], [50, 50], [51, 49]])
        assert res.p_value > 0.9
        assert not res.significant_at_05

    def test_skewed_table_significant(self):
        res = chi_squared_independence([[90, 10], [10, 90]])
        assert res.significant_at_05

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            chi_squared_independence([[1, 2]])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            chi_squared_independence([[1, -2], [3, 4]])

    def test_zero_margin_raises(self):
        with pytest.raises(ValueError):
            chi_squared_independence([[0, 0], [1, 2]])


class TestFiveNumberSummary:
    def test_simple(self):
        s = five_number_summary([1, 2, 3, 4, 5])
        assert s.minimum == 1
        assert s.median == 3
        assert s.maximum == 5
        assert s.n == 5

    def test_outlier_detection(self):
        vals = list(range(1, 21)) + [1000]
        s = five_number_summary(vals)
        assert 1000 in s.outliers
        assert s.whisker_high < 1000

    def test_whiskers_within_data(self):
        vals = [3, 1, 4, 1, 5, 9, 2, 6]
        s = five_number_summary(vals)
        assert s.minimum <= s.whisker_low <= s.q1
        assert s.q3 <= s.whisker_high <= s.maximum

    def test_iqr(self):
        s = five_number_summary(list(range(101)))
        assert s.iqr == pytest.approx(50.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            five_number_summary([])

    def test_single_value(self):
        s = five_number_summary([7.0])
        assert s.minimum == s.median == s.maximum == 7.0
        assert s.outliers == ()


class TestDescribe:
    def test_fields(self):
        d = describe([1.0, 2.0, 3.0])
        assert d["n"] == 3
        assert d["mean"] == pytest.approx(2.0)
        assert d["median"] == pytest.approx(2.0)

    def test_std_single_sample(self):
        assert describe([5.0])["std"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe([])


class TestNormalDistribution:
    @pytest.mark.parametrize(
        "x", [-8.0, -3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0, 8.0]
    )
    def test_cdf_sf_match_scipy(self, x):
        assert norm_cdf(x) == pytest.approx(
            scipy.special.ndtr(x), rel=1e-12, abs=1e-300
        )
        assert norm_sf(x) == pytest.approx(
            scipy.special.ndtr(-x), rel=1e-12, abs=1e-300
        )

    @pytest.mark.parametrize(
        "p",
        [1e-300, 1e-12, 1e-6, 0.001, 0.02425, 0.3, 0.5, 0.7, 0.97575,
         0.999, 1 - 1e-6, 1 - 1e-12],
    )
    def test_ppf_matches_scipy(self, p):
        assert norm_ppf(p) == pytest.approx(
            scipy.special.ndtri(p), rel=1e-9, abs=1e-12
        )

    def test_ppf_edges(self):
        assert norm_ppf(0.0) == float("-inf")
        assert norm_ppf(1.0) == float("inf")
        assert norm_ppf(0.5) == pytest.approx(0.0, abs=1e-15)
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                norm_ppf(bad)

    def test_ppf_inverts_cdf(self):
        for p in (0.01, 0.25, 0.5, 0.75, 0.99):
            assert norm_cdf(norm_ppf(p)) == pytest.approx(p, rel=1e-12)


class TestRankdataAverage:
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy(self, values):
        ours = rankdata_average(np.asarray(values, dtype=np.float64))
        ref = scipy.stats.rankdata(values, method="average")
        assert np.allclose(ours, ref)

    def test_ties(self):
        assert list(rankdata_average(np.array([2.0, 1.0, 2.0]))) == [2.5, 1.0, 2.5]


class TestWilcoxonSignedRank:
    def _reference(self, diffs, method):
        x = np.asarray(diffs, dtype=np.float64)
        return scipy.stats.wilcoxon(
            x, zero_method="wilcox", method=method, alternative="two-sided"
        )

    @given(
        st.lists(
            st.integers(min_value=-30, max_value=30), min_size=6, max_size=40
        ).filter(lambda d: any(v != 0 for v in d))
    )
    @settings(max_examples=80, deadline=None)
    def test_approx_matches_scipy(self, diffs):
        res = wilcoxon_signed_rank(diffs, method="approx")
        ref = self._reference(diffs, "approx")
        assert res.statistic == pytest.approx(ref.statistic)
        assert res.p_value == pytest.approx(ref.pvalue, rel=1e-10, abs=1e-12)

    @given(
        st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=3,
            max_size=25,
            unique=True,
        ),
        st.lists(st.booleans(), min_size=25, max_size=25),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_matches_scipy(self, magnitudes, signs):
        # Unique magnitudes -> no ties, no zeros -> exact null is valid.
        diffs = [
            m if neg else -m for m, neg in zip(magnitudes, signs)
        ]
        res = wilcoxon_signed_rank(diffs, method="exact")
        ref = self._reference(diffs, "exact")
        assert res.statistic == pytest.approx(ref.statistic)
        assert res.p_value == pytest.approx(ref.pvalue, rel=1e-12, abs=1e-15)

    def test_auto_picks_exact_for_clean_small_samples(self):
        diffs = [3, -1, 4, -5, 9, 2, -6, 8]
        auto = wilcoxon_signed_rank(diffs)
        exact = wilcoxon_signed_rank(diffs, method="exact")
        assert auto.method == "exact"
        assert auto.p_value == exact.p_value

    @given(
        st.lists(
            st.integers(min_value=-5, max_value=5), min_size=8, max_size=12
        ).filter(lambda d: any(v != 0 for v in d))
    )
    @settings(max_examples=60, deadline=None)
    def test_small_n_exact_and_approx_agree_in_verdict(self, diffs):
        # The two methods disagree numerically but must stay in the same
        # ballpark on small clean-ish samples (factor ~2 on the p-value).
        approx = wilcoxon_signed_rank(diffs, method="approx")
        assert 0.0 <= approx.p_value <= 1.0
        if approx.method == "degenerate":
            return
        clean = len(set(map(abs, diffs))) == len(diffs) and 0 not in diffs
        if clean:
            exact = wilcoxon_signed_rank(diffs, method="exact")
            assert exact.p_value == pytest.approx(
                approx.p_value, rel=0.9, abs=0.12
            )

    def test_paired_form_equals_diff_form(self):
        x = [10, 12, 9, 14, 11, 8]
        y = [11, 10, 9, 12, 15, 6]
        paired = wilcoxon_signed_rank(x, y)
        diffed = wilcoxon_signed_rank([a - b for a, b in zip(x, y)])
        assert paired.p_value == diffed.p_value
        assert paired.statistic == diffed.statistic

    def test_all_zero_differences_degenerate(self):
        res = wilcoxon_signed_rank([0, 0, 0, 0])
        assert res.method == "degenerate"
        assert res.p_value == 1.0
        assert res.n == 0
        assert res.zeros == 4

    def test_zeros_discarded(self):
        with_zeros = wilcoxon_signed_rank([0, 3, -1, 0, 4, -5])
        without = wilcoxon_signed_rank([3, -1, 4, -5])
        assert with_zeros.zeros == 2
        assert with_zeros.p_value == without.p_value

    def test_exact_with_ties_raises(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 1, -2, 3], method="exact")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([])

    def test_bad_method_raises(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2], method="bogus")

    def test_mismatched_pair_lengths_raise(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2, 3], [1, 2])


class TestVarghaDelaneyA12:
    @given(
        st.lists(
            st.integers(min_value=-50, max_value=50), min_size=2, max_size=30
        ),
        st.lists(
            st.integers(min_value=-50, max_value=50), min_size=2, max_size=30
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_mann_whitney_u(self, x, y):
        a12 = vargha_delaney_a12(x, y)
        u1 = scipy.stats.mannwhitneyu(
            x, y, alternative="two-sided"
        ).statistic
        assert a12 == pytest.approx(u1 / (len(x) * len(y)), rel=1e-12, abs=1e-12)

    @given(
        st.lists(
            st.integers(min_value=-50, max_value=50), min_size=2, max_size=20
        ),
        st.lists(
            st.integers(min_value=-50, max_value=50), min_size=2, max_size=20
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, x, y):
        assert vargha_delaney_a12(x, y) + vargha_delaney_a12(y, x) == (
            pytest.approx(1.0, abs=1e-12)
        )

    def test_stochastic_dominance(self):
        assert vargha_delaney_a12([10, 11, 12], [1, 2, 3]) == 1.0
        assert vargha_delaney_a12([1, 2, 3], [10, 11, 12]) == 0.0
        assert vargha_delaney_a12([1, 2], [1, 2]) == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            vargha_delaney_a12([], [1.0])

    def test_magnitude_bands(self):
        assert a12_magnitude(0.5) == "negligible"
        assert a12_magnitude(0.44) == "small"
        assert a12_magnitude(0.36) == "medium"
        assert a12_magnitude(0.29) == "large"
        assert a12_magnitude(0.75) == "large"


class TestBootstrapCi:
    def _rng(self, *key):
        return RngStream("tests.bootstrap", *key)

    def test_deterministic_per_stream_key(self):
        data = np.arange(30, dtype=np.float64)
        a = bootstrap_ci(data, np.mean, rng=self._rng("a"), n_resamples=200)
        b = bootstrap_ci(data, np.mean, rng=self._rng("a"), n_resamples=200)
        c = bootstrap_ci(data, np.mean, rng=self._rng("c"), n_resamples=200)
        assert (a.low, a.high) == (b.low, b.high)
        assert (a.low, a.high) != (c.low, c.high)

    def test_vectorized_equals_scalar_path(self):
        data = np.array([1.0, 4.0, 2.0, 8.0, 5.0, 7.0, 3.0, 6.0, 9.0, 2.5])

        def vec_mean(rows):
            return np.mean(rows, axis=-1)

        scalar = bootstrap_ci(
            data, np.mean, rng=self._rng("v"), n_resamples=300
        )
        vector = bootstrap_ci(
            data, vec_mean, rng=self._rng("v"), n_resamples=300,
            vectorized=True,
        )
        assert scalar.low == pytest.approx(vector.low, rel=1e-12)
        assert scalar.high == pytest.approx(vector.high, rel=1e-12)

    def test_bca_matches_scipy_special_reference(self):
        """Reproduce the BCa endpoints with a scipy.special reference on
        the identical resample matrix — the interval math itself (z0,
        acceleration, adjusted quantiles) must agree to 1e-8."""
        data = np.array(
            [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0, 5.0, 8.0]
        )
        n = data.size
        n_resamples, confidence = 500, 0.95
        ours = bootstrap_ci(
            data, np.mean, rng=self._rng("bca"), n_resamples=n_resamples,
            confidence=confidence, method="bca",
        )
        idx = self._rng("bca").integer_matrix((n_resamples, n), 0, n)
        theta_b = data[idx].mean(axis=1)
        theta_hat = data.mean()
        frac = (
            (theta_b < theta_hat).sum() + (theta_b <= theta_hat).sum()
        ) / (2 * n_resamples)
        z0 = scipy.special.ndtri(frac)
        jack = np.array([
            np.delete(data, i).mean() for i in range(n)
        ])
        u = jack.mean() - jack
        accel = (u**3).sum() / (6.0 * (u**2).sum() ** 1.5)
        alpha = 1.0 - confidence

        def adj(q):
            zq = z0 + scipy.special.ndtri(q)
            return scipy.special.ndtr(z0 + zq / (1.0 - accel * zq))

        low, high = np.quantile(
            theta_b, [adj(alpha / 2), adj(1 - alpha / 2)]
        )
        assert ours.estimate == pytest.approx(theta_hat)
        assert ours.low == pytest.approx(low, abs=1e-8)
        assert ours.high == pytest.approx(high, abs=1e-8)

    def test_percentile_matches_quantiles(self):
        data = np.linspace(0.0, 10.0, 25)
        ours = bootstrap_ci(
            data, np.median, rng=self._rng("pct"), n_resamples=400,
            method="percentile",
        )
        idx = self._rng("pct").integer_matrix((400, data.size), 0, data.size)
        theta_b = np.median(data[idx], axis=1)
        low, high = np.quantile(theta_b, [0.025, 0.975])
        assert ours.low == pytest.approx(low)
        assert ours.high == pytest.approx(high)

    def test_constant_data_degenerate(self):
        ci = bootstrap_ci(
            np.full(12, 1.0), np.mean, rng=self._rng("const"),
            n_resamples=100,
        )
        assert ci.low == ci.high == ci.estimate == 1.0
        assert ci.width == 0.0

    def test_interval_brackets_estimate(self):
        data = np.array([1.0, 2.0, 2.5, 3.0, 7.0, 4.0, 3.5, 2.0])
        ci = bootstrap_ci(data, np.mean, rng=self._rng("br"), n_resamples=500)
        assert ci.low <= ci.estimate <= ci.high

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], np.mean, rng=self._rng("e"))
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], np.mean, rng=self._rng("e"), n_resamples=0)
        with pytest.raises(ValueError):
            bootstrap_ci(
                [1.0, 2.0], np.mean, rng=self._rng("e"), confidence=1.5
            )
        with pytest.raises(ValueError):
            bootstrap_ci(
                [1.0, 2.0], np.mean, rng=self._rng("e"), method="magic"
            )


class TestHolmBonferroni:
    def test_reference_example(self):
        adjusted = holm_bonferroni([0.01, 0.04, 0.03, 0.005])
        assert adjusted == pytest.approx((0.03, 0.06, 0.06, 0.02))

    def test_single_p_unchanged(self):
        assert holm_bonferroni([0.2]) == pytest.approx((0.2,))

    def test_capped_at_one(self):
        assert max(holm_bonferroni([0.5, 0.6, 0.9])) <= 1.0

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_and_dominates_raw(self, ps):
        adjusted = holm_bonferroni(ps)
        order = np.argsort(ps, kind="stable")
        sorted_adj = [adjusted[i] for i in order]
        assert all(
            a <= b + 1e-15 for a, b in zip(sorted_adj, sorted_adj[1:])
        )
        assert all(a >= p for a, p in zip(adjusted, ps))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            holm_bonferroni([0.5, 1.5])
        with pytest.raises(ValueError):
            holm_bonferroni([-0.1])

    def test_empty_is_empty(self):
        assert holm_bonferroni([]) == ()
