"""RQ1 prompts — baseline roofline-calculation questions (paper Figure 3).

Each prompt shows k (2/4/8) worked examples — optionally with
chain-of-thought "Thought:" lines — followed by one unanswered question built
from a randomly generated roofline and arithmetic intensity. The LLM must
answer with the single word ``Compute`` or ``Bandwidth``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.roofline.classify import classify_ai
from repro.types import Boundedness
from repro.util.rng import RngStream

#: The paper evaluates 2, 4, and 8-shot variants.
SHOT_COUNTS = (2, 4, 8)
#: Number of random rooflines in the RQ1 experiment (paper §3.3).
NUM_ROOFLINES = 240


@dataclass(frozen=True)
class RooflineQuestion:
    """One generated RQ1 instance."""

    bandwidth_gbs: float
    peak_gflops: float
    ai: float
    achieved_gflops: float

    @property
    def truth(self) -> Boundedness:
        return classify_ai(self.ai, peak=self.peak_gflops, bandwidth=self.bandwidth_gbs)

    @property
    def balance_point(self) -> float:
        return self.peak_gflops / self.bandwidth_gbs


def _question_text(q: RooflineQuestion) -> str:
    return (
        f"Question: Given a GPU having a global memory with a max bandwidth of "
        f"{q.bandwidth_gbs:.1f} GB/s and a peak performance of {q.peak_gflops:.2f} "
        f"GFLOP/s, if a program executed with an Arithmetic Intensity of "
        f"{q.ai:.2f} FLOP/Byte and a performance of {q.achieved_gflops:.1f} "
        f"GFLOP/s, does the roofline model consider the program as "
        f"compute-bound or bandwidth-bound?"
    )


def _thought_text(q: RooflineQuestion) -> str:
    bp = q.balance_point
    region = "before" if q.ai < bp else "at or past"
    bound = "bandwidth-bound" if q.truth is Boundedness.BANDWIDTH else "compute-bound"
    cmp_word = "<" if q.ai < bp else ">="
    return (
        f"Thought: The max bandwidth is {q.bandwidth_gbs:.1f} GB/s, and peak "
        f"performance is {q.peak_gflops:.2f} GFLOP/s. The balance point is at "
        f"{q.peak_gflops:.2f} / {q.bandwidth_gbs:.1f} = {bp:.2f} FLOP/Byte. The "
        f"program's Arithmetic Intensity is {q.ai:.2f} FLOP/Byte. Because "
        f"{q.ai:.2f} {cmp_word} {bp:.2f}, it is {region} the balance point, "
        f"putting the program in the {bound} region. The roofline model would "
        f"consider the program as {bound}."
    )


def generate_question(rng: RngStream, force_label: Boundedness | None = None) -> RooflineQuestion:
    """Generate one random roofline + AI query.

    The paper picks, for each random roofline, one BB and one CB arithmetic
    intensity; ``force_label`` selects which side of the balance point the AI
    lands on.
    """
    bandwidth = rng.uniform(20.0, 1500.0)
    peak = rng.uniform(30.0, 30000.0)
    bp = peak / bandwidth
    if force_label is Boundedness.BANDWIDTH:
        ai = bp * rng.uniform(0.1, 0.85)
    elif force_label is Boundedness.COMPUTE:
        ai = bp * rng.uniform(1.15, 8.0)
    else:
        ai = bp * rng.uniform(0.1, 8.0)
    achieved = min(peak, ai * bandwidth) * rng.uniform(0.3, 0.95)
    return RooflineQuestion(
        bandwidth_gbs=round(bandwidth, 1),
        peak_gflops=round(peak, 2),
        ai=round(ai, 2),
        achieved_gflops=round(achieved, 1),
    )


_HEADER = (
    "You are a GPU performance analysis expert. Answer each question with "
    "a single word chosen from the set: ['Compute', 'Bandwidth']."
)


def _example_parts(
    shots: int, chain_of_thought: bool, rng: RngStream
) -> list[str]:
    """The worked-example section (question/thought/answer blocks)."""
    parts: list[str] = []
    want = [Boundedness.BANDWIDTH, Boundedness.COMPUTE]
    for i in range(shots):
        ex = generate_question(rng.child("shot", i), force_label=want[i % 2])
        parts.append(_question_text(ex))
        if chain_of_thought:
            parts.append(_thought_text(ex))
        parts.append(f"Answer: {ex.truth.word}")
        parts.append("")
    return parts


@lru_cache(maxsize=64)
def _default_example_text(shots: int, chain_of_thought: bool) -> str:
    # The default example stream depends only on (shots, chain_of_thought),
    # so the block is byte-identical for every question in a sweep; caching
    # it keeps prompt assembly off the experiment hot path.
    rng = RngStream("rq1-examples", shots, chain_of_thought)
    return "\n".join(_example_parts(shots, chain_of_thought, rng))


def build_rq1_prompt(
    question: RooflineQuestion,
    *,
    shots: int = 2,
    chain_of_thought: bool = False,
    rng: RngStream | None = None,
) -> str:
    """Assemble the full Figure 3 prompt for one question."""
    if shots < 2:
        raise ValueError("the paper's RQ1 prompts always include at least two examples")
    if rng is None:
        examples = _default_example_text(shots, chain_of_thought)
    else:
        examples = "\n".join(_example_parts(shots, chain_of_thought, rng))
    return "\n".join(
        [_HEADER, "", examples, _question_text(question), "Answer:"]
    )


def generate_rq1_questions(
    num_rooflines: int = NUM_ROOFLINES, *, seed_key: str = "rq1"
) -> list[RooflineQuestion]:
    """The full RQ1 workload: one BB and one CB query per random roofline."""
    rng = RngStream(seed_key)
    out: list[RooflineQuestion] = []
    for i in range(num_rooflines):
        out.append(generate_question(rng.child(i, "bb"), force_label=Boundedness.BANDWIDTH))
        out.append(generate_question(rng.child(i, "cb"), force_label=Boundedness.COMPUTE))
    return out
