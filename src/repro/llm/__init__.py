"""Emulated LLMs: the reproduction's substitute for OpenAI/Gemini APIs.

Same integration shape as a real API client::

    from repro.llm import get_model
    model = get_model("o3-mini-high")
    response = model.complete(prompt)
    prediction = response.boundedness()

See DESIGN.md §2 for the substitution rationale and §5 for the calibration
policy.
"""

from repro.llm.base import LlmModel, LlmResponse, SamplingNotSupported
from repro.llm.config import ALL_CONFIGS, ModelConfig
from repro.llm.finetune import (
    FineTuneConfig,
    FineTunedClassifier,
    featurize,
    prediction_entropy,
)
from repro.llm.pricing import Usage, UsageMeter, query_cost_usd
from repro.llm.promptio import (
    ClassifyQuery,
    RooflineQuery,
    estimate_prompt_tokens,
    parse_classify_query,
    parse_roofline_query,
)
from repro.llm.registry import (
    MODEL_NAMES,
    all_models,
    get_config,
    get_model,
    non_reasoning_models,
    reasoning_models,
)
from repro.llm.sampling import DEFAULT_TEMPERATURE, DEFAULT_TOP_P, SamplingParams

__all__ = [
    "LlmModel",
    "LlmResponse",
    "SamplingNotSupported",
    "ModelConfig",
    "ALL_CONFIGS",
    "MODEL_NAMES",
    "get_model",
    "get_config",
    "all_models",
    "reasoning_models",
    "non_reasoning_models",
    "Usage",
    "UsageMeter",
    "query_cost_usd",
    "ClassifyQuery",
    "RooflineQuery",
    "parse_classify_query",
    "parse_roofline_query",
    "estimate_prompt_tokens",
    "SamplingParams",
    "DEFAULT_TEMPERATURE",
    "DEFAULT_TOP_P",
    "FineTunedClassifier",
    "FineTuneConfig",
    "featurize",
    "prediction_entropy",
]
