"""Launch configuration and command-line model for benchmark programs.

The paper's Figure 4 prompt includes the invoked kernel's block and grid
sizes plus the executable's command-line arguments; both come from here.
Parameter bindings (problem sizes) are derived from the argv so the whole
chain — argv → bindings → trip counts → profiled counters — is consistent
with what an LLM could in principle infer from the prompt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.kernels.ir import Kernel, eval_scalar


@dataclass(frozen=True)
class Dim3:
    """A CUDA-style 3-component extent."""

    x: int
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise ValueError(f"dim3 components must be >= 1, got {self}")

    @property
    def total(self) -> int:
        return self.x * self.y * self.z

    def __str__(self) -> str:
        return f"({self.x},{self.y},{self.z})"


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry for one kernel invocation."""

    grid: Dim3
    block: Dim3

    @property
    def total_threads(self) -> int:
        return self.grid.total * self.block.total

    def __str__(self) -> str:
        return f"grid={self.grid} block={self.block}"


def plan_launch_1d(work_items: int, block_x: int = 256) -> LaunchConfig:
    """Standard 1-D launch: ceil-divide the work into ``block_x`` threads."""
    if work_items < 1:
        raise ValueError("work_items must be positive")
    grid_x = (work_items + block_x - 1) // block_x
    return LaunchConfig(grid=Dim3(grid_x), block=Dim3(block_x))


def plan_launch_2d(
    work_x: int, work_y: int, block_x: int = 16, block_y: int = 16
) -> LaunchConfig:
    """Standard 2-D tiled launch."""
    if min(work_x, work_y) < 1:
        raise ValueError("work extents must be positive")
    gx = (work_x + block_x - 1) // block_x
    gy = (work_y + block_y - 1) // block_y
    return LaunchConfig(grid=Dim3(gx, gy), block=Dim3(block_x, block_y))


@dataclass(frozen=True)
class CommandLine:
    """The executable's argv model.

    ``flags`` maps option name (without dashes) to its integer value; the
    rendered argv (what appears in the prompt and in the generated host
    code's usage string) is ``prog --name value ...`` in declaration order.
    """

    prog: str
    flags: tuple[tuple[str, int], ...] = ()

    def argv(self) -> list[str]:
        out = [f"./{self.prog}"]
        for name, value in self.flags:
            out.append(f"--{name}")
            out.append(str(value))
        return out

    def argv_string(self) -> str:
        return " ".join(self.argv())

    def bindings(self) -> dict[str, int]:
        return {name: value for name, value in self.flags}


@dataclass(frozen=True)
class KernelInstance:
    """A kernel paired with its launch geometry inside one program.

    ``binding_exprs`` maps each kernel scalar parameter to either an argv
    flag name or a literal (sizes derived from flags, e.g. ``n = nx * ny``,
    are pre-resolved by the family builder into a flag of their own so the
    mapping stays transparent).
    """

    kernel: Kernel
    launch: LaunchConfig
    binding_exprs: tuple[tuple[str, str | int], ...] = ()

    def resolve_bindings(self, cmdline: CommandLine) -> dict[str, int]:
        """Produce the scalar environment for one invocation.

        The result contains every argv flag plus the kernel's scalar
        parameters (array sizes may reference flags, e.g. padded extents,
        that are not kernel parameters).
        """
        flag_env = cmdline.bindings()
        out: dict[str, int] = dict(flag_env)
        for pname, src in self.binding_exprs:
            if isinstance(src, int):
                out[pname] = src
            else:
                if src not in flag_env:
                    raise KeyError(
                        f"kernel {self.kernel.name}: binding {pname!r} references "
                        f"unknown flag {src!r}"
                    )
                out[pname] = flag_env[src]
        # Sanity: every kernel scalar param must be bound.
        missing = {p.name for p in self.kernel.params} - set(out)
        if missing:
            raise ValueError(
                f"kernel {self.kernel.name}: unbound scalar params {sorted(missing)}"
            )
        return out

    def active_threads(self, cmdline: CommandLine) -> int:
        """Threads that pass the built-in bounds guard.

        The canonical guard ``if (gx < n)`` masks the launch round-up; the
        active count is ``min(total work, launched threads)``.
        """
        bindings = self.resolve_bindings(cmdline)
        return min(self.kernel.total_work(bindings), self.launch.total_threads)


def validate_launch(instance: KernelInstance, cmdline: CommandLine) -> None:
    """Check that the launch covers the kernel's work and bindings resolve."""
    bindings = instance.resolve_bindings(cmdline)
    work = instance.kernel.total_work(bindings)
    launched = instance.launch.total_threads
    if launched < work:
        raise ValueError(
            f"kernel {instance.kernel.name}: launch of {launched} threads "
            f"does not cover {work} work items"
        )
    for arr in instance.kernel.arrays:
        size = eval_scalar(arr.size, bindings)
        if size < 1:
            raise ValueError(f"array {arr.name} resolves to non-positive size {size}")
