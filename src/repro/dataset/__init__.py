"""Dataset pipeline (paper §2.1-2.2): profile → label → prune → balance →
split, with JSON persistence.

The full paper pipeline in one call::

    from repro.dataset import paper_dataset
    ds = paper_dataset()          # 340 balanced samples
    ds.train, ds.validation      # 272 / 68 stratified split
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.balance import PAPER_CELL_SIZE, balance_cells
from repro.dataset.build import build_sample, build_samples
from repro.dataset.prune import TOKEN_CUTOFF, PruneReport, prune_by_tokens
from repro.dataset.records import CounterSummary, Sample, cell_counts
from repro.dataset.split import TrainValSplit, split_train_validation
from repro.dataset.store import load_samples, save_samples

__all__ = [
    "Sample",
    "CounterSummary",
    "cell_counts",
    "build_sample",
    "build_samples",
    "prune_by_tokens",
    "PruneReport",
    "TOKEN_CUTOFF",
    "balance_cells",
    "PAPER_CELL_SIZE",
    "split_train_validation",
    "TrainValSplit",
    "save_samples",
    "load_samples",
    "PaperDataset",
    "paper_dataset",
]


@dataclass(frozen=True)
class PaperDataset:
    """The paper's full data artefact: every stage of §2.2 in one object."""

    profiled: tuple[Sample, ...]
    pruned: tuple[Sample, ...]
    balanced: tuple[Sample, ...]
    train: tuple[Sample, ...]
    validation: tuple[Sample, ...]
    prune_report: PruneReport


_CACHED: PaperDataset | None = None


def paper_dataset(force_rebuild: bool = False, *, jobs: int = 1) -> PaperDataset:
    """Build (once per process) the paper's dataset pipeline end-to-end.

    ``jobs`` fans the profiling/rendering stage over worker threads; the
    result is identical at any worker count.
    """
    global _CACHED
    if _CACHED is not None and not force_rebuild:
        return _CACHED
    profiled = build_samples(jobs=jobs)
    pruned, report = prune_by_tokens(profiled)
    balanced = balance_cells(pruned)
    split = split_train_validation(balanced)
    _CACHED = PaperDataset(
        profiled=tuple(profiled),
        pruned=tuple(pruned),
        balanced=tuple(balanced),
        train=split.train,
        validation=split.validation,
        prune_report=report,
    )
    return _CACHED
