"""Profiling counters — the simulator's analogue of Nsight metrics.

The paper captures, per kernel: SP-FLOP, DP-FLOP and INTOP counts, execution
time, and global memory read/write volumes (§2.1). :class:`ProfileCounters`
is exactly that record, plus derived arithmetic intensities and achieved
performance for Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.roofline.classify import IntensityProfile
from repro.types import OpClass


@dataclass(frozen=True)
class ProfileCounters:
    """Dynamic counters of one kernel invocation."""

    kernel_name: str
    sp_flops: float
    dp_flops: float
    int_ops: float
    dram_read_bytes: float
    dram_write_bytes: float
    time_s: float

    def __post_init__(self) -> None:
        for f in ("sp_flops", "dp_flops", "int_ops", "dram_read_bytes", "dram_write_bytes"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be non-negative")
        if self.time_s <= 0:
            raise ValueError("time_s must be positive")
        if self.dram_bytes <= 0:
            raise ValueError("a profiled kernel must have moved some DRAM bytes")

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    def ops(self) -> Mapping[OpClass, float]:
        return {OpClass.SP: self.sp_flops, OpClass.DP: self.dp_flops, OpClass.INT: self.int_ops}

    def op_count(self, op_class: OpClass) -> float:
        return self.ops()[op_class]

    def intensity(self, op_class: OpClass) -> float:
        """Arithmetic intensity (op/byte) for one class."""
        return self.op_count(op_class) / self.dram_bytes

    def intensity_profile(self) -> IntensityProfile:
        return IntensityProfile(ops=dict(self.ops()), dram_bytes=self.dram_bytes)

    def achieved_gops(self, op_class: OpClass) -> float:
        """Achieved throughput of one op class in Gop/s."""
        return self.op_count(op_class) / self.time_s / 1e9

    def achieved_bandwidth_gbs(self) -> float:
        return self.dram_bytes / self.time_s / 1e9

    @property
    def dominant_class(self) -> OpClass:
        order = [OpClass.SP, OpClass.DP, OpClass.INT]
        return max(order, key=lambda oc: (self.op_count(oc), -order.index(oc)))

    def to_dict(self) -> dict:
        """JSON-ready form for the persistent profile store (bit-exact:
        floats round-trip through JSON via their shortest repr)."""
        return {
            "kernel_name": self.kernel_name,
            "sp_flops": self.sp_flops,
            "dp_flops": self.dp_flops,
            "int_ops": self.int_ops,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "time_s": self.time_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileCounters":
        return cls(
            kernel_name=str(data["kernel_name"]),
            sp_flops=float(data["sp_flops"]),
            dp_flops=float(data["dp_flops"]),
            int_ops=float(data["int_ops"]),
            dram_read_bytes=float(data["dram_read_bytes"]),
            dram_write_bytes=float(data["dram_write_bytes"]),
            time_s=float(data["time_s"]),
        )


def merge_counters(name: str, parts: list[ProfileCounters]) -> ProfileCounters:
    """Sum counters over multiple kernels (whole-program totals)."""
    if not parts:
        raise ValueError("nothing to merge")
    return ProfileCounters(
        kernel_name=name,
        sp_flops=sum(p.sp_flops for p in parts),
        dp_flops=sum(p.dp_flops for p in parts),
        int_ops=sum(p.int_ops for p in parts),
        dram_read_bytes=sum(p.dram_read_bytes for p in parts),
        dram_write_bytes=sum(p.dram_write_bytes for p in parts),
        time_s=sum(p.time_s for p in parts),
    )
