"""Dataset balancing (paper §2.2).

*"The final balancing step was to force the number of samples for
combinations of code language (CUDA/OMP) and class (BB/CB) to be equal to
the smallest set of said combinations. The smallest combination totaled 85
samples, for a final dataset of 340 samples."*

We balance to the paper's cell size of 85 by default: our generated corpus
leaves every cell with at least 85 samples (verified in tests), so each cell
is deterministically subsampled down to the target, yielding the same
340-sample shape the paper evaluates on.
"""

from __future__ import annotations

from repro.dataset.records import Sample, cell_counts
from repro.types import Boundedness, Language
from repro.util.rng import RngStream

#: The paper's balanced cell size (85 per language x class → 340 total).
PAPER_CELL_SIZE = 85


def balance_cells(
    samples: list[Sample],
    cell_size: int | None = PAPER_CELL_SIZE,
    *,
    seed_key: str = "dataset-balance",
) -> list[Sample]:
    """Subsample each (language, class) cell to a common size.

    ``cell_size=None`` uses the smallest cell (the paper's literal rule);
    the default pins the paper's published 85. Selection within each cell is
    a deterministic shuffle, and the result preserves a stable order
    (by uid) so downstream splits are reproducible.
    """
    counts = cell_counts(samples)
    cells = [
        (lang, label)
        for lang in (Language.CUDA, Language.OMP)
        for label in (Boundedness.BANDWIDTH, Boundedness.COMPUTE)
    ]
    for cell in cells:
        if counts.get(cell, 0) == 0:
            raise ValueError(f"cell {cell} has no samples; cannot balance")
    min_cell = min(counts.get(cell, 0) for cell in cells)
    target = min_cell if cell_size is None else cell_size
    if target > min_cell:
        raise ValueError(
            f"requested cell size {target} exceeds smallest cell {min_cell}"
        )

    rng = RngStream(seed_key)
    chosen: list[Sample] = []
    for cell in cells:
        pool = sorted(
            (s for s in samples if s.cell == cell), key=lambda s: s.uid
        )
        picked = rng.child(cell[0].value, cell[1].value).sample(pool, target)
        chosen.extend(picked)
    chosen.sort(key=lambda s: s.uid)
    return chosen
