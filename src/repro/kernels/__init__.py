"""Synthetic GPU benchmark corpus: kernel IR, code generation, families.

The reproduction's stand-in for HeCBench (paper §2.1): ~90 benchmark
families, each defined as kernel IR that renders to CUDA and OpenMP-offload
source and interprets under the :mod:`repro.gpusim` profiler.
"""

from repro.kernels.codegen import render_cuda, render_omp, render_program
from repro.kernels.corpus import (
    Corpus,
    DEFAULT_CUDA_COUNT,
    DEFAULT_OMP_COUNT,
    build_corpus,
    default_corpus,
)
from repro.kernels.families import all_families, families_for, get_family
from repro.kernels.ir import DType, Kernel, Scope
from repro.kernels.launch import (
    CommandLine,
    Dim3,
    KernelInstance,
    LaunchConfig,
    plan_launch_1d,
    plan_launch_2d,
)
from repro.kernels.program import ProgramSpec, RenderedProgram, SourceFile

__all__ = [
    "Corpus",
    "DEFAULT_CUDA_COUNT",
    "DEFAULT_OMP_COUNT",
    "build_corpus",
    "default_corpus",
    "all_families",
    "families_for",
    "get_family",
    "DType",
    "Kernel",
    "Scope",
    "CommandLine",
    "Dim3",
    "KernelInstance",
    "LaunchConfig",
    "plan_launch_1d",
    "plan_launch_2d",
    "ProgramSpec",
    "RenderedProgram",
    "SourceFile",
    "render_cuda",
    "render_omp",
    "render_program",
]
