"""Tests for the hardware scenario matrix (repro.eval.matrix).

The golden-label suite pins the cross-device ground truth: a fixed kernel
subset profiled on all six database GPUs must keep its per-device
classifications — including the known label flips — stable across
refactors. Profiling is deterministic per (kernel, device), so these are
exact assertions, not tolerances.
"""

import pytest

from repro.eval.matrix import (
    MATRIX_RQS,
    label_flips,
    run_matrix,
    scenario_samples,
)
from repro.llm import get_model
from repro.roofline.hardware import (
    GPU_DATABASE,
    get_gpu,
    resolve_gpus,
    short_gpu_name,
)

#: Database order; golden label vectors below follow it.
GPU_ORDER = (
    "NVIDIA GeForce RTX 3080",
    "NVIDIA Tesla V100",
    "NVIDIA A100",
    "AMD Instinct MI100",
    "NVIDIA GeForce RTX 2080 Ti",
    "NVIDIA H100 PCIe",
)

#: uid → per-device truth in GPU_ORDER. The flip patterns are physical:
#: kernels compute-bound on bandwidth-starved gaming parts (RTX 3080 /
#: 2080 Ti) go bandwidth-bound on HPC parts (V100/A100/MI100/H100), and
#: H100's huge compute peak flips a few more kernels that every other
#: device still calls compute-bound.
GOLDEN_LABELS = {
    "cuda/blackscholes-v1": ("CB", "BB", "BB", "BB", "CB", "BB"),
    "cuda/stencil3d7-v1": ("CB", "BB", "BB", "BB", "CB", "BB"),
    "cuda/bessel_series-v4": ("CB", "CB", "CB", "CB", "CB", "BB"),
    "cuda/batch_gemm4-v4": ("CB", "CB", "CB", "CB", "BB", "BB"),
    "cuda/horner_poly-v4": ("CB", "CB", "CB", "BB", "CB", "BB"),
    "omp/covariance_cols-v1": ("CB", "BB", "CB", "CB", "CB", "CB"),
    # Controls: kernels far from every ridge never flip.
    "cuda/absdiff-v1": ("BB", "BB", "BB", "BB", "BB", "BB"),
    "cuda/bessel_series-v1": ("CB", "CB", "CB", "CB", "CB", "CB"),
}

GOLDEN_UIDS = tuple(GOLDEN_LABELS)


@pytest.fixture(scope="module")
def golden_samples_by_gpu():
    """The golden subset profiled on every database GPU (subset-only, so
    this never builds the full dataset)."""
    return {
        name: scenario_samples(spec, uids=GOLDEN_UIDS)
        for name, spec in GPU_DATABASE.items()
    }


class TestGoldenLabels:
    def test_gpu_database_order_matches_goldens(self):
        assert tuple(GPU_DATABASE) == GPU_ORDER

    @pytest.mark.parametrize("uid", GOLDEN_UIDS)
    def test_cross_device_labels_stable(self, golden_samples_by_gpu, uid):
        for gpu_name, expected in zip(GPU_ORDER, GOLDEN_LABELS[uid]):
            sample = next(
                s for s in golden_samples_by_gpu[gpu_name] if s.uid == uid
            )
            assert sample.label.value == expected, (
                f"{uid} on {gpu_name}: expected {expected}, "
                f"got {sample.label.value}"
            )

    def test_flip_report_finds_exactly_the_flipping_goldens(
        self, golden_samples_by_gpu
    ):
        flips = label_flips(golden_samples_by_gpu)
        expected = {
            uid
            for uid, labels in GOLDEN_LABELS.items()
            if len(set(labels)) > 1
        }
        assert {f.uid for f in flips} == expected
        for flip in flips:
            assert len(flip.distinct_labels) == 2
            assert tuple(l.value for _, l in flip.labels) == GOLDEN_LABELS[
                flip.uid
            ]

    def test_scenario_sample_metadata_tracks_device(self, golden_samples_by_gpu):
        for gpu_name, samples in golden_samples_by_gpu.items():
            assert [s.uid for s in samples] == list(GOLDEN_UIDS)
            assert all(s.gpu_name == gpu_name for s in samples)


class TestScenarioSamples:
    def test_default_subset_matches_paper_dataset(self, dataset):
        from repro.roofline.hardware import default_gpu

        scen = scenario_samples(default_gpu())
        assert list(scen) == list(dataset.balanced)

    def test_memoized_per_gpu_and_subset(self):
        gpu = get_gpu("V100")
        a = scenario_samples(gpu, uids=GOLDEN_UIDS)
        b = scenario_samples(gpu, uids=GOLDEN_UIDS)
        assert a is b


class TestRunMatrix:
    @pytest.fixture(scope="class")
    def small_matrix(self, dataset):
        models = [get_model("o3-mini-high"), get_model("gpt-4o-mini")]
        gpus = [get_gpu("V100"), get_gpu("H100")]
        return run_matrix(models, gpus, rqs=("rq2",), limit=24, jobs=2)

    def test_grid_shape(self, small_matrix):
        assert len(small_matrix.cells) == 2 * 2 * 1  # models × gpus × rqs
        assert small_matrix.num_kernels == 24
        for cell in small_matrix.cells:
            assert len(cell.run.records) == 24
            assert 0.0 <= cell.accuracy <= 100.0

    def test_cell_lookup(self, small_matrix):
        cell = small_matrix.cell("o3-mini-high", "NVIDIA Tesla V100", "rq2")
        assert cell.model_name == "o3-mini-high"
        with pytest.raises(KeyError):
            small_matrix.cell("o3-mini-high", "NVIDIA Tesla V100", "rq9")

    def test_same_kernels_on_every_device(self, small_matrix):
        ids = {
            tuple(r.item_id for r in cell.run.records)
            for cell in small_matrix.cells
        }
        assert len(ids) == 1

    def test_flip_tracking_totals(self, small_matrix):
        tracking = small_matrix.flip_tracking()
        assert len(tracking) == len(small_matrix.model_names) * len(
            small_matrix.rqs
        )
        for t in tracking:
            assert 0 <= t.tracked <= t.total == len(small_matrix.flips)
            assert 0.0 <= t.rate <= 1.0

    def test_render_mentions_every_axis(self, small_matrix):
        text = small_matrix.render()
        assert "V100" in text and "H100" in text
        assert "o3-mini-high" in text and "gpt-4o-mini" in text
        assert "Hardware matrix" in text

    def test_determinism_across_plans(self, small_matrix, dataset):
        models = [get_model("o3-mini-high"), get_model("gpt-4o-mini")]
        gpus = [get_gpu("V100"), get_gpu("H100")]
        again = run_matrix(models, gpus, rqs=("rq2",), limit=24, jobs=5)
        assert again == small_matrix

    def test_digest_identical_with_and_without_profile_store(
        self, dataset, tmp_path
    ):
        """Acceptance: reports are byte-identical whether kernel profiles
        come from a fresh walk, a cold store pass, or a warm store."""
        from repro.eval import matrix as matrix_mod
        from repro.gpusim.profiler import _PROFILE_MEMO, _TRACE_MEMO
        from repro.gpusim.store import (
            ProfileStore,
            reset_active_profile_store,
            set_active_profile_store,
        )

        models = [get_model("o3-mini-high")]
        gpus = [get_gpu("V100"), get_gpu("2080")]

        def fresh_run():
            matrix_mod._SCENARIO_MEMO.clear()
            _PROFILE_MEMO.clear()
            _TRACE_MEMO.clear()
            return run_matrix(models, gpus, rqs=("rq2",), limit=8)

        try:
            set_active_profile_store(None)
            bare = fresh_run()
            set_active_profile_store(ProfileStore(tmp_path / "ps"))
            cold = fresh_run()
            warm = fresh_run()
        finally:
            reset_active_profile_store()
        assert cold == bare and warm == bare
        assert cold.digest() == bare.digest()
        assert warm.digest() == bare.digest()

    def test_matrix_on_paper_gpu_matches_rq2(self, dataset):
        from repro.eval.rq23 import run_rq2
        from repro.roofline.hardware import default_gpu

        model = get_model("gemini-2.0-flash-001")
        m = run_matrix([model], [default_gpu()], rqs=("rq2",), limit=30)
        r = run_rq2(model, list(dataset.balanced[:30]))
        assert m.cells[0].run.records == r.run.records

    def test_unknown_rq_rejected(self):
        with pytest.raises(ValueError):
            run_matrix([get_model("o1")], [get_gpu("V100")], rqs=("rq1",))
        assert MATRIX_RQS == ("rq2", "rq3")


class TestGpuSelection:
    def test_resolve_all(self):
        assert resolve_gpus("all") == list(GPU_DATABASE.values())

    def test_resolve_named_subset_keeps_order(self):
        gpus = resolve_gpus("h100, v100")
        assert [g.name for g in gpus] == [
            "NVIDIA H100 PCIe",
            "NVIDIA Tesla V100",
        ]

    def test_resolve_deduplicates(self):
        assert len(resolve_gpus("v100,V100")) == 1

    def test_resolve_rejects_junk(self):
        with pytest.raises(ValueError):
            resolve_gpus(" , ")
        with pytest.raises(KeyError):
            resolve_gpus("tpu-v5")

    def test_short_names(self):
        assert short_gpu_name("NVIDIA GeForce RTX 3080") == "RTX 3080"
        assert short_gpu_name("AMD Instinct MI100") == "MI100"
        assert short_gpu_name("NVIDIA H100 PCIe") == "H100"
