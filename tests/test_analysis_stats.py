"""Tests for the significance suite (repro.analysis.stats) and the
unified Reportable protocol / export path / CLI surface built on it."""

import json

import pytest

from repro.analysis.stats import (
    AXES,
    CI_METRICS,
    DEFAULT_STATS_SEED,
    StatsReport,
    build_stats_report,
)
from repro.cli import main
from repro.eval.export import write_report
from repro.eval.matrix import run_matrix
from repro.eval.report import Reportable
from repro.eval.rq23 import classification_items
from repro.eval.runner import run_queries
from repro.llm import get_model
from repro.roofline.hardware import get_gpu

MODELS = ("o3-mini-high", "gpt-4o-mini")
GPUS = ("V100", "H100")
REGIMES = ("rq2", "rq3")
LIMIT = 12


@pytest.fixture(scope="module")
def small_matrix(dataset):
    return run_matrix(
        [get_model(m) for m in MODELS],
        [get_gpu(g) for g in GPUS],
        rqs=REGIMES,
        limit=LIMIT,
        jobs=2,
    )


@pytest.fixture(scope="module")
def report(small_matrix):
    return build_stats_report(small_matrix, n_resamples=300)


class TestBuildStatsReport:
    def test_grid_metadata(self, small_matrix, report):
        assert report.matrix_digest == small_matrix.digest()
        assert report.model_names == small_matrix.model_names
        assert report.regimes == REGIMES
        assert report.num_kernels == LIMIT
        assert report.seed == DEFAULT_STATS_SEED

    def test_comparison_coverage(self, report):
        # C(2,2)=1 pair per axis with two values on every axis.
        for axis in AXES:
            comps = report.axis_comparisons(axis)
            assert len(comps) == 1
            (c,) = comps
            # Pooled over the other two axes: 2×2 cells × LIMIT kernels.
            assert c.n == 4 * LIMIT
            assert 0.0 <= c.wilcoxon.p_value <= 1.0
            assert c.p_holm >= c.wilcoxon.p_value
            assert 0.0 <= c.a12 <= 1.0
        with pytest.raises(ValueError):
            report.axis_comparisons("kernel")

    def test_interval_coverage_and_estimates(self, small_matrix, report):
        assert len(report.intervals) == (
            len(MODELS) * len(GPUS) * len(REGIMES) * len(CI_METRICS)
        )
        for cell in small_matrix.cells:
            for metric in CI_METRICS:
                iv = report.interval(
                    cell.model_name, cell.gpu_name, cell.rq, metric
                )
                expected = getattr(cell.run.metrics(), metric)
                assert iv.ci.estimate == pytest.approx(expected)
                assert iv.ci.low <= iv.ci.estimate <= iv.ci.high
        with pytest.raises(KeyError):
            report.interval("nope", "nope", "rq2", "accuracy")

    def test_deterministic_per_seed(self, small_matrix, report):
        again = build_stats_report(small_matrix, n_resamples=300)
        assert again.digest() == report.digest()
        other = build_stats_report(small_matrix, seed=1, n_resamples=300)
        assert other.digest() != report.digest()

    def test_percentile_method(self, small_matrix):
        pct = build_stats_report(
            small_matrix, n_resamples=200, ci_method="percentile"
        )
        assert pct.ci_method == "percentile"
        for iv in pct.intervals:
            assert iv.ci.method == "percentile"

    def test_render_contains_all_sections(self, report):
        text = report.render()
        assert "Statistical report — 2 models × 2 GPUs × 2 regimes" in text
        assert "Pairwise model comparisons" in text
        assert "Pairwise gpu comparisons" in text
        assert "Pairwise regime comparisons" in text
        assert "Bootstrap 95% CIs" in text
        assert "Accuracy CIs — regime rq2" in text

    def test_to_json_round_trips(self, report):
        payload = report.to_json()
        again = json.loads(json.dumps(payload))
        assert again["type"] == "stats"
        assert again["digest"] == report.digest()
        assert len(again["comparisons"]) == len(report.comparisons)
        assert len(again["intervals"]) == len(report.intervals)


class TestReportableProtocol:
    def test_all_result_types_speak_reportable(self, small_matrix, report):
        assert isinstance(small_matrix, Reportable)
        assert isinstance(report, Reportable)
        run = small_matrix.cells[0].run
        assert isinstance(run, Reportable)
        assert not isinstance(object(), Reportable)

    def test_run_result_render_and_json(self, dataset):
        items = classification_items(
            dataset.balanced[:4], variant="zero-shot"
        )
        run = run_queries(get_model("o3-mini-high"), items)
        assert "o3-mini-high" in run.render()
        payload = run.to_json()
        assert payload["type"] == "run"
        assert payload["digest"] == run.digest()
        assert len(payload["records"]) == 4

    def test_matrix_to_json(self, small_matrix):
        payload = small_matrix.to_json()
        assert payload["type"] == "matrix"
        assert payload["digest"] == small_matrix.digest()
        assert len(payload["cells"]) == len(small_matrix.cells)

    def test_write_report_round_trip(self, tmp_path, report):
        out = tmp_path / "deep" / "stats.json"
        assert write_report(report, out) == out
        loaded = json.loads(out.read_text())
        assert loaded == json.loads(json.dumps(report.to_json()))

    def test_write_report_rejects_non_reportable(self, tmp_path):
        with pytest.raises(TypeError):
            write_report({"not": "a report"}, tmp_path / "x.json")


class TestStatsCli:
    GRID = [
        "--model", "o3-mini-high", "--gpus", "V100,H100",
        "--rq", "rq2", "--limit", "4",
    ]

    def test_matrix_stats_flag_and_warm_replay(self, capsys, dataset):
        assert main(["matrix", *self.GRID, "--stats",
                     "--resamples", "100"]) == 0
        first = capsys.readouterr().out
        assert "Statistical report —" in first
        assert "Bootstrap 95% CIs" in first
        # Same grid again: everything answered from the cache, the stats
        # pass itself makes no completions.
        assert main(["matrix", *self.GRID, "--stats",
                     "--resamples", "100"]) == 0
        second = capsys.readouterr().out
        assert ", 0 new completions" in second

    def test_stats_subcommand_writes_json(self, capsys, tmp_path, dataset):
        out = tmp_path / "report.json"
        assert main(["stats", *self.GRID, "--resamples", "100",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Statistical report —" in text
        assert json.loads(out.read_text())["type"] == "stats"

    def test_stats_seed_changes_digest(self, capsys, tmp_path, dataset):
        a, b, c = (tmp_path / n for n in ("a.json", "b.json", "c.json"))
        for path, seed in ((a, "7"), (b, "7"), (c, "8")):
            assert main(["stats", *self.GRID, "--resamples", "100",
                         "--stats-seed", seed, "--out", str(path)]) == 0
        capsys.readouterr()
        da, db, dc = (
            json.loads(p.read_text())["digest"] for p in (a, b, c)
        )
        assert da == db
        assert da != dc

    @pytest.mark.parametrize("kind", ["run", "matrix", "stats"])
    def test_export_kinds(self, capsys, tmp_path, dataset, kind):
        out = tmp_path / f"{kind}.json"
        assert main(["export", kind, *self.GRID, "--resamples", "100",
                     "--out", str(out)]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        assert json.loads(out.read_text())["type"] == kind

    def test_export_run_rejects_ambiguous_grid(self, capsys, tmp_path):
        rc = main(["export", "run", "--model", "all",
                   "--out", str(tmp_path / "r.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_variants_listing(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        for name in ("zero-shot", "few-shot-2", "no-hint", "problem-hint"):
            assert name in out

    def test_bad_regime_exits_2(self, capsys, dataset):
        assert main(["matrix", "--model", "o3-mini-high", "--gpus", "V100",
                     "--rq", "rq2", "--variants", "bogus",
                     "--limit", "2"]) == 2
        assert "unknown matrix regime" in capsys.readouterr().err

    def test_ablation_variant_regime(self, capsys, dataset):
        assert main(["matrix", "--model", "o3-mini-high", "--gpus", "V100",
                     "--rq", "rq2", "--variants", "no-hint",
                     "--limit", "4"]) == 0
        out = capsys.readouterr().out
        assert "no-hint" in out
