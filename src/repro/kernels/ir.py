"""Kernel intermediate representation.

One IR drives three consumers:

* :mod:`repro.kernels.codegen` renders it to CUDA and OpenMP-offload source
  text (what the LLMs see),
* :mod:`repro.gpusim` interprets it to produce dynamic op/byte counters
  (what the "profiler" measures → ground-truth labels),
* :mod:`repro.analysis` never sees the IR — it works from the rendered
  source text only, exactly like the LLMs in the paper.

The IR models the performance-relevant structure of GPU kernels: per-thread
straight-line arithmetic, sequential loops, global/shared array accesses with
affine or data-dependent indexing, branches with data-dependent taken
fractions, atomics, and barriers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence, Union


class DType(str, enum.Enum):
    """Scalar element types."""

    F32 = "float"
    F64 = "double"
    I32 = "int"
    I64 = "long long"

    @property
    def size(self) -> int:
        return {DType.F32: 4, DType.F64: 8, DType.I32: 4, DType.I64: 8}[self]

    @property
    def is_float(self) -> bool:
        return self in (DType.F32, DType.F64)

    @property
    def c_name(self) -> str:
        return self.value


class Scope(str, enum.Enum):
    """Memory scope of an array."""

    GLOBAL = "global"
    SHARED = "shared"


#: A compile-time-or-runtime scalar extent: either a literal or the name of a
#: kernel scalar parameter bound at launch (e.g. ``"n"``).
IndexScalar = Union[int, str]


def eval_scalar(x: IndexScalar, bindings: Mapping[str, int]) -> int:
    """Resolve an :data:`IndexScalar` against runtime parameter bindings.

    String scalars may be a single parameter name or a ``*``-separated
    product of names and integer literals (``"n*n"``, ``"3*n"``), matching
    the size expressions rendered into host allocation code.
    """
    if isinstance(x, bool):
        raise TypeError("bool is not a valid IndexScalar")
    if isinstance(x, int):
        return x
    total = 1
    for factor in x.split("*"):
        f = factor.strip()
        if not f:
            raise ValueError(f"malformed scalar expression {x!r}")
        if f.lstrip("-").isdigit():
            total *= int(f)
        else:
            try:
                total *= int(bindings[f])
            except KeyError:
                raise KeyError(
                    f"unbound scalar parameter {f!r} in {x!r}; have {sorted(bindings)}"
                ) from None
    return total


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    """Base class for arithmetic expressions."""

    def children(self) -> Sequence["Expr"]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    value: float | int
    dtype: DType = DType.F32


@dataclass(frozen=True)
class Var(Expr):
    """A scalar register / parameter / loop variable reference."""

    name: str
    dtype: DType = DType.F32


@dataclass(frozen=True)
class AffineIndex:
    """An affine index expression ``sum(coeff_i * sym_i) + const``.

    ``sym`` names are thread-id symbols (``gx``, ``gy``, ``lx``) or loop
    variables; coefficients may be literal ints or scalar-parameter names
    (e.g. row-major ``A[gy * n + gx]`` has the term ``("gy", "n")``).
    """

    terms: tuple[tuple[str, IndexScalar], ...] = ()
    const: int = 0

    def coeff(self, sym: str, bindings: Mapping[str, int]) -> int:
        """Numeric coefficient of ``sym`` under parameter bindings."""
        total = 0
        for s, c in self.terms:
            if s == sym:
                total += eval_scalar(c, bindings)
        return total

    def symbols(self) -> tuple[str, ...]:
        return tuple(s for s, _ in self.terms)

    def shift(self, delta: int) -> "AffineIndex":
        return AffineIndex(terms=self.terms, const=self.const + delta)


@dataclass(frozen=True)
class DynamicIndex:
    """A data-dependent index (gather/scatter), e.g. ``hist[key % nbins]``.

    ``expr`` is rendered in source; ``range_hint`` bounds the set of distinct
    locations touched (the profiler uses it for its cache model); ``pattern``
    hints locality: ``"random"`` for uniform scatter, ``"local"`` for
    neighbourhood-limited indirection.
    """

    expr: Expr
    range_hint: IndexScalar
    pattern: str = "random"


Index = Union[AffineIndex, DynamicIndex]


def aff(*terms: tuple[str, IndexScalar] | str, const: int = 0) -> AffineIndex:
    """Convenience constructor: ``aff("gx")``, ``aff(("gy","n"), "gx", const=1)``."""
    norm: list[tuple[str, IndexScalar]] = []
    for t in terms:
        if isinstance(t, str):
            norm.append((t, 1))
        else:
            sym, coeff = t
            norm.append((sym, coeff))
    return AffineIndex(terms=tuple(norm), const=const)


@dataclass(frozen=True)
class Load(Expr):
    """Read one element of an array."""

    array: str
    index: Index
    dtype: DType = DType.F32

    def children(self) -> Sequence[Expr]:
        if isinstance(self.index, DynamicIndex):
            return (self.index.expr,)
        return ()


class BinOpKind(str, enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    MIN = "min"
    MAX = "max"
    AND = "&"
    OR = "|"
    XOR = "^"
    SHL = "<<"
    SHR = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    LAND = "&&"
    LOR = "||"


@dataclass(frozen=True)
class BinOp(Expr):
    op: BinOpKind
    lhs: Expr
    rhs: Expr
    dtype: DType = DType.F32

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)


class CallFn(str, enum.Enum):
    """Intrinsic math functions with per-op cost weights (see gpusim)."""

    SQRT = "sqrt"
    RSQRT = "rsqrt"
    EXP = "exp"
    LOG = "log"
    SIN = "sin"
    COS = "cos"
    TANH = "tanh"
    POW = "pow"
    FABS = "fabs"
    FMA = "fma"
    ERF = "erf"
    FLOOR = "floor"


@dataclass(frozen=True)
class Call(Expr):
    fn: CallFn
    args: tuple[Expr, ...]
    dtype: DType = DType.F32

    def children(self) -> Sequence[Expr]:
        return self.args


@dataclass(frozen=True)
class Cast(Expr):
    expr: Expr
    dtype: DType = DType.F32

    def children(self) -> Sequence[Expr]:
        return (self.expr,)


@dataclass(frozen=True)
class Select(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Expr
    if_true: Expr
    if_false: Expr
    dtype: DType = DType.F32

    def children(self) -> Sequence[Expr]:
        return (self.cond, self.if_true, self.if_false)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Let(Stmt):
    """Declare-and-assign a per-thread scalar register."""

    name: str
    expr: Expr
    dtype: DType = DType.F32


@dataclass(frozen=True)
class Assign(Stmt):
    """Re-assign an existing scalar register (e.g. an accumulator)."""

    name: str
    expr: Expr
    dtype: DType = DType.F32


@dataclass(frozen=True)
class Store(Stmt):
    array: str
    index: Index
    expr: Expr
    dtype: DType = DType.F32


@dataclass(frozen=True)
class AtomicAdd(Stmt):
    array: str
    index: Index
    expr: Expr
    dtype: DType = DType.F32


@dataclass(frozen=True)
class For(Stmt):
    """A sequential per-thread loop of ``extent`` iterations.

    ``unroll`` is a codegen hint only (``#pragma unroll``); it does not change
    the dynamic op counts.
    """

    var: str
    extent: IndexScalar
    body: tuple[Stmt, ...]
    unroll: int = 1
    start: int = 0
    step: int = 1

    def __post_init__(self) -> None:
        if isinstance(self.extent, int) and self.extent <= 0:
            raise ValueError(f"loop extent must be positive, got {self.extent}")
        if self.step == 0:
            raise ValueError("loop step must be non-zero")


@dataclass(frozen=True)
class If(Stmt):
    """A branch. ``taken_fraction`` is dynamic metadata: the fraction of
    (thread, iteration) executions that take the then-branch. It never
    appears in the rendered source — this is exactly the kind of runtime
    fact a static analyser cannot recover."""

    cond: Expr
    then: tuple[Stmt, ...]
    els: tuple[Stmt, ...] = ()
    taken_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.taken_fraction <= 1.0):
            raise ValueError("taken_fraction must be within [0, 1]")


@dataclass(frozen=True)
class SyncThreads(Stmt):
    """Block-level barrier (``__syncthreads()`` / implicit in OMP)."""


@dataclass(frozen=True)
class Comment(Stmt):
    text: str = ""


# ---------------------------------------------------------------------------
# Kernel and program containers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArrayDecl:
    """An array operand of a kernel.

    ``size`` is in elements (an :data:`IndexScalar` resolved at launch);
    shared-scope arrays live in on-chip memory and contribute no DRAM
    traffic.
    """

    name: str
    dtype: DType
    size: IndexScalar
    scope: Scope = Scope.GLOBAL
    is_output: bool = False

    def byte_size(self, bindings: Mapping[str, int]) -> int:
        return eval_scalar(self.size, bindings) * self.dtype.size


@dataclass(frozen=True)
class ScalarParam:
    """A scalar kernel parameter (problem size, coefficient, ...)."""

    name: str
    dtype: DType = DType.I32


@dataclass(frozen=True)
class Kernel:
    """One GPU kernel.

    The implicit parallel iteration space is ``work_items`` threads (bound at
    launch); each thread's id is the symbol ``gx`` (and ``gy`` when
    ``work_items_y`` is set, giving a 2-D space).
    """

    name: str
    arrays: tuple[ArrayDecl, ...]
    params: tuple[ScalarParam, ...]
    body: tuple[Stmt, ...]
    work_items: IndexScalar
    work_items_y: IndexScalar | None = None

    def __post_init__(self) -> None:
        names = [a.name for a in self.arrays] + [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise ValueError(f"kernel {self.name}: duplicate operand names in {names}")

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"kernel {self.name} has no array {name!r}")

    def global_arrays(self) -> tuple[ArrayDecl, ...]:
        return tuple(a for a in self.arrays if a.scope is Scope.GLOBAL)

    def shared_arrays(self) -> tuple[ArrayDecl, ...]:
        return tuple(a for a in self.arrays if a.scope is Scope.SHARED)

    def total_work(self, bindings: Mapping[str, int]) -> int:
        n = eval_scalar(self.work_items, bindings)
        if self.work_items_y is not None:
            n *= eval_scalar(self.work_items_y, bindings)
        return n


# ---------------------------------------------------------------------------
# Walkers
# ---------------------------------------------------------------------------

def walk_exprs(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk_exprs(child)


def stmt_exprs(stmt: Stmt) -> Iterator[Expr]:
    """All top-level expressions directly owned by one statement."""
    if isinstance(stmt, (Let, Assign)):
        yield stmt.expr
    elif isinstance(stmt, (Store, AtomicAdd)):
        yield stmt.expr
        if isinstance(stmt.index, DynamicIndex):
            yield stmt.index.expr
    elif isinstance(stmt, If):
        yield stmt.cond


def walk_stmts(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Pre-order traversal of a statement list, descending into loops/branches."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, For):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.els)


def kernel_loads(kernel: Kernel) -> list[Load]:
    """All Load expressions anywhere in the kernel body."""
    out: list[Load] = []
    for stmt in walk_stmts(kernel.body):
        for top in stmt_exprs(stmt):
            for e in walk_exprs(top):
                if isinstance(e, Load):
                    out.append(e)
    return out


def kernel_symbols(kernel: Kernel) -> set[str]:
    """All scalar symbols referenced by the kernel body (Vars and index syms)."""
    syms: set[str] = set()
    for stmt in walk_stmts(kernel.body):
        for top in stmt_exprs(stmt):
            for e in walk_exprs(top):
                if isinstance(e, Var):
                    syms.add(e.name)
                if isinstance(e, Load) and isinstance(e.index, AffineIndex):
                    syms.update(e.index.symbols())
        if isinstance(stmt, (Store, AtomicAdd)) and isinstance(stmt.index, AffineIndex):
            syms.update(stmt.index.symbols())
    return syms


# -- small DSL helpers used by the family builders --------------------------

def f32(v: float) -> Const:
    return Const(float(v), DType.F32)


def f64(v: float) -> Const:
    return Const(float(v), DType.F64)


def i32(v: int) -> Const:
    return Const(int(v), DType.I32)


def var(name: str, dtype: DType = DType.F32) -> Var:
    return Var(name, dtype)


def load(array: str, index: Index, dtype: DType = DType.F32) -> Load:
    return Load(array, index, dtype)


def add(a: Expr, b: Expr, dtype: DType = DType.F32) -> BinOp:
    return BinOp(BinOpKind.ADD, a, b, dtype)


def sub(a: Expr, b: Expr, dtype: DType = DType.F32) -> BinOp:
    return BinOp(BinOpKind.SUB, a, b, dtype)


def mul(a: Expr, b: Expr, dtype: DType = DType.F32) -> BinOp:
    return BinOp(BinOpKind.MUL, a, b, dtype)


def div(a: Expr, b: Expr, dtype: DType = DType.F32) -> BinOp:
    return BinOp(BinOpKind.DIV, a, b, dtype)


def fma(a: Expr, b: Expr, c: Expr, dtype: DType = DType.F32) -> Call:
    return Call(CallFn.FMA, (a, b, c), dtype)


def call(fn: CallFn, *args: Expr, dtype: DType = DType.F32) -> Call:
    return Call(fn, tuple(args), dtype)
