"""RQ1 experiment: baseline roofline-calculation accuracy (Table 1 cols 4-5).

240 random rooflines × {BB, CB} arithmetic intensities, prompted at 2/4/8
shots with and without chain-of-thought; the table reports each model's best
accuracy over shot counts, per CoT setting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.engine import EvalEngine
from repro.eval.metrics import MetricReport
from repro.eval.runner import RunResult, run_queries
from repro.llm.base import LlmModel
from repro.prompts.rq1 import (
    NUM_ROOFLINES,
    SHOT_COUNTS,
    build_rq1_prompt,
    generate_rq1_questions,
)


@dataclass(frozen=True)
class Rq1Result:
    """Per-shot-count accuracies for one model, with and without CoT."""

    model_name: str
    accuracy_by_shots: dict[int, float]
    accuracy_by_shots_cot: dict[int, float]

    @property
    def best_accuracy(self) -> float:
        return max(self.accuracy_by_shots.values())

    @property
    def best_accuracy_cot(self) -> float:
        return max(self.accuracy_by_shots_cot.values())


def run_rq1(
    model: LlmModel,
    *,
    num_rooflines: int = NUM_ROOFLINES,
    shot_counts: tuple[int, ...] = SHOT_COUNTS,
    engine: EvalEngine | None = None,
) -> Rq1Result:
    """Run the full RQ1 grid for one model."""
    engine = engine or EvalEngine()
    questions = generate_rq1_questions(num_rooflines)
    by_shots: dict[int, float] = {}
    by_shots_cot: dict[int, float] = {}
    for shots in shot_counts:
        for cot in (False, True):
            items = [
                (
                    f"rq1-{i}-{shots}-{'cot' if cot else 'plain'}",
                    build_rq1_prompt(q, shots=shots, chain_of_thought=cot),
                    q.truth,
                )
                for i, q in enumerate(questions)
            ]
            result = run_queries(model, items, engine=engine)
            acc = result.metrics().accuracy
            if cot:
                by_shots_cot[shots] = acc
            else:
                by_shots[shots] = acc
    return Rq1Result(
        model_name=model.name,
        accuracy_by_shots=by_shots,
        accuracy_by_shots_cot=by_shots_cot,
    )
