"""Tests for the dataset pipeline (paper §2.1-2.2)."""

import dataclasses

import pytest

from repro.dataset import (
    PAPER_CELL_SIZE,
    TOKEN_CUTOFF,
    balance_cells,
    cell_counts,
    load_samples,
    prune_by_tokens,
    save_samples,
    split_train_validation,
)
from repro.types import Boundedness, Language


class TestPipelineShape:
    def test_profiled_count(self, dataset):
        assert len(dataset.profiled) == 749

    def test_prune_report(self, dataset):
        r = dataset.prune_report
        assert r.cutoff == TOKEN_CUTOFF == 8000
        assert r.cuda_before == 446
        assert r.omp_before == 303
        # paper kept 297 CUDA / 242 OMP; ours must land close
        assert abs(r.cuda_after - 297) <= 15
        assert 240 <= r.omp_after <= 290

    def test_pruned_all_under_cutoff(self, dataset):
        assert all(s.token_count <= 8000 for s in dataset.pruned)

    def test_balanced_is_340(self, dataset):
        assert len(dataset.balanced) == 340
        counts = cell_counts(list(dataset.balanced))
        assert set(counts.values()) == {PAPER_CELL_SIZE}

    def test_split_sizes(self, dataset):
        assert len(dataset.train) == 272
        assert len(dataset.validation) == 68
        for counts in (cell_counts(list(dataset.train)), cell_counts(list(dataset.validation))):
            assert len(set(counts.values())) == 1
        assert set(cell_counts(list(dataset.train)).values()) == {68}
        assert set(cell_counts(list(dataset.validation)).values()) == {17}

    def test_split_disjoint(self, dataset):
        train_uids = {s.uid for s in dataset.train}
        val_uids = {s.uid for s in dataset.validation}
        assert not (train_uids & val_uids)
        assert train_uids | val_uids == {s.uid for s in dataset.balanced}

    def test_samples_have_sources(self, dataset):
        for s in dataset.balanced[:20]:
            assert s.kernel_name in s.source
            assert s.argv.startswith("./")

    def test_every_cell_has_headroom(self, dataset):
        """The generated corpus must leave >= 85 samples per cell after
        pruning, or the paper's balancing step is impossible."""
        counts = cell_counts(list(dataset.pruned))
        assert min(counts.values()) >= PAPER_CELL_SIZE


class TestBalance:
    def test_balance_to_min_cell(self, dataset):
        balanced = balance_cells(list(dataset.pruned), cell_size=None)
        counts = cell_counts(balanced)
        assert len(set(counts.values())) == 1

    def test_oversized_target_rejected(self, dataset):
        with pytest.raises(ValueError):
            balance_cells(list(dataset.pruned), cell_size=10_000)

    def test_empty_cell_rejected(self, dataset):
        only_cuda = [s for s in dataset.pruned if s.language is Language.CUDA]
        with pytest.raises(ValueError):
            balance_cells(only_cuda, cell_size=10)

    def test_deterministic(self, dataset):
        a = balance_cells(list(dataset.pruned))
        b = balance_cells(list(dataset.pruned))
        assert [s.uid for s in a] == [s.uid for s in b]


class TestSplit:
    def test_fraction_bounds(self, dataset):
        with pytest.raises(ValueError):
            split_train_validation(list(dataset.balanced), train_fraction=1.0)

    def test_overlap_detected(self, dataset):
        from repro.dataset.split import TrainValSplit

        s = dataset.balanced[0]
        with pytest.raises(ValueError):
            TrainValSplit(train=(s,), validation=(s,))


class TestPrune:
    def test_custom_cutoff(self, dataset):
        kept, report = prune_by_tokens(list(dataset.profiled), cutoff=2000)
        assert all(s.token_count <= 2000 for s in kept)
        assert report.total_after == len(kept)

    def test_bad_cutoff(self, dataset):
        with pytest.raises(ValueError):
            prune_by_tokens(list(dataset.profiled), cutoff=0)


class TestStore:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "samples.jsonl"
        subset = list(dataset.balanced[:10])
        save_samples(subset, path)
        loaded = load_samples(path)
        assert loaded == subset

    def test_compact_and_rehydrate(self, dataset, tmp_path):
        path = tmp_path / "index.jsonl"
        subset = list(dataset.balanced[:5])
        save_samples(subset, path, include_source=False)
        loaded = load_samples(path, rehydrate_source=True)
        assert [s.uid for s in loaded] == [s.uid for s in subset]
        assert all(s.source for s in loaded)
        assert loaded[0].source == subset[0].source

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a sample"}\n')
        with pytest.raises(ValueError):
            load_samples(path)

    def test_sample_dict_roundtrip(self, dataset):
        from repro.dataset import Sample

        s = dataset.balanced[0]
        assert Sample.from_dict(s.to_dict()) == s
