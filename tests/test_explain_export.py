"""Tests for the explanation module and the CSV/JSON exports."""

import json

import pytest

from repro.analysis import explain_kernel, find_kernel
from repro.eval.export import (
    export_figure1_csv,
    export_figure2_csv,
    export_table1_json,
    load_figure1_csv,
)
from repro.eval.figures import figure1_data, figure2_data
from repro.roofline import RTX_3080
from repro.types import Boundedness, OpClass


@pytest.fixture(scope="module")
def balance_points():
    return {oc: rl.balance_point for oc, rl in RTX_3080.rooflines()}


def _argv_values(argv):
    toks = argv.split()
    return {
        t[2:]: int(v)
        for t, v in zip(toks, toks[1:])
        if t.startswith("--") and v.lstrip("-").isdigit()
    }


class TestExplain:
    def test_explanation_structure(self, balanced_samples, balance_points):
        s = balanced_samples[0]
        k = find_kernel(s.source, s.kernel_name, s.language)
        exp = explain_kernel(k, balance_points, param_values=_argv_values(s.argv))
        assert exp.kernel_name == s.kernel_name
        assert set(exp.per_class) == set(OpClass)
        assert exp.traffic  # at least one contributor

    def test_verdict_consistent_with_per_class(self, balanced_samples, balance_points):
        for s in balanced_samples[:20]:
            k = find_kernel(s.source, s.kernel_name, s.language)
            exp = explain_kernel(k, balance_points, param_values=_argv_values(s.argv))
            any_cb = any(
                label is Boundedness.COMPUTE
                for _, _, label in exp.per_class.values()
            )
            assert (exp.verdict is Boundedness.COMPUTE) == any_cb

    def test_traffic_shares_sum_to_at_most_one(self, balanced_samples, balance_points):
        s = balanced_samples[5]
        k = find_kernel(s.source, s.kernel_name, s.language)
        exp = explain_kernel(k, balance_points, param_values=_argv_values(s.argv))
        assert sum(share for *_, share in exp.traffic) <= 1.0 + 1e-9

    def test_render_contains_verdicts(self, balanced_samples, balance_points):
        s = balanced_samples[0]
        k = find_kernel(s.source, s.kernel_name, s.language)
        text = explain_kernel(
            k, balance_points, param_values=_argv_values(s.argv)
        ).render()
        assert "class verdicts" in text
        assert "caveats" in text
        assert "SP-FLOP" in text

    def test_detailed_matches_plain_estimate(self, balanced_samples):
        from repro.analysis import analyze_kernel, analyze_kernel_detailed

        s = balanced_samples[3]
        k = find_kernel(s.source, s.kernel_name, s.language)
        vals = _argv_values(s.argv)
        plain = analyze_kernel(k, param_values=vals)
        detailed, sites = analyze_kernel_detailed(k, param_values=vals)
        assert detailed == plain
        assert sum(b for *_, b in sites) == pytest.approx(
            plain.bytes_per_thread, rel=1e-6
        ) or plain.bytes_per_thread == 0.5  # floor case


class TestExports:
    def test_figure1_csv_roundtrip(self, dataset, tmp_path):
        fig = figure1_data(list(dataset.profiled)[:80])
        path = tmp_path / "fig1.csv"
        export_figure1_csv(fig, path)
        loaded = load_figure1_csv(path)
        for oc in OpClass:
            assert len(loaded[oc]) == len(fig.points[oc])
            if fig.points[oc]:
                assert loaded[oc][0][0] == pytest.approx(fig.points[oc][0][0], rel=1e-4)

    def test_figure1_csv_header_comments(self, dataset, tmp_path):
        fig = figure1_data(list(dataset.profiled)[:40])
        path = tmp_path / "fig1.csv"
        export_figure1_csv(fig, path)
        text = path.read_text()
        assert text.startswith("# gpu: NVIDIA GeForce RTX 3080")
        assert "balance_point=" in text

    def test_figure2_csv(self, dataset, tmp_path):
        fig = figure2_data(dataset)
        path = tmp_path / "fig2.csv"
        export_figure2_csv(fig, path)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 1 + 8  # header + 8 groups
        assert "train/CUDA/BB" in lines[1]

    def test_table1_json(self, balanced_samples, tmp_path):
        from repro.eval.table1 import build_table1
        from repro.llm import get_model

        table = build_table1(
            balanced_samples[:10],
            models=[get_model("gpt-4o-mini")],
            num_rooflines=5,
        )
        path = tmp_path / "table1.json"
        export_table1_json(table, path)
        data = json.loads(path.read_text())
        assert data[0]["model"] == "gpt-4o-mini"
        assert "accuracy" in data[0]["rq2"]
