"""Deterministic fan-out over pluggable executor backends.

Every sweep in the repo funnels through :func:`parallel_map`, which shards
work across one of three backends:

* ``"sequential"`` — a plain loop; the reference semantics.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; no
  pickling, shared read-only state. Right for cached/IO-bound paths, but
  the emulated models are pure-Python CPU work, so the GIL caps cold-sweep
  speedup.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  sidesteps the GIL so cold sweeps scale with cores. The mapped function
  and its items must be picklable (module-level functions / ``partial``
  over picklable args), and per-shard pickling is the overhead to amortise.

Whatever the backend and worker count, results always come back in
submission order, so any execution plan yields byte-identical downstream
artefacts.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Hard ceiling on worker threads (beyond this the GIL is the bottleneck).
MAX_JOBS = 64

#: The recognised executor backends, in "cheapest first" order.
BACKENDS = ("sequential", "thread", "process")

#: Default backend: threads keep the no-pickling semantics the repo grew
#: up with; pass ``backend="process"`` for cold CPU-bound sweeps.
DEFAULT_BACKEND = "thread"


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: 0 or negative means "all cores"."""
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, min(int(jobs), MAX_JOBS))


def resolve_backend(backend: str) -> str:
    """Validate and normalise an executor-backend name."""
    name = str(backend).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r}; choose from {BACKENDS}"
        )
    return name


def round_robin_partition(seq: Sequence[T], buckets: int) -> list[list[T]]:
    """Deterministic interleaved partition: bucket ``j`` gets ``seq[j::buckets]``.

    Bucket sizes differ by at most one and the assignment depends only on
    ``seq`` order and ``buckets``. This is the primitive under
    :mod:`repro.eval.shard`'s planner, where interleaving a canonically
    sorted grid spreads every (model, GPU, RQ) cell's items evenly across
    shards instead of handing whole cells to one worker.
    """
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    return [list(seq[j::buckets]) for j in range(buckets)]


def _shards(seq: Sequence[T], jobs: int) -> list[Sequence[T]]:
    """Contiguous chunks — a handful per worker, so the pool amortises
    scheduling (and, for processes, pickling) over many items while still
    load-balancing uneven work units."""
    chunk = max(1, len(seq) // (jobs * 4))
    return [seq[i : i + chunk] for i in range(0, len(seq), chunk)]


def _apply_shard(fn: Callable[[T], R], shard: Sequence[T]) -> list[R]:
    """Module-level so the process backend can pickle (fn, shard) pairs."""
    return [fn(x) for x in shard]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int = 1,
    backend: str = DEFAULT_BACKEND,
) -> list[R]:
    """Apply ``fn`` to every item, fanning out across ``jobs`` workers.

    Results are returned in input order. Failure is **fail-fast**: the
    moment any shard raises, every not-yet-started shard is cancelled and
    the earliest-submitted failure propagates — a bad sweep dies in one
    shard's time instead of burning workers on doomed shards. (Shards
    already running when the failure lands finish their in-flight work;
    executors cannot preempt them.) ``jobs <= 1`` (or a single item)
    always degrades to the sequential loop, whatever the backend. With
    ``backend="process"``, ``fn`` and the items must be picklable; each
    shard pickles ``fn`` once.
    """
    seq: Sequence[T] = items if isinstance(items, (list, tuple)) else list(items)
    jobs = resolve_jobs(jobs)
    backend = resolve_backend(backend)
    if jobs <= 1 or len(seq) <= 1 or backend == "sequential":
        return [fn(x) for x in seq]
    jobs = min(jobs, len(seq))
    shards = _shards(seq, jobs)
    pool_cls = ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    with pool_cls(max_workers=jobs) as pool:
        futures = [pool.submit(_apply_shard, fn, shard) for shard in shards]
        wait(futures, return_when=FIRST_EXCEPTION)
        failed = next(
            (
                f
                for f in futures
                if f.done() and not f.cancelled() and f.exception() is not None
            ),
            None,
        )
        if failed is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            raise failed.exception()
        out: list[R] = []
        for future in futures:
            out.extend(future.result())
        return out
