"""GPU execution-model simulator: the reproduction's profiling substrate.

Stands in for the paper's empirical RTX 3080 profiling (§2.1): interprets
kernel IR to produce op counts by precision class, DRAM read/write bytes
through a coalescing + cache-reuse model, and a roofline-informed execution
time. Ground-truth BB/CB labels derive from these counters exactly as the
paper derives them from Nsight metrics.
"""

from repro.gpusim.counters import ProfileCounters, merge_counters
from repro.gpusim.device import DeviceModel, default_device, device_for
from repro.gpusim.memory import (
    AccessSite,
    SiteTraffic,
    aggregate_traffic,
    bytes_per_execution,
    coalescing_quality,
    estimate_site_traffic,
)
from repro.gpusim.profiler import (
    KernelProfile,
    profile_corpus,
    profile_first_kernel,
    profile_kernel,
)
from repro.gpusim.timing import TimingBreakdown, estimate_time

__all__ = [
    "ProfileCounters",
    "merge_counters",
    "DeviceModel",
    "default_device",
    "device_for",
    "AccessSite",
    "SiteTraffic",
    "aggregate_traffic",
    "bytes_per_execution",
    "coalescing_quality",
    "estimate_site_traffic",
    "KernelProfile",
    "profile_kernel",
    "profile_first_kernel",
    "profile_corpus",
    "TimingBreakdown",
    "estimate_time",
]
