"""Tests for repro.roofline — model, classification rule, hardware db."""

import pytest

from repro.roofline import (
    GPU_DATABASE,
    RTX_3080,
    IntensityProfile,
    Roofline,
    RooflineSet,
    classify_ai,
    classify_kernel,
    default_gpu,
    get_gpu,
)
from repro.types import Boundedness, OpClass


class TestRoofline:
    def test_balance_point(self):
        rl = Roofline(peak=100.0, bandwidth=50.0)
        assert rl.balance_point == pytest.approx(2.0)

    def test_attainable_below_ridge(self):
        rl = Roofline(peak=100.0, bandwidth=50.0)
        assert rl.attainable(1.0) == pytest.approx(50.0)

    def test_attainable_above_ridge(self):
        rl = Roofline(peak=100.0, bandwidth=50.0)
        assert rl.attainable(10.0) == pytest.approx(100.0)

    def test_attainable_at_ridge(self):
        rl = Roofline(peak=100.0, bandwidth=50.0)
        assert rl.attainable(2.0) == pytest.approx(100.0)

    def test_classify_sides(self):
        rl = Roofline(peak=100.0, bandwidth=50.0)
        assert rl.classify(1.9) is Boundedness.BANDWIDTH
        assert rl.classify(2.1) is Boundedness.COMPUTE

    def test_classify_boundary_is_compute(self):
        rl = Roofline(peak=100.0, bandwidth=50.0)
        assert rl.classify(2.0) is Boundedness.COMPUTE

    def test_negative_ai_raises(self):
        with pytest.raises(ValueError):
            Roofline(1.0, 1.0).classify(-0.1)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            Roofline(0.0, 1.0)
        with pytest.raises(ValueError):
            Roofline(1.0, -1.0)

    def test_ceiling_points_monotone_nondecreasing(self):
        rl = Roofline(peak=100.0, bandwidth=50.0)
        pts = rl.ceiling_points(0.01, 100.0, 32)
        ys = [y for _, y in pts]
        assert all(a <= b + 1e-9 for a, b in zip(ys, ys[1:]))
        assert max(ys) == pytest.approx(100.0)

    def test_ceiling_points_validation(self):
        rl = Roofline(100.0, 50.0)
        with pytest.raises(ValueError):
            rl.ceiling_points(1.0, 0.5)
        with pytest.raises(ValueError):
            rl.ceiling_points(1.0, 2.0, n=1)


class TestRooflineSet:
    def test_from_peaks(self):
        rs = RooflineSet.from_peaks(sp_peak=100, dp_peak=10, int_peak=50, bandwidth=25)
        assert rs[OpClass.SP].peak == 100
        assert rs[OpClass.DP].peak == 10
        assert rs[OpClass.INT].peak == 50

    def test_mismatched_bandwidth_raises(self):
        with pytest.raises(ValueError):
            RooflineSet(
                sp=Roofline(100, 25),
                dp=Roofline(10, 30),
                int_=Roofline(50, 25),
            )

    def test_iteration_order(self):
        rs = RTX_3080.rooflines()
        classes = [oc for oc, _ in rs]
        assert classes == [OpClass.SP, OpClass.DP, OpClass.INT]

    def test_balance_points_ordering_rtx3080(self):
        # On the RTX 3080: DP balance << INT balance < SP balance.
        bp = RTX_3080.rooflines().balance_points()
        assert bp[OpClass.DP] < 1.0
        assert bp[OpClass.DP] < bp[OpClass.INT] < bp[OpClass.SP]


class TestClassifyKernel:
    def _rooflines(self):
        return RTX_3080.rooflines()

    def test_streaming_kernel_is_bb(self):
        # saxpy-like: 2 flops / 12 bytes
        prof = IntensityProfile(ops={OpClass.SP: 2e9, OpClass.INT: 3e9}, dram_bytes=12e9)
        detail = classify_kernel(prof, self._rooflines())
        assert detail.label is Boundedness.BANDWIDTH

    def test_dp_kernel_crossing_dp_roofline_is_cb(self):
        # AI_dp = 1.0 > 0.61 balance
        prof = IntensityProfile(ops={OpClass.DP: 1e9}, dram_bytes=1e9)
        detail = classify_kernel(prof, self._rooflines())
        assert detail.label is Boundedness.COMPUTE
        assert detail.per_class[OpClass.DP] is Boundedness.COMPUTE

    def test_any_cb_class_makes_kernel_cb(self):
        # SP far below its roofline, but INT crosses.
        prof = IntensityProfile(
            ops={OpClass.SP: 1e9, OpClass.INT: 3e10}, dram_bytes=1e9
        )
        detail = classify_kernel(prof, self._rooflines())
        assert detail.per_class[OpClass.SP] is Boundedness.BANDWIDTH
        assert detail.per_class[OpClass.INT] is Boundedness.COMPUTE
        assert detail.label is Boundedness.COMPUTE

    def test_zero_op_classes_stay_bb(self):
        prof = IntensityProfile(ops={OpClass.SP: 1e6}, dram_bytes=1e9)
        detail = classify_kernel(prof, self._rooflines())
        assert detail.per_class[OpClass.DP] is Boundedness.BANDWIDTH
        assert detail.intensities[OpClass.DP] == 0.0

    def test_zero_bytes_rejected(self):
        with pytest.raises(ValueError):
            IntensityProfile(ops={OpClass.SP: 1.0}, dram_bytes=0.0)

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            IntensityProfile(ops={OpClass.SP: -1.0}, dram_bytes=1.0)

    def test_dominant_class(self):
        prof = IntensityProfile(
            ops={OpClass.SP: 5.0, OpClass.DP: 10.0, OpClass.INT: 1.0},
            dram_bytes=1.0,
        )
        assert prof.dominant_class is OpClass.DP


class TestClassifyAi:
    def test_rq1_semantics(self):
        # the exact Figure 3 example: bp = 52.22/45.9 = 1.14; ai 0.6 -> BB
        assert classify_ai(0.6, peak=52.22, bandwidth=45.9) is Boundedness.BANDWIDTH
        assert classify_ai(1.55, peak=73.45, bandwidth=99.9) is Boundedness.COMPUTE


class TestHardwareDb:
    def test_default_is_rtx3080(self):
        assert default_gpu().name == "NVIDIA GeForce RTX 3080"

    def test_lookup_by_substring(self):
        assert get_gpu("rtx 3080").name == RTX_3080.name

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_gpu("voodoo2")

    def test_ambiguous_raises(self):
        with pytest.raises(KeyError):
            get_gpu("nvidia")

    def test_all_entries_valid(self):
        for spec in GPU_DATABASE.values():
            rs = spec.rooflines()
            assert rs.bandwidth == spec.bandwidth_gbs

    def test_prompt_block_contains_all_specs(self):
        block = RTX_3080.prompt_block()
        assert "29770.0 GFLOP/s" in block
        assert "760.3 GB/s" in block
        assert "GINTOP/s" in block

    def test_rtx3080_memory_matches_paper(self):
        assert RTX_3080.memory_gb == 10.0
