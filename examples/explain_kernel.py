"""Explain a static roofline verdict — and see exactly where source-only
analysis breaks.

The static analyst (the engine behind the emulated reasoning LLMs) can
justify its verdicts: per-class intensities against balance points, traffic
contributors, and caveats. Comparing its verdicts against the simulated
profiler's ground truth on two kernels shows both a success and the
paper's core difficulty — dynamic effects (cache residency of broadcast
reads) that no source-level reading can recover.

Run:  python examples/explain_kernel.py
"""

from repro.analysis import explain_kernel, find_kernel
from repro.dataset import paper_dataset
from repro.roofline import RTX_3080

balance_points = {
    op_class: roofline.balance_point
    for op_class, roofline in RTX_3080.rooflines()
}
dataset = paper_dataset()


def argv_values(argv: str) -> dict[str, int]:
    toks = argv.split()
    return {
        t[2:]: int(v)
        for t, v in zip(toks, toks[1:])
        if t.startswith("--") and v.lstrip("-").isdigit()
    }


def show(uid_fragment: str) -> None:
    sample = next(s for s in dataset.balanced if uid_fragment in s.uid)
    kernel = find_kernel(sample.source, sample.kernel_name, sample.language)
    explanation = explain_kernel(
        kernel, balance_points, param_values=argv_values(sample.argv)
    )
    print("=" * 72)
    print(explanation.render())
    print()
    agree = "AGREES with" if explanation.verdict == sample.label else "CONTRADICTS"
    print(f">>> profiled ground truth: {sample.label.word}-bound — "
          f"the static verdict {agree} it.")
    print()


# A clean win: streaming SAXPY is bandwidth-bound from any angle.
show("saxpy")

# The hard case: an all-pairs force kernel. The analyst charges the
# broadcast pos[j] reads per iteration (warp-shared), but the profiler knows
# the whole position array sits in L2 after the first pass — the kernel's
# true intensity is far higher. This gap is why even a perfect source-level
# reader cannot reach 100% on the paper's task (see DESIGN.md §5).
show("nbody")
