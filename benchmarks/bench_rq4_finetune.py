"""E6 — §3.7 RQ4: fine-tuning collapse.

Fine-tunes the emulated gpt-4o-mini head on the 272-sample training split
(plus CUDA-only and OMP-only variants) for two epochs and evaluates on the
68-sample validation split.

Paper result reproduced: the tuned model "devolved and would always predict
either CB or BB for the whole validation set" — constant-class predictions
(entropy 0), 50% accuracy, MCC 0, in every scope.
"""

from __future__ import annotations

from repro.eval.report import Comparison, render_comparisons
from repro.eval.rq4 import run_rq4_all_scopes
from repro.util.tables import format_table


def _run(dataset):
    return run_rq4_all_scopes(dataset)


def test_rq4_finetune(benchmark, dataset):
    results = benchmark.pedantic(_run, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for r in results:
        rows.append([
            r.scope, r.train_size, r.validation_size,
            r.validation_metrics.accuracy,
            r.validation_prediction_entropy,
            "yes" if r.collapsed else "no",
            r.collapsed_to.word if r.collapsed_to else "-",
        ])
    print()
    print(format_table(
        ["Scope", "Train", "Val", "Val Acc", "Pred entropy", "Collapsed", "To"],
        rows, title="E6 — RQ4 fine-tuning outcome",
    ))
    comparisons = [
        Comparison("RQ4", "validation accuracy (paper: chance)", 50.0,
                   results[0].validation_metrics.accuracy),
        Comparison("RQ4", "prediction entropy (paper: constant class)", 0.0,
                   results[0].validation_prediction_entropy),
    ]
    print()
    print(render_comparisons("E6 — RQ4 paper vs measured", comparisons))

    for r in results:
        assert r.collapsed, r.scope
        assert r.validation_prediction_entropy == 0.0
        assert r.validation_metrics.accuracy == 50.0
    assert results[0].train_size == 272
    assert results[0].validation_size == 68
