"""Sampling-hyperparameter study (paper §3.2).

*"We conducted a Chi-Squared test on the LLMs listed in Table 1 and found
that a change in these two hyperparameters did not have any statistically
significant impact on the predicted outcomes of the LLMs."*

The experiment queries a model over the dataset at a grid of
(temperature, top_p) settings, builds the settings × predicted-class
contingency table, and runs Pearson's chi-squared test of independence.
Reasoning models reject sampling overrides, so (as in the paper) only
non-reasoning models enter the study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dataset import Sample, paper_dataset
from repro.llm.base import LlmModel
from repro.prompts import build_classify_prompt
from repro.types import Boundedness
from repro.util.stats import Chi2Result, chi_squared_independence

#: The hyperparameter grid swept per model.
DEFAULT_GRID: tuple[tuple[float, float], ...] = (
    (0.1, 0.2),
    (0.5, 0.5),
    (1.0, 0.9),
    (1.5, 1.0),
)


@dataclass(frozen=True)
class HyperparamStudy:
    """Contingency table + test outcome for one model."""

    model_name: str
    grid: tuple[tuple[float, float], ...]
    #: rows = settings, cols = (predicted Compute, predicted Bandwidth)
    table: tuple[tuple[int, int], ...]
    chi2: Chi2Result

    @property
    def significant(self) -> bool:
        return self.chi2.significant_at_05


def run_hyperparam_study(
    model: LlmModel,
    samples: Sequence[Sample] | None = None,
    *,
    grid: tuple[tuple[float, float], ...] = DEFAULT_GRID,
    max_samples: int | None = None,
    jobs: int = 1,
) -> HyperparamStudy:
    """Sweep the grid and chi-squared-test the prediction distribution."""
    if not model.config.supports_sampling_params:
        raise ValueError(
            f"{model.name} rejects sampling overrides; the paper queries "
            "reasoning models at their defaults only"
        )
    if samples is None:
        # Cold start builds (and profiles) the dataset here: fan it over
        # ``jobs`` workers instead of a single thread.
        samples = paper_dataset(jobs=jobs).balanced
    if max_samples is not None:
        samples = list(samples)[:max_samples]
    prompts = [build_classify_prompt(s).text for s in samples]

    table: list[tuple[int, int]] = []
    for temperature, top_p in grid:
        compute = 0
        bandwidth = 0
        for prompt in prompts:
            pred = model.complete(
                prompt, temperature=temperature, top_p=top_p
            ).boundedness()
            if pred is Boundedness.COMPUTE:
                compute += 1
            else:
                bandwidth += 1
        table.append((compute, bandwidth))

    chi2 = chi_squared_independence(table)
    return HyperparamStudy(
        model_name=model.name, grid=grid, table=tuple(table), chi2=chi2
    )
