"""Source-code generation backends (CUDA and OpenMP offload)."""

from repro.kernels.codegen.cuda import render_cuda
from repro.kernels.codegen.omp import render_omp
from repro.kernels.program import ProgramSpec, RenderedProgram
from repro.types import Language

__all__ = ["render_cuda", "render_omp", "render_program"]


def render_program(spec: ProgramSpec) -> RenderedProgram:
    """Render a spec with the backend matching its language."""
    if spec.language is Language.CUDA:
        return render_cuda(spec)
    return render_omp(spec)
