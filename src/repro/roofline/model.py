"""The Roofline model (Williams et al., CACM 2009).

A roofline is defined by a peak arithmetic throughput ``peak`` (Gop/s) and a
peak memory bandwidth ``bandwidth`` (GB/s). The *balance point* (also called
the machine balance or ridge point) is ``peak / bandwidth`` in op/byte: a
kernel whose arithmetic intensity (AI) falls below the balance point is
bandwidth-bound, above it compute-bound.

:class:`RooflineSet` groups the three per-op-class rooflines (SP/DP/INT) of a
GPU, matching the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.types import Boundedness, OpClass


@dataclass(frozen=True)
class Roofline:
    """A single performance roofline.

    Parameters
    ----------
    peak:
        Peak arithmetic throughput in Gop/s (GFLOP/s for SP/DP, GINTOP/s for
        integer ops).
    bandwidth:
        Peak DRAM bandwidth in GB/s.
    """

    peak: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.peak <= 0:
            raise ValueError(f"peak must be positive, got {self.peak}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    @property
    def balance_point(self) -> float:
        """Machine balance in op/byte; the ridge of the roofline."""
        return self.peak / self.bandwidth

    def attainable(self, ai: float) -> float:
        """Attainable performance (Gop/s) at arithmetic intensity ``ai``.

        ``min(peak, ai * bandwidth)`` — the classic roofline ceiling.
        """
        if ai < 0:
            raise ValueError(f"arithmetic intensity must be non-negative, got {ai}")
        return min(self.peak, ai * self.bandwidth)

    def classify(self, ai: float) -> Boundedness:
        """Classify an AI value against this roofline.

        AI below the balance point is bandwidth-bound; at or above it,
        compute-bound. (The boundary itself is conventionally compute-bound;
        the paper's prompt examples use strict ``<`` for the BB region.)
        """
        if ai < 0:
            raise ValueError(f"arithmetic intensity must be non-negative, got {ai}")
        return Boundedness.BANDWIDTH if ai < self.balance_point else Boundedness.COMPUTE

    def ceiling_points(self, ai_lo: float, ai_hi: float, n: int = 64) -> list[tuple[float, float]]:
        """Sample (AI, attainable) pairs along the roofline for plotting.

        Points are geometrically spaced, which renders as straight segments
        on the log-log axes of Figure 1.
        """
        if ai_lo <= 0 or ai_hi <= ai_lo:
            raise ValueError("require 0 < ai_lo < ai_hi")
        if n < 2:
            raise ValueError("need at least two sample points")
        ratio = (ai_hi / ai_lo) ** (1.0 / (n - 1))
        pts = []
        ai = ai_lo
        for _ in range(n):
            pts.append((ai, self.attainable(ai)))
            ai *= ratio
        return pts


@dataclass(frozen=True)
class RooflineSet:
    """The three per-op-class rooflines of one device (paper Figure 1).

    All three share the device's DRAM bandwidth but have distinct peaks.
    """

    sp: Roofline
    dp: Roofline
    int_: Roofline

    def __post_init__(self) -> None:
        bws = {self.sp.bandwidth, self.dp.bandwidth, self.int_.bandwidth}
        if len(bws) != 1:
            raise ValueError("all rooflines of one device must share DRAM bandwidth")

    @property
    def bandwidth(self) -> float:
        return self.sp.bandwidth

    def __getitem__(self, op_class: OpClass) -> Roofline:
        return {OpClass.SP: self.sp, OpClass.DP: self.dp, OpClass.INT: self.int_}[op_class]

    def __iter__(self) -> Iterator[tuple[OpClass, Roofline]]:
        yield OpClass.SP, self.sp
        yield OpClass.DP, self.dp
        yield OpClass.INT, self.int_

    def balance_points(self) -> Mapping[OpClass, float]:
        return {oc: rl.balance_point for oc, rl in self}

    @classmethod
    def from_peaks(
        cls, *, sp_peak: float, dp_peak: float, int_peak: float, bandwidth: float
    ) -> "RooflineSet":
        return cls(
            sp=Roofline(sp_peak, bandwidth),
            dp=Roofline(dp_peak, bandwidth),
            int_=Roofline(int_peak, bandwidth),
        )
