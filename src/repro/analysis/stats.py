"""Statistical significance suite over the hardware-matrix grid.

The paper reports accuracy differences (zero-shot vs few-shot, model vs
model) without significance testing. The matrix sweep produces exactly the
paired per-kernel observations needed to fix that: every cell of the
(model × GPU × regime) grid scores the *same kernels in the same order*,
so any two cells — and any two axis values, pooling cells over the other
axes — form a paired sample of 0/1 outcomes. This module turns a
:class:`~repro.eval.matrix.MatrixResult` into a :class:`StatsReport`:

* **Pairwise comparisons** along each axis (model, GPU, regime): paired
  Wilcoxon signed-rank test (:func:`repro.util.stats.wilcoxon_signed_rank`
  — 0/1 outcomes always carry ties and zero differences, so the
  tie-corrected normal approximation applies), Vargha-Delaney A12 effect
  size with its qualitative magnitude, and Holm-corrected p-values within
  each axis family.
* **Bootstrap confidence intervals** on accuracy and macro-F1 per cell,
  BCa by default, every resample drawn from a
  :class:`~repro.util.rng.RngStream` keyed on (seed, cell, metric) — the
  same seed always yields the same report digest, whatever the order the
  cells were computed in.

:class:`StatsReport` speaks the :class:`~repro.eval.report.Reportable`
protocol (``digest()`` / ``render()`` / ``to_json()``), so the CLI's
``matrix --stats``, ``stats``, and ``export`` paths all consume it the
same way they consume a run or a matrix.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.eval.matrix import MatrixResult
from repro.util.rng import RngStream
from repro.util.stats import (
    BootstrapCI,
    WilcoxonResult,
    a12_magnitude,
    bootstrap_ci,
    holm_bonferroni,
    vargha_delaney_a12,
    wilcoxon_signed_rank,
)
from repro.util.tables import format_table
from repro.util.textplot import ascii_intervals

#: Fixed default seed: a bare ``repro-paper matrix --stats`` is reproducible
#: run-to-run without any flag.
DEFAULT_STATS_SEED = 20250807

#: Default bootstrap resample count (CI endpoints stable to ~a point of
#: accuracy at matrix sample sizes).
DEFAULT_RESAMPLES = 1000

#: The grid axes compared pairwise, in report order.
AXES = ("model", "gpu", "regime")

#: Metrics bootstrapped per cell.
CI_METRICS = ("accuracy", "macro_f1")


@dataclass(frozen=True)
class PairwiseComparison:
    """One paired A-vs-B test along a grid axis.

    ``n`` counts the paired per-kernel observations pooled over the other
    two axes; ``mean_a``/``mean_b`` are the pooled accuracies ×100.
    ``p_holm`` is the Holm-adjusted p-value within this axis's family of
    comparisons.
    """

    axis: str  # "model" | "gpu" | "regime"
    a: str
    b: str
    n: int
    mean_a: float
    mean_b: float
    wilcoxon: WilcoxonResult
    a12: float
    p_holm: float

    @property
    def delta(self) -> float:
        return self.mean_a - self.mean_b

    @property
    def magnitude(self) -> str:
        return a12_magnitude(self.a12)

    @property
    def significant_at_05(self) -> bool:
        return self.p_holm < 0.05


@dataclass(frozen=True)
class CellInterval:
    """One bootstrap CI: a (model, GPU, regime) cell × metric."""

    model_name: str
    gpu_name: str
    regime: str
    metric: str  # "accuracy" | "macro_f1"
    ci: BootstrapCI


def _outcome_matrix(run) -> np.ndarray:
    """Per-kernel (truth, prediction) class indices for one cell's run.

    Row order is the grid's kernel order (shared by every cell).
    Unparseable predictions score as the wrong class, exactly as
    :meth:`repro.eval.runner.RunResult.metrics` does; classes are encoded
    Compute=1 / Bandwidth=0.
    """
    rows = np.empty((len(run.records), 2), dtype=np.int8)
    for i, r in enumerate(run.records):
        pred = r.prediction if r.prediction is not None else r.truth.other
        rows[i, 0] = 1 if r.truth.word == "Compute" else 0
        rows[i, 1] = 1 if pred.word == "Compute" else 0
    return rows


def _accuracy_stat(sample: np.ndarray) -> np.ndarray:
    """Accuracy ×100 over the kernel axis of ``(..., n, 2)`` samples."""
    return 100.0 * (sample[..., 0] == sample[..., 1]).mean(axis=-1)


def _macro_f1_stat(sample: np.ndarray) -> np.ndarray:
    """Macro-F1 ×100 over the kernel axis, replicating
    :func:`repro.eval.metrics.macro_f1` (absent-and-never-predicted class
    scores F1 = 1) vectorized over leading resample axes."""
    t, p = sample[..., 0], sample[..., 1]
    tp = ((t == 1) & (p == 1)).sum(axis=-1).astype(float)
    tn = ((t == 0) & (p == 0)).sum(axis=-1).astype(float)
    fp = ((t == 0) & (p == 1)).sum(axis=-1).astype(float)
    fn = ((t == 1) & (p == 0)).sum(axis=-1).astype(float)
    denom_cb = 2.0 * tp + fp + fn
    denom_bb = 2.0 * tn + fn + fp
    with np.errstate(divide="ignore", invalid="ignore"):
        f1_cb = np.where(denom_cb == 0.0, 1.0, 2.0 * tp / denom_cb)
        f1_bb = np.where(denom_bb == 0.0, 1.0, 2.0 * tn / denom_bb)
    return 100.0 * (f1_cb + f1_bb) / 2.0

_CI_STATISTICS = {"accuracy": _accuracy_stat, "macro_f1": _macro_f1_stat}


@dataclass(frozen=True)
class StatsReport:
    """The matrix grid's significance report (a ``Reportable``)."""

    matrix_digest: str
    seed: int
    n_resamples: int
    confidence: float
    ci_method: str  # "bca" | "percentile"
    model_names: tuple[str, ...]
    gpu_names: tuple[str, ...]
    regimes: tuple[str, ...]
    num_kernels: int
    comparisons: tuple[PairwiseComparison, ...]
    intervals: tuple[CellInterval, ...]

    def digest(self) -> str:
        """SHA-256 over the report's value form (stable per seed/grid)."""
        payload = repr((
            self.matrix_digest,
            self.seed,
            self.n_resamples,
            self.confidence,
            self.ci_method,
            self.model_names,
            self.gpu_names,
            self.regimes,
            self.num_kernels,
            self.comparisons,
            self.intervals,
        ))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def axis_comparisons(self, axis: str) -> tuple[PairwiseComparison, ...]:
        if axis not in AXES:
            raise ValueError(f"unknown axis {axis!r}; choose from {AXES}")
        return tuple(c for c in self.comparisons if c.axis == axis)

    def interval(
        self, model_name: str, gpu_name: str, regime: str, metric: str
    ) -> CellInterval:
        for iv in self.intervals:
            if (iv.model_name, iv.gpu_name, iv.regime, iv.metric) == (
                model_name, gpu_name, regime, metric,
            ):
                return iv
        raise KeyError((model_name, gpu_name, regime, metric))

    # -- rendering -----------------------------------------------------------
    def _render_axis_table(self, axis: str) -> str | None:
        comps = self.axis_comparisons(axis)
        if not comps:
            return None
        rows = []
        for c in comps:
            rows.append([
                c.a,
                c.b,
                c.n,
                c.mean_a,
                c.mean_b,
                c.delta,
                c.wilcoxon.statistic,
                f"{c.wilcoxon.p_value:.4g}",
                f"{c.p_holm:.4g}",
                f"{c.a12:.3f}",
                c.magnitude,
                "*" if c.significant_at_05 else "",
            ])
        return format_table(
            ["A", "B", "n", "Acc A", "Acc B", "Delta", "W",
             "p", "p(Holm)", "A12", "Magnitude", "Sig"],
            rows,
            title=(
                f"Pairwise {axis} comparisons — paired Wilcoxon over "
                "per-kernel outcomes, Holm-corrected"
            ),
        )

    def _render_interval_table(self) -> str:
        rows = [
            [
                iv.model_name,
                iv.gpu_name,
                iv.regime,
                iv.metric,
                iv.ci.estimate,
                iv.ci.low,
                iv.ci.high,
            ]
            for iv in self.intervals
        ]
        pct = 100.0 * self.confidence
        return format_table(
            ["Model", "GPU", "Regime", "Metric", "Estimate", "Low", "High"],
            rows,
            title=(
                f"Bootstrap {pct:g}% CIs — {self.ci_method}, "
                f"{self.n_resamples} resamples, seed {self.seed}"
            ),
        )

    def _render_interval_bars(self) -> list[str]:
        blocks = []
        for regime in self.regimes:
            groups = {}
            for iv in self.intervals:
                if iv.regime != regime or iv.metric != "accuracy":
                    continue
                label = f"{iv.model_name}/{iv.gpu_name}"
                groups[label] = (iv.ci.low, iv.ci.estimate, iv.ci.high)
            if groups:
                blocks.append(ascii_intervals(
                    groups,
                    title=f"Accuracy CIs — regime {regime}",
                    value_label="accuracy %",
                ))
        return blocks

    def render(self) -> str:
        parts = [
            (
                f"Statistical report — {len(self.model_names)} models × "
                f"{len(self.gpu_names)} GPUs × {len(self.regimes)} regimes "
                f"over {self.num_kernels} kernels\n"
                f"matrix {self.matrix_digest[:12]}…  seed {self.seed}  "
                f"{self.ci_method} bootstrap × {self.n_resamples}  "
                f"confidence {self.confidence:g}"
            )
        ]
        for axis in AXES:
            table = self._render_axis_table(axis)
            if table:
                parts.append(table)
        parts.append(self._render_interval_table())
        parts.extend(self._render_interval_bars())
        return "\n\n".join(parts)

    def to_json(self) -> dict:
        return {
            "type": "stats",
            "digest": self.digest(),
            "matrix_digest": self.matrix_digest,
            "seed": self.seed,
            "n_resamples": self.n_resamples,
            "confidence": self.confidence,
            "ci_method": self.ci_method,
            "models": list(self.model_names),
            "gpus": list(self.gpu_names),
            "regimes": list(self.regimes),
            "num_kernels": self.num_kernels,
            "comparisons": [
                {
                    "axis": c.axis,
                    "a": c.a,
                    "b": c.b,
                    "n": c.n,
                    "mean_a": c.mean_a,
                    "mean_b": c.mean_b,
                    "delta": c.delta,
                    "wilcoxon_statistic": c.wilcoxon.statistic,
                    "wilcoxon_method": c.wilcoxon.method,
                    "p_value": c.wilcoxon.p_value,
                    "p_holm": c.p_holm,
                    "a12": c.a12,
                    "magnitude": c.magnitude,
                    "significant_at_05": c.significant_at_05,
                }
                for c in self.comparisons
            ],
            "intervals": [
                {
                    "model": iv.model_name,
                    "gpu": iv.gpu_name,
                    "regime": iv.regime,
                    "metric": iv.metric,
                    "estimate": iv.ci.estimate,
                    "low": iv.ci.low,
                    "high": iv.ci.high,
                }
                for iv in self.intervals
            ],
        }


def _pooled_outcomes(
    matrix: MatrixResult, axis: str, value: str
) -> np.ndarray:
    """0/1 correctness pooled over the other two axes, in a deterministic
    (gpu, model, regime) cell order shared by every value of ``axis`` —
    which is what makes two pooled vectors positionally paired."""
    chunks = []
    for gpu in matrix.gpu_names:
        for model in matrix.model_names:
            for regime in matrix.rqs:
                cell_key = {"model": model, "gpu": gpu, "regime": regime}
                if cell_key[axis] != value:
                    continue
                rows = _outcome_matrix(matrix.cell(model, gpu, regime).run)
                chunks.append((rows[:, 0] == rows[:, 1]).astype(np.int8))
    return np.concatenate(chunks)


def build_stats_report(
    matrix: MatrixResult,
    *,
    seed: int = DEFAULT_STATS_SEED,
    n_resamples: int = DEFAULT_RESAMPLES,
    confidence: float = 0.95,
    ci_method: str = "bca",
) -> StatsReport:
    """Run the full significance suite over one matrix result.

    Pure computation on the matrix's records — no completions, no
    profiling, no I/O — so running it over a warm-cache sweep adds only
    the stats pass itself (``benchmarks/bench_stats.py`` bounds it).
    """
    axis_values = {
        "model": matrix.model_names,
        "gpu": matrix.gpu_names,
        "regime": matrix.rqs,
    }

    comparisons: list[PairwiseComparison] = []
    for axis in AXES:
        raw: list[PairwiseComparison] = []
        for a, b in combinations(axis_values[axis], 2):
            xa = _pooled_outcomes(matrix, axis, a)
            xb = _pooled_outcomes(matrix, axis, b)
            raw.append(
                PairwiseComparison(
                    axis=axis,
                    a=a,
                    b=b,
                    n=int(xa.size),
                    mean_a=100.0 * float(xa.mean()),
                    mean_b=100.0 * float(xb.mean()),
                    wilcoxon=wilcoxon_signed_rank(
                        xa.astype(float), xb.astype(float)
                    ),
                    a12=vargha_delaney_a12(xa, xb),
                    p_holm=0.0,  # placeholder until the family is complete
                )
            )
        adjusted = holm_bonferroni([c.wilcoxon.p_value for c in raw])
        comparisons.extend(
            dataclasses.replace(c, p_holm=p) for c, p in zip(raw, adjusted)
        )

    intervals: list[CellInterval] = []
    for gpu in matrix.gpu_names:
        for model in matrix.model_names:
            for regime in matrix.rqs:
                rows = _outcome_matrix(matrix.cell(model, gpu, regime).run)
                for metric in CI_METRICS:
                    ci = bootstrap_ci(
                        rows,
                        _CI_STATISTICS[metric],
                        rng=RngStream(
                            "analysis.stats", seed, "bootstrap",
                            model, gpu, regime, metric,
                        ),
                        n_resamples=n_resamples,
                        confidence=confidence,
                        method=ci_method,
                        vectorized=True,
                    )
                    intervals.append(CellInterval(
                        model_name=model, gpu_name=gpu, regime=regime,
                        metric=metric, ci=ci,
                    ))

    return StatsReport(
        matrix_digest=matrix.digest(),
        seed=seed,
        n_resamples=n_resamples,
        confidence=confidence,
        ci_method=ci_method,
        model_names=matrix.model_names,
        gpu_names=matrix.gpu_names,
        regimes=matrix.rqs,
        num_kernels=matrix.num_kernels,
        comparisons=tuple(comparisons),
        intervals=tuple(intervals),
    )
