"""CI smoke test for ``repro-paper serve``.

End-to-end, across real processes:

1. warm a response cache with the batch CLI (``rq2 --limit N``) and
   record the batch path's per-kernel labels;
2. start ``repro-paper serve`` as a subprocess against that cache;
3. issue HTTP classification queries for the warmed kernels and assert
   every answer is served from cache with labels matching the batch
   CLI's (``repro-paper classify`` is cross-checked for the first
   kernels);
4. assert the server's counters report **zero** new completions.

Exits non-zero with a diagnostic on any violation.

Run:  PYTHONPATH=src python scripts/serve_smoke.py [--limit N]
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
import time
import urllib.parse
import urllib.request
from pathlib import Path

MODEL = "o3-mini-high"
CLI = [sys.executable, "-m", "repro.cli"]


def run_cli(*args: str) -> str:
    proc = subprocess.run(
        [*CLI, *args], capture_output=True, text=True, timeout=600
    )
    if proc.returncode not in (0, 1):  # classify exits 1 on a wrong label
        raise SystemExit(
            f"command {' '.join(args)} failed rc={proc.returncode}:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc.stdout


def get_json(url: str, **params) -> dict:
    if params:
        url = f"{url}?{urllib.parse.urlencode(params)}"
    with urllib.request.urlopen(url, timeout=120) as resp:
        return json.loads(resp.read().decode("utf-8"))


def batch_labels(cache_dir: str, limit: int) -> dict[str, str]:
    """Warm the cache via the batch CLI, then replay the same grid
    in-process (same code path, zero completions) to collect its labels."""
    out = run_cli(
        "rq2", "--model", MODEL, "--limit", str(limit),
        "--cache-dir", cache_dir, "--jobs", "2",
    )
    if "RQ2 (zero-shot)" not in out:
        raise SystemExit(f"unexpected rq2 output:\n{out}")

    from repro.dataset import paper_dataset
    from repro.eval.engine import DiskResponseStore, EvalEngine
    from repro.eval.rq23 import classification_items
    from repro.llm import get_model

    samples = list(paper_dataset().balanced)[:limit]
    engine = EvalEngine(store=DiskResponseStore(cache_dir))
    result = engine.run(
        get_model(MODEL), classification_items(samples, few_shot=False)
    )
    if engine.stats.completions != 0:
        raise SystemExit(
            f"replay of the warmed cache recomputed "
            f"{engine.stats.completions} completions"
        )
    return {
        r.item_id: r.prediction.word if r.prediction else None
        for r in result.records
    }


def start_server(cache_dir: str) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [*CLI, "serve", "--port", "0", "--cache-dir", cache_dir, "--warm"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 300
    url = None
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"serve exited rc={proc.wait()} before binding"
            )
        sys.stdout.write(f"  [serve] {line}")
        m = re.search(r"serving on (http://\S+)", line)
        if m:
            url = m.group(1)
            break
    if url is None:
        proc.kill()
        raise SystemExit("serve never reported its URL")
    # Wait for liveness.
    for _ in range(100):
        try:
            if get_json(f"{url}/healthz")["status"] == "ok":
                return proc, url
        except OSError:
            time.sleep(0.1)
    proc.kill()
    raise SystemExit("serve bound but /healthz never came up")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--limit", type=int, default=8,
                        help="kernels to warm and query (default 8)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: a temp dir)")
    args = parser.parse_args()

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="serve-smoke-")
    print(f"1) warming cache @ {cache_dir} via batch CLI ({args.limit} kernels)")
    labels = batch_labels(cache_dir, args.limit)
    print(f"   batch labels: {labels}")

    print("2) starting repro-paper serve against the warm cache")
    proc, url = start_server(cache_dir)
    try:
        print(f"3) querying {len(labels)} kernels over HTTP @ {url}")
        for uid, label in labels.items():
            body = get_json(f"{url}/v1/classify", uid=uid, model=MODEL)
            if not body["cached"]:
                raise SystemExit(f"{uid}: served cold, expected a warm hit")
            if body["prediction"] != label:
                raise SystemExit(
                    f"{uid}: HTTP prediction {body['prediction']!r} != "
                    f"batch CLI label {label!r}"
                )
            print(f"   {uid}: {body['prediction']} (cached)")

        # Cross-check the single-kernel CLI on the first two kernels: its
        # "prediction:" line must agree with the served answer.
        for uid in list(labels)[:2]:
            out = run_cli("classify", uid, "--model", MODEL)
            m = re.search(r"prediction:\s+(\w+)", out)
            if not m or m.group(1) != labels[uid]:
                raise SystemExit(
                    f"classify CLI disagrees for {uid}: "
                    f"{m.group(1) if m else out!r} != {labels[uid]!r}"
                )
        print("   classify CLI cross-check agrees")

        print("4) checking server counters")
        stats = get_json(f"{url}/v1/stats")
        if stats["completions"] != 0:
            raise SystemExit(
                f"server issued {stats['completions']} new completions; "
                "expected 0 on a warm cache"
            )
        if stats["hits"] != len(labels):
            raise SystemExit(
                f"expected {len(labels)} cache hits, saw {stats['hits']}"
            )
        print(f"   stats: {stats}")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()

    print("serve smoke: OK (warm HTTP path, 0 new completions, "
          "labels match the batch CLI)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
