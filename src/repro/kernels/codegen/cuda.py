"""CUDA source generation.

Renders a :class:`~repro.kernels.program.ProgramSpec` into realistic CUDA
translation units: ``__global__`` kernels (optionally in a separate
``kernels.cuh``), a host ``main`` with argument parsing, device allocation,
H2D/D2H copies, event timing, kernel launches, and (at higher verbosity) a
CPU reference check — the shape of a typical HeCBench program.
"""

from __future__ import annotations

from repro.kernels.codegen.common import BackendHooks, render_stmts
from repro.kernels.ir import ArrayDecl, DType, Kernel, Scope
from repro.kernels.launch import KernelInstance
from repro.kernels.program import ProgramSpec, RenderedProgram, SourceFile
from repro.types import Language


def _rsqrt(args: str, dtype: DType) -> str:
    return f"rsqrt{'f' if dtype is DType.F32 else ''}({args})"


def _atomic_add(target: str, value: str, dtype: DType) -> list[str]:
    return [f"atomicAdd(&{target}, {value});"]


def _sync() -> list[str]:
    return ["__syncthreads();"]


def _unroll(n: int) -> str:
    return f"#pragma unroll {n}"


CUDA_HOOKS = BackendHooks(
    rsqrt_spelling=_rsqrt,
    atomic_add=_atomic_add,
    sync_threads=_sync,
    unroll_pragma=_unroll,
)


def _param_decl(arr: ArrayDecl) -> str:
    qual = "" if arr.is_output else "const "
    return f"{qual}{arr.dtype.c_name} *__restrict__ {arr.name}"


def render_kernel(kernel: Kernel) -> str:
    """Render one ``__global__`` function."""
    params = [_param_decl(a) for a in kernel.global_arrays()]
    params += [f"{p.dtype.c_name} {p.name}" for p in kernel.params]
    lines = [f"__global__ void {kernel.name}({', '.join(params)})", "{"]
    for arr in kernel.shared_arrays():
        size = arr.size if isinstance(arr.size, str) else str(arr.size)
        lines.append(f"  __shared__ {arr.dtype.c_name} {arr.name}[{size}];")
    from repro.kernels.ir import kernel_symbols

    syms = kernel_symbols(kernel)
    if "lx" in syms:
        lines.append("  const int lx = threadIdx.x;")
    if "ly" in syms:
        lines.append("  const int ly = threadIdx.y;")
    if kernel.work_items_y is None:
        lines.append("  const int gx = blockIdx.x * blockDim.x + threadIdx.x;")
        bound = kernel.work_items if isinstance(kernel.work_items, str) else str(kernel.work_items)
        lines.append(f"  if (gx >= {bound}) return;")
    else:
        lines.append("  const int gx = blockIdx.x * blockDim.x + threadIdx.x;")
        lines.append("  const int gy = blockIdx.y * blockDim.y + threadIdx.y;")
        bx = kernel.work_items if isinstance(kernel.work_items, str) else str(kernel.work_items)
        by = (
            kernel.work_items_y
            if isinstance(kernel.work_items_y, str)
            else str(kernel.work_items_y)
        )
        lines.append(f"  if (gx >= {bx} || gy >= {by}) return;")
    lines.extend(render_stmts(kernel.body, CUDA_HOOKS, 1))
    lines.append("}")
    return "\n".join(lines)


def _size_expr(arr: ArrayDecl) -> str:
    return arr.size if isinstance(arr.size, str) else str(arr.size)


def _init_expr(arr: ArrayDecl, salt: int) -> str:
    if arr.dtype.is_float:
        suffix = "f" if arr.dtype is DType.F32 else ""
        return f"({arr.dtype.c_name})((i % {97 + salt}) + 1) * 0.01{suffix}"
    return f"(i * {13 + salt} + 7) % 1024"


def _scalar_arg(value: int, dtype: DType) -> str:
    if dtype is DType.F32:
        return f"{value}.0f"
    if dtype is DType.F64:
        return f"{value}.0"
    return str(value)


def _host_scalar_args(inst: KernelInstance) -> list[str]:
    """Actual arguments for the kernel call's scalar parameters."""
    args = []
    env = dict(inst.binding_exprs)
    for p in inst.kernel.params:
        src = env[p.name]
        if isinstance(src, int):
            args.append(_scalar_arg(src, p.dtype))
        else:
            args.append(src if p.dtype is DType.I32 else f"({p.dtype.c_name}){src}")
    return args


def render_host(spec: ProgramSpec, kernels_in_header: bool) -> str:
    """Render ``main.cu``."""
    v = spec.host_verbosity
    lines: list[str] = []
    from repro.kernels.codegen.common import license_banner

    lines.extend(license_banner(spec.name))
    lines.append(f"// {spec.name}: {spec.description}")
    lines.append("// Generated benchmark program (CUDA).")
    lines.append("#include <cstdio>")
    lines.append("#include <cstdlib>")
    lines.append("#include <cstring>")
    lines.append("#include <cmath>")
    lines.append("#include <cuda_runtime.h>")
    if spec.util_header:
        lines.append('#include "benchmark_utils.h"')
    if spec.util_header >= 2:
        lines.append('#include "reference_impl.h"')
    if kernels_in_header:
        lines.append('#include "kernels.cuh"')
    lines.append("")
    if v >= 1:
        lines.append("#define CUDA_CHECK(call) do { \\")
        lines.append("  cudaError_t err_ = (call); \\")
        lines.append("  if (err_ != cudaSuccess) { \\")
        lines.append(
            '    fprintf(stderr, "CUDA error %s at %s:%d\\n", '
            "cudaGetErrorString(err_), __FILE__, __LINE__); \\"
        )
        lines.append("    exit(1); \\")
        lines.append("  } \\")
        lines.append("} while (0)")
        lines.append("")
    check = "CUDA_CHECK" if v >= 1 else ""

    first = spec.first_kernel
    arrays = _unique_arrays(spec)
    flags = list(spec.cmdline.flags)

    if v >= 1:
        lines.append("static void usage(const char *prog) {")
        flag_str = " ".join(f"[--{name} <int>]" for name, _ in flags)
        lines.append(f'  printf("usage: %s {flag_str}\\n", prog);')
        lines.append("}")
        lines.append("")

    if v >= 2:
        lines.extend(_reference_impl(spec))

    lines.append("int main(int argc, char **argv) {")
    for name, default in flags:
        lines.append(f"  int {name} = {default};")
    lines.append("  for (int i = 1; i < argc; i++) {")
    for j, (name, _) in enumerate(flags):
        kw = "if" if j == 0 else "else if"
        lines.append(
            f'    {kw} (!strcmp(argv[i], "--{name}") && i + 1 < argc) {name} = atoi(argv[++i]);'
        )
    if flags:
        lines.append("    else {")
        if v >= 1:
            lines.append("      usage(argv[0]);")
        lines.append("      return 1;")
        lines.append("    }")
    lines.append("  }")
    if v >= 1:
        shown = ", ".join(f"{name}=%d" for name, _ in flags)
        vals = ", ".join(name for name, _ in flags)
        lines.append(f'  printf("{spec.name}: {shown}\\n", {vals});')
    lines.append("")

    # Host allocation + init.
    for salt, arr in enumerate(arrays):
        n = _size_expr(arr)
        ct = arr.dtype.c_name
        lines.append(
            f"  {ct} *h_{arr.name} = ({ct} *)malloc((size_t)({n}) * sizeof({ct}));"
        )
    for salt, arr in enumerate(arrays):
        n = _size_expr(arr)
        if arr.is_output:
            lines.append(
                f"  memset(h_{arr.name}, 0, (size_t)({n}) * sizeof({arr.dtype.c_name}));"
            )
        else:
            lines.append(f"  for (long i = 0; i < (long)({n}); i++)")
            lines.append(f"    h_{arr.name}[i] = {_init_expr(arr, salt)};")
    lines.append("")

    # Device allocation + H2D.
    for arr in arrays:
        n = _size_expr(arr)
        ct = arr.dtype.c_name
        alloc = f"cudaMalloc(&d_{arr.name}, (size_t)({n}) * sizeof({ct}))"
        lines.append(f"  {ct} *d_{arr.name} = nullptr;")
        lines.append(f"  {check}({alloc});" if check else f"  {alloc};")
    for arr in arrays:
        n = _size_expr(arr)
        ct = arr.dtype.c_name
        copy = (
            f"cudaMemcpy(d_{arr.name}, h_{arr.name}, "
            f"(size_t)({n}) * sizeof({ct}), cudaMemcpyHostToDevice)"
        )
        lines.append(f"  {check}({copy});" if check else f"  {copy};")
    lines.append("")

    # Timing + launches (first kernel timed; the paper profiles the first
    # invocation of each kernel).
    lines.append("  cudaEvent_t start, stop;")
    lines.append("  cudaEventCreate(&start);")
    lines.append("  cudaEventCreate(&stop);")
    lines.append("  cudaEventRecord(start);")
    for ki, inst in enumerate(spec.kernels):
        g, b = inst.launch.grid, inst.launch.block
        lines.append(f"  dim3 grid{ki}({g.x}, {g.y}, {g.z});")
        lines.append(f"  dim3 block{ki}({b.x}, {b.y}, {b.z});")
        args = [f"d_{a.name}" for a in inst.kernel.global_arrays()]
        args += _host_scalar_args(inst)
        lines.append(
            f"  {inst.kernel.name}<<<grid{ki}, block{ki}>>>({', '.join(args)});"
        )
    lines.append("  cudaEventRecord(stop);")
    lines.append("  cudaEventSynchronize(stop);")
    lines.append("  float elapsed_ms = 0.0f;")
    lines.append("  cudaEventElapsedTime(&elapsed_ms, start, stop);")
    lines.append(f'  printf("kernel time: %.3f ms\\n", elapsed_ms);')
    lines.append("")
    if spec.util_header >= 2:
        # Repeat-run statistics harness using the shared utilities.
        first = spec.kernels[0]
        g, b = first.launch.grid, first.launch.block
        args = [f"d_{a.name}" for a in first.kernel.global_arrays()]
        args += _host_scalar_args(first)
        lines.append("  struct BenchOptions opts;")
        lines.append("  default_options(&opts);")
        lines.append("  struct RunStats stats;")
        lines.append("  stats_reset(&stats);")
        lines.append("  GpuTimer timer;")
        lines.append("  for (int rep = 0; rep < opts.warmup_runs + opts.timed_runs; rep++) {")
        lines.append("    timer.begin();")
        lines.append(
            f"    {first.kernel.name}<<<grid0, block0>>>({', '.join(args)});"
        )
        lines.append("    float rep_ms = timer.end_ms();")
        lines.append("    if (rep >= opts.warmup_runs) stats_add(&stats, (double)rep_ms);")
        lines.append("  }")
        lines.append(f'  stats_print(&stats, "{spec.name}");')
        lines.append("  if (opts.csv_output) {")
        lines.append(
            f'    emit_csv_row("{spec.name}", "{first.kernel.name}", '
            "stats_mean(&stats), 0.0, 0.0);"
        )
        lines.append("  }")
        lines.append("")

    # D2H for outputs + checksum.
    outputs = [a for a in arrays if a.is_output]
    for arr in outputs:
        n = _size_expr(arr)
        ct = arr.dtype.c_name
        copy = (
            f"cudaMemcpy(h_{arr.name}, d_{arr.name}, "
            f"(size_t)({n}) * sizeof({ct}), cudaMemcpyDeviceToHost)"
        )
        lines.append(f"  {check}({copy});" if check else f"  {copy};")
    if outputs:
        out = outputs[0]
        n = _size_expr(out)
        lines.append("  double checksum = 0.0;")
        lines.append(f"  for (long i = 0; i < (long)({n}); i++)")
        lines.append(f"    checksum += (double)h_{out.name}[i];")
        lines.append('  printf("checksum: %.6e\\n", checksum);')
    if v >= 2 and outputs:
        lines.extend(_reference_check(spec, outputs[0]))
    lines.append("")

    for arr in arrays:
        lines.append(f"  cudaFree(d_{arr.name});")
    for arr in arrays:
        lines.append(f"  free(h_{arr.name});")
    lines.append("  cudaEventDestroy(start);")
    lines.append("  cudaEventDestroy(stop);")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


def _unique_arrays(spec: ProgramSpec) -> list[ArrayDecl]:
    """Global arrays across all kernels, deduplicated by name (shared buffers)."""
    seen: dict[str, ArrayDecl] = {}
    for inst in spec.kernels:
        for arr in inst.kernel.arrays:
            if arr.scope is not Scope.GLOBAL:
                continue
            if arr.name in seen:
                prev = seen[arr.name]
                if prev.dtype is not arr.dtype:
                    raise ValueError(
                        f"array {arr.name} redeclared with different dtype across kernels"
                    )
                if arr.is_output and not prev.is_output:
                    seen[arr.name] = arr
            else:
                seen[arr.name] = arr
    return list(seen.values())


def _reference_impl(spec: ProgramSpec) -> list[str]:
    """A short CPU reference used at verbosity 2 (HeCBench-style verify)."""
    outputs = [a for a in _unique_arrays(spec) if a.is_output]
    if not outputs:
        return []
    out = outputs[0]
    ct = out.dtype.c_name
    return [
        f"// CPU reference for verification (simplified).",
        f"static double reference_norm(const {ct} *data, long n) {{",
        "  double acc = 0.0;",
        "  for (long i = 0; i < n; i++) acc += (double)data[i] * (double)data[i];",
        "  return sqrt(acc / (double)(n > 0 ? n : 1));",
        "}",
        "",
    ]


def _reference_check(spec: ProgramSpec, out: ArrayDecl) -> list[str]:
    n = _size_expr(out)
    return [
        f"  double rms = reference_norm(h_{out.name}, (long)({n}));",
        '  printf("output rms: %.6e\\n", rms);',
        '  if (!(rms == rms)) { fprintf(stderr, "FAILED: NaN output\\n"); return 2; }',
        '  printf("PASSED\\n");',
    ]


def render_cuda(spec: ProgramSpec) -> RenderedProgram:
    """Render a full CUDA program (1-3 files)."""
    from repro.kernels.codegen.utilheader import render_util_header

    if spec.language is not Language.CUDA:
        raise ValueError(f"program {spec.name} is not a CUDA spec")
    kernel_text = "\n\n".join(render_kernel(inst.kernel) for inst in spec.kernels)
    files: list[SourceFile] = []
    if spec.util_header:
        files.append(
            SourceFile(
                "benchmark_utils.h",
                render_util_header(spec.util_header, Language.CUDA, spec.name),
            )
        )
    if spec.util_header >= 2:
        from repro.kernels.codegen.reference import render_reference_file

        files.append(render_reference_file(spec))
    if spec.split_files:
        header = "\n".join(
            [
                "#ifndef KERNELS_CUH",
                "#define KERNELS_CUH",
                "",
                kernel_text,
                "",
                "#endif // KERNELS_CUH",
            ]
        )
        files.append(SourceFile("kernels.cuh", header))
        files.append(SourceFile("main.cu", render_host(spec, kernels_in_header=True)))
    else:
        main = render_host(spec, kernels_in_header=False)
        # Kernels precede main in the single translation unit.
        merged_lines = main.split("\n")
        insert_at = next(
            i for i, ln in enumerate(merged_lines) if ln.startswith("int main")
        )
        merged = "\n".join(
            merged_lines[:insert_at] + [kernel_text, ""] + merged_lines[insert_at:]
        )
        files.append(SourceFile("main.cu", merged))
    return RenderedProgram(spec=spec, files=tuple(files))
