"""Roofline analysis walk-through: from hardware specs to kernel labels.

Reproduces the reasoning behind the paper's Figure 1 on a handful of
kernels: build the RTX 3080's three rooflines, profile kernels on the
simulated device, place them on the chart, and apply the paper's BB/CB rule.

Run:  python examples/roofline_analysis.py
"""

from repro.eval.figures import figure1_data
from repro.dataset import build_sample
from repro.gpusim import default_device, profile_first_kernel
from repro.kernels.families import get_family
from repro.roofline import RTX_3080, classify_kernel
from repro.tokenizer import corpus_tokenizer
from repro.types import Language, OpClass

device = default_device()
rooflines = RTX_3080.rooflines()

print(f"target GPU: {RTX_3080.name}")
for op_class, roofline in rooflines:
    print(
        f"  {op_class.display:8s} peak {roofline.peak:9.1f} Gop/s, "
        f"balance point {roofline.balance_point:6.2f} op/byte"
    )
print()

# Profile a few representative kernels and classify them.
print(f"{'kernel':28s} {'AI_sp':>8s} {'AI_dp':>8s} {'AI_int':>8s} label")
for family_name, variant in [
    ("saxpy", 0),          # streaming: BB everywhere
    ("gemm_naive", 2),     # O(n^3) arithmetic: CB
    ("nbody_naive", 4),    # pairwise forces: CB
    ("heat2d", 0),         # DP stencil near the DP balance point
    ("histogram", 0),      # atomic scatter: BB
    ("xorshift_stream", 0) # integer rounds: CB on the INT roofline
]:
    spec = get_family(family_name).build(variant, Language.CUDA)
    profile = profile_first_kernel(spec, device)
    detail = classify_kernel(profile.counters.intensity_profile(), rooflines)
    c = profile.counters
    print(
        f"{spec.uid:28s} {c.intensity(OpClass.SP):8.3f} "
        f"{c.intensity(OpClass.DP):8.3f} {c.intensity(OpClass.INT):8.3f} "
        f"{detail.label.word}"
    )
print()

# The full Figure 1, as ASCII, over a corpus slice.
from repro.kernels.corpus import build_corpus

tokenizer = corpus_tokenizer()
corpus = build_corpus(120, 80)
samples = [build_sample(p, device, tokenizer) for p in corpus.programs]
figure = figure1_data(samples)
print(figure.render_ascii(width=76, height=22))
print()
for op_class in OpClass:
    print(
        f"{op_class.display:8s}: {len(figure.points[op_class])} samples, "
        f"{figure.bb_fraction(op_class) * 100:.0f}% bandwidth-bound"
    )
