"""Corpus assembly: the reproduction's stand-in for HeCBench.

The paper builds and profiles 446 CUDA and 303 OpenMP-offload programs
(§2.1). We enumerate (family, variant) pairs over the ~90 registered
families in deterministic registration order, cycling variants until the
target counts are met — families therefore get 4-5 CUDA variants and 3-4 OMP
variants each, mirroring HeCBench's uneven per-benchmark coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernels.families import FamilySpec, families_for
from repro.kernels.program import ProgramSpec
from repro.types import Language

#: Paper §2.1 corpus sizes.
DEFAULT_CUDA_COUNT = 446
DEFAULT_OMP_COUNT = 303


@dataclass(frozen=True)
class Corpus:
    """The full generated benchmark suite."""

    programs: tuple[ProgramSpec, ...]
    #: uid → program index, built once at construction so :meth:`get` is a
    #: dict lookup rather than a per-call scan of all 749 programs.
    _by_uid: dict = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        index = {p.uid: p for p in self.programs}
        object.__setattr__(self, "_by_uid", index)

    def by_language(self, language: Language) -> list[ProgramSpec]:
        return [p for p in self.programs if p.language is language]

    def by_family(self, family: str) -> list[ProgramSpec]:
        return [p for p in self.programs if p.family == family]

    def get(self, uid: str) -> ProgramSpec:
        try:
            return self._by_uid[uid]
        except KeyError:
            raise KeyError(f"no program with uid {uid!r}") from None

    def __len__(self) -> int:
        return len(self.programs)


def _enumerate(language: Language, count: int) -> list[ProgramSpec]:
    fams = families_for(language)
    if not fams:
        raise RuntimeError("no families registered")
    out: list[ProgramSpec] = []
    variant = 0
    while len(out) < count:
        for fam in fams:
            if len(out) >= count:
                break
            out.append(fam.build(variant, language))
        variant += 1
        if variant > 64:  # pragma: no cover - runaway guard
            raise RuntimeError("variant enumeration did not converge")
    return out


def build_corpus(
    cuda_count: int = DEFAULT_CUDA_COUNT,
    omp_count: int = DEFAULT_OMP_COUNT,
) -> Corpus:
    """Build the full two-language corpus.

    Deterministic: same counts → bit-identical corpus, across runs and
    machines.
    """
    if cuda_count < 0 or omp_count < 0:
        raise ValueError("corpus counts must be non-negative")
    programs = _enumerate(Language.CUDA, cuda_count) + _enumerate(
        Language.OMP, omp_count
    )
    uids = [p.uid for p in programs]
    if len(uids) != len(set(uids)):
        dupes = sorted({u for u in uids if uids.count(u) > 1})
        raise RuntimeError(f"duplicate program uids in corpus: {dupes[:5]}")
    return Corpus(programs=tuple(programs))


_default_corpus: Corpus | None = None


def default_corpus() -> Corpus:
    """The paper-sized corpus, built once per process."""
    global _default_corpus
    if _default_corpus is None:
        _default_corpus = build_corpus()
    return _default_corpus
