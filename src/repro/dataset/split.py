"""Train/validation split (paper §2.2).

*"For later fine-tuning in RQ4, we further divide our dataset with an 80/20
training/validation split. This gave us 68 samples for each language/class
training combo, and similarly 17 samples for validation combos."*

The split is stratified per (language, class) cell so both sides stay
balanced, and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.records import Sample, cell_counts
from repro.types import Boundedness, Language
from repro.util.rng import RngStream


@dataclass(frozen=True)
class TrainValSplit:
    train: tuple[Sample, ...]
    validation: tuple[Sample, ...]

    def __post_init__(self) -> None:
        overlap = {s.uid for s in self.train} & {s.uid for s in self.validation}
        if overlap:
            raise ValueError(f"train/validation overlap: {sorted(overlap)[:3]}")


def split_train_validation(
    samples: list[Sample],
    train_fraction: float = 0.8,
    *,
    seed_key: str = "dataset-split",
) -> TrainValSplit:
    """Stratified 80/20 split within each (language, class) cell."""
    if not (0.0 < train_fraction < 1.0):
        raise ValueError("train_fraction must be in (0, 1)")
    rng = RngStream(seed_key)
    train: list[Sample] = []
    val: list[Sample] = []
    for lang in (Language.CUDA, Language.OMP):
        for label in (Boundedness.BANDWIDTH, Boundedness.COMPUTE):
            pool = sorted(
                (s for s in samples if s.cell == (lang, label)),
                key=lambda s: s.uid,
            )
            if not pool:
                continue
            n_train = round(len(pool) * train_fraction)
            shuffled = rng.child(lang.value, label.value).shuffle(pool)
            train.extend(shuffled[:n_train])
            val.extend(shuffled[n_train:])
    train.sort(key=lambda s: s.uid)
    val.sort(key=lambda s: s.uid)
    return TrainValSplit(train=tuple(train), validation=tuple(val))
