"""End-to-end integration tests across subsystems."""

import pytest

from repro.types import Boundedness, Language


class TestCorpusToDatasetPipeline:
    def test_label_provenance(self, dataset, device):
        """Each sample's stored label must re-derive from its counters."""
        from repro.roofline import classify_kernel
        from repro.roofline.classify import IntensityProfile
        from repro.types import OpClass

        rooflines = device.spec.rooflines()
        for s in list(dataset.balanced)[:50]:
            prof = IntensityProfile(
                ops={
                    OpClass.SP: s.counters.sp_flops,
                    OpClass.DP: s.counters.dp_flops,
                    OpClass.INT: s.counters.int_ops,
                },
                dram_bytes=s.counters.dram_bytes,
            )
            assert classify_kernel(prof, rooflines).label == s.label, s.uid

    def test_token_counts_reproducible(self, dataset, tokenizer):
        for s in list(dataset.balanced)[:10]:
            assert tokenizer.count_tokens(s.source) == s.token_count, s.uid

    def test_kernel_findable_in_every_sample(self, dataset):
        from repro.analysis import find_kernel

        for s in dataset.balanced:
            ks = find_kernel(s.source, s.kernel_name, s.language)
            assert ks.name == s.kernel_name

    def test_prompts_parse_for_every_sample(self, dataset):
        from repro.llm.promptio import parse_classify_query
        from repro.prompts import build_classify_prompt

        for s in list(dataset.balanced)[::17]:
            q = parse_classify_query(build_classify_prompt(s).text)
            assert q is not None
            assert q.kernel_name == s.kernel_name


class TestFullQueryPath:
    def test_api_shaped_flow(self, dataset):
        """The paper's integration shape: prompt → complete → parse → score."""
        from repro.eval.metrics import MetricReport
        from repro.llm import get_model
        from repro.prompts import build_classify_prompt

        model = get_model("o3-mini-high")
        subset = list(dataset.balanced)[:40]
        truths, preds = [], []
        for s in subset:
            response = model.complete(build_classify_prompt(s).text)
            truths.append(s.label)
            preds.append(response.boundedness())
        report = MetricReport.from_predictions(truths, preds)
        assert report.n == 40
        assert report.accuracy > 40.0  # sanity: far from inverted

    def test_language_accuracy_gap_is_modest(self, dataset):
        """Paper §3.5: per-language accuracy differs by ~5 points on
        average, so joint metrics are representative."""
        from repro.eval.metrics import MetricReport
        from repro.llm import get_model
        from repro.prompts import build_classify_prompt

        model = get_model("o3-mini-high")
        by_lang = {}
        for lang in (Language.CUDA, Language.OMP):
            subset = [s for s in dataset.balanced if s.language is lang]
            truths = [s.label for s in subset]
            preds = [
                model.complete(build_classify_prompt(s).text).boundedness()
                for s in subset
            ]
            by_lang[lang] = MetricReport.from_predictions(truths, preds).accuracy
        assert abs(by_lang[Language.CUDA] - by_lang[Language.OMP]) <= 12.0


class TestCrossHardwareExtension:
    """The paper's 'Expanding Dataset' future-work direction: labels change
    with hardware — exercised against the extra GPU models in the db."""

    def test_labels_shift_across_hardware(self, dataset):
        from repro.roofline import A100, RTX_3080
        from repro.roofline.classify import IntensityProfile, classify_kernel
        from repro.types import OpClass

        flips = 0
        for s in dataset.balanced:
            prof = IntensityProfile(
                ops={
                    OpClass.SP: s.counters.sp_flops,
                    OpClass.DP: s.counters.dp_flops,
                    OpClass.INT: s.counters.int_ops,
                },
                dram_bytes=s.counters.dram_bytes,
            )
            a = classify_kernel(prof, RTX_3080.rooflines()).label
            b = classify_kernel(prof, A100.rooflines()).label
            if a != b:
                flips += 1
        # The A100's strong FP64 makes many DP-BB kernels flip: the premise
        # of the paper's cross-hardware extension.
        assert flips > 20

    def test_dp_kernels_flip_toward_bb_on_a100(self, dataset):
        from repro.roofline import A100, RTX_3080
        from repro.types import OpClass

        bp_3080 = RTX_3080.rooflines().balance_points()[OpClass.DP]
        bp_a100 = A100.rooflines().balance_points()[OpClass.DP]
        # A100 FP64 is relatively stronger: higher DP balance point
        assert bp_a100 > bp_3080
