"""Question-decomposition prompting (the paper's §4 future work).

*"More recent question-decomposition, successive-prompting, and
least-to-most prompting techniques have shown effectiveness in breaking down
and solving complex tasks. In an effort to improve roofline classification
metrics, these techniques warrant further investigation."*

This module implements a three-step successive-prompting protocol for the
roofline classification task; :mod:`repro.eval.decompose` drives it:

1. **Spec extraction** — read the hardware bullet list back as numbers.
2. **Work estimation** — estimate the queried kernel's per-thread operation
   counts and DRAM bytes from source.
3. **Roofline verdict** — an RQ1-style arithmetic question built from the
   model's own step-1/step-2 answers.

Each step is a separate completion; the driver (not the model) threads the
intermediate answers, exactly how decomposition harnesses are built around
real APIs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.dataset.records import Sample
from repro.roofline.hardware import GpuSpec, default_gpu

#: Markers the emulator's prompt parser keys on — stable sentinel phrases a
#: real harness would also use for automated response checking.
STEP1_MARKER = "Report the hardware limits"
STEP2_MARKER = "Estimate the per-thread work"
STEP3_MARKER = "Apply the roofline verdict"


def build_step1_prompt(gpu: GpuSpec | None = None) -> str:
    """Spec-extraction prompt."""
    gpu = gpu or default_gpu()
    return (
        "You are a GPU performance analysis expert working through a "
        "roofline classification step by step.\n\n"
        f"Step 1 of 3. {STEP1_MARKER} of the following device as four "
        "numbers, answering in exactly this format:\n"
        "SP=<GFLOP/s> DP=<GFLOP/s> INT=<GINTOP/s> BW=<GB/s>\n\n"
        f"The device is a {gpu.name} with:\n{gpu.prompt_block()}\n"
    )


def build_step2_prompt(sample: Sample) -> str:
    """Work-estimation prompt for the sample's first kernel."""
    lang = sample.language.display
    return (
        "You are a GPU performance analysis expert working through a "
        "roofline classification step by step.\n\n"
        f"Step 2 of 3. {STEP2_MARKER} of the {lang} kernel called "
        f"{sample.kernel_name}: how many single-precision floating point "
        "operations, double-precision floating point operations, integer "
        "operations, and DRAM bytes does ONE thread of this kernel "
        "execute/move? Answer in exactly this format:\n"
        "SP_OPS=<number> DP_OPS=<number> INT_OPS=<number> BYTES=<number>\n\n"
        f"The executable is launched as: {sample.argv}.\n\n"
        f"Below is the source code of the {lang} program:\n\n"
        f"{sample.source}\n"
    )


def build_step3_prompt(
    *,
    sp_ops: float,
    dp_ops: float,
    int_ops: float,
    bytes_per_thread: float,
    sp_peak: float,
    dp_peak: float,
    int_peak: float,
    bandwidth: float,
) -> str:
    """Final verdict prompt, assembled from the model's own prior answers."""
    return (
        "You are a GPU performance analysis expert working through a "
        "roofline classification step by step.\n\n"
        f"Step 3 of 3. {STEP3_MARKER}: a kernel thread performs "
        f"{sp_ops:.4g} single-precision FLOPs, {dp_ops:.4g} double-precision "
        f"FLOPs, and {int_ops:.4g} integer operations while moving "
        f"{bytes_per_thread:.4g} bytes of DRAM traffic. The device peaks are "
        f"{sp_peak:.4g} GFLOP/s single-precision, {dp_peak:.4g} GFLOP/s "
        f"double-precision, {int_peak:.4g} GINTOP/s integer, with "
        f"{bandwidth:.4g} GB/s of memory bandwidth.\n\n"
        "Per the roofline model, the kernel is compute-bound if ANY "
        "operation class's arithmetic intensity (its operations divided by "
        "the bytes moved) is at or above that class's balance point (its "
        "peak divided by the bandwidth); otherwise it is bandwidth-bound.\n\n"
        "Respond with exactly one word from the set: "
        "['Compute', 'Bandwidth'].\n"
    )


@dataclass(frozen=True)
class Step1Answer:
    sp_peak: float
    dp_peak: float
    int_peak: float
    bandwidth: float


@dataclass(frozen=True)
class Step2Answer:
    sp_ops: float
    dp_ops: float
    int_ops: float
    bytes_per_thread: float


_STEP1_RE = re.compile(
    r"SP=([\d.eE+-]+)\s+DP=([\d.eE+-]+)\s+INT=([\d.eE+-]+)\s+BW=([\d.eE+-]+)"
)
_STEP2_RE = re.compile(
    r"SP_OPS=([\d.eE+-]+)\s+DP_OPS=([\d.eE+-]+)\s+INT_OPS=([\d.eE+-]+)\s+"
    r"BYTES=([\d.eE+-]+)"
)


def parse_step1_answer(text: str) -> Step1Answer:
    m = _STEP1_RE.search(text)
    if m is None:
        raise ValueError(f"malformed step-1 answer: {text!r}")
    sp, dp, int_, bw = (float(g) for g in m.groups())
    return Step1Answer(sp_peak=sp, dp_peak=dp, int_peak=int_, bandwidth=bw)


def parse_step2_answer(text: str) -> Step2Answer:
    m = _STEP2_RE.search(text)
    if m is None:
        raise ValueError(f"malformed step-2 answer: {text!r}")
    sp, dp, int_, by = (float(g) for g in m.groups())
    return Step2Answer(sp_ops=sp, dp_ops=dp, int_ops=int_, bytes_per_thread=by)
