"""Dense linear-algebra families.

GEMM-like kernels with O(n^3) arithmetic over O(n^2) data are the corpus's
compute-bound anchors; transpose/GEMV-like kernels are bandwidth-bound with
interesting coalescing behaviour. Tiled shared-memory variants are CUDA-only
(their OpenMP ports in HeCBench are structurally different, so here they
simply don't exist in OMP, as in the paper's uneven language coverage).
"""

from __future__ import annotations

from repro.kernels.families import family
from repro.kernels.families.helpers import assemble, variant_rng
from repro.kernels.ir import (
    ArrayDecl,
    Assign,
    AtomicAdd,
    DType,
    For,
    Kernel,
    Let,
    ScalarParam,
    Scope,
    Store,
    SyncThreads,
    Var,
    add,
    aff,
    fma,
    load,
    mul,
    sub,
    var,
)
from repro.types import Language


def _dt(variant: int) -> DType:
    return DType.F64 if variant in (1, 4) else DType.F32


def _mat_side(rng, dt: DType) -> int:
    if dt is DType.F64:
        return int(rng.choice([256, 384, 512, 640, 768]))
    return int(rng.choice([512, 640, 768, 1024, 1280]))


@family("gemm_naive", "linalg", tendency="cb")
def build_gemm_naive(variant: int, language: Language):
    rng = variant_rng("gemm_naive", variant, language)
    dt = _dt(variant)
    n = _mat_side(rng, dt)
    body = (
        Let("acc", mul(var("beta", dt), load("c_mat", aff(("gy", "n"), "gx"), dt), dt), dt),
        For(
            "kk", "n",
            (
                Assign(
                    "acc",
                    fma(
                        load("a_mat", aff(("gy", "n"), "kk"), dt),
                        load("b_mat", aff(("kk", "n"), "gx"), dt),
                        var("acc", dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
        Store("c_mat", aff(("gy", "n"), "gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="gemm_naive_kernel",
        arrays=(
            ArrayDecl("a_mat", dt, "n*n"),
            ArrayDecl("b_mat", dt, "n*n"),
            ArrayDecl("c_mat", dt, "n*n", is_output=True),
        ),
        params=(ScalarParam("beta", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
        work_items_y="n",
    )
    return assemble(
        family="gemm_naive", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"beta": 1, "n": "n"},
        description="dense matrix multiply, one output element per thread",
        block2d=(16, 16),
    )


@family("gemm_tiled", "linalg", tendency="cb", languages=(Language.CUDA,))
def build_gemm_tiled(variant: int, language: Language):
    rng = variant_rng("gemm_tiled", variant, language)
    dt = _dt(variant)
    n = _mat_side(rng, dt)
    tile = 16
    ntiles = n // tile
    body = (
        Let("acc", mul(var("beta", dt), load("c_mat", aff(("gy", "n"), "gx"), dt), dt), dt),
        For(
            "t", "ntiles",
            (
                # Stage one tile of A and B through shared memory.
                Store(
                    "tile_a", aff(("ly", tile), "lx"),
                    load("a_mat", aff(("gy", "n"), ("t", tile), "lx"), dt), dt,
                ),
                Store(
                    "tile_b", aff(("ly", tile), "lx"),
                    load("b_mat", aff(("t", f"{tile}*n"), ("ly", "n"), "gx"), dt), dt,
                ),
                SyncThreads(),
                For(
                    "kk", tile,
                    (
                        Assign(
                            "acc",
                            fma(
                                load("tile_a", aff(("ly", tile), "kk"), dt),
                                load("tile_b", aff(("kk", tile), "lx"), dt),
                                var("acc", dt),
                                dt,
                            ),
                            dt,
                        ),
                    ),
                    unroll=tile,
                ),
                SyncThreads(),
            ),
        ),
        Store("c_mat", aff(("gy", "n"), "gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="gemm_tiled_kernel",
        arrays=(
            ArrayDecl("a_mat", dt, "n*n"),
            ArrayDecl("b_mat", dt, "n*n"),
            ArrayDecl("c_mat", dt, "n*n", is_output=True),
            ArrayDecl("tile_a", dt, tile * tile, Scope.SHARED),
            ArrayDecl("tile_b", dt, tile * tile, Scope.SHARED),
        ),
        params=(
            ScalarParam("beta", dt),
            ScalarParam("n", DType.I32),
            ScalarParam("ntiles", DType.I32),
        ),
        body=body,
        work_items="n",
        work_items_y="n",
    )
    return assemble(
        family="gemm_tiled", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "ntiles": ntiles},
        binding_exprs={"beta": 1, "n": "n", "ntiles": "ntiles"},
        description="shared-memory tiled dense matrix multiply",
        block2d=(tile, tile),
    )


@family("gemv_row", "linalg", tendency="bb")
def build_gemv_row(variant: int, language: Language):
    rng = variant_rng("gemv_row", variant, language)
    dt = _dt(variant)
    n = _mat_side(rng, dt)
    body = (
        Let("acc", mul(var("beta", dt), load("y", aff("gx"), dt), dt), dt),
        For(
            "k", "n",
            (
                Assign(
                    "acc",
                    fma(
                        load("a_mat", aff(("gx", "n"), "k"), dt),
                        load("x", aff("k"), dt),
                        var("acc", dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
        Store("y", aff("gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="gemv_row_kernel",
        arrays=(
            ArrayDecl("a_mat", dt, "n*n"),
            ArrayDecl("x", dt, "n"),
            ArrayDecl("y", dt, "n", is_output=True),
        ),
        params=(ScalarParam("beta", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="gemv_row", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"beta": 0, "n": "n"},
        description="matrix-vector product, one row per thread (row-major reads)",
    )


@family("gemv_col", "linalg", tendency="bb")
def build_gemv_col(variant: int, language: Language):
    rng = variant_rng("gemv_col", variant, language)
    dt = _dt(variant)
    n = _mat_side(rng, dt)
    body = (
        Let("acc", mul(var("beta", dt), load("y", aff("gx"), dt), dt), dt),
        For(
            "k", "n",
            (
                Assign(
                    "acc",
                    fma(
                        load("a_mat", aff(("k", "n"), "gx"), dt),
                        load("x", aff("k"), dt),
                        var("acc", dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
        Store("y", aff("gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="gemv_col_kernel",
        arrays=(
            ArrayDecl("a_mat", dt, "n*n"),
            ArrayDecl("x", dt, "n"),
            ArrayDecl("y", dt, "n", is_output=True),
        ),
        params=(ScalarParam("beta", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="gemv_col", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"beta": 0, "n": "n"},
        description="transposed matrix-vector product with coalesced reads",
    )


@family("ger_rank1", "linalg", tendency="bb")
def build_ger(variant: int, language: Language):
    rng = variant_rng("ger_rank1", variant, language)
    dt = _dt(variant)
    n = _mat_side(rng, dt)
    body = (
        Store(
            "a_mat", aff(("gy", "n"), "gx"),
            fma(
                mul(var("alpha", dt), load("x", aff("gy"), dt), dt),
                load("y", aff("gx"), dt),
                load("a_mat", aff(("gy", "n"), "gx"), dt),
                dt,
            ),
            dt,
        ),
    )
    kernel = Kernel(
        name="ger_kernel",
        arrays=(
            ArrayDecl("a_mat", dt, "n*n", is_output=True),
            ArrayDecl("x", dt, "n"),
            ArrayDecl("y", dt, "n"),
        ),
        params=(ScalarParam("alpha", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
        work_items_y="n",
    )
    return assemble(
        family="ger_rank1", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"alpha": 2, "n": "n"},
        description="rank-1 update A += alpha * x * y^T", block2d=(32, 8),
    )


@family("outer_product", "linalg", tendency="bb")
def build_outer_product(variant: int, language: Language):
    rng = variant_rng("outer_product", variant, language)
    dt = _dt(variant)
    n = _mat_side(rng, dt)
    body = (
        Store(
            "a_mat", aff(("gy", "n"), "gx"),
            mul(load("x", aff("gy"), dt), load("y", aff("gx"), dt), dt),
            dt,
        ),
    )
    kernel = Kernel(
        name="outer_product_kernel",
        arrays=(
            ArrayDecl("a_mat", dt, "n*n", is_output=True),
            ArrayDecl("x", dt, "n"),
            ArrayDecl("y", dt, "n"),
        ),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
        work_items_y="n",
    )
    return assemble(
        family="outer_product", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description="outer product A = x * y^T", block2d=(32, 8),
    )


@family("syrk_naive", "linalg", tendency="cb")
def build_syrk(variant: int, language: Language):
    rng = variant_rng("syrk_naive", variant, language)
    dt = _dt(variant)
    n = _mat_side(rng, dt)
    body = (
        Let("acc", mul(var("beta", dt), load("c_mat", aff(("gy", "n"), "gx"), dt), dt), dt),
        For(
            "k", "n",
            (
                Assign(
                    "acc",
                    fma(
                        load("a_mat", aff(("gy", "n"), "k"), dt),
                        load("a_mat", aff(("gx", "n"), "k"), dt),
                        var("acc", dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
        Store("c_mat", aff(("gy", "n"), "gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="syrk_kernel",
        arrays=(
            ArrayDecl("a_mat", dt, "n*n"),
            ArrayDecl("c_mat", dt, "n*n", is_output=True),
        ),
        params=(ScalarParam("beta", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
        work_items_y="n",
    )
    return assemble(
        family="syrk_naive", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"beta": 1, "n": "n"},
        description="symmetric rank-k update C = A * A^T + beta * C",
        block2d=(16, 16),
    )


@family("transpose_naive", "linalg", tendency="bb")
def build_transpose(variant: int, language: Language):
    rng = variant_rng("transpose_naive", variant, language)
    dt = _dt(variant)
    n = _mat_side(rng, dt)
    body = (
        Store(
            "out", aff(("gx", "n"), "gy"),
            load("in_mat", aff(("gy", "n"), "gx"), dt), dt,
        ),
    )
    kernel = Kernel(
        name="transpose_kernel",
        arrays=(
            ArrayDecl("in_mat", dt, "n*n"),
            ArrayDecl("out", dt, "n*n", is_output=True),
        ),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
        work_items_y="n",
    )
    return assemble(
        family="transpose_naive", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description="out-of-place matrix transpose (uncoalesced writes)",
        block2d=(16, 16),
    )


@family("batch_gemm4", "linalg", tendency="mixed", languages=(Language.CUDA,))
def build_batch_gemm4(variant: int, language: Language):
    rng = variant_rng("batch_gemm4", variant, language)
    dt = _dt(variant)
    nb = int(rng.choice([1 << 16, 1 << 17, 1 << 18]))
    m = 4  # 4x4 blocks, one per thread
    inner: list = []
    # fully unrolled 4x4x4 micro-GEMM on per-thread registers
    body: list = []
    for i in range(m):
        for j in range(m):
            body.append(
                Let(f"c{i}{j}", mul(var("beta", dt),
                    load("cs", aff(("gx", m * m), const=i * m + j), dt), dt), dt)
            )
    for i in range(m):
        for j in range(m):
            for k in range(m):
                body.append(
                    Assign(
                        f"c{i}{j}",
                        fma(
                            load("as_", aff(("gx", m * m), const=i * m + k), dt),
                            load("bs", aff(("gx", m * m), const=k * m + j), dt),
                            var(f"c{i}{j}", dt),
                            dt,
                        ),
                        dt,
                    )
                )
    for i in range(m):
        for j in range(m):
            body.append(
                Store("cs", aff(("gx", m * m), const=i * m + j), var(f"c{i}{j}", dt), dt)
            )
    kernel = Kernel(
        name="batched_gemm4_kernel",
        arrays=(
            ArrayDecl("as_", dt, f"{m * m}*nb"),
            ArrayDecl("bs", dt, f"{m * m}*nb"),
            ArrayDecl("cs", dt, f"{m * m}*nb", is_output=True),
        ),
        params=(ScalarParam("beta", dt), ScalarParam("nb", DType.I32)),
        body=tuple(body),
        work_items="nb",
    )
    return assemble(
        family="batch_gemm4", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"nb": nb}, binding_exprs={"beta": 1, "nb": "nb"},
        description="batched 4x4 matrix multiply, one block per thread",
    )


@family("row_dots", "linalg", tendency="bb")
def build_row_dots(variant: int, language: Language):
    rng = variant_rng("row_dots", variant, language)
    dt = _dt(variant)
    n = _mat_side(rng, dt)
    body = (
        Let("acc", mul(var("zero", dt), var("zero", dt), dt), dt),
        For(
            "k", "n",
            (
                Assign(
                    "acc",
                    fma(
                        load("a_mat", aff(("gx", "n"), "k"), dt),
                        load("b_mat", aff(("gx", "n"), "k"), dt),
                        var("acc", dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
        Store("d", aff("gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="rowwise_dot_kernel",
        arrays=(
            ArrayDecl("a_mat", dt, "n*n"),
            ArrayDecl("b_mat", dt, "n*n"),
            ArrayDecl("d", dt, "n", is_output=True),
        ),
        params=(ScalarParam("zero", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="row_dots", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"zero": 0, "n": "n"},
        description="per-row dot products d[i] = A[i,:] . B[i,:]",
    )
