"""Language-shared C expression/statement rendering.

Both backends (CUDA, OpenMP offload) render IR expressions to C with the
same precedence handling; only intrinsic spellings, atomics, barriers, and
the surrounding kernel scaffolding differ, which each backend supplies via
:class:`BackendHooks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kernels.ir import (
    AffineIndex,
    Assign,
    AtomicAdd,
    BinOp,
    BinOpKind,
    Call,
    CallFn,
    Cast,
    Comment,
    Const,
    DType,
    DynamicIndex,
    Expr,
    For,
    If,
    Index,
    Let,
    Load,
    Select,
    Stmt,
    Store,
    SyncThreads,
    Var,
)

_INFIX = {
    BinOpKind.ADD: "+",
    BinOpKind.SUB: "-",
    BinOpKind.MUL: "*",
    BinOpKind.DIV: "/",
    BinOpKind.MOD: "%",
    BinOpKind.AND: "&",
    BinOpKind.OR: "|",
    BinOpKind.XOR: "^",
    BinOpKind.SHL: "<<",
    BinOpKind.SHR: ">>",
    BinOpKind.LT: "<",
    BinOpKind.GT: ">",
    BinOpKind.LE: "<=",
    BinOpKind.GE: ">=",
    BinOpKind.EQ: "==",
    BinOpKind.LAND: "&&",
    BinOpKind.LOR: "||",
}

# Spellings of math intrinsics per precision: (f32, f64).
_MATH_FN = {
    CallFn.SQRT: ("sqrtf", "sqrt"),
    CallFn.RSQRT: ("rsqrtf", "rsqrt"),
    CallFn.EXP: ("expf", "exp"),
    CallFn.LOG: ("logf", "log"),
    CallFn.SIN: ("sinf", "sin"),
    CallFn.COS: ("cosf", "cos"),
    CallFn.TANH: ("tanhf", "tanh"),
    CallFn.POW: ("powf", "pow"),
    CallFn.FABS: ("fabsf", "fabs"),
    CallFn.FMA: ("fmaf", "fma"),
    CallFn.ERF: ("erff", "erf"),
    CallFn.FLOOR: ("floorf", "floor"),
}


def license_banner(prog_name: str) -> list[str]:
    """The MIT-style license banner every generated source file carries.

    Real benchmark suites ship one per file; since the paper concatenates all
    source files into the prompt, banners contribute to token counts exactly
    as they do for HeCBench programs.
    """
    return [
        "/*",
        f" * {prog_name} — synthetic benchmark program",
        " *",
        " * Copyright (c) 2025 The Benchmark Suite Authors",
        " *",
        " * Permission is hereby granted, free of charge, to any person obtaining",
        ' * a copy of this software and associated documentation files (the "Software"),',
        " * to deal in the Software without restriction, including without limitation",
        " * the rights to use, copy, modify, merge, publish, distribute, sublicense,",
        " * and/or sell copies of the Software, and to permit persons to whom the",
        " * Software is furnished to do so, subject to the following conditions:",
        " *",
        " * The above copyright notice and this permission notice shall be included",
        " * in all copies or substantial portions of the Software.",
        " *",
        ' * THE SOFTWARE IS PROVIDED "AS IS", WITHOUT WARRANTY OF ANY KIND, EXPRESS',
        " * OR IMPLIED, INCLUDING BUT NOT LIMITED TO THE WARRANTIES OF MERCHANTABILITY,",
        " * FITNESS FOR A PARTICULAR PURPOSE AND NONINFRINGEMENT.",
        " */",
        "",
    ]


@dataclass(frozen=True)
class BackendHooks:
    """Spelling differences between backends."""

    #: rsqrt is a CUDA intrinsic; host-compilable OMP code uses 1/sqrt.
    rsqrt_spelling: Callable[[str, DType], str]
    atomic_add: Callable[[str, str, DType], list[str]]
    sync_threads: Callable[[], list[str]]
    unroll_pragma: Callable[[int], str]


def render_const(c: Const) -> str:
    if c.dtype is DType.F32:
        v = float(c.value)
        if v == int(v) and abs(v) < 1e9:
            return f"{v:.1f}f"
        return f"{v!r}f"
    if c.dtype is DType.F64:
        v = float(c.value)
        if v == int(v) and abs(v) < 1e15:
            return f"{v:.1f}"
        return repr(v)
    return str(int(c.value))


def render_index(index: Index, hooks: BackendHooks) -> str:
    if isinstance(index, DynamicIndex):
        return render_expr(index.expr, hooks)
    parts: list[str] = []
    for sym, coeff in index.terms:
        if coeff == 1:
            parts.append(sym)
        elif coeff == -1:
            parts.append(f"-{sym}")
        elif isinstance(coeff, int):
            parts.append(f"{coeff} * {sym}")
        else:
            parts.append(f"{sym} * {coeff}")
    if index.const != 0 or not parts:
        parts.append(str(index.const))
    # Join with " + ", folding "+ -k" into "- k" for readability.
    text = parts[0]
    for p in parts[1:]:
        if p.startswith("-"):
            text += f" - {p[1:]}"
        else:
            text += f" + {p}"
    return text


def render_expr(expr: Expr, hooks: BackendHooks) -> str:
    """Render an expression with conservative parenthesization."""
    if isinstance(expr, Const):
        return render_const(expr)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Load):
        return f"{expr.array}[{render_index(expr.index, hooks)}]"
    if isinstance(expr, BinOp):
        lhs = render_expr(expr.lhs, hooks)
        rhs = render_expr(expr.rhs, hooks)
        if expr.op in (BinOpKind.MIN, BinOpKind.MAX):
            if expr.dtype.is_float:
                fn = "fminf" if expr.op is BinOpKind.MIN else "fmaxf"
                if expr.dtype is DType.F64:
                    fn = fn[:-1]
                return f"{fn}({lhs}, {rhs})"
            cmp = "<" if expr.op is BinOpKind.MIN else ">"
            return f"(({lhs}) {cmp} ({rhs}) ? ({lhs}) : ({rhs}))"
        return f"({lhs} {_INFIX[expr.op]} {rhs})"
    if isinstance(expr, Call):
        args = ", ".join(render_expr(a, hooks) for a in expr.args)
        if expr.fn is CallFn.RSQRT:
            return hooks.rsqrt_spelling(args, expr.dtype)
        fn32, fn64 = _MATH_FN[expr.fn]
        fn = fn64 if expr.dtype is DType.F64 else fn32
        return f"{fn}({args})"
    if isinstance(expr, Cast):
        return f"({expr.dtype.c_name})({render_expr(expr.expr, hooks)})"
    if isinstance(expr, Select):
        return (
            f"({render_expr(expr.cond, hooks)} ? "
            f"{render_expr(expr.if_true, hooks)} : {render_expr(expr.if_false, hooks)})"
        )
    raise TypeError(f"cannot render expression {expr!r}")


def render_stmts(body: tuple[Stmt, ...], hooks: BackendHooks, indent: int) -> list[str]:
    """Render a statement list to indented C lines."""
    pad = "  " * indent
    lines: list[str] = []
    for stmt in body:
        if isinstance(stmt, Comment):
            lines.append(f"{pad}// {stmt.text}")
        elif isinstance(stmt, Let):
            lines.append(
                f"{pad}{stmt.dtype.c_name} {stmt.name} = {render_expr(stmt.expr, hooks)};"
            )
        elif isinstance(stmt, Assign):
            lines.append(f"{pad}{stmt.name} = {render_expr(stmt.expr, hooks)};")
        elif isinstance(stmt, Store):
            lines.append(
                f"{pad}{stmt.array}[{render_index(stmt.index, hooks)}] = "
                f"{render_expr(stmt.expr, hooks)};"
            )
        elif isinstance(stmt, AtomicAdd):
            target = f"{stmt.array}[{render_index(stmt.index, hooks)}]"
            lines.extend(
                pad + ln for ln in hooks.atomic_add(target, render_expr(stmt.expr, hooks), stmt.dtype)
            )
        elif isinstance(stmt, For):
            if stmt.unroll > 1:
                lines.append(f"{pad}{hooks.unroll_pragma(stmt.unroll)}")
            extent = stmt.extent if isinstance(stmt.extent, str) else str(stmt.extent)
            init = f"int {stmt.var} = {stmt.start}"
            step = f"{stmt.var} += {stmt.step}" if stmt.step != 1 else f"{stmt.var}++"
            lines.append(f"{pad}for ({init}; {stmt.var} < {extent}; {step}) {{")
            lines.extend(render_stmts(stmt.body, hooks, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if ({render_expr(stmt.cond, hooks)}) {{")
            lines.extend(render_stmts(stmt.then, hooks, indent + 1))
            if stmt.els:
                lines.append(f"{pad}}} else {{")
                lines.extend(render_stmts(stmt.els, hooks, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(stmt, SyncThreads):
            lines.extend(pad + ln for ln in hooks.sync_threads())
        else:
            raise TypeError(f"cannot render statement {stmt!r}")
    return lines
