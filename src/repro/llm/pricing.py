"""Usage metering and cost accounting (Table 1's cost column).

Every query is billed at the model's per-million-token input/output rates;
reasoning models additionally bill their hidden reasoning tokens as output,
matching how the OpenAI reasoning APIs charge.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.llm.config import ModelConfig


@dataclass(frozen=True)
class Usage:
    """Token usage for one request."""

    input_tokens: int
    output_tokens: int
    reasoning_tokens: int = 0

    @property
    def billed_output_tokens(self) -> int:
        return self.output_tokens + self.reasoning_tokens


def query_cost_usd(usage: Usage, model: ModelConfig) -> float:
    """Dollar cost of one request."""
    return (
        usage.input_tokens / 1e6 * model.input_cost_per_m
        + usage.billed_output_tokens / 1e6 * model.output_cost_per_m
    )


@dataclass
class UsageMeter:
    """Accumulates usage and cost across an experiment.

    :meth:`record` is thread-safe: completions may be metered from
    concurrent workers or asyncio tasks (``repro.serve``), and unsynchronized
    ``+=`` on the shared counters would drop increments under contention.
    Single-threaded metering order still determines the float summation
    order of ``cost_usd``, so batch-path results are unchanged.
    """

    model: ModelConfig
    requests: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    reasoning_tokens: int = 0
    cost_usd: float = 0.0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, usage: Usage) -> None:
        cost = query_cost_usd(usage, self.model)
        with self._lock:
            self.requests += 1
            self.input_tokens += usage.input_tokens
            self.output_tokens += usage.output_tokens
            self.reasoning_tokens += usage.reasoning_tokens
            self.cost_usd += cost

    def summary(self) -> dict[str, float]:
        with self._lock:  # consistent snapshot while workers still record
            return {
            "requests": float(self.requests),
            "input_tokens": float(self.input_tokens),
            "output_tokens": float(self.output_tokens),
            "reasoning_tokens": float(self.reasoning_tokens),
            "cost_usd": self.cost_usd,
        }
