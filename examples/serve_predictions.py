"""Query the roofline-prediction service over HTTP.

A client for the ``repro-paper serve`` endpoint. Two modes:

* ``python examples/serve_predictions.py --url http://127.0.0.1:8077``
  talks to an already-running server (start one with
  ``repro-paper serve --warm``).
* ``python examples/serve_predictions.py`` (no flags) self-hosts: it
  warms a response cache with a small batch sweep, starts an in-process
  server on an ephemeral port, and runs the same client against it —
  a one-command demo that also shows the zero-completion warm path and
  request coalescing in the ``/v1/stats`` counters.

Run:  python examples/serve_predictions.py [--url URL]
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.parse
import urllib.request
from concurrent.futures import ThreadPoolExecutor

MODEL = "o3-mini-high"
QUERIES = 6          # distinct kernels to classify
BURST = 12           # concurrent identical requests (coalescing demo)
SHED_RETRIES = 4     # extra tries when the server sheds with 429


def get(url, *, _sleep=time.sleep, **params):
    """GET a JSON endpoint, honoring 429 + ``Retry-After`` shedding.

    A loaded server answers 429 with a ``Retry-After`` hint (seconds);
    the polite client waits exactly that long and retries, up to
    ``SHED_RETRIES`` times. ``_sleep`` is injectable so tests run the
    backoff in virtual time.
    """
    if params:
        url = f"{url}?{urllib.parse.urlencode(params)}"
    for attempt in range(SHED_RETRIES + 1):
        try:
            with urllib.request.urlopen(url, timeout=120) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code != 429 or attempt >= SHED_RETRIES:
                raise
            try:
                hint = float(exc.headers.get("Retry-After") or 1.0)
            except ValueError:
                hint = 1.0
            exc.close()
            _sleep(max(0.0, hint))


def run_client(base_url: str) -> None:
    health = get(f"{base_url}/healthz")
    print(f"server {base_url}: {health['status']}")

    models = get(f"{base_url}/v1/models")["models"]
    print(f"servable models: {', '.join(models)}\n")

    uids = [s["uid"] for s in get(f"{base_url}/v1/samples")["samples"]]
    picks = uids[:: max(1, len(uids) // QUERIES)][:QUERIES]

    print(f"{'kernel':34s} {'prediction':10s} {'truth':10s} ok cached")
    for uid in picks:
        r = get(f"{base_url}/v1/classify", uid=uid, model=MODEL)
        print(f"{uid:34s} {str(r['prediction']):10s} {r['truth']:10s} "
              f"{'y' if r['correct'] else 'n'}  {r['cached']}")

    # A burst of identical queries: the server coalesces all in-flight
    # duplicates onto one completion (and serves the rest from cache).
    with ThreadPoolExecutor(max_workers=BURST) as pool:
        futures = [
            pool.submit(get, f"{base_url}/v1/classify",
                        uid=picks[0], model=MODEL, few_shot="true")
            for _ in range(BURST)
        ]
        answers = {f.result()["prediction"] for f in futures}
    assert len(answers) == 1, "burst answers disagree"

    stats = get(f"{base_url}/v1/stats")
    print(f"\nburst of {BURST} identical few-shot queries -> "
          f"one answer {answers.pop()!r}")
    print("server stats: "
          f"{stats['hits']} hits, {stats['completions']} completions, "
          f"{stats['coalesced']} coalesced")


def self_hosted_demo() -> None:
    from repro.eval.engine import (
        DiskResponseStore,
        EvalEngine,
        default_cache_dir,
    )
    from repro.eval.rq23 import classification_items
    from repro.dataset import paper_dataset
    from repro.llm import get_model
    from repro.serve import (
        AsyncEvalEngine,
        PredictionServer,
        PredictionService,
    )

    store = DiskResponseStore(default_cache_dir())
    samples = list(paper_dataset().balanced)
    # Warm the store exactly how the batch CLI would (same prompts, same
    # cache keys) so the served queries below are all hits.
    EvalEngine(jobs=4, store=store).run(
        get_model(MODEL), classification_items(samples, few_shot=False)
    )
    print(f"warmed cache: {len(store)} responses @ {store.root}\n")

    service = PredictionService(AsyncEvalEngine(store=store))
    server = PredictionServer(service, port=0).start()
    try:
        run_client(server.url)
    finally:
        server.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="base URL of a running repro-paper serve "
                             "instance (default: self-host a demo server)")
    args = parser.parse_args()
    if args.url:
        run_client(args.url.rstrip("/"))
    else:
        self_hosted_demo()
    return 0


if __name__ == "__main__":
    sys.exit(main())
