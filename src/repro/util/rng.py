"""Deterministic, hierarchically-derivable random streams.

A :class:`RngStream` wraps :class:`numpy.random.Generator` seeded from a
stable SHA-256 key so that every subsystem gets an independent, reproducible
stream:

    >>> rng = RngStream("corpus", "saxpy", 3)
    >>> rng.uniform()  # doctest: +SKIP

Two streams created with the same key parts always produce the same sequence;
streams with different key parts are statistically independent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.hashing import stable_hash_bytes


def derive_seed(*parts: object) -> int:
    """Derive a 128-bit integer seed from stable hash of ``parts``."""
    return int.from_bytes(stable_hash_bytes(*parts)[:16], "little")


class RngStream:
    """A named deterministic random stream.

    Thin facade over ``numpy.random.Generator`` with convenience draws used
    throughout the code base, plus :meth:`child` for hierarchical derivation
    (children are independent of the parent and of each other).
    """

    def __init__(self, *key: object):
        self._key = tuple(key)
        # Seeding a PCG64 costs ~15 µs (SeedSequence mixing dominates), and
        # many streams exist only to derive children (the gpusim profiler
        # builds one parent stream per kernel × device and draws nothing
        # from it) — so the generator is materialised on first draw.
        self._lazy_gen: np.random.Generator | None = None

    @property
    def _gen(self) -> np.random.Generator:
        gen = self._lazy_gen
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(derive_seed(*self._key)))
            self._lazy_gen = gen
        return gen

    @property
    def key(self) -> tuple:
        return self._key

    def child(self, *subkey: object) -> "RngStream":
        """Derive an independent child stream."""
        return RngStream(*self._key, *subkey)

    # -- scalar draws ------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._gen.normal(mean, std))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return float(self._gen.lognormal(mean, sigma))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        return int(self._gen.integers(low, high))

    def bernoulli(self, p: float) -> bool:
        return bool(self._gen.uniform() < p)

    def choice(self, seq: Sequence, weights: Sequence[float] | None = None):
        """Choose one element, optionally weighted."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        if weights is None:
            return seq[int(self._gen.integers(0, len(seq)))]
        w = np.asarray(weights, dtype=float)
        if w.shape[0] != len(seq):
            raise ValueError("weights length mismatch")
        w = np.clip(w, 0.0, None)
        total = w.sum()
        if total <= 0:
            raise ValueError("all weights are non-positive")
        idx = int(self._gen.choice(len(seq), p=w / total))
        return seq[idx]

    def sample(self, seq: Sequence, k: int) -> list:
        """Sample ``k`` distinct elements (order randomized)."""
        if k > len(seq):
            raise ValueError(f"cannot sample {k} from {len(seq)} elements")
        idx = self._gen.choice(len(seq), size=k, replace=False)
        return [seq[int(i)] for i in idx]

    def shuffle(self, seq: Sequence) -> list:
        """Return a shuffled copy of ``seq``."""
        out = list(seq)
        self._gen.shuffle(out)
        return out

    # -- array draws -------------------------------------------------------
    def integer_matrix(
        self, shape: int | tuple[int, ...], low: int, high: int
    ) -> np.ndarray:
        """Uniform integers in ``[low, high)`` with the given shape (the
        bootstrap's resample-index matrices)."""
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        return self._gen.integers(low, high, size=shape)

    def uniform_array(self, n: int, low: float = 0.0, high: float = 1.0) -> np.ndarray:
        return self._gen.uniform(low, high, size=n)

    def normal_array(self, n: int, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
        return self._gen.normal(mean, std, size=n)

    def permutation(self, n: int) -> np.ndarray:
        return self._gen.permutation(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(key={self._key!r})"
