"""Tests for corpus assembly (paper §2.1 counts and determinism)."""

import pytest

from repro.kernels.corpus import (
    DEFAULT_CUDA_COUNT,
    DEFAULT_OMP_COUNT,
    build_corpus,
    default_corpus,
)
from repro.types import Language


class TestCorpusCounts:
    def test_paper_counts(self):
        assert DEFAULT_CUDA_COUNT == 446
        assert DEFAULT_OMP_COUNT == 303

    def test_full_corpus_sizes(self, corpus):
        assert len(corpus) == 749
        assert len(corpus.by_language(Language.CUDA)) == 446
        assert len(corpus.by_language(Language.OMP)) == 303

    def test_custom_counts(self):
        c = build_corpus(10, 5)
        assert len(c.by_language(Language.CUDA)) == 10
        assert len(c.by_language(Language.OMP)) == 5

    def test_zero_counts(self):
        c = build_corpus(0, 0)
        assert len(c) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            build_corpus(-1, 0)


class TestCorpusStructure:
    def test_unique_uids(self, corpus):
        uids = [p.uid for p in corpus.programs]
        assert len(uids) == len(set(uids))

    def test_lookup_by_uid(self, corpus):
        p = corpus.programs[0]
        assert corpus.get(p.uid) is p

    def test_lookup_missing_raises(self, corpus):
        with pytest.raises(KeyError):
            corpus.get("cuda/zzz-v1")

    def test_by_family(self, corpus):
        progs = corpus.by_family("saxpy")
        assert progs
        assert all(p.family == "saxpy" for p in progs)
        # both languages represented
        assert {p.language for p in progs} == {Language.CUDA, Language.OMP}

    def test_family_coverage(self, corpus):
        """Every registered family contributes at least 4 CUDA programs."""
        from repro.kernels.families import all_families

        for name in all_families():
            cuda_variants = [
                p for p in corpus.by_family(name) if p.language is Language.CUDA
            ]
            assert len(cuda_variants) >= 4, name

    def test_determinism(self):
        a = build_corpus(25, 15)
        b = build_corpus(25, 15)
        assert a.programs == b.programs

    def test_default_corpus_cached(self):
        assert default_corpus() is default_corpus()

    def test_first_kernel_is_main_kernel(self, mini_corpus):
        for p in mini_corpus.programs:
            # distractor/alt kernels never come first
            name = p.first_kernel.kernel.name
            assert not name.startswith(("init_aux", "rescale_aux", "clamp_aux"))
            assert not name.endswith(("_warmup", "_v2"))


class _CountingPrograms(tuple):
    """Tuple that counts full iterations (a linear-scan detector)."""

    iterations = 0

    def __iter__(self):
        type(self).iterations += 1
        return super().__iter__()


class TestIndexedLookup:
    def test_get_does_not_scan(self, mini_corpus):
        """Regression for the old O(n) ``Corpus.get``: after construction,
        uid lookups must not iterate the program tuple at all."""
        from repro.kernels.corpus import Corpus

        _CountingPrograms.iterations = 0
        corpus = Corpus(programs=_CountingPrograms(mini_corpus.programs))
        built = _CountingPrograms.iterations
        assert built >= 1  # the one-time index build is allowed to iterate
        for p in mini_corpus.programs:
            assert corpus.get(p.uid) is p
        assert corpus.get(mini_corpus.programs[-1].uid) is mini_corpus.programs[-1]
        with pytest.raises(KeyError):
            corpus.get("cuda/definitely-missing-v1")
        assert _CountingPrograms.iterations == built

    def test_index_survives_len_and_contains_style_use(self, mini_corpus):
        from repro.kernels.corpus import Corpus

        corpus = Corpus(programs=tuple(mini_corpus.programs))
        assert len(corpus) == len(mini_corpus.programs)
        first = mini_corpus.programs[0]
        assert corpus.get(first.uid).uid == first.uid
