"""Parallel, cached evaluation engine.

Every experiment in the repo reduces to a grid of *(model, item)* work units:
build a prompt, get one completion, parse one word. This module owns that
hot path:

* :class:`EvalEngine` shards work units over an executor backend
  (:mod:`repro.util.parallel`) with deterministic, submission-order results —
  any ``jobs`` value and any backend (``sequential``/``thread``/``process``)
  produce the same :class:`~repro.eval.runner.RunResult` as the sequential
  loop they replaced. The process backend sidesteps the GIL for cold sweeps
  of the pure-Python emulated models; cache reads/writes stay in the parent
  process, so any :class:`ResponseStore` works unchanged and cache contents
  are identical across backends.
* Completions are memoized in a content-addressed store. Keys are
  :func:`cache_key` digests over the *full* model capability profile, the
  prompt text, and the sampling parameters, so any calibration change or
  prompt edit invalidates exactly the affected entries, and keys are stable
  across processes and machines (SHA-256, no interpreter salt). The
  hardware block of classification prompts rides in the prompt text, so
  per-device scenarios (:mod:`repro.eval.matrix`) cache disjointly for free.
* Stores are injectable (:class:`MemoryResponseStore` for tests and warm
  in-process sweeps, :class:`DiskResponseStore` for cross-run reuse), in the
  spirit of :mod:`repro.dataset.store`'s JSON persistence.
  :class:`DiskResponseStore` optionally enforces a size bound by evicting
  oldest-written entries first.

The emulated models are deterministic, so a cache hit is *exact*: the stored
response text and token usage equal what the model would recompute.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from functools import lru_cache, partial
from pathlib import Path
from typing import Protocol, Sequence

from repro.eval.journal import SweepJournal, checkpoint_interval
from repro.llm.base import LlmModel, LlmResponse
from repro.llm.config import ModelConfig
from repro.llm.pricing import Usage, UsageMeter
from repro.store.base import ArtifactStore, _segment_view, parse_max_bytes
from repro.util.faults import active_fault_plan
from repro.util.hashing import stable_hash_bytes, stable_hash_u64
from repro.util.parallel import (
    DEFAULT_BACKEND,
    parallel_map,
    resolve_backend,
    resolve_jobs,
)
from repro.util.retry import RetryPolicy, TransientError, retry_call

#: Bump when the cached-response record layout changes *incompatibly*.
#: The ``model`` tag (manifest per-model accounting) did not bump it:
#: readers default a missing tag to "" and old readers ignore the extra
#: key, so pre-tag caches keep replaying — untagged entries just render
#: as ``<untagged>`` in the manifest until rewritten.
CACHE_SCHEMA_VERSION = "repro-response-v1"

#: Environment override for the on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment override for the on-disk cache size bound (bytes).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Default on-disk cache directory (relative to the working directory).
DEFAULT_CACHE_DIRNAME = ".repro-cache"

#: Sidecar file (at a disk store's root) recording which source cache each
#: merged entry came from. Not a segment or entry file — no store glob ever
#: sees it — so merged and single-run stores stay entry-for-entry identical.
MERGE_PROVENANCE_FILENAME = "merge-provenance.json"


def default_cache_dir() -> Path:
    """Where the CLI keeps its response cache (``$REPRO_CACHE_DIR`` wins)."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIRNAME)


def default_cache_max_bytes() -> int | None:
    """The CLI's cache size bound (``$REPRO_CACHE_MAX_BYTES``; ``None`` =
    unbounded; ``0`` = keep nothing; junk warns and stays unbounded)."""
    return parse_max_bytes(
        os.environ.get(CACHE_MAX_BYTES_ENV), source=CACHE_MAX_BYTES_ENV
    )


@lru_cache(maxsize=256)
def _config_digest(config: ModelConfig) -> bytes:
    """Digest of every :class:`ModelConfig` field, memoized per config."""
    return stable_hash_bytes(
        *(getattr(config, f.name) for f in dataclasses.fields(config))
    )


def cache_key(
    config: ModelConfig,
    prompt: str,
    temperature: float | None = None,
    top_p: float | None = None,
) -> str:
    """Content address of one completion.

    Hashes every :class:`ModelConfig` field (not just the name) so two
    calibrations of the same model never share entries; ``None`` sampling
    params hash distinctly from explicit values, mirroring
    :meth:`LlmModel.complete`'s defaulting. Keys are SHA-256 based —
    stable across processes and machines. This sits on the warm-cache hot
    path, hence the flat hashlib composition over the memoized config
    digest rather than a generic ``stable_hash_hex`` call.
    """
    h = hashlib.sha256()
    h.update(CACHE_SCHEMA_VERSION.encode("ascii"))
    h.update(_config_digest(config))
    data = prompt.encode("utf-8")
    h.update(len(data).to_bytes(8, "little"))
    h.update(data)
    h.update(repr((temperature, top_p)).encode("ascii"))
    return h.hexdigest()


@dataclass(frozen=True)
class CachedResponse:
    """The persistable payload of one completion."""

    text: str
    input_tokens: int
    output_tokens: int
    reasoning_tokens: int
    model: str = ""

    @classmethod
    def from_response(cls, response: LlmResponse) -> "CachedResponse":
        u = response.usage
        return cls(
            text=response.text,
            input_tokens=u.input_tokens,
            output_tokens=u.output_tokens,
            reasoning_tokens=u.reasoning_tokens,
            model=response.model_name,
        )

    def to_response(self, model_name: str) -> LlmResponse:
        return LlmResponse(
            text=self.text,
            usage=Usage(
                input_tokens=self.input_tokens,
                output_tokens=self.output_tokens,
                reasoning_tokens=self.reasoning_tokens,
            ),
            model_name=model_name,
        )

    def to_dict(self) -> dict:
        return {
            "text": self.text,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "reasoning_tokens": self.reasoning_tokens,
            "model": self.model,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CachedResponse":
        return cls(
            text=data["text"],
            input_tokens=int(data["input_tokens"]),
            output_tokens=int(data["output_tokens"]),
            reasoning_tokens=int(data["reasoning_tokens"]),
            model=str(data.get("model", "")),
        )


class ResponseStore(Protocol):
    """Injectable key → response storage."""

    def get(self, key: str) -> CachedResponse | None: ...

    def put(self, key: str, value: CachedResponse) -> None: ...

    def __len__(self) -> int: ...

    def clear(self) -> None: ...


class MemoryResponseStore:
    """In-process store (tests, single-run warm sweeps).

    Single dict get/set operations are atomic under the GIL, so the hot
    path is lock-free; the worst concurrent-writer outcome is two threads
    installing identical content for the same key.
    """

    def __init__(self) -> None:
        self._data: dict[str, CachedResponse] = {}

    def get(self, key: str) -> CachedResponse | None:
        return self._data.get(key)

    def put(self, key: str, value: CachedResponse) -> None:
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


@dataclass(frozen=True)
class CacheManifest:
    """Summary of a disk store's contents (``repro-paper cache``)."""

    entries: int
    total_bytes: int
    oldest_age_s: float | None  # None when the store is empty
    newest_age_s: float | None
    per_model: tuple[tuple[str, int], ...]  # (model name, entry count), sorted
    #: (source cache label, live merged entries), sorted — empty unless the
    #: store was assembled by ``merge_caches``.
    per_source: tuple[tuple[str, int], ...] = ()
    stale_segments: int = 0  # version-skewed/unreadable; GC'd on next evict

    def render(self) -> str:
        lines = [f"entries:   {self.entries}", f"bytes:     {self.total_bytes}"]
        if self.oldest_age_s is not None and self.newest_age_s is not None:
            lines.append(
                f"age:       {self.newest_age_s:.0f}s (newest) … "
                f"{self.oldest_age_s:.0f}s (oldest)"
            )
        if self.stale_segments:
            lines.append(
                f"stale:     {self.stale_segments} segment"
                f"{'' if self.stale_segments == 1 else 's'} "
                "(reclaimed on next eviction)"
            )
        for name, count in self.per_model:
            lines.append(f"  {name or '<untagged>'}: {count}")
        for label, count in self.per_source:
            lines.append(f"  merged from {label}: {count}")
        return "\n".join(lines)


class DiskResponseStore(ArtifactStore):
    """Packed binary response segments, sharded by 2-hex key prefix.

    One segment per key prefix (≤256 segments) instead of one JSON file
    per key: a warm sweep resolves each hit with one mmap-backed index
    probe and one per-entry JSON decode, and a deferred batch of puts
    costs one read-merge-write per touched segment. Writes stay atomic
    (temp file + :func:`os.replace`), so concurrent writers — threads in
    one engine or separate processes sharing a cache directory — can only
    ever race to install identical content.

    Pre-PR-6 caches (one ``root/xx/<key>.json`` file per entry) keep
    serving: a key missing from its segment falls back to the legacy file,
    and those files stay visible to ``size_bytes``/eviction/merging.

    Pass ``max_bytes`` for a size-bounded store: when the total store size
    exceeds the bound, oldest-written segments are evicted first. ``0``
    keeps nothing; ``None`` is unbounded; negative bounds are rejected
    (see :class:`~repro.store.base.ArtifactStore`).
    """

    version = CACHE_SCHEMA_VERSION
    segment_prefixes = ("responses-",)

    #: Inside ``deferred()`` (one engine sweep), merge pending entries to
    #: disk every this many puts, so a crash mid-sweep loses at most one
    #: interval of warmth.
    DEFERRED_FLUSH_ENTRIES = 64

    def _shard_of(self, key: str) -> str:
        return key[:2]

    def _response_payload(self, shard: str) -> dict:
        return {"version": CACHE_SCHEMA_VERSION, "key": shard}

    # -- legacy per-entry files (pre-segment caches) -------------------------
    def _legacy_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _legacy_entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        try:
            return sorted(self.root.glob("??/*.json"))
        except OSError:
            return []  # shard dir vanished mid-scan (concurrent wipe)

    def _extra_data_files(self) -> list[Path]:
        return self._legacy_entry_files()

    def _iter_tmp_files(self) -> list[Path]:
        files = super()._iter_tmp_files()
        # Pre-segment writers left their tmp files inside the shard dirs.
        if self.root.is_dir():
            try:
                files.extend(
                    p for p in self.root.glob("??/*.tmp.*") if p.is_file()
                )
            except OSError:
                pass
        return files

    def _legacy_dict(self, key: str) -> dict | None:
        try:
            data = json.loads(
                self._legacy_path(key).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            # Missing or torn entry (bad JSON, bad UTF-8) == miss; a put
            # repairs it. JSONDecodeError and UnicodeDecodeError are both
            # ValueErrors.
            return None
        return data if isinstance(data, dict) else None

    # -- the ResponseStore protocol ------------------------------------------
    def get(self, key: str) -> CachedResponse | None:
        shard = self._shard_of(key)
        entries = self._get_entries(
            "responses-", shard, [key], expect_key=shard
        )
        raw = entries.get(key)
        if raw is None:
            raw = self._legacy_dict(key)
        if not isinstance(raw, dict):
            return None
        try:
            return CachedResponse.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: str, value: CachedResponse) -> None:
        shard = self._shard_of(key)
        self._merge_entries(
            "responses-",
            shard,
            self._response_payload(shard),
            {key: value.to_dict()},
            expect_key=shard,
        )

    def _has(self, key: str) -> bool:
        shard = self._shard_of(key)
        with self._store_lock:
            pend = self._pending.get(self._segment_path("responses-", shard))
            if pend is not None and key in pend[3]:
                return True
        view = self._view_for("responses-", shard, expect_key=shard)
        if view is not None and key in view:
            return True
        return self._legacy_path(key).is_file()

    def _live_blobs(self) -> dict[str, bytes]:
        """key → canonical entry bytes for every live entry; a segment
        entry shadows its (already-migrated) legacy twin."""
        self.flush()
        blobs: dict[str, bytes] = {}
        for path in self._segment_files():
            if path.suffix == ".json" and path.with_suffix(".bin").is_file():
                continue
            view = _segment_view(path)
            if view is None or view.payload.get("version") != self.version:
                continue
            for key in view.keys():
                blob = view.blob(key)
                if blob is not None:
                    blobs[key] = blob
        for p in self._legacy_entry_files():
            if p.stem in blobs:
                continue
            data = self._legacy_dict(p.stem)
            if data is not None:
                blobs[p.stem] = json.dumps(data, sort_keys=True).encode("utf-8")
        return blobs

    def __len__(self) -> int:
        return len(self._live_blobs())

    def iter_entries(self):
        """Yield ``(key, canonical JSON bytes)`` per live entry, key-sorted.

        The raw-bytes view of the store used by cache merging
        (:func:`repro.eval.shard.merge_caches`): entry blobs are canonical
        (sorted keys, deterministic JSON) in both the binary segments and
        legacy per-entry files, so byte equality means value equality.
        """
        blobs = self._live_blobs()
        for key in sorted(blobs):
            yield key, blobs[key]

    def get_blob(self, key: str) -> bytes | None:
        """One live entry's canonical JSON bytes (segment, pending batch,
        or legacy file), or ``None`` — the merge conflict check."""
        shard = self._shard_of(key)
        with self._store_lock:
            pend = self._pending.get(self._segment_path("responses-", shard))
            if pend is not None and key in pend[3]:
                return json.dumps(pend[3][key], sort_keys=True).encode("utf-8")
        view = self._view_for("responses-", shard, expect_key=shard)
        if view is not None:
            blob = view.blob(key)
            if blob is not None:
                return blob
        data = self._legacy_dict(key)
        if data is None:
            return None
        return json.dumps(data, sort_keys=True).encode("utf-8")

    # -- merge provenance ---------------------------------------------------
    @property
    def _provenance_path(self) -> Path:
        return self.root / MERGE_PROVENANCE_FILENAME

    def provenance(self) -> dict[str, str]:
        """key → source-cache label for entries installed by a merge.

        Tolerant of a missing, torn, or foreign sidecar file (all read as
        "no provenance") — a plain single-machine cache never has one.
        """
        try:
            data = json.loads(self._provenance_path.read_text(encoding="utf-8"))
            sources = data["sources"]
            return {str(k): str(v) for k, v in sources.items()}
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return {}

    def record_provenance(self, mapping: dict[str, str]) -> None:
        """Merge ``mapping`` into the provenance sidecar (atomic write).

        Repeated merges into the same store accumulate. ``mapping`` holds
        only keys the caller just installed, so its labels win over stale
        sidecar entries (a key evicted and later re-installed from another
        source belongs to the new source); keys whose entry file no longer
        exists are pruned so eviction/wipe cycles can't grow the sidecar.
        """
        if not mapping:
            return
        self.flush()
        merged = {
            key: label
            for key, label in self.provenance().items()
            if self._has(key)
        }
        merged.update(mapping)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self._provenance_path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(
                json.dumps({"version": 1, "sources": merged}, sort_keys=True),
                encoding="utf-8",
            )
            os.replace(tmp, self._provenance_path)
        except OSError:
            return  # provenance is advisory; never fail the merge over it

    def manifest(self) -> CacheManifest:
        """Entry count, byte total, age range, per-model and (for merged
        stores) per-source entry counts. A missing or empty cache directory
        reads as an empty manifest, never an error.

        Entry ages derive from their file's mtime — every entry in one
        segment shares the segment's last-write age."""
        self.flush()
        now = time.time()
        per_model: dict[str, int] = {}
        provenance = self.provenance()
        per_source: dict[str, int] = {}
        total = 0
        oldest: float | None = None
        newest: float | None = None
        count = 0
        seen: set[str] = set()

        def _tally(key: str, data: dict, age: float) -> None:
            nonlocal count, oldest, newest
            count += 1
            seen.add(key)
            oldest = age if oldest is None else max(oldest, age)
            newest = age if newest is None else min(newest, age)
            model = str(data.get("model", ""))
            per_model[model] = per_model.get(model, 0) + 1
            source = provenance.get(key)
            if source is not None:
                per_source[source] = per_source.get(source, 0) + 1

        for path in self._segment_files():
            if path.suffix == ".json" and path.with_suffix(".bin").is_file():
                continue
            view = _segment_view(path)
            if view is None or view.payload.get("version") != self.version:
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            total += st.st_size
            age = max(0.0, now - st.st_mtime)
            for key, data in view.entries().items():
                if isinstance(data, dict):
                    _tally(key, data, age)
        for p in self._legacy_entry_files():
            if p.stem in seen:
                continue
            try:
                st = p.stat()
            except OSError:
                continue
            data = self._legacy_dict(p.stem)
            if data is None:
                continue
            total += st.st_size
            _tally(p.stem, data, max(0.0, now - st.st_mtime))
        return CacheManifest(
            entries=count,
            total_bytes=total,
            oldest_age_s=oldest,
            newest_age_s=newest,
            per_model=tuple(sorted(per_model.items())),
            per_source=tuple(sorted(per_source.items())),
            stale_segments=self.stale_segment_count(),
        )

    def clear(self) -> None:
        # Remove only files the store owns and then-empty shard dirs —
        # never the root wholesale: --cache-dir may point at a directory
        # that contains unrelated files.
        super().clear()
        try:
            self._provenance_path.unlink()
        except OSError:
            pass  # absent on non-merged stores
        if not self.root.is_dir():
            return
        for shard in self.root.iterdir():
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            try:
                shard.rmdir()
            except OSError:
                pass  # non-empty (foreign files): leave it


@dataclass
class CacheStats:
    """Hit/miss accounting for one engine; misses == new model completions."""

    hits: int = 0
    misses: int = 0
    uncached: int = 0  # completions issued with no store attached
    retries: int = 0  # upstream re-attempts after retryable failures
    failed: int = 0  # units that exhausted retries (collect mode)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    @property
    def completions(self) -> int:
        """Completions actually computed by a model (not served from cache)."""
        return self.misses + self.uncached

    @property
    def total(self) -> int:
        return self.hits + self.misses + self.uncached

    def _bump(self, field_name: str, count: int = 1) -> None:
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + count)

    def summary(self) -> str:
        out = (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.completions} new completions"
        )
        if self.failed:
            out += f", {self.failed} failed"
        return out


#: How failure_mode="fail_fast"/"collect" handle a unit that exhausts its
#: retries: propagate immediately (cancelling the fan-out), or record it
#: as a :class:`~repro.eval.runner.FailedUnit` and keep sweeping.
FAILURE_MODES = ("fail_fast", "collect")

#: The sync engine's default schedule. The in-process emulated models are
#: deterministic — only injected faults (or future real-API adapters) ever
#: fail transiently — so delays stay tiny; serve keeps its own defaults.
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay_s=0.01, max_delay_s=0.25
)


def resolve_failure_mode(mode: str) -> str:
    if mode not in FAILURE_MODES:
        raise ValueError(
            f"unknown failure_mode {mode!r} (valid: {', '.join(FAILURE_MODES)})"
        )
    return mode


class MaxFailuresExceeded(RuntimeError):
    """A collect-mode sweep hit its ``max_failures`` abort threshold."""

    def __init__(self, threshold: int):
        super().__init__(
            f"aborting sweep: {threshold} unit(s) exhausted their retries "
            f"(--max-failures {threshold})"
        )
        self.threshold = threshold


@dataclass(frozen=True)
class _FailedCompletion:
    """Picklable marker a collect-mode unit yields instead of a response."""

    error_type: str
    error: str
    attempts: int


def _complete_uncached(
    model: LlmModel,
    temperature: float | None,
    top_p: float | None,
    policy: RetryPolicy,
    prompt: str,
    on_retry=None,
) -> CachedResponse:
    """One completion, retried under ``policy``, as its persistable payload.

    Module-level (and invoked via :func:`functools.partial` over picklable
    args) so the process backend can ship it to workers; the model object is
    pickled once per shard, not per item. The retry RNG is seeded from the
    unit's cache key, so backoff jitter is reproducible per unit however
    the fan-out schedules it; the active fault plan (parent's, or a
    worker's via the inherited ``$REPRO_FAULT_PLAN``) gets a shot at every
    attempt.
    """
    token = cache_key(model.config, prompt, temperature, top_p)
    plan = active_fault_plan()
    state = {"attempt": 0}

    def attempt() -> CachedResponse:
        i = state["attempt"]
        state["attempt"] += 1
        if plan is not None:
            plan.completion_fault(token, i)
        response = model.complete(prompt, temperature=temperature, top_p=top_p)
        return CachedResponse.from_response(response)

    rng = random.Random(stable_hash_u64("retry", token))
    return retry_call(attempt, policy=policy, rng=rng, on_retry=on_retry)


def _complete_collect(
    model: LlmModel,
    temperature: float | None,
    top_p: float | None,
    policy: RetryPolicy,
    prompt: str,
    on_retry=None,
) -> CachedResponse | _FailedCompletion:
    """Collect-mode twin of :func:`_complete_uncached`: an exhausted
    transient failure becomes a marker instead of an exception (markers
    pickle back from process workers; anything non-transient still
    propagates — that's a bug, not weather)."""
    try:
        return _complete_uncached(
            model, temperature, top_p, policy, prompt, on_retry
        )
    except TransientError as exc:
        return _FailedCompletion(type(exc).__name__, str(exc), policy.max_attempts)


class EvalEngine:
    """Fans (model, item) work units over a worker pool, memoizing responses.

    One engine instance is meant to span a whole experiment (or several: a
    Table 1 run shares one engine across all models and RQs), so its
    :attr:`stats` describe the sweep and its store amortises repeated
    prompts across experiments.

    ``backend`` picks the executor for :meth:`run`'s fan-out: ``"thread"``
    (default; best for warm caches and IO), ``"process"`` (cold CPU-bound
    sweeps scale with cores), or ``"sequential"``. Results and cache
    contents are byte-identical across backends; with the process backend
    the parent resolves cache hits and writes all cache entries, so workers
    never touch the store.

    Fault tolerance: every completion attempt runs under ``retry`` (a
    :class:`~repro.util.retry.RetryPolicy`; jitter RNG seeded per unit
    from its cache key, so retried sweeps reproduce). ``failure_mode``
    decides what happens when a unit *exhausts* its retries —
    ``"fail_fast"`` (default) propagates and cancels the fan-out,
    ``"collect"`` records it as a
    :class:`~repro.eval.runner.FailedUnit` on the result and keeps going,
    aborting with :class:`MaxFailuresExceeded` once ``max_failures``
    units have failed. Attaching a ``journal``
    (:class:`~repro.eval.journal.SweepJournal`) makes :meth:`run`
    checkpoint completed units after each flushed chunk and skip
    journaled units on a resumed sweep.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        store: ResponseStore | None = None,
        backend: str = DEFAULT_BACKEND,
        retry: RetryPolicy | None = None,
        failure_mode: str = "fail_fast",
        max_failures: int | None = None,
        journal: SweepJournal | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = store
        self.backend = resolve_backend(backend)
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.failure_mode = resolve_failure_mode(failure_mode)
        if max_failures is not None and max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got {max_failures}")
        self.max_failures = max_failures
        self.journal = journal
        self.stats = CacheStats()
        self._failure_lock = threading.Lock()
        self._failures_seen = 0

    def _count_retry(self, attempt: int, exc: BaseException) -> None:
        self.stats._bump("retries")

    def _note_failure(self) -> None:
        """Book one exhausted unit; raise at the abort threshold."""
        self.stats._bump("failed")
        with self._failure_lock:
            self._failures_seen += 1
            seen = self._failures_seen
        if self.max_failures is not None and seen >= self.max_failures:
            raise MaxFailuresExceeded(self.max_failures)

    # -- single completion ---------------------------------------------------
    def complete(
        self,
        model: LlmModel,
        prompt: str,
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ) -> LlmResponse:
        """One completion, served from the store when possible."""
        if self.store is None:
            cached = _complete_uncached(
                model, temperature, top_p, self.retry, prompt, self._count_retry
            )
            self.stats._bump("uncached")
            return cached.to_response(model.name)
        key = cache_key(model.config, prompt, temperature, top_p)
        cached = self.store.get(key)
        if cached is not None:
            self.stats._bump("hits")
            return cached.to_response(model.name)
        cached = _complete_uncached(
            model, temperature, top_p, self.retry, prompt, self._count_retry
        )
        self.store.put(key, cached)
        self.stats._bump("misses")
        return cached.to_response(model.name)

    # -- batched evaluation --------------------------------------------------
    def run(
        self,
        model: LlmModel,
        items: Sequence[tuple[str, str, object]],
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ):
        """Evaluate ``items`` of (item_id, prompt, truth) against one model.

        Drop-in replacement for the old sequential loop in
        :mod:`repro.eval.runner`: identical records in identical order, and
        usage metered in item order so cost floats sum identically at any
        ``jobs`` and any backend — and at any crash/resume boundary: a
        journaled run that resumes mid-sweep assembles the same result as
        an uninterrupted one.
        """
        from repro.eval.runner import FailedUnit, RunResult

        items = list(items)
        if not items:
            raise ValueError("no items to run")

        # Batch the sweep's store writes: one read-merge-write per touched
        # segment per flush interval instead of one per completion. Stores
        # without deferral (MemoryResponseStore, test doubles) run as-is.
        deferred = getattr(self.store, "deferred", None)
        with deferred() if deferred is not None else nullcontext():
            responses = self._run_units(model, items, temperature, top_p)

        records = []
        failures = []
        ok_responses = []
        for (item_id, _, truth), response in zip(items, responses):
            if isinstance(response, _FailedCompletion):
                failures.append(
                    FailedUnit(
                        item_id=item_id,
                        error_type=response.error_type,
                        error=response.error,
                        attempts=response.attempts,
                    )
                )
                continue
            records.append(_make_record(item_id, truth, response))
            ok_responses.append(response)
        meter = UsageMeter(model.config)
        for response in ok_responses:
            meter.record(response.usage)
        return RunResult(
            model_name=model.name,
            records=tuple(records),
            usage=meter.summary(),
            failures=tuple(failures),
        )

    def _run_units(
        self,
        model: LlmModel,
        items: Sequence[tuple[str, str, object]],
        temperature: float | None,
        top_p: float | None,
    ) -> list:
        """All items' responses (or failure markers), journal-aware.

        Without a journal this is one fan-out. With one, journaled units
        are served straight from the store, and the rest run in chunks of
        :func:`~repro.eval.journal.checkpoint_interval` units — each chunk
        is flushed to the store *before* its units are journaled, so the
        journal never claims a completion a crash could discard. The
        ``finally`` checkpoint is the graceful-shutdown path: an interrupt
        (or a :class:`MaxFailuresExceeded` abort) still journals every
        flushed chunk, so ``--resume`` loses nothing already completed.
        """
        if self.journal is None or self.store is None:
            return self._fan_out(model, items, temperature, top_p)
        keys = [
            cache_key(model.config, prompt, temperature, top_p)
            for (_, prompt, _) in items
        ]
        out: list = [None] * len(items)
        todo: list[int] = []
        for i, key in enumerate(keys):
            if self.journal.completed(key):
                cached = self.store.get(key)
                if cached is not None:
                    # Journaled + durable: skip without re-issuing.
                    self.stats._bump("hits")
                    out[i] = cached.to_response(model.name)
                    continue
                # Journaled but evicted from the store: recompute (the
                # journal is an optimization, never an authority).
            todo.append(i)
        step = checkpoint_interval()
        try:
            for lo in range(0, len(todo), step):
                chunk = todo[lo : lo + step]
                results = self._fan_out(
                    model, [items[i] for i in chunk], temperature, top_p
                )
                for i, response in zip(chunk, results):
                    out[i] = response
                flush = getattr(self.store, "flush", None)
                if flush is not None:
                    flush()  # durable before journaled
                for i, response in zip(chunk, results):
                    if not isinstance(response, _FailedCompletion):
                        self.journal.record(f"{model.name}:{items[i][0]}", keys[i])
                self.journal.checkpoint()
        finally:
            self.journal.checkpoint()
        return out

    def _fan_out(
        self,
        model: LlmModel,
        items: Sequence[tuple[str, str, object]],
        temperature: float | None,
        top_p: float | None,
    ) -> list:
        if self.backend == "process" and self.jobs > 1 and len(items) > 1:
            return self._responses_via_processes(model, items, temperature, top_p)
        fn = partial(self._complete_item, model, temperature, top_p)
        return parallel_map(fn, items, jobs=self.jobs, backend=self.backend)

    def _complete_item(
        self,
        model: LlmModel,
        temperature: float | None,
        top_p: float | None,
        item: tuple[str, str, object],
    ) -> LlmResponse | _FailedCompletion:
        try:
            return self.complete(
                model, item[1], temperature=temperature, top_p=top_p
            )
        except TransientError as exc:
            if self.failure_mode != "collect":
                raise
            self._note_failure()
            return _FailedCompletion(
                type(exc).__name__, str(exc), self.retry.max_attempts
            )

    def _responses_via_processes(
        self,
        model: LlmModel,
        items: Sequence[tuple[str, str, object]],
        temperature: float | None,
        top_p: float | None,
    ) -> list:
        """Process-backend fan-out: parent serves cache hits and owns every
        store write; only cache-missing prompts are shipped to workers."""
        responses: list = [None] * len(items)
        pending: list[tuple[int, str, str | None]] = []  # (index, prompt, key)
        for i, (_, prompt, _) in enumerate(items):
            if self.store is None:
                pending.append((i, prompt, None))
                continue
            key = cache_key(model.config, prompt, temperature, top_p)
            cached = self.store.get(key)
            if cached is not None:
                responses[i] = cached.to_response(model.name)
            else:
                pending.append((i, prompt, key))
        self.stats._bump("hits", len(items) - len(pending))
        if pending:
            worker = (
                _complete_collect
                if self.failure_mode == "collect"
                else _complete_uncached
            )
            fn = partial(worker, model, temperature, top_p, self.retry)
            computed = parallel_map(
                fn,
                [prompt for _, prompt, _ in pending],
                jobs=self.jobs,
                backend="process",
            )
            field = "uncached" if self.store is None else "misses"
            for (i, _, key), cached in zip(pending, computed):
                if isinstance(cached, _FailedCompletion):
                    responses[i] = cached
                    self._note_failure()
                    continue
                if key is not None:
                    self.store.put(key, cached)
                responses[i] = cached.to_response(model.name)
                self.stats._bump(field)
        return responses


def _make_record(item_id: str, truth: object, response: LlmResponse):
    """Response → per-item record; shared by every backend so records are
    byte-identical however the completion was computed."""
    from repro.eval.runner import PredictionRecord

    try:
        pred = response.boundedness()
    except ValueError:
        pred = None
    return PredictionRecord(
        item_id=item_id,
        truth=truth,
        prediction=pred,
        response_text=response.text,
    )
