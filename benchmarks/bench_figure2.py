"""E2 — Figure 2: token-count distributions of the balanced dataset.

Paper claims reproduced here:
* all samples under the 8e3-token cutoff;
* OMP programs average fewer tokens than CUDA programs;
* train and validation distributions roughly line up per cell.
"""

from __future__ import annotations

import statistics

from repro.eval.figures import figure2_data
from repro.eval.report import Comparison, render_comparisons


def _build(dataset):
    return figure2_data(dataset)


def test_figure2(benchmark, dataset):
    fig = benchmark.pedantic(_build, args=(dataset,), rounds=1, iterations=1)

    print()
    print(fig.render_ascii())
    print()
    stats = fig.box_stats()
    cuda_med = statistics.mean(s.median for k, s in stats.items() if "CUDA" in k)
    omp_med = statistics.mean(s.median for k, s in stats.items() if "OMP" in k)
    overall_max = max(s.maximum for s in stats.values())
    comparisons = [
        Comparison("Figure 2", "mean of CUDA cell medians (tokens)", None, cuda_med),
        Comparison("Figure 2", "mean of OMP cell medians (tokens)", None, omp_med),
        Comparison("Figure 2", "max token count (cutoff 8000)", 8000.0, overall_max),
    ]
    print(render_comparisons("E2 — Figure 2 token distributions", comparisons))

    assert omp_med < cuda_med  # the paper's observation
    assert overall_max <= 8000
    # train/val medians line up within a factor of 2 per cell
    for lang in ("CUDA", "OMP"):
        for label in ("BB", "CB"):
            tr = stats[f"train/{lang}/{label}"].median
            va = stats[f"val/{lang}/{label}"].median
            assert 0.5 <= tr / va <= 2.0, (lang, label)
