"""Extension bench — the paper's 'Expanding Dataset' future-work direction.

*"Given different GPU hardware, the arithmetic intensity of a program may
change from CB to BB. ... it would be best to re-profile all our GPU
programs on varying hardware to see how LLM prediction accuracy changes."*

Re-labels the profiled corpus against each GPU in the hardware database and
measures how the zero-shot accuracy of the best reasoning model moves when
the ground truth shifts under it.
"""

from __future__ import annotations

import dataclasses

from repro.eval.metrics import MetricReport
from repro.llm import get_model
from repro.prompts import build_classify_prompt
from repro.roofline import GPU_DATABASE, RTX_3080
from repro.roofline.classify import IntensityProfile, classify_kernel
from repro.types import Boundedness, OpClass
from repro.util.tables import format_table


def _relabel(sample, gpu):
    prof = IntensityProfile(
        ops={
            OpClass.SP: sample.counters.sp_flops,
            OpClass.DP: sample.counters.dp_flops,
            OpClass.INT: sample.counters.int_ops,
        },
        dram_bytes=sample.counters.dram_bytes,
    )
    return classify_kernel(prof, gpu.rooflines()).label


def _run(balanced):
    model = get_model("o3-mini-high")
    out = []
    for gpu_name, gpu in GPU_DATABASE.items():
        relabeled = [
            dataclasses.replace(s, label=_relabel(s, gpu), gpu_name=gpu.name)
            for s in balanced
        ]
        cb = sum(1 for s in relabeled if s.label is Boundedness.COMPUTE)
        truths = [s.label for s in relabeled]
        preds = [
            model.complete(
                build_classify_prompt(s, gpu=gpu).text
            ).boundedness()
            for s in relabeled
        ]
        rep = MetricReport.from_predictions(truths, preds)
        flips = sum(
            1 for s, orig in zip(relabeled, balanced) if s.label != orig.label
        )
        out.append((gpu_name, cb, flips, rep.accuracy, rep.mcc))
    return out


def test_cross_hardware_extension(benchmark, balanced):
    rows = benchmark.pedantic(_run, args=(balanced,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["GPU", "CB labels", "Flips vs 3080", "o3-mini-high acc", "MCC"],
        rows,
        title="Extension — cross-hardware relabeling (paper future work)",
    ))
    by_gpu = {r[0]: r for r in rows}
    # The profiling GPU itself must show zero flips.
    assert by_gpu[RTX_3080.name][2] == 0
    # Strong-FP64 parts (A100/H100/MI100/V100) flip many DP labels.
    assert by_gpu["NVIDIA A100"][2] > 20
    # Accuracy stays above chance on every device: the prompt carries the
    # hardware specs, and the analyst reads them.
    for row in rows:
        assert row[3] > 50.0, row[0]
