"""Focused tests for the profiler walker's semantics: loop nesting, footprint
bounds, dynamic indices, and 2-D thread spaces."""

import pytest

from repro.gpusim import profile_kernel
from repro.kernels.ir import (
    ArrayDecl,
    Assign,
    AtomicAdd,
    BinOp,
    BinOpKind,
    Const,
    DType,
    DynamicIndex,
    For,
    Kernel,
    Let,
    Load,
    ScalarParam,
    Store,
    Var,
    add,
    aff,
    load,
    mul,
    var,
)
from repro.kernels.launch import CommandLine, KernelInstance, plan_launch_1d, plan_launch_2d
from repro.types import OpClass

F32 = DType.F32
I32 = DType.I32


def _profile(kernel, flags, binding_exprs, launch=None, uid="t"):
    cl = CommandLine(prog="t", flags=tuple(flags.items()))
    if launch is None:
        launch = plan_launch_1d(flags["n"], 256)
    inst = KernelInstance(kernel=kernel, launch=launch,
                         binding_exprs=tuple(binding_exprs.items()))
    return profile_kernel(inst, cl, uid=uid)


class TestLoopSemantics:
    def _loop_kernel(self, trips_param):
        body = (
            Let("acc", Const(0.0, F32), F32),
            For("k", trips_param, (
                Assign("acc", add(var("acc"), load("x", aff("gx")), F32), F32),
            )),
            Store("y", aff("gx"), var("acc"), F32),
        )
        return Kernel(
            name="loopy",
            arrays=(ArrayDecl("x", F32, "n"), ArrayDecl("y", F32, "n", is_output=True)),
            params=(ScalarParam("iters", I32), ScalarParam("n", I32)),
            body=body,
            work_items="n",
        )

    def test_flops_scale_with_trip_count(self):
        k = self._loop_kernel("iters")
        small = _profile(k, {"n": 4096, "iters": 10}, {"iters": "iters", "n": "n"}, uid="a")
        big = _profile(k, {"n": 4096, "iters": 1000}, {"iters": "iters", "n": "n"}, uid="a")
        ratio = big.counters.sp_flops / small.counters.sp_flops
        assert ratio == pytest.approx(100.0, rel=0.1)

    def test_loop_invariant_load_cached(self):
        """x[gx] inside the loop is loop-invariant: traffic must not scale
        with the trip count (register/L1 hoisting)."""
        k = self._loop_kernel("iters")
        small = _profile(k, {"n": 1 << 20, "iters": 4}, {"iters": "iters", "n": "n"}, uid="b")
        big = _profile(k, {"n": 1 << 20, "iters": 400}, {"iters": "iters", "n": "n"}, uid="b")
        assert big.counters.dram_bytes == pytest.approx(
            small.counters.dram_bytes, rel=0.1
        )

    def test_strided_loop_step(self):
        body = (
            Let("acc", Const(0.0, F32), F32),
            For("k", "iters", (
                Assign("acc", add(var("acc"), Const(1.0, F32), F32), F32),
            ), step=4),
            Store("y", aff("gx"), var("acc"), F32),
        )
        k = Kernel(
            name="strided", arrays=(ArrayDecl("y", F32, "n", is_output=True),),
            params=(ScalarParam("iters", I32), ScalarParam("n", I32)),
            body=body, work_items="n",
        )
        p = _profile(k, {"n": 1024, "iters": 100}, {"iters": "iters", "n": "n"})
        # 100/4 = 25 iterations -> 25 adds per thread
        assert p.counters.sp_flops == pytest.approx(25 * 1024, rel=0.1)


class TestFootprintBounds:
    def test_footprint_capped_by_array_size(self):
        """A loop re-reading a small array cannot generate more compulsory
        traffic than the array's size."""
        body = (
            Let("acc", Const(0.0, F32), F32),
            For("k", "iters", (
                Assign("acc", add(var("acc"), load("tab", aff("k")), F32), F32),
            )),
            Store("y", aff("gx"), var("acc"), F32),
        )
        k = Kernel(
            name="table",
            arrays=(ArrayDecl("tab", F32, 64), ArrayDecl("y", F32, "n", is_output=True)),
            params=(ScalarParam("iters", I32), ScalarParam("n", I32)),
            body=body, work_items="n",
        )
        p = _profile(k, {"n": 1 << 20, "iters": 64}, {"iters": "iters", "n": "n"})
        # tab contributes at most 64*4 = 256 compulsory bytes; the output
        # write dominates.
        write_bytes = p.counters.dram_write_bytes
        assert write_bytes == pytest.approx((1 << 20) * 4, rel=0.1)
        assert p.counters.dram_read_bytes < write_bytes * 0.1


class TestDynamicIndices:
    def test_small_range_hint_stays_cached(self):
        gather = Load("lut", DynamicIndex(
            expr=BinOp(BinOpKind.MOD, Var("gx", I32), Var("m", I32), I32),
            range_hint="m", pattern="random"), F32)
        body = (Store("y", aff("gx"), gather, F32),)
        k = Kernel(
            name="lutk",
            arrays=(ArrayDecl("lut", F32, "m"), ArrayDecl("y", F32, "n", is_output=True)),
            params=(ScalarParam("m", I32), ScalarParam("n", I32)),
            body=body, work_items="n",
        )
        small = _profile(k, {"n": 1 << 20, "m": 256}, {"m": "m", "n": "n"}, uid="c1")
        large = _profile(k, {"n": 1 << 20, "m": 1 << 24}, {"m": "m", "n": "n"}, uid="c1")
        assert small.counters.dram_read_bytes < large.counters.dram_read_bytes / 10

    def test_atomic_rmw_traffic(self):
        body = (
            AtomicAdd("hist", DynamicIndex(
                expr=BinOp(BinOpKind.MOD, Var("gx", I32), Var("m", I32), I32),
                range_hint="m", pattern="random"), Const(1, I32), I32),
        )
        k = Kernel(
            name="histk",
            arrays=(ArrayDecl("hist", I32, "m", is_output=True),),
            params=(ScalarParam("m", I32), ScalarParam("n", I32)),
            body=body, work_items="n",
        )
        p = _profile(k, {"n": 1 << 18, "m": 1024}, {"m": "m", "n": "n"})
        # footprint-resident atomics: reads and writes both tiny
        assert p.counters.dram_write_bytes < 1 << 16


class Test2DThreadSpace:
    def test_row_major_store_coalesced(self):
        body = (
            Store("out", aff(("gy", "w"), "gx"),
                  mul(Const(2.0, F32), load("inp", aff(("gy", "w"), "gx")), F32), F32),
        )
        k = Kernel(
            name="scale2d",
            arrays=(ArrayDecl("inp", F32, "w*h"), ArrayDecl("out", F32, "w*h", is_output=True)),
            params=(ScalarParam("w", I32), ScalarParam("h", I32)),
            body=body, work_items="w", work_items_y="h",
        )
        cl = CommandLine(prog="t", flags=(("w", 1024), ("h", 512)))
        inst = KernelInstance(kernel=k, launch=plan_launch_2d(1024, 512),
                             binding_exprs=(("w", "w"), ("h", "h")))
        p = profile_kernel(inst, cl, uid="d")
        n = 1024 * 512
        # coalesced read + write: ~8 bytes per element
        assert p.counters.dram_bytes == pytest.approx(8 * n, rel=0.15)
        assert p.counters.sp_flops == pytest.approx(n, rel=0.1)

    def test_column_major_store_uncoalesced(self):
        body = (
            Store("out", aff(("gx", "h"), "gy"), load("inp", aff(("gy", "w"), "gx")), F32),
        )
        k = Kernel(
            name="transpose2d",
            arrays=(ArrayDecl("inp", F32, "w*h"), ArrayDecl("out", F32, "w*h", is_output=True)),
            params=(ScalarParam("w", I32), ScalarParam("h", I32)),
            body=body, work_items="w", work_items_y="h",
        )
        # 2048^2 x 4B = 16 MB: the write footprint exceeds usable L2, so the
        # scattered partial-sector writes cannot be merged away.
        cl = CommandLine(prog="t", flags=(("w", 2048), ("h", 2048)))
        inst = KernelInstance(kernel=k, launch=plan_launch_2d(2048, 2048),
                             binding_exprs=(("w", "w"), ("h", "h")))
        p = profile_kernel(inst, cl, uid="e")
        n = 2048 * 2048
        # writes stride h across threads: far more than one element per store
        assert p.counters.dram_write_bytes > 4 * n * 2
