"""E-stats — significance suite overhead on a warm matrix sweep.

``repro-paper matrix --stats`` promises that the statistics pass (paired
Wilcoxon tests, A12 effect sizes, BCa bootstrap CIs for every cell) is a
cheap addendum to the sweep itself: pure array math over records already
in memory, no completions, no profiling, no I/O.

Two measurements back that up:

* in-process: the stats pass is timed alone against a warm in-memory
  replay — absolute time, sub-second at any realistic grid size;
* end-to-end: ``repro-paper matrix`` vs ``matrix --stats`` over the same
  warm disk cache in fresh processes (what a CI tier-2 job runs), where
  the stats pass must add <10% wall time.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.analysis.stats import build_stats_report
from repro.eval.engine import EvalEngine, MemoryResponseStore
from repro.eval.matrix import run_matrix
from repro.llm import get_model
from repro.roofline.hardware import get_gpu
from repro.util.tables import format_table

MODELS = ("o3-mini-high", "gpt-4o-mini")
GPUS = ("V100", "H100")
REGIMES = ("rq2", "rq3")
SLICE = 60
JOBS = max(4, os.cpu_count() or 1)
MAX_OVERHEAD = 0.10
#: The pure-math pass must stay this fast in absolute terms, whatever the
#: host — it is 16 bootstrap runs plus 3 rank tests over ≤480 outcomes.
MAX_STATS_SECONDS = 2.0


def _sweep(store):
    engine = EvalEngine(jobs=JOBS, store=store, backend="thread")
    t0 = time.perf_counter()
    result = run_matrix(
        [get_model(n) for n in MODELS],
        [get_gpu(n) for n in GPUS],
        rqs=REGIMES,
        limit=SLICE,
        engine=engine,
    )
    return result, time.perf_counter() - t0


def _cli_matrix(cache_dir, *extra) -> float:
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir))
    env.setdefault("PYTHONPATH", "src")
    cmd = [
        sys.executable, "-m", "repro.cli", "matrix",
        "--model", MODELS[0], "--gpus", ",".join(GPUS),
        "--rq", "both", "--limit", str(SLICE), "--jobs", str(JOBS),
        *extra,
    ]
    t0 = time.perf_counter()
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - t0
    assert proc.returncode == 0, proc.stderr[-2000:]
    return elapsed


def test_stats_pass_overhead(dataset, tmp_path):
    store = MemoryResponseStore()
    _sweep(store)  # cold fill; primes scenario profiling too

    baseline, t_warm = _sweep(store)
    matrix, _ = _sweep(store)
    t0 = time.perf_counter()
    report = build_stats_report(matrix)
    t_stats = time.perf_counter() - t0

    cache_dir = tmp_path / "bench-cache"
    _cli_matrix(cache_dir)  # cold fill for the end-to-end runs
    t_cli_warm = _cli_matrix(cache_dir)
    t_cli_stats = _cli_matrix(cache_dir, "--stats")

    rows = [
        ["in-process warm matrix", f"{t_warm:.3f}", ""],
        ["in-process stats pass", f"{t_stats:.3f}", ""],
        ["CLI warm matrix", f"{t_cli_warm:.3f}", ""],
        ["CLI warm matrix --stats", f"{t_cli_stats:.3f}",
         f"{100.0 * (t_cli_stats - t_cli_warm) / t_cli_warm:+.1f}%"],
    ]
    print()
    print(format_table(
        ["plan", "wall s", "overhead"],
        rows,
        title=(f"Significance suite on a warm sweep — {len(MODELS)} models "
               f"× {len(GPUS)} GPUs × {len(REGIMES)} regimes × "
               f"{SLICE} kernels"),
    ))

    assert matrix == baseline
    assert len(report.comparisons) == 3  # one pair per axis
    # Same matrix, same default seed: the report digest is reproducible.
    assert build_stats_report(matrix).digest() == report.digest()
    # The promise under test: the stats pass is a cheap addendum — small
    # in absolute terms, <10% of a warm end-to-end sweep.
    assert t_stats < MAX_STATS_SECONDS
    assert t_cli_stats - t_cli_warm < MAX_OVERHEAD * t_cli_warm, (
        f"--stats added {t_cli_stats - t_cli_warm:.3f}s to a "
        f"{t_cli_warm:.3f}s warm CLI sweep "
        f"(> {100.0 * MAX_OVERHEAD:.0f}%)"
    )
