"""E3 — Table 1 columns 4-5: RQ1 roofline-calculation accuracy.

240 random rooflines x {BB, CB} AI values x {2,4,8}-shot x {plain, CoT};
the table reports each model's best accuracy per CoT setting.

Paper shape reproduced: reasoning models score 100/100; non-reasoning land
at 90-93 plain, and chain-of-thought lifts the gpt-4o-mini family to 100.
"""

from __future__ import annotations

from repro.eval.report import Comparison, render_comparisons
from repro.eval.rq1 import run_rq1
from repro.eval.table1 import PAPER_TABLE1
from repro.llm import all_models
from repro.util.tables import format_table


def _run_all():
    results = {}
    for model in all_models():
        if not model.config.rq1_reported:
            continue
        results[model.name] = run_rq1(model)
    return results


def test_table1_rq1(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    comparisons = []
    for name, r in results.items():
        paper_plain, paper_cot = PAPER_TABLE1[name][0], PAPER_TABLE1[name][1]
        rows.append([name, r.best_accuracy, r.best_accuracy_cot,
                     paper_plain, paper_cot])
        comparisons.append(Comparison("RQ1", f"{name} plain", paper_plain, r.best_accuracy))
        comparisons.append(Comparison("RQ1", f"{name} CoT", paper_cot, r.best_accuracy_cot))
    print()
    print(format_table(
        ["Model", "RQ1 Acc", "RQ1 CoT Acc", "Paper", "Paper CoT"], rows,
        title="E3 — Table 1 cols 4-5 (RQ1)",
    ))
    print()
    print(render_comparisons("E3 — RQ1 paper vs measured", comparisons))

    for name, r in results.items():
        paper_plain = PAPER_TABLE1[name][0]
        assert abs(r.best_accuracy - paper_plain) <= 4.0, name
        reasoning = name.startswith(("o1", "o3"))
        if reasoning:
            assert r.best_accuracy == 100.0
            assert r.best_accuracy_cot == 100.0


def test_table1_rq1_warm_cache_speedup():
    """Engine acceptance: replaying the full RQ1 grid from a warm response
    cache is ≥ 3× faster than the sequential cold path — and byte-for-byte
    identical."""
    import time

    from repro.eval.engine import EvalEngine, MemoryResponseStore

    models = [m for m in all_models() if m.config.rq1_reported]

    t0 = time.perf_counter()
    sequential = {m.name: run_rq1(m) for m in models}
    t_cold = time.perf_counter() - t0

    store = MemoryResponseStore()
    warmup = {
        m.name: run_rq1(m, engine=EvalEngine(jobs=4, store=store))
        for m in models
    }
    assert warmup == sequential

    # Best of two warm replays: one scheduling hiccup on a loaded machine
    # shouldn't fail a correctness-clean run.
    t_warm = float("inf")
    for _ in range(2):
        warm_engine = EvalEngine(jobs=4, store=store)
        t0 = time.perf_counter()
        warm = {m.name: run_rq1(m, engine=warm_engine) for m in models}
        t_warm = min(t_warm, time.perf_counter() - t0)

    assert warm == sequential
    assert warm_engine.stats.misses == 0
    assert warm_engine.stats.hits > 0
    speedup = t_cold / t_warm
    print(f"\nRQ1 grid: cold sequential {t_cold:.2f}s, warm cache "
          f"{t_warm:.2f}s ({warm_engine.stats.hits} hits) -> "
          f"{speedup:.1f}x speedup")
    assert speedup >= 3.0, f"warm cache only {speedup:.1f}x faster"
