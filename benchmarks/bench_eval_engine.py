"""E-engine — evaluation-engine throughput: parallel fan-out + response cache.

Measures the classification hot path (the workload behind Table 1 cols
6-11) three ways: the sequential cold path, a cold parallel engine, and a
warm-cache replay. The warm replay must produce identical records while
running ≥ 3× faster — deep static analysis per completion dominates the
cold path, and the cache turns it into a hash + lookup.
"""

from __future__ import annotations

import time

from repro.eval.engine import EvalEngine, MemoryResponseStore
from repro.eval.runner import run_queries
from repro.llm import get_model
from repro.prompts import build_classify_prompt
from repro.util.tables import format_table

MODEL = "o3-mini-high"


def _items(balanced, n=200):
    return [
        (s.uid, build_classify_prompt(s).text, s.label) for s in balanced[:n]
    ]


def test_engine_warm_cache_speedup(balanced):
    items = _items(balanced)
    model = get_model(MODEL)

    t0 = time.perf_counter()
    sequential = run_queries(model, items)
    t_seq = time.perf_counter() - t0

    store = MemoryResponseStore()
    cold_engine = EvalEngine(jobs=8, store=store)
    t0 = time.perf_counter()
    cold = run_queries(model, items, engine=cold_engine)
    t_cold = time.perf_counter() - t0

    warm_engine = EvalEngine(jobs=8, store=store)
    t0 = time.perf_counter()
    warm = run_queries(model, items, engine=warm_engine)
    t_warm = time.perf_counter() - t0

    rows = [
        ["sequential cold", f"{t_seq:.3f}", f"{len(items) / t_seq:.0f}", "1.0x"],
        ["parallel cold", f"{t_cold:.3f}", f"{len(items) / t_cold:.0f}",
         f"{t_seq / t_cold:.1f}x"],
        ["parallel warm", f"{t_warm:.3f}", f"{len(items) / t_warm:.0f}",
         f"{t_seq / t_warm:.1f}x"],
    ]
    print()
    print(format_table(
        ["Path", "Wall (s)", "Items/s", "Speedup"], rows,
        title=f"E-engine — {MODEL} x {len(items)} classification items",
    ))

    assert cold == sequential
    assert warm == sequential
    assert warm_engine.stats.misses == 0
    assert warm_engine.stats.hits == len(items)
    speedup = t_seq / t_warm
    assert speedup >= 3.0, f"warm cache only {speedup:.1f}x faster"


def test_benchmarked_warm_replay(benchmark, balanced):
    """pytest-benchmark stats for the steady-state (warm) engine."""
    items = _items(balanced, n=100)
    model = get_model(MODEL)
    store = MemoryResponseStore()
    run_queries(model, items, cache=store)  # warm

    result = benchmark.pedantic(
        lambda: run_queries(model, items, jobs=4, cache=store),
        rounds=3,
        iterations=1,
    )
    assert result.metrics().n == 100
