"""RQ4 experiment: fine-tuning (paper §3.7).

Fine-tunes the emulated gpt-4o-mini response head on the 272-sample training
split (zero-shot prompts, as the paper trained on), evaluates on the
68-sample validation split, and reports the collapse diagnostics the paper
describes: the tuned model answers with a single class for the entire
validation set. Per-language fine-tunes reproduce the same behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset import PaperDataset, Sample, paper_dataset
from repro.eval.metrics import MetricReport
from repro.llm.finetune import (
    FineTuneConfig,
    FineTunedClassifier,
    prediction_entropy,
)
from repro.prompts import build_classify_prompt
from repro.types import Boundedness, Language
from repro.util.parallel import DEFAULT_BACKEND


@dataclass(frozen=True)
class Rq4Result:
    """Outcome of one fine-tuning run."""

    scope: str  # "all" | "cuda" | "omp"
    train_size: int
    validation_size: int
    final_train_accuracy: float
    validation_metrics: MetricReport
    validation_prediction_entropy: float
    collapsed_to: Boundedness | None

    @property
    def collapsed(self) -> bool:
        """True when the tuned model answers one class for all of validation."""
        return self.collapsed_to is not None


def _prompts_labels(samples: list[Sample]) -> tuple[list[str], list[Boundedness]]:
    prompts = [build_classify_prompt(s, few_shot=False).text for s in samples]
    labels = [s.label for s in samples]
    return prompts, labels


def run_rq4(
    dataset: PaperDataset | None = None,
    *,
    scope: str = "all",
    config: FineTuneConfig | None = None,
    jobs: int = 1,
    backend: str = DEFAULT_BACKEND,
) -> Rq4Result:
    """Fine-tune and evaluate; ``scope`` restricts to one language.

    Training is inherently sequential SGD; ``jobs``/``backend`` parallelise
    the validation inference pass (and a cold-start dataset build).
    """
    ds = dataset or paper_dataset(jobs=jobs)
    train = list(ds.train)
    val = list(ds.validation)
    if scope == "cuda":
        train = [s for s in train if s.language is Language.CUDA]
        val = [s for s in val if s.language is Language.CUDA]
    elif scope == "omp":
        train = [s for s in train if s.language is Language.OMP]
        val = [s for s in val if s.language is Language.OMP]
    elif scope != "all":
        raise ValueError(f"unknown scope {scope!r}")

    train_prompts, train_labels = _prompts_labels(train)
    val_prompts, val_labels = _prompts_labels(val)

    clf = FineTunedClassifier(config, seed_key=f"finetune-{scope}")
    history = clf.train(train_prompts, train_labels)
    predictions = clf.predict_many(val_prompts, jobs=jobs, backend=backend)

    entropy = prediction_entropy(predictions)
    collapsed_to = predictions[0] if len(set(predictions)) == 1 else None
    return Rq4Result(
        scope=scope,
        train_size=len(train),
        validation_size=len(val),
        final_train_accuracy=history.epoch_train_accuracy[-1] * 100.0,
        validation_metrics=MetricReport.from_predictions(val_labels, predictions),
        validation_prediction_entropy=entropy,
        collapsed_to=collapsed_to,
    )


def _rq4_scope(dataset: PaperDataset, scope: str) -> Rq4Result:
    """Module-level so the process backend can pickle the work unit."""
    return run_rq4(dataset, scope=scope)


def run_rq4_all_scopes(
    dataset: PaperDataset | None = None, *, jobs: int = 1, backend: str = DEFAULT_BACKEND
) -> list[Rq4Result]:
    """The paper's three fine-tune runs: full dataset, CUDA-only, OMP-only.

    The three scopes are independent fine-tunes, so they shard across the
    pool (each keeps its own deterministic seed stream); the SGD loops are
    pure CPU, so ``backend="process"`` runs them truly concurrently.
    """
    from functools import partial

    from repro.util.parallel import parallel_map

    ds = dataset or paper_dataset(jobs=jobs)
    return parallel_map(
        partial(_rq4_scope, ds), ("all", "cuda", "omp"), jobs=jobs, backend=backend
    )
