"""Quickstart: classify one GPU kernel's roofline boundedness with an
emulated LLM, exactly the way the paper queries a real one.

Run:  python examples/quickstart.py
"""

from repro.dataset import paper_dataset
from repro.llm import get_model, query_cost_usd
from repro.prompts import build_classify_prompt

# 1. Get the paper's dataset (built on first use: corpus generation,
#    simulated profiling, labeling, token pruning, balancing).
dataset = paper_dataset()
sample = dataset.balanced[0]
print(f"program:   {sample.uid}")
print(f"kernel:    {sample.kernel_name}")
print(f"language:  {sample.language.display}")
print(f"argv:      {sample.argv}")
print(f"truth:     {sample.label.word}-bound (from simulated profiling)")
print()

# 2. Build the paper's Figure 4 prompt: hardware specs, launch geometry,
#    command line, and the program's concatenated source code.
prompt = build_classify_prompt(sample, few_shot=False)
print(f"prompt:    {len(prompt.text)} characters")
print("--- prompt head ---")
print("\n".join(prompt.text.split("\n")[:12]))
print("--- (truncated) ---")
print()

# 3. Query a model. The emulator has the same integration shape as a real
#    API client: prompt string in, one-word completion out.
model = get_model("o3-mini-high")
response = model.complete(prompt.text)
prediction = response.boundedness()

print(f"model:      {model.name}")
print(f"prediction: {prediction.word}")
print(f"correct:    {prediction == sample.label}")
print(f"usage:      {response.usage.input_tokens} in / "
      f"{response.usage.billed_output_tokens} out tokens")
print(f"cost:       ${query_cost_usd(response.usage, model.config):.5f}")
