"""Serving-side resilience: breakers, failover, hedging, shedding, drain.

Everything timing-dependent runs on injected clocks and sleeps (virtual
time), so breaker cooldowns and hedge delays are asserted exactly, never
awaited. The handful of real-time tests (hedge race, drain, shutdown)
are bounded well under a second.
"""

from __future__ import annotations

import asyncio
import http.client
import importlib.util
import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

from repro.eval.engine import DiskResponseStore, EvalEngine
from repro.eval.rq23 import classification_items
from repro.llm.registry import get_model
from repro.serve import (
    AllProvidersUnavailable,
    AsyncEvalEngine,
    BreakerPolicy,
    CircuitBreaker,
    HedgePolicy,
    LatencyTracker,
    LoadShedError,
    PredictionServer,
    PredictionService,
    RetryPolicy,
    provider_label,
    resolve_provider,
)
from repro.serve.resilience import CLOSED, HALF_OPEN, OPEN
from repro.util.faults import (
    FaultPlan,
    InjectedFault,
    reset_active_fault_plan,
    set_active_fault_plan,
)
from repro.util.retry import DeadlineExceeded, TransientError
from repro.util.retry import call_with_retry as util_call_with_retry

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class StubProvider:
    """A labelled zoo-backed provider double for failover-chain tests.

    Real chain members share ``name`` (the model) and differ by
    ``family`` — the stub mirrors that so ``provider_label`` tells
    instances apart while cache keys stay shared.
    """

    def __init__(self, family: str, model_name: str = "gpt-4o-mini"):
        self.family = family
        self.model = get_model(model_name)
        self.config = self.model.config
        self.calls = 0

    @property
    def name(self) -> str:
        return self.model.name

    async def complete(self, prompt, *, temperature=None, top_p=None):
        self.calls += 1
        return self.model.complete(prompt, temperature=temperature, top_p=top_p)


class GatedStub(StubProvider):
    """Holds every completion until the gate opens."""

    def __init__(self, family: str, model_name: str = "gpt-4o-mini"):
        super().__init__(family, model_name)
        self.gate = asyncio.Event()

    async def complete(self, prompt, *, temperature=None, top_p=None):
        self.calls += 1
        await self.gate.wait()
        return self.model.complete(prompt, temperature=temperature, top_p=top_p)


def _recording_sleep(log):
    async def sleep(delay):
        log.append(delay)

    return sleep


@pytest.fixture()
def fault_plan():
    """Install a fault plan for the duration of one test."""
    installed = []

    def install(spec: str) -> FaultPlan:
        plan = FaultPlan.parse(spec)
        set_active_fault_plan(plan)
        installed.append(plan)
        return plan

    yield install
    if installed:
        reset_active_fault_plan()


# -- circuit breaker (virtual clock) -----------------------------------------

def test_breaker_opens_at_threshold_and_blocks():
    now = {"t": 0.0}
    policy = BreakerPolicy(window=8, threshold=0.5, min_calls=4, cooldown_s=5.0)
    breaker = CircuitBreaker(policy, clock=lambda: now["t"])
    assert breaker.state == CLOSED and breaker.allow()
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED  # 3 < min_calls: not enough evidence
    breaker.record_failure()
    assert breaker.state == OPEN and breaker.opened == 1
    assert not breaker.allow()
    assert breaker.retry_after() == pytest.approx(5.0)
    now["t"] = 3.0
    assert not breaker.allow()
    assert breaker.retry_after() == pytest.approx(2.0)


def test_breaker_mixed_window_respects_threshold():
    breaker = CircuitBreaker(
        BreakerPolicy(window=8, threshold=0.5, min_calls=4), clock=lambda: 0.0
    )
    for _ in range(3):
        breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED          # 2/5 failures: under threshold
    assert breaker.error_rate() == pytest.approx(0.4)
    breaker.record_failure()                # 3/6 = exactly the threshold
    assert breaker.state == OPEN and breaker.opened == 1


def test_breaker_half_open_probe_success_closes():
    now = {"t": 0.0}
    breaker = CircuitBreaker(
        BreakerPolicy(window=4, threshold=0.5, min_calls=2, cooldown_s=5.0,
                      half_open_probes=1),
        clock=lambda: now["t"],
    )
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == OPEN
    now["t"] = 5.0
    assert breaker.state == HALF_OPEN
    assert breaker.allow()          # the one probe slot
    assert not breaker.allow()      # no second concurrent probe
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.error_rate() == 0.0  # window cleared on recovery
    assert breaker.allow()


def test_breaker_half_open_probe_failure_reopens():
    now = {"t": 0.0}
    breaker = CircuitBreaker(
        BreakerPolicy(window=4, threshold=0.5, min_calls=2, cooldown_s=5.0),
        clock=lambda: now["t"],
    )
    breaker.record_failure()
    breaker.record_failure()
    now["t"] = 6.0
    assert breaker.allow()          # half-open probe
    breaker.record_failure()
    assert breaker.state == OPEN and breaker.opened == 2
    assert breaker.retry_after() == pytest.approx(5.0)  # fresh cooldown
    snap = breaker.snapshot()
    assert snap["state"] == OPEN and snap["opened"] == 2


def test_breaker_policy_validation():
    with pytest.raises(ValueError):
        BreakerPolicy(window=0)
    with pytest.raises(ValueError):
        BreakerPolicy(threshold=0.0)
    with pytest.raises(ValueError):
        BreakerPolicy(threshold=1.5)
    with pytest.raises(ValueError):
        BreakerPolicy(cooldown_s=0)
    with pytest.raises(ValueError):
        BreakerPolicy(half_open_probes=0)


# -- latency tracker + hedge policy ------------------------------------------

def test_hedge_delay_floors_until_samples_then_tracks_p95():
    tracker = LatencyTracker()
    policy = HedgePolicy(min_delay_s=0.05, min_samples=8, quantile=0.95)
    assert tracker.hedge_delay(policy) == 0.05
    for ms in range(1, 101):        # 0.01s .. 1.00s
        tracker.record(ms / 100.0)
    assert tracker.quantile(0.95) == pytest.approx(0.96)
    assert tracker.hedge_delay(policy) == pytest.approx(0.96)
    fixed = HedgePolicy(delay_s=0.2)
    assert tracker.hedge_delay(fixed) == 0.2


def test_hedge_policy_validation():
    with pytest.raises(ValueError):
        HedgePolicy(delay_s=-1.0)
    with pytest.raises(ValueError):
        HedgePolicy(quantile=1.0)
    with pytest.raises(ValueError):
        HedgePolicy(min_delay_s=-0.1)


# -- fault plan: serving kinds -----------------------------------------------

def test_provider_fault_spec_roundtrip():
    plan = FaultPlan.parse(
        "seed=9;provider_brownout:attempts=6,after=2,provider=pri:m;"
        "slow_tail:rate=0.5,ms=250"
    )
    again = FaultPlan.parse(plan.describe())
    assert again.specs == plan.specs and again.seed == plan.seed
    assert plan.specs[0].provider == "pri:m"
    assert plan.specs[1].ms == 250.0


def test_slow_tail_requires_ms():
    with pytest.raises(ValueError):
        FaultPlan.parse("slow_tail:rate=0.5")


def test_provider_brownout_window_is_a_counter():
    plan = FaultPlan.parse(
        "seed=1;provider_brownout:attempts=3,after=2,provider=pri:m"
    )
    outcomes = []
    for _ in range(8):
        try:
            plan.provider_fault("pri:m", "tok", 0)
            outcomes.append("ok")
        except InjectedFault:
            outcomes.append("fail")
    # Attempts 3..5 (the (after, after+attempts] window) fail, the rest
    # pass — sustained unavailability that then lifts.
    assert outcomes == ["ok", "ok", "fail", "fail", "fail", "ok", "ok", "ok"]


def test_provider_fault_targets_only_its_label():
    plan = FaultPlan.parse(
        "seed=1;provider_brownout:attempts=99,provider=pri:m"
    )
    for _ in range(5):
        plan.provider_fault("bak:m", "tok", 0)   # other label: untouched
    with pytest.raises(InjectedFault):
        plan.provider_fault("pri:m", "tok", 0)
    # ...and provider-targeted specs never fire on the batch path.
    plan2 = FaultPlan.parse("seed=1;provider_error:rate=1,provider=pri:m")
    plan2.completion_fault("tok", 0)  # no raise


def test_slow_tail_delay_is_deterministic():
    plan = FaultPlan.parse("seed=7;slow_tail:rate=0.5,ms=300")
    picks = {tok: plan.slow_tail_delay("pri:m", tok)
             for tok in (f"tok-{i}" for i in range(64))}
    again = {tok: plan.slow_tail_delay("pri:m", tok) for tok in picks}
    assert picks == again
    delayed = [v for v in picks.values() if v is not None]
    assert delayed and len(delayed) < len(picks)   # some, not all
    assert all(v == pytest.approx(0.3) for v in delayed)


# -- deadline propagation ----------------------------------------------------

def test_deadline_expired_before_attempt():
    async def fn():
        raise AssertionError("attempt must not start with no budget")

    async def go():
        with pytest.raises(DeadlineExceeded):
            await util_call_with_retry(
                fn, policy=RetryPolicy(max_attempts=3),
                deadline=5.0, clock=lambda: 10.0,
            )

    asyncio.run(go())


def test_deadline_blocks_pointless_backoff():
    calls = {"n": 0}
    slept = []

    async def fn():
        calls["n"] += 1
        raise TransientError("boom")

    async def go():
        with pytest.raises(DeadlineExceeded) as err:
            await util_call_with_retry(
                fn,
                policy=RetryPolicy(max_attempts=5, base_delay_s=2.0,
                                   jitter=0.0),
                deadline=1.0,
                clock=lambda: 0.0,
                sleep=_recording_sleep(slept),
            )
        assert isinstance(err.value.__cause__, TransientError)

    asyncio.run(go())
    assert calls["n"] == 1 and slept == []  # 2s backoff ≥ 1s budget: abort


def test_deadline_clips_attempt_timeout_real_time():
    async def fn():
        await asyncio.sleep(60)

    async def go():
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            await util_call_with_retry(
                fn,
                policy=RetryPolicy(max_attempts=3, base_delay_s=10.0,
                                   jitter=0.0),
                deadline=time.monotonic() + 0.15,
            )
        return time.monotonic() - start

    assert asyncio.run(go()) < 5.0


# -- failover chains ---------------------------------------------------------

def test_resolve_provider_builds_chain_with_distinct_labels():
    chain = resolve_provider("o3-mini-high", fallbacks=("wire",))
    assert isinstance(chain, tuple) and len(chain) == 2
    assert [provider_label(c) for c in chain] == [
        "emulated:o3-mini-high", "openai:o3-mini-high",
    ]
    assert chain[0].config is chain[1].config or (
        chain[0].config == chain[1].config
    )
    with pytest.raises(ValueError):
        resolve_provider("o3-mini-high", fallbacks=("emulated",))


def test_service_parses_family_chain():
    engine = AsyncEvalEngine(store=None)
    service = PredictionService(engine, provider_family="emulated, wire")
    chain = service.provider("o3-mini-high")
    assert isinstance(chain, tuple)
    assert [provider_label(c) for c in chain] == [
        "emulated:o3-mini-high", "openai:o3-mini-high",
    ]


def test_failover_on_retry_exhaustion(fault_plan):
    fault_plan("seed=1;provider_brownout:attempts=99,provider=pri:gpt-4o-mini")
    slept = []
    pri, bak = StubProvider("pri"), StubProvider("bak")
    engine = AsyncEvalEngine(
        store=None,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, jitter=0.0),
        sleep=_recording_sleep(slept),
    )
    info: dict = {}
    response = asyncio.run(engine.complete((pri, bak), "classify k", info=info))
    assert response is not None
    assert info["served_by"] == "bak:gpt-4o-mini"
    assert engine.stats.failed_over == 1
    assert engine.stats.retries == 1           # one backoff on the primary
    assert pri.calls == 0                      # faults fired pre-complete
    assert bak.calls == 1
    assert engine.breaker("pri:gpt-4o-mini").error_rate() == 1.0


def test_open_primary_breaker_skips_straight_to_fallback():
    pri, bak = StubProvider("pri"), StubProvider("bak")
    engine = AsyncEvalEngine(store=None, clock=lambda: 0.0)
    for _ in range(4):
        engine.breaker("pri:gpt-4o-mini").record_failure()
    assert engine.breaker("pri:gpt-4o-mini").state == OPEN
    info: dict = {}
    asyncio.run(engine.complete((pri, bak), "classify k", info=info))
    assert info["served_by"] == "bak:gpt-4o-mini"
    assert pri.calls == 0 and bak.calls == 1
    assert engine.stats.failed_over == 1


def test_all_breakers_open_raises_with_retry_after():
    pri, bak = StubProvider("pri"), StubProvider("bak")
    engine = AsyncEvalEngine(store=None, clock=lambda: 0.0)
    for label in ("pri:gpt-4o-mini", "bak:gpt-4o-mini"):
        for _ in range(4):
            engine.breaker(label).record_failure()
    with pytest.raises(AllProvidersUnavailable) as err:
        asyncio.run(engine.complete((pri, bak), "classify k"))
    assert err.value.retry_after == pytest.approx(5.0)
    assert engine.stats.failed_over == 0


def test_deadline_exceeded_does_not_fail_over():
    pri, bak = StubProvider("pri"), StubProvider("bak")
    engine = AsyncEvalEngine(store=None)
    with pytest.raises(DeadlineExceeded):
        asyncio.run(engine.complete((pri, bak), "classify k", deadline=0.0))
    assert pri.calls == 0 and bak.calls == 0
    # No provider got blamed for the caller's empty budget.
    assert engine.breaker("pri:gpt-4o-mini").error_rate() == 0.0


# -- hedged requests ---------------------------------------------------------

def test_hedge_winner_is_deterministic_under_slow_tail(fault_plan):
    fault_plan("seed=3;slow_tail:rate=1,ms=30000,provider=pri:gpt-4o-mini")
    for _ in range(2):                          # replay: same winner
        pri, bak = StubProvider("pri"), StubProvider("bak")
        engine = AsyncEvalEngine(
            store=None, hedge=HedgePolicy(delay_s=0.01)
        )
        info: dict = {}
        response = asyncio.run(
            engine.complete((pri, bak), "classify k", info=info)
        )
        assert response is not None
        assert info["served_by"] == "bak:gpt-4o-mini"
        assert info["hedged"] is True
        assert engine.stats.hedged == 1
        assert engine.stats.failed_over == 0


def test_no_hedge_disables_backup_requests(fault_plan):
    fault_plan("seed=3;slow_tail:rate=1,ms=0.1,provider=pri:gpt-4o-mini")
    pri, bak = StubProvider("pri"), StubProvider("bak")
    engine = AsyncEvalEngine(store=None, hedge=None)
    info: dict = {}
    asyncio.run(engine.complete((pri, bak), "classify k", info=info))
    assert info["served_by"] == "pri:gpt-4o-mini"
    assert engine.stats.hedged == 0 and bak.calls == 0


def test_hedges_share_the_coalesced_flight():
    """A hedge runs inside the owner's future — concurrent duplicates
    join it, they never launch their own hedged pair."""
    pri, bak = GatedStub("pri"), StubProvider("bak")

    async def go():
        engine = AsyncEvalEngine(
            store=None, hedge=HedgePolicy(delay_s=0.01)
        )
        first = asyncio.create_task(engine.complete((pri, bak), "classify k"))
        await asyncio.sleep(0.1)
        return engine, await first

    engine, response = asyncio.run(go())
    assert response is not None
    assert engine.stats.hedged == 1
    assert bak.calls == 1
    assert pri.calls == 1        # launched, then cancelled by the winner


# -- the chaos burst (acceptance) --------------------------------------------

def test_chaos_burst_fails_over_and_recovers_with_exact_counters(fault_plan):
    """100-request burst against a browned-out primary: every request
    answers, the primary's breaker opens after exactly the brownout's
    evidence window and re-closes after cooldown, and every counter is
    exact — deterministic fault selection, virtual clock, no hedging."""
    fault_plan(
        "seed=1;provider_brownout:attempts=4,provider=pri:gpt-4o-mini"
    )
    now = {"t": 0.0}
    slept = []
    pri, bak = StubProvider("pri"), StubProvider("bak")
    engine = AsyncEvalEngine(
        store=None,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, jitter=0.0),
        sleep=_recording_sleep(slept),
        clock=lambda: now["t"],
        breaker=BreakerPolicy(window=8, threshold=0.5, min_calls=4,
                              cooldown_s=5.0),
        hedge=None,
    )
    chain = (pri, bak)
    served_by = []

    async def one(i: int) -> None:
        info: dict = {}
        response = await engine.complete(chain, f"classify kernel {i}",
                                         info=info)
        assert response is not None
        served_by.append(info["served_by"])

    async def burst():
        # Sequential on purpose: the brownout window is a counter, so
        # ordering fixes exactly which attempts it eats.
        for i in range(50):
            await one(i)
        now["t"] = 6.0          # past the 5s cooldown: half-open probes
        for i in range(50, 100):
            await one(i)

    asyncio.run(burst())

    assert len(served_by) == 100                     # 100% answered
    # Requests 1-2 exhaust the primary's 2-attempt retry budget against
    # the 4-attempt brownout window (4 breaker failures → open), then
    # 3-50 skip the open breaker; after the cooldown the half-open probe
    # succeeds and the primary serves the rest.
    assert served_by[:50] == ["bak:gpt-4o-mini"] * 50
    assert served_by[50:] == ["pri:gpt-4o-mini"] * 50
    assert engine.stats.failed_over == 50
    assert engine.stats.retries == 2                 # one backoff per req 1-2
    assert engine.stats.hedged == 0
    assert engine.stats.shed == 0
    assert engine.stats.uncached == 100
    assert slept == [0.01, 0.01]
    pri_snap = engine.breaker("pri:gpt-4o-mini").snapshot()
    assert pri_snap["state"] == CLOSED and pri_snap["opened"] == 1
    bak_snap = engine.breaker("bak:gpt-4o-mini").snapshot()
    assert bak_snap["state"] == CLOSED and bak_snap["opened"] == 0
    assert pri.calls == 50 and bak.calls == 50
    snaps = engine.breaker_snapshots()
    assert set(snaps) == {"pri:gpt-4o-mini", "bak:gpt-4o-mini"}


# -- warm-store byte identity ------------------------------------------------

def _dir_bytes(root: Path) -> dict[str, bytes]:
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def test_warm_store_bytes_identical_under_resilient_chain(
    tmp_path, balanced_samples
):
    """The resilience layer must not perturb the cache contract: serving
    a warm store through a failover chain with hedging enabled makes 0
    completions and leaves every cache byte untouched."""
    samples = balanced_samples[:6]
    items = classification_items(samples, few_shot=False)
    store = DiskResponseStore(tmp_path / "cache")
    model = get_model("o3-mini-high")
    batch = EvalEngine(store=store).run(model, items)
    before = _dir_bytes(tmp_path / "cache")

    chain = resolve_provider("o3-mini-high", fallbacks=("wire",))
    engine = AsyncEvalEngine(
        store=DiskResponseStore(tmp_path / "cache"),
        hedge=HedgePolicy(delay_s=0.0),      # hedge eagerly: still inert
    )
    result = asyncio.run(engine.run(chain, items))

    assert result.digest() == batch.digest()
    assert engine.stats.completions == 0
    assert engine.stats.hits == len(items)
    assert engine.stats.hedged == 0          # hits never reach upstream
    assert _dir_bytes(tmp_path / "cache") == before


# -- engine shutdown ---------------------------------------------------------

def test_cancel_inflight_wakes_owner_and_waiters():
    pri = GatedStub("pri")

    async def go():
        engine = AsyncEvalEngine(store=None)
        # store=None has no inflight table; use a memory store for keys.
        from repro.eval.engine import MemoryResponseStore

        engine = AsyncEvalEngine(store=MemoryResponseStore())
        owner = asyncio.create_task(engine.complete(pri, "classify k"))
        await asyncio.sleep(0)              # let it claim the key
        waiter = asyncio.create_task(engine.complete(pri, "classify k"))
        await asyncio.sleep(0)
        cancelled = await engine.cancel_inflight()
        assert cancelled == 1
        with pytest.raises(asyncio.CancelledError):
            await waiter
        owner.cancel()
        with pytest.raises(asyncio.CancelledError):
            await owner

    asyncio.run(go())


# -- the HTTP layer ----------------------------------------------------------

def _get_json(url: str, headers: dict | None = None):
    req = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(req, timeout=60) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


@pytest.fixture()
def resilient_serving(tmp_path, balanced_samples):
    """A running server (failover chain, tiny queue) over a warm cache."""
    samples = balanced_samples[:3]
    store = DiskResponseStore(tmp_path / "serve-cache")
    model = get_model("o3-mini-high")
    EvalEngine(store=store).run(
        model, classification_items(samples, few_shot=False)
    )
    engine = AsyncEvalEngine(store=store)
    service = PredictionService(
        engine, provider_family="emulated,wire", queue_budget=2
    )
    server = PredictionServer(service, port=0).start()
    try:
        yield server, engine, service, samples
    finally:
        server.close()


def test_http_stats_surface_resilience_fields(resilient_serving):
    server, _, _, samples = resilient_serving
    status, body = _get_json(
        f"{server.url}/v1/classify?uid={samples[0].uid}&model=o3-mini-high"
    )
    assert status == 200
    assert body["served_by"] == "cache" and body["hedged"] is False
    status, stats = _get_json(f"{server.url}/v1/stats")
    assert status == 200
    for key in ("failed_over", "hedged", "shed", "queue_depth",
                "queue_budget", "breakers", "draining"):
        assert key in stats
    assert stats["queue_budget"] == 2 and stats["draining"] is False


def test_http_deadline_header(resilient_serving):
    server, engine, _, samples = resilient_serving
    # Malformed deadline: 400 before any work.
    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(f"{server.url}/v1/classify?uid={samples[0].uid}",
                  headers={"X-Deadline-Ms": "soon"})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(f"{server.url}/v1/classify?uid={samples[0].uid}",
                  headers={"X-Deadline-Ms": "-5"})
    assert err.value.code == 400
    # A cold query whose budget is gone before the first attempt: shed
    # with 429 + Retry-After, and nothing reached a provider.
    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(
            f"{server.url}/v1/classify?uid={samples[0].uid}"
            f"&few_shot=true",
            headers={"X-Deadline-Ms": "0.000001"},
        )
    assert err.value.code == 429
    assert float(err.value.headers["Retry-After"]) > 0
    assert engine.stats.shed == 1
    assert engine.stats.completions == 0


def test_http_queue_budget_sheds_with_retry_after(tmp_path, balanced_samples):
    samples = balanced_samples[:2]
    store = DiskResponseStore(tmp_path / "cold-cache")   # empty: all cold
    gated = GatedStub("pri", "o3-mini-high")
    engine = AsyncEvalEngine(store=store)
    service = PredictionService(engine, queue_budget=1)
    service._providers["o3-mini-high"] = gated           # inject the double
    server = PredictionServer(service, port=0).start()
    try:
        results: dict = {}

        def first():
            try:
                results["first"] = _get_json(
                    f"{server.url}/v1/classify?uid={samples[0].uid}"
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                results["first"] = exc

        t = threading.Thread(target=first, daemon=True)
        t.start()
        deadline = time.monotonic() + 5.0
        while gated.calls < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert gated.calls >= 1, "first request never reached the provider"

        with pytest.raises(urllib.error.HTTPError) as err:
            _get_json(f"{server.url}/v1/classify?uid={samples[1].uid}")
        assert err.value.code == 429
        assert float(err.value.headers["Retry-After"]) > 0
        body = json.loads(err.value.read().decode("utf-8"))
        assert "budget" in body["error"]
        assert engine.stats.shed == 1

        server.loop.call_soon_threadsafe(gated.gate.set)
        t.join(timeout=10.0)
        status, body = results["first"]
        assert status == 200 and body["cached"] is False
    finally:
        server.close()


def test_http_malformed_bodies_return_400(resilient_serving):
    server, _, _, _ = resilient_serving
    host, port = server.server_address[0], server.port

    def raw_post(body: bytes | None, content_length: str | None):
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.putrequest("POST", "/v1/classify")
            if content_length is not None:
                conn.putheader("Content-Length", content_length)
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            if body:
                conn.send(body)
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read().decode("utf-8"))
        finally:
            conn.close()

    # Invalid JSON body.
    bad = b"not json at all"
    status, body = raw_post(bad, str(len(bad)))
    assert status == 400 and "JSON" in body["error"]
    # Valid JSON, wrong shape.
    arr = b"[1, 2, 3]"
    status, body = raw_post(arr, str(len(arr)))
    assert status == 400 and "object" in body["error"]
    # Content-Length that isn't an integer: 400, not a 500 traceback.
    status, body = raw_post(None, "banana")
    assert status == 400 and "Content-Length" in body["error"]
    # Negative Content-Length.
    status, body = raw_post(None, "-7")
    assert status == 400 and "Content-Length" in body["error"]
    # No Content-Length at all: treated as an empty body → missing uid.
    status, body = raw_post(None, None)
    assert status == 400 and "uid" in body["error"]


def test_http_drain_flips_health_and_sheds_work(resilient_serving):
    server, _, _, samples = resilient_serving
    server.draining.set()
    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(f"{server.url}/healthz")
    assert err.value.code == 503
    assert json.loads(err.value.read().decode())["status"] == "draining"
    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(f"{server.url}/v1/classify?uid={samples[0].uid}")
    assert err.value.code == 503
    assert err.value.headers["Retry-After"] is not None
    status, stats = _get_json(f"{server.url}/v1/stats")
    assert status == 200 and stats["draining"] is True
    assert server.drain(timeout=2.0) is True     # nothing in flight: clean


def test_http_close_with_inflight_does_not_hang(tmp_path, balanced_samples):
    """The shutdown satellite: close() cancels pending coalesced futures
    on the loop, so a request parked behind a never-finishing provider
    cannot wedge shutdown."""
    samples = balanced_samples[:1]
    store = DiskResponseStore(tmp_path / "cold-cache")
    gated = GatedStub("pri", "o3-mini-high")
    engine = AsyncEvalEngine(store=store)
    service = PredictionService(engine)
    service._providers["o3-mini-high"] = gated
    server = PredictionServer(service, port=0).start()
    outcome: dict = {}

    def stuck():
        try:
            outcome["result"] = _get_json(
                f"{server.url}/v1/classify?uid={samples[0].uid}"
            )
        except Exception as exc:
            outcome["result"] = exc

    t = threading.Thread(target=stuck, daemon=True)
    t.start()
    deadline = time.monotonic() + 5.0
    while gated.calls < 1 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert gated.calls >= 1

    start = time.monotonic()
    server.close()
    assert time.monotonic() - start < 10.0
    t.join(timeout=10.0)
    assert not t.is_alive()
    # The stranded request surfaced an error, not a hang.
    assert isinstance(outcome.get("result"), Exception)


# -- the example client honors Retry-After -----------------------------------

def _load_example_client():
    spec = importlib.util.spec_from_file_location(
        "serve_predictions_example", EXAMPLES / "serve_predictions.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def test_example_client_waits_out_retry_after():
    client = _load_example_client()
    calls = {"n": 0}

    class ShedOnce(BaseHTTPRequestHandler):
        def log_message(self, *args):  # noqa: A002
            pass

        def do_GET(self):  # noqa: N802
            calls["n"] += 1
            if calls["n"] == 1:
                body = b'{"error": "shed"}'
                self.send_response(429)
                self.send_header("Retry-After", "0.125")
            else:
                body = b'{"ok": true}'
                self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    stub = ThreadingHTTPServer(("127.0.0.1", 0), ShedOnce)
    thread = threading.Thread(target=stub.serve_forever, daemon=True)
    thread.start()
    try:
        slept: list[float] = []
        url = f"http://127.0.0.1:{stub.server_address[1]}/v1/stats"
        out = client.get(url, _sleep=slept.append)
        assert out == {"ok": True}
        assert slept == [0.125]              # waited exactly the hint
        assert calls["n"] == 2
    finally:
        stub.shutdown()
        stub.server_close()


def test_serve_stats_summary_mentions_resilience_counters():
    engine = AsyncEvalEngine(store=None)
    engine.stats._bump("failed_over")
    engine.stats._bump("hedged")
    engine.stats._bump("shed")
    text = engine.stats.summary()
    assert "1 failed over" in text and "1 hedged" in text and "1 shed" in text
