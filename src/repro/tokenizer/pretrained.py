"""The corpus-trained tokenizer singleton.

Training draws a deterministic sample of rendered programs from the default
corpus (both languages, mixed verbosity) so the learned merges reflect the
exact text distribution that gets counted at pruning time.
"""

from __future__ import annotations

from repro.tokenizer.bpe import BpeTokenizer

_PRETRAINED: BpeTokenizer | None = None

#: Number of programs sampled for training and merge budget. 1500 merges on
#: ~40 programs yields ≈3.5 chars/token on generated CUDA/OMP text, in line
#: with code tokenization by production tokenizers.
TRAIN_SAMPLE = 40
NUM_MERGES = 900


def train_corpus_tokenizer(
    sample: int = TRAIN_SAMPLE, num_merges: int = NUM_MERGES
) -> BpeTokenizer:
    """Train a fresh tokenizer on a deterministic corpus sample."""
    from repro.kernels.codegen import render_program
    from repro.kernels.corpus import default_corpus

    corpus = default_corpus()
    programs = corpus.programs
    if not programs:
        raise RuntimeError("empty corpus")
    # Even spread over the whole corpus (covers both languages and all
    # family groups).
    step = max(1, len(programs) // sample)
    texts = [
        render_program(p).concatenated_source() for p in programs[::step][:sample]
    ]
    return BpeTokenizer.train(texts, num_merges=num_merges)


def corpus_tokenizer() -> BpeTokenizer:
    """The process-wide tokenizer used for pruning and Figure 2."""
    global _PRETRAINED
    if _PRETRAINED is None:
        _PRETRAINED = train_corpus_tokenizer()
    return _PRETRAINED
