"""Plain-text and Markdown table rendering for benchmark reports.

The benchmark harness prints Table 1 (and the dataset-pipeline tables) in the
same row/column layout as the paper; these helpers keep the formatting in one
place.
"""

from __future__ import annotations

from typing import Sequence


def _cell(value: object, fmt: str | None) -> str:
    if value is None:
        return "-"
    if fmt and isinstance(value, float):
        return format(value, fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = ".2f",
    align_right: bool = True,
    title: str | None = None,
) -> str:
    """Render an ASCII table with column-width alignment.

    Numeric cells are formatted with ``float_fmt``; ``None`` renders as ``-``
    (matching the dashes in the paper's Table 1 for models that were not run).
    """
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, w in zip(cells, widths):
            parts.append(cell.rjust(w) if align_right else cell.ljust(w))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = ".2f",
) -> str:
    """Render a GitHub-flavoured Markdown table (used by EXPERIMENTS.md)."""
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
