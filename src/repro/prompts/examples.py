"""Prompt example shots.

RQ2 uses the paper's two pseudo-code examples (Figure 4 verbatim); RQ3
replaces them with *real* code examples in the queried language, drawn from
held-out program variants that are guaranteed not to be in the evaluation
dataset (the corpus enumerates variants 0..k; examples start at variant 50).
Prompt-ablation variants can request more than two shots —
:func:`real_example_sequence` keeps drawing (BB, CB) pairs from successive
held-out variants (50, 51, ...) until the requested count is met.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.types import Boundedness, Language

PSEUDO_EXAMPLES = """Examples:
Example 1:
Kernel Source Code (simplified):
for i = 0 to 1000000 {
  a[i] = a[i] + b[i];
}
Response: Compute

Example 2:
Kernel Source Code (simplified):
for i = 0 to 10 {
  load_data(large_array);
  process_data(large_array);
  store_data(large_array);
}
Response: Bandwidth
"""

#: First held-out variant index used for real example shots (the corpus
#: stays well below it; >2-shot prompts keep counting upward from here).
EXAMPLE_VARIANT = 50


@dataclass(frozen=True)
class CodeExample:
    """One worked example: kernel source plus its ground-truth response."""

    language: Language
    source: str
    label: Boundedness
    name: str


@lru_cache(maxsize=None)
def real_examples(
    language: Language, variant: int = EXAMPLE_VARIANT
) -> tuple[CodeExample, CodeExample]:
    """One BB and one CB real-code example in the given language.

    Built from held-out variants of a streaming family (BB) and a pairwise
    physics family (CB), profiled to confirm their labels.
    """
    from repro.gpusim import default_device, profile_first_kernel
    from repro.kernels.codegen import render_program
    from repro.kernels.families import get_family
    from repro.roofline import classify_kernel

    device = default_device()
    out = []
    for fam_name in ("saxpy", "nbody_naive"):
        fam = get_family(fam_name)
        spec = fam.build(variant, language)
        profile = profile_first_kernel(spec, device)
        label = classify_kernel(
            profile.counters.intensity_profile(), device.spec.rooflines()
        ).label
        source = render_program(spec).concatenated_source()
        out.append(
            CodeExample(language=language, source=source, label=label, name=spec.name)
        )
    bb = next((e for e in out if e.label is Boundedness.BANDWIDTH), out[0])
    cb = next((e for e in out if e.label is Boundedness.COMPUTE), out[-1])
    return (bb, cb)


def real_example_sequence(language: Language, shots: int) -> tuple[CodeExample, ...]:
    """The first ``shots`` real examples: (BB, CB) pairs from successive
    held-out variants, truncated to the requested count."""
    if shots < 1:
        raise ValueError(f"need at least one shot, got {shots}")
    out: list[CodeExample] = []
    variant = EXAMPLE_VARIANT
    while len(out) < shots:
        out.extend(real_examples(language, variant))
        variant += 1
    return tuple(out[:shots])


def real_examples_block(language: Language, shots: int = 2) -> str:
    """The real-code examples section (``shots=2`` is the RQ3 form)."""
    parts = ["Examples:"]
    for i, ex in enumerate(real_example_sequence(language, shots), 1):
        parts.append(f"Example {i}:")
        parts.append(f"Kernel Source Code ({ex.language.display}):")
        parts.append(ex.source)
        parts.append(f"Response: {ex.label.word}")
        parts.append("")
    return "\n".join(parts)
