"""Tests for the structural body parser and parameter parsing."""

import pytest

from repro.analysis.cparser import (
    Branch,
    Decl,
    ExprStmt,
    Loop,
    Pragma,
    Return,
    SharedDecl,
    parse_block,
    parse_params,
    walk,
)


class TestParseBlock:
    def test_declaration(self):
        (node,) = parse_block("float acc = x[gx] * 2.0f;")
        assert isinstance(node, Decl)
        assert node.type_name == "float"
        assert node.name == "acc"
        assert "x[gx]" in node.init_text

    def test_declaration_without_init(self):
        (node,) = parse_block("double tmp;")
        assert isinstance(node, Decl)
        assert node.init_text == ""

    def test_shared_declaration(self):
        (node,) = parse_block("__shared__ float tile[256];")
        assert isinstance(node, SharedDecl)
        assert node.name == "tile"
        assert node.size_text == "256"

    def test_expression_statement(self):
        (node,) = parse_block("y[gx] = acc;")
        assert isinstance(node, ExprStmt)

    def test_for_loop_bound(self):
        (loop,) = parse_block("for (int k = 0; k < n; k++) { acc += x[k]; }")
        assert isinstance(loop, Loop)
        assert loop.var == "k"
        assert loop.bound_text == "n"
        assert len(loop.body) == 1

    def test_for_loop_le_bound(self):
        (loop,) = parse_block("for (int k = 0; k <= 15; k++) { s += k; }")
        assert loop.bound_text == "15"

    def test_for_loop_step(self):
        (loop,) = parse_block("for (int k = 0; k < n; k += 4) { s += x[k]; }")
        assert "+= 4" in loop.step_text

    def test_nested_loops(self):
        nodes = parse_block(
            "for (int i = 0; i < m; i++) { for (int j = 0; j < n; j++) { s += a[i * n + j]; } }"
        )
        inner = [x for x in walk(nodes) if isinstance(x, Loop)]
        assert len(inner) == 2
        assert {l.var for l in inner} == {"i", "j"}

    def test_if_else(self):
        (node,) = parse_block("if (x > 0.0f) { y = x; } else { y = -x; }")
        assert isinstance(node, Branch)
        assert node.then_body and node.else_body

    def test_guard_detection(self):
        (node,) = parse_block("if (gx >= n) return;")
        assert isinstance(node, Branch)
        assert node.is_early_exit_guard

    def test_non_guard_if(self):
        (node,) = parse_block("if (v < cutoff) { acc += v; }")
        assert not node.is_early_exit_guard

    def test_pragma(self):
        nodes = parse_block("#pragma unroll 4\nfor (int k = 0; k < 16; k++) { s += x[k]; }")
        loops = [x for x in nodes if isinstance(x, Loop)]
        assert loops[0].pragma == "#pragma unroll 4"

    def test_braceless_for_body(self):
        (loop,) = parse_block("for (int k = 0; k < n; k++) s += x[k];")
        assert isinstance(loop, Loop)
        assert len(loop.body) == 1

    def test_braceless_if_return(self):
        (node,) = parse_block("if (gx >= n) return;\nfloat v = 0.0f;"[:20])
        assert isinstance(node, Branch)

    def test_semicolons_inside_brackets_ignored(self):
        # no false statement split inside for-headers of nested loops
        nodes = parse_block(
            "float s = 0.0f;\nfor (int k = 0; k < 8; k++) { s += 1.0f; }\ny[gx] = s;"
        )
        assert len(nodes) == 3

    def test_unknown_loop_form_tolerated(self):
        (loop,) = parse_block("for (i = start; i != end; i = next(i)) { go(i); }")
        assert isinstance(loop, Loop)
        assert loop.var == "_unknown"


class TestParseParams:
    def test_pointer_params(self):
        params = parse_params("const float *__restrict__ x, float *y, int n")
        assert [p.name for p in params] == ["x", "y", "n"]
        assert params[0].is_pointer and params[0].is_const
        assert params[1].is_pointer and not params[1].is_const
        assert not params[2].is_pointer

    def test_types(self):
        params = parse_params("double *a, long long k")
        assert params[0].type_name == "double"
        assert params[1].type_name == "long long"

    def test_empty(self):
        assert parse_params("") == []

    def test_whitespace_tolerant(self):
        params = parse_params("  const   double  * a ,int   b ")
        assert [p.name for p in params] == ["a", "b"]
