"""Physics / molecular-dynamics families.

Pairwise O(n^2) force kernels and long per-thread ODE integrations are the
corpus's single-precision compute-bound anchors: their inner loops run
hundreds of FLOPs per byte of DRAM traffic because positions fit in cache.
Streaming integrator steps (Verlet, FDTD) stay bandwidth-bound.
"""

from __future__ import annotations

from repro.kernels.families import family
from repro.kernels.families.helpers import assemble, draw_iters, draw_size_1d, variant_rng
from repro.kernels.ir import (
    ArrayDecl,
    Assign,
    BinOp,
    BinOpKind,
    Call,
    CallFn,
    Cast,
    Const,
    DType,
    DynamicIndex,
    For,
    If,
    Kernel,
    Let,
    Load,
    ScalarParam,
    Scope,
    Store,
    SyncThreads,
    Var,
    add,
    aff,
    call,
    div,
    fma,
    load,
    mul,
    sub,
    var,
)
from repro.types import Language


def _dt(variant: int) -> DType:
    return DType.F64 if variant in (2,) else DType.F32


def _c(v: float, dt: DType) -> Const:
    return Const(v, dt)


def _nbody_count(rng, dt: DType) -> int:
    if dt is DType.F64:
        return int(rng.choice([4096, 8192, 16384]))
    return int(rng.choice([8192, 16384, 32768, 65536]))


def _pairwise_body(dt: DType, force_expr_builder) -> tuple:
    """Common pairwise loop: per-thread particle i against all j."""
    return (
        Let("xi", load("px", aff("gx"), dt), dt),
        Let("yi", load("py", aff("gx"), dt), dt),
        Let("zi", load("pz", aff("gx"), dt), dt),
        Let("fx", mul(_c(0.0, dt), var("xi", dt), dt), dt),
        Let("fy", mul(_c(0.0, dt), var("yi", dt), dt), dt),
        Let("fz", mul(_c(0.0, dt), var("zi", dt), dt), dt),
        For("j", "n", force_expr_builder(dt)),
        Store("ax", aff("gx"), var("fx", dt), dt),
        Store("ay", aff("gx"), var("fy", dt), dt),
        Store("az", aff("gx"), var("fz", dt), dt),
    )


def _pairwise_kernel(name: str, dt: DType, body: tuple) -> Kernel:
    return Kernel(
        name=name,
        arrays=(
            ArrayDecl("px", dt, "n"),
            ArrayDecl("py", dt, "n"),
            ArrayDecl("pz", dt, "n"),
            ArrayDecl("ax", dt, "n", is_output=True),
            ArrayDecl("ay", dt, "n", is_output=True),
            ArrayDecl("az", dt, "n", is_output=True),
        ),
        params=(ScalarParam("eps", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )


@family("nbody_naive", "physics", tendency="cb")
def build_nbody(variant: int, language: Language):
    rng = variant_rng("nbody_naive", variant, language)
    dt = _dt(variant)
    n = _nbody_count(rng, dt)

    def force(dtt):
        dx = sub(load("px", aff("j"), dtt), var("xi", dtt), dtt)
        dy = sub(load("py", aff("j"), dtt), var("yi", dtt), dtt)
        dz = sub(load("pz", aff("j"), dtt), var("zi", dtt), dtt)
        r2 = add(
            add(mul(dx, dx, dtt), mul(dy, dy, dtt), dtt),
            add(mul(dz, dz, dtt), var("eps", dtt), dtt),
            dtt,
        )
        inv_r = call(CallFn.RSQRT, r2, dtype=dtt)
        inv_r3 = mul(mul(inv_r, inv_r, dtt), inv_r, dtt)
        return (
            Let("dx", dx, dtt),
            Let("dy", dy, dtt),
            Let("dz", dz, dtt),
            Let("s", inv_r3, dtt),
            Assign("fx", fma(var("s", dtt), var("dx", dtt), var("fx", dtt), dtt), dtt),
            Assign("fy", fma(var("s", dtt), var("dy", dtt), var("fy", dtt), dtt), dtt),
            Assign("fz", fma(var("s", dtt), var("dz", dtt), var("fz", dtt), dtt), dtt),
        )

    kernel = _pairwise_kernel("nbody_forces", dt, _pairwise_body(dt, force))
    return assemble(
        family="nbody_naive", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"eps": 1, "n": "n"},
        description="all-pairs gravitational force accumulation",
    )


@family("nbody_tiled", "physics", tendency="cb", languages=(Language.CUDA,))
def build_nbody_tiled(variant: int, language: Language):
    rng = variant_rng("nbody_tiled", variant, language)
    dt = _dt(variant)
    n = _nbody_count(rng, dt)
    tile = 256
    ntiles = n // tile

    inner = (
        Let("dx", sub(load("tile_x", aff("j"), dt), var("xi", dt), dt), dt),
        Let("dy", sub(load("tile_y", aff("j"), dt), var("yi", dt), dt), dt),
        Let(
            "r2",
            add(
                add(mul(var("dx", dt), var("dx", dt), dt),
                    mul(var("dy", dt), var("dy", dt), dt), dt),
                var("eps", dt),
                dt,
            ),
            dt,
        ),
        Let("s", call(CallFn.RSQRT, var("r2", dt), dtype=dt), dt),
        Assign("fx", fma(var("s", dt), var("dx", dt), var("fx", dt), dt), dt),
        Assign("fy", fma(var("s", dt), var("dy", dt), var("fy", dt), dt), dt),
    )
    body = (
        Let("xi", load("px", aff("gx"), dt), dt),
        Let("yi", load("py", aff("gx"), dt), dt),
        Let("fx", mul(_c(0.0, dt), var("xi", dt), dt), dt),
        Let("fy", mul(_c(0.0, dt), var("yi", dt), dt), dt),
        For(
            "t", "ntiles",
            (
                Store("tile_x", aff("lx"), load("px", aff(("t", tile), "lx"), dt), dt),
                Store("tile_y", aff("lx"), load("py", aff(("t", tile), "lx"), dt), dt),
                SyncThreads(),
                For("j", tile, inner),
                SyncThreads(),
            ),
        ),
        Store("ax", aff("gx"), var("fx", dt), dt),
        Store("ay", aff("gx"), var("fy", dt), dt),
    )
    kernel = Kernel(
        name="nbody_tiled_forces",
        arrays=(
            ArrayDecl("px", dt, "n"),
            ArrayDecl("py", dt, "n"),
            ArrayDecl("ax", dt, "n", is_output=True),
            ArrayDecl("ay", dt, "n", is_output=True),
            ArrayDecl("tile_x", dt, tile, Scope.SHARED),
            ArrayDecl("tile_y", dt, tile, Scope.SHARED),
        ),
        params=(
            ScalarParam("eps", dt),
            ScalarParam("n", DType.I32),
            ScalarParam("ntiles", DType.I32),
        ),
        body=body,
        work_items="n",
    )
    return assemble(
        family="nbody_tiled", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "ntiles": ntiles},
        binding_exprs={"eps": 1, "n": "n", "ntiles": "ntiles"},
        description="shared-memory tiled 2-D n-body force kernel",
        block=tile,
    )


@family("lj_force", "physics", tendency="cb")
def build_lj(variant: int, language: Language):
    rng = variant_rng("lj_force", variant, language)
    dt = _dt(variant)
    n = _nbody_count(rng, dt)

    def force(dtt):
        dx = sub(load("px", aff("j"), dtt), var("xi", dtt), dtt)
        dy = sub(load("py", aff("j"), dtt), var("yi", dtt), dtt)
        dz = sub(load("pz", aff("j"), dtt), var("zi", dtt), dtt)
        r2 = add(
            add(mul(dx, dx, dtt), mul(dy, dy, dtt), dtt),
            add(mul(dz, dz, dtt), var("eps", dtt), dtt),
            dtt,
        )
        inv2 = div(_c(1.0, dtt), r2, dtt)
        inv6 = mul(mul(inv2, inv2, dtt), inv2, dtt)
        lj = mul(
            mul(_c(24.0, dtt), inv2, dtt),
            sub(mul(_c(2.0, dtt), mul(inv6, inv6, dtt), dtt), inv6, dtt),
            dtt,
        )
        return (
            Let("dx", dx, dtt),
            Let("dy", dy, dtt),
            Let("dz", dz, dtt),
            Let("s", lj, dtt),
            Assign("fx", fma(var("s", dtt), var("dx", dtt), var("fx", dtt), dtt), dtt),
            Assign("fy", fma(var("s", dtt), var("dy", dtt), var("fy", dtt), dtt), dtt),
            Assign("fz", fma(var("s", dtt), var("dz", dtt), var("fz", dtt), dtt), dtt),
        )

    kernel = _pairwise_kernel("lennard_jones_forces", dt, _pairwise_body(dt, force))
    return assemble(
        family="lj_force", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"eps": 1, "n": "n"},
        description="all-pairs Lennard-Jones force evaluation",
    )


@family("coulomb_grid", "physics", tendency="cb")
def build_coulomb(variant: int, language: Language):
    rng = variant_rng("coulomb_grid", variant, language)
    dt = _dt(variant)
    n = _nbody_count(rng, dt)

    def force(dtt):
        dx = sub(load("px", aff("j"), dtt), var("xi", dtt), dtt)
        dy = sub(load("py", aff("j"), dtt), var("yi", dtt), dtt)
        dz = sub(load("pz", aff("j"), dtt), var("zi", dtt), dtt)
        r2 = add(
            add(mul(dx, dx, dtt), mul(dy, dy, dtt), dtt),
            add(mul(dz, dz, dtt), var("eps", dtt), dtt),
            dtt,
        )
        pot = mul(load("q", aff("j"), dtt), call(CallFn.RSQRT, r2, dtype=dtt), dtt)
        return (Assign("fx", add(var("fx", dtt), pot, dtt), dtt),)

    body = (
        Let("xi", load("px", aff("gx"), dt), dt),
        Let("yi", load("py", aff("gx"), dt), dt),
        Let("zi", load("pz", aff("gx"), dt), dt),
        Let("fx", mul(_c(0.0, dt), var("xi", dt), dt), dt),
        For("j", "n", force(dt)),
        Store("phi", aff("gx"), var("fx", dt), dt),
    )
    kernel = Kernel(
        name="coulomb_potential",
        arrays=(
            ArrayDecl("px", dt, "n"),
            ArrayDecl("py", dt, "n"),
            ArrayDecl("pz", dt, "n"),
            ArrayDecl("q", dt, "n"),
            ArrayDecl("phi", dt, "n", is_output=True),
        ),
        params=(ScalarParam("eps", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="coulomb_grid", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"eps": 1, "n": "n"},
        description="electrostatic potential summation over all charges",
    )


@family("sph_density", "physics", tendency="cb")
def build_sph(variant: int, language: Language):
    rng = variant_rng("sph_density", variant, language)
    dt = _dt(variant)
    n = _nbody_count(rng, dt)

    def contrib(dtt):
        dx = sub(load("px", aff("j"), dtt), var("xi", dtt), dtt)
        dy = sub(load("py", aff("j"), dtt), var("yi", dtt), dtt)
        dz = sub(load("pz", aff("j"), dtt), var("zi", dtt), dtt)
        r2 = add(
            add(mul(dx, dx, dtt), mul(dy, dy, dtt), dtt), mul(dz, dz, dtt), dtt
        )
        diff = sub(var("h2", dtt), r2, dtt)
        poly6 = mul(mul(diff, diff, dtt), diff, dtt)
        cond = BinOp(BinOpKind.LT, r2, var("h2", dtt), DType.I32)
        return (
            Let("r2", r2, dtt),
            Let("diff", diff, dtt),
            If(
                cond=cond,
                then=(
                    Assign(
                        "rho",
                        fma(var("coef", dtt),
                            mul(mul(var("diff", dtt), var("diff", dtt), dtt),
                                var("diff", dtt), dtt),
                            var("rho", dtt), dtt),
                        dtt,
                    ),
                ),
                taken_fraction=0.22,
            ),
        )

    body = (
        Let("xi", load("px", aff("gx"), dt), dt),
        Let("yi", load("py", aff("gx"), dt), dt),
        Let("zi", load("pz", aff("gx"), dt), dt),
        Let("rho", mul(_c(0.0, dt), var("xi", dt), dt), dt),
        For("j", "n", contrib(dt)),
        Store("density", aff("gx"), var("rho", dt), dt),
    )
    kernel = Kernel(
        name="sph_density_kernel",
        arrays=(
            ArrayDecl("px", dt, "n"),
            ArrayDecl("py", dt, "n"),
            ArrayDecl("pz", dt, "n"),
            ArrayDecl("density", dt, "n", is_output=True),
        ),
        params=(
            ScalarParam("h2", dt),
            ScalarParam("coef", dt),
            ScalarParam("n", DType.I32),
        ),
        body=body,
        work_items="n",
    )
    return assemble(
        family="sph_density", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n},
        binding_exprs={"h2": 1, "coef": 4, "n": "n"},
        description="SPH poly6 density summation with cutoff branch",
    )


@family("spring_ensemble", "physics", tendency="cb")
def build_spring(variant: int, language: Language):
    rng = variant_rng("spring_ensemble", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    steps = draw_iters(rng)
    body = (
        Let("x", load("x0", aff("gx"), dt), dt),
        Let("v", load("v0", aff("gx"), dt), dt),
        For(
            "s", "steps",
            (
                Assign(
                    "v",
                    fma(
                        sub(mul(_c(0.0, dt), var("x", dt), dt),
                            mul(var("k", dt), var("x", dt), dt), dt),
                        var("dt_step", dt),
                        var("v", dt),
                        dt,
                    ),
                    dt,
                ),
                Assign("x", fma(var("v", dt), var("dt_step", dt), var("x", dt), dt), dt),
            ),
        ),
        Store("x_out", aff("gx"), var("x", dt), dt),
        Store("v_out", aff("gx"), var("v", dt), dt),
    )
    kernel = Kernel(
        name="spring_integrate",
        arrays=(
            ArrayDecl("x0", dt, "n"),
            ArrayDecl("v0", dt, "n"),
            ArrayDecl("x_out", dt, "n", is_output=True),
            ArrayDecl("v_out", dt, "n", is_output=True),
        ),
        params=(
            ScalarParam("k", dt),
            ScalarParam("dt_step", dt),
            ScalarParam("steps", DType.I32),
            ScalarParam("n", DType.I32),
        ),
        body=body,
        work_items="n",
    )
    return assemble(
        family="spring_ensemble", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "steps": steps},
        binding_exprs={"k": 4, "dt_step": 1, "steps": "steps", "n": "n"},
        description="ensemble of damped springs, semi-implicit Euler",
    )


@family("pendulum_sim", "physics", tendency="cb")
def build_pendulum(variant: int, language: Language):
    rng = variant_rng("pendulum_sim", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    steps = draw_iters(rng)
    body = (
        Let("theta", load("theta0", aff("gx"), dt), dt),
        Let("omega", load("omega0", aff("gx"), dt), dt),
        For(
            "s", "steps",
            (
                Let(
                    "accel",
                    sub(
                        mul(_c(0.0, dt), var("theta", dt), dt),
                        mul(var("g_over_l", dt),
                            call(CallFn.SIN, var("theta", dt), dtype=dt), dt),
                        dt,
                    ),
                    dt,
                ),
                Assign("omega", fma(var("accel", dt), var("h", dt), var("omega", dt), dt), dt),
                Assign("theta", fma(var("omega", dt), var("h", dt), var("theta", dt), dt), dt),
            ),
        ),
        Store("theta_out", aff("gx"), var("theta", dt), dt),
    )
    kernel = Kernel(
        name="pendulum_integrate",
        arrays=(
            ArrayDecl("theta0", dt, "n"),
            ArrayDecl("omega0", dt, "n"),
            ArrayDecl("theta_out", dt, "n", is_output=True),
        ),
        params=(
            ScalarParam("g_over_l", dt),
            ScalarParam("h", dt),
            ScalarParam("steps", DType.I32),
            ScalarParam("n", DType.I32),
        ),
        body=body,
        work_items="n",
    )
    return assemble(
        family="pendulum_sim", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "steps": steps},
        binding_exprs={"g_over_l": 10, "h": 1, "steps": "steps", "n": "n"},
        description="nonlinear pendulum ensemble integration",
    )


@family("orbit_rk4", "physics", tendency="cb")
def build_orbit(variant: int, language: Language):
    rng = variant_rng("orbit_rk4", variant, language)
    dt = _dt(variant)
    n = int(rng.choice([1 << 17, 1 << 18, 1 << 19]))
    steps = draw_iters(rng)

    def accel(xs: str, ys: str, dtt):
        r2 = add(
            mul(var(xs, dtt), var(xs, dtt), dtt),
            add(mul(var(ys, dtt), var(ys, dtt), dtt), var("soft", dtt), dtt),
            dtt,
        )
        inv_r = call(CallFn.RSQRT, r2, dtype=dtt)
        inv_r3 = mul(mul(inv_r, inv_r, dtt), inv_r, dtt)
        return mul(sub(_c(0.0, dtt), var("mu", dtt), dtt), inv_r3, dtt)

    step = (
        Let("a_coef", accel("x", "y", dt), dt),
        Assign("vx", fma(mul(var("a_coef", dt), var("x", dt), dt),
                         var("h", dt), var("vx", dt), dt), dt),
        Assign("vy", fma(mul(var("a_coef", dt), var("y", dt), dt),
                         var("h", dt), var("vy", dt), dt), dt),
        Assign("x", fma(var("vx", dt), var("h", dt), var("x", dt), dt), dt),
        Assign("y", fma(var("vy", dt), var("h", dt), var("y", dt), dt), dt),
    )
    body = (
        Let("x", load("x0", aff("gx"), dt), dt),
        Let("y", load("y0", aff("gx"), dt), dt),
        Let("vx", load("vx0", aff("gx"), dt), dt),
        Let("vy", load("vy0", aff("gx"), dt), dt),
        For("s", "steps", step),
        Store("x_out", aff("gx"), var("x", dt), dt),
        Store("y_out", aff("gx"), var("y", dt), dt),
    )
    kernel = Kernel(
        name="orbit_integrate",
        arrays=(
            ArrayDecl("x0", dt, "n"),
            ArrayDecl("y0", dt, "n"),
            ArrayDecl("vx0", dt, "n"),
            ArrayDecl("vy0", dt, "n"),
            ArrayDecl("x_out", dt, "n", is_output=True),
            ArrayDecl("y_out", dt, "n", is_output=True),
        ),
        params=(
            ScalarParam("mu", dt),
            ScalarParam("soft", dt),
            ScalarParam("h", dt),
            ScalarParam("steps", DType.I32),
            ScalarParam("n", DType.I32),
        ),
        body=body,
        work_items="n",
    )
    return assemble(
        family="orbit_rk4", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "steps": steps},
        binding_exprs={"mu": 1, "soft": 1, "h": 1, "steps": "steps", "n": "n"},
        description="two-body orbit ensemble, symplectic Euler steps",
    )


@family("verlet_step", "physics", tendency="bb")
def build_verlet(variant: int, language: Language):
    rng = variant_rng("verlet_step", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Let("xn", load("x", aff("gx"), dt), dt),
        Let("vn", load("v", aff("gx"), dt), dt),
        Let("an", load("a", aff("gx"), dt), dt),
        Let(
            "x_new",
            add(var("xn", dt),
                fma(var("an", dt),
                    mul(var("half_h2", dt), var("h", dt), dt),
                    mul(var("vn", dt), var("h", dt), dt), dt), dt),
            dt,
        ),
        Store("x", aff("gx"), var("x_new", dt), dt),
        Store("v", aff("gx"), fma(var("an", dt), var("h", dt), var("vn", dt), dt), dt),
    )
    kernel = Kernel(
        name="verlet_position_update",
        arrays=(
            ArrayDecl("x", dt, "n", is_output=True),
            ArrayDecl("v", dt, "n", is_output=True),
            ArrayDecl("a", dt, "n"),
        ),
        params=(
            ScalarParam("h", dt),
            ScalarParam("half_h2", dt),
            ScalarParam("n", DType.I32),
        ),
        body=body,
        work_items="n",
    )
    return assemble(
        family="verlet_step", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n},
        binding_exprs={"h": 1, "half_h2": 1, "n": "n"},
        description="velocity-Verlet position/velocity update",
    )


@family("fdtd1d", "physics", tendency="bb")
def build_fdtd(variant: int, language: Language):
    rng = variant_rng("fdtd1d", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Let(
            "curl",
            sub(load("hz", aff("gx", const=1), dt), load("hz", aff("gx"), dt), dt),
            dt,
        ),
        Store(
            "ey", aff("gx"),
            fma(var("cb", dt), var("curl", dt), load("ey", aff("gx"), dt), dt), dt,
        ),
    )
    kernel = Kernel(
        name="fdtd_e_update",
        arrays=(
            ArrayDecl("hz", dt, "m"),
            ArrayDecl("ey", dt, "n", is_output=True),
        ),
        params=(ScalarParam("cb", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="fdtd1d", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "m": n + 1},
        binding_exprs={"cb": 1, "n": "n"},
        description="1-D FDTD electric-field update",
    )


@family("gravity_potential", "physics", tendency="cb")
def build_gravity_potential(variant: int, language: Language):
    rng = variant_rng("gravity_potential", variant, language)
    dt = _dt(variant)
    n = _nbody_count(rng, dt)
    body = (
        Let("xi", load("px", aff("gx"), dt), dt),
        Let("yi", load("py", aff("gx"), dt), dt),
        Let("pot", mul(_c(0.0, dt), var("xi", dt), dt), dt),
        For(
            "j", "n",
            (
                Let("dx", sub(load("px", aff("j"), dt), var("xi", dt), dt), dt),
                Let("dy", sub(load("py", aff("j"), dt), var("yi", dt), dt), dt),
                Let(
                    "r2",
                    add(
                        mul(var("dx", dt), var("dx", dt), dt),
                        add(mul(var("dy", dt), var("dy", dt), dt), var("soft", dt), dt),
                        dt,
                    ),
                    dt,
                ),
                Assign(
                    "pot",
                    sub(var("pot", dt),
                        mul(load("mass", aff("j"), dt),
                            call(CallFn.RSQRT, var("r2", dt), dtype=dt), dt), dt),
                    dt,
                ),
            ),
        ),
        Store("phi", aff("gx"), var("pot", dt), dt),
    )
    kernel = Kernel(
        name="gravity_potential_kernel",
        arrays=(
            ArrayDecl("px", dt, "n"),
            ArrayDecl("py", dt, "n"),
            ArrayDecl("mass", dt, "n"),
            ArrayDecl("phi", dt, "n", is_output=True),
        ),
        params=(ScalarParam("soft", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="gravity_potential", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"soft": 1, "n": "n"},
        description="gravitational potential over all point masses",
    )


@family("md_cutoff", "physics", tendency="mixed")
def build_md_cutoff(variant: int, language: Language):
    rng = variant_rng("md_cutoff", variant, language)
    dt = _dt(variant)
    n = int(rng.choice([1 << 17, 1 << 18, 1 << 19]))
    maxn = int(rng.choice([32, 64, 128]))
    nbr_load = Load("nbr", aff(("gx", "maxn"), "k"), DType.I32)
    pj = Load("px", DynamicIndex(expr=nbr_load, range_hint="n", pattern="local"), dt)
    body = (
        Let("xi", load("px", aff("gx"), dt), dt),
        Let("fx", mul(_c(0.0, dt), var("xi", dt), dt), dt),
        For(
            "k", "maxn",
            (
                Let("xj", pj, dt),
                Let("dx", sub(var("xj", dt), var("xi", dt), dt), dt),
                Let("r2", fma(var("dx", dt), var("dx", dt), var("soft", dt), dt), dt),
                If(
                    cond=BinOp(BinOpKind.LT, var("r2", dt), var("cutoff2", dt), DType.I32),
                    then=(
                        Let("inv2", div(_c(1.0, dt), var("r2", dt), dt), dt),
                        Let("inv6", mul(mul(var("inv2", dt), var("inv2", dt), dt),
                                        var("inv2", dt), dt), dt),
                        Assign(
                            "fx",
                            fma(
                                mul(var("inv6", dt), var("inv2", dt), dt),
                                var("dx", dt),
                                var("fx", dt),
                                dt,
                            ),
                            dt,
                        ),
                    ),
                    taken_fraction=0.4,
                ),
            ),
        ),
        Store("force", aff("gx"), var("fx", dt), dt),
    )
    kernel = Kernel(
        name="md_neighbor_forces",
        arrays=(
            ArrayDecl("px", dt, "n"),
            ArrayDecl("nbr", DType.I32, "n*maxn"),
            ArrayDecl("force", dt, "n", is_output=True),
        ),
        params=(
            ScalarParam("soft", dt),
            ScalarParam("cutoff2", dt),
            ScalarParam("maxn", DType.I32),
            ScalarParam("n", DType.I32),
        ),
        body=body,
        work_items="n",
    )
    return assemble(
        family="md_cutoff", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "maxn": maxn},
        binding_exprs={"soft": 1, "cutoff2": 2, "maxn": "maxn", "n": "n"},
        description="neighbour-list MD force kernel with distance cutoff",
    )
