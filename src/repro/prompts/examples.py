"""Prompt example shots.

RQ2 uses the paper's two pseudo-code examples (Figure 4 verbatim); RQ3
replaces them with *real* code examples in the queried language, drawn from
held-out program variants that are guaranteed not to be in the evaluation
dataset (the corpus enumerates variants 0..k; examples use variant 50).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.types import Boundedness, Language

PSEUDO_EXAMPLES = """Examples:
Example 1:
Kernel Source Code (simplified):
for i = 0 to 1000000 {
  a[i] = a[i] + b[i];
}
Response: Compute

Example 2:
Kernel Source Code (simplified):
for i = 0 to 10 {
  load_data(large_array);
  process_data(large_array);
  store_data(large_array);
}
Response: Bandwidth
"""

#: Held-out variant index used for real example shots.
EXAMPLE_VARIANT = 50


@dataclass(frozen=True)
class CodeExample:
    """One worked example: kernel source plus its ground-truth response."""

    language: Language
    source: str
    label: Boundedness
    name: str


@lru_cache(maxsize=None)
def real_examples(language: Language) -> tuple[CodeExample, CodeExample]:
    """One CB and one BB real-code example in the given language.

    Built from held-out variants of a streaming family (BB) and a pairwise
    physics family (CB), profiled to confirm their labels.
    """
    from repro.gpusim import default_device, profile_first_kernel
    from repro.kernels.codegen import render_program
    from repro.kernels.families import get_family
    from repro.roofline import classify_kernel

    device = default_device()
    out = []
    for fam_name in ("saxpy", "nbody_naive"):
        fam = get_family(fam_name)
        spec = fam.build(EXAMPLE_VARIANT, language)
        profile = profile_first_kernel(spec, device)
        label = classify_kernel(
            profile.counters.intensity_profile(), device.spec.rooflines()
        ).label
        source = render_program(spec).concatenated_source()
        out.append(
            CodeExample(language=language, source=source, label=label, name=spec.name)
        )
    bb = next((e for e in out if e.label is Boundedness.BANDWIDTH), out[0])
    cb = next((e for e in out if e.label is Boundedness.COMPUTE), out[-1])
    return (bb, cb)


def real_examples_block(language: Language) -> str:
    """The RQ3 examples section (two real shots, matched to the language)."""
    bb, cb = real_examples(language)
    parts = ["Examples:"]
    for i, ex in enumerate((bb, cb), 1):
        parts.append(f"Example {i}:")
        parts.append(f"Kernel Source Code ({ex.language.display}):")
        parts.append(ex.source)
        parts.append(f"Response: {ex.label.word}")
        parts.append("")
    return "\n".join(parts)
