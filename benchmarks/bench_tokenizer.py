"""E-tokenizer — incremental BPE + text-artifact store vs the seed path.

The seed repo paid two text taxes on every cold ``paper_dataset()``: the
BPE trainer recounted *every* pair frequency across the whole word dict
on each of 900 merge iterations, and every sample build rendered and
token-counted its program from scratch (once **per device** in a matrix
sweep). The incremental trainer updates only the words containing the
merged pair, `count_tokens` encodes each *distinct* word once, the
render/token-count pass is hoisted out of the per-device loop, and the
artifact cache persists tokenizers/sources/counts across processes.

This bench times the strategies over the full corpus and asserts

* the incremental trainer learns **byte-identical** merges to the seed
  trainer,
* a cold ``paper_dataset()`` with **no store** beats the seed-equivalent
  stage sum ≥3×,
* a warm-store cold process trains **0** tokenizers and renders **0**
  programs,
* `PaperDataset` samples and `MatrixResult.digest()` are byte-identical
  with the store on/off and across seed vs incremental training.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.dataset import paper_dataset
from repro.dataset import text as text_mod
from repro.eval import matrix as matrix_mod
from repro.eval.engine import EvalEngine
from repro.eval.matrix import run_matrix
from repro.gpusim import default_device, profile_corpus
from repro.gpusim.profiler import _PROFILE_MEMO, _TRACE_MEMO
from repro.gpusim.store import (
    ProfileStore,
    reset_active_profile_store,
    set_active_profile_store,
)
from repro.kernels.codegen import render_program
from repro.kernels.corpus import default_corpus
from repro.llm.registry import get_model
from repro.roofline.hardware import GPU_DATABASE
from repro.store.text import (
    ArtifactCache,
    reset_active_artifact_cache,
    set_active_artifact_cache,
)
from repro.tokenizer.bpe import BpeTokenizer, _word_to_symbols, pretokenize
from repro.tokenizer.pretrained import (
    NUM_MERGES,
    reset_corpus_tokenizer,
    training_programs,
)
from repro.util.tables import format_table


def seed_train(corpus, num_merges=3000, min_pair_count=2):
    """The seed repo's recount-everything trainer, replicated verbatim."""
    word_freq = Counter()
    for text in corpus:
        for word in pretokenize(text):
            word_freq[_word_to_symbols(word)] += 1
    merges = []
    words = dict(word_freq)
    for _ in range(num_merges):
        pair_counts = Counter()
        for word, freq in words.items():
            for i in range(len(word) - 1):
                pair_counts[(word[i], word[i + 1])] += freq
        if not pair_counts:
            break
        best_pair, best_count = max(
            pair_counts.items(), key=lambda kv: (kv[1], kv[0])
        )
        if best_count < min_pair_count:
            break
        merges.append(best_pair)
        merged = best_pair[0] + best_pair[1]
        new_words = {}
        for word, freq in words.items():
            out = []
            i = 0
            while i < len(word):
                if (
                    i < len(word) - 1
                    and word[i] == best_pair[0]
                    and word[i + 1] == best_pair[1]
                ):
                    out.append(merged)
                    i += 2
                else:
                    out.append(word[i])
                    i += 1
            key = tuple(out)
            new_words[key] = new_words.get(key, 0) + freq
        words = new_words
    return merges


def seed_count_tokens(tokenizer, text):
    """The seed per-occurrence counting loop (no distinct-word batching)."""
    total = 0
    for word in pretokenize(text):
        total += len(tokenizer._encode_word(word))
    return total


def _fresh():
    """Reset every in-process memo a cold process would start without."""
    _PROFILE_MEMO.clear()
    _TRACE_MEMO.clear()
    text_mod.clear_text_memos()
    matrix_mod._SCENARIO_MEMO.clear()
    reset_corpus_tokenizer()


def test_text_pipeline_walltime(tmp_path):
    corpus = default_corpus()
    device = default_device()
    train_texts = [
        render_program(p).concatenated_source() for p in training_programs()
    ]
    rows = []

    try:
        # -- trainers: byte-identical merges, order-of-magnitude faster ----
        t0 = time.perf_counter()
        seed_merges = seed_train(train_texts, num_merges=NUM_MERGES)
        t_seed_train = time.perf_counter() - t0
        t0 = time.perf_counter()
        inc_tok = BpeTokenizer.train(train_texts, num_merges=NUM_MERGES)
        t_inc_train = time.perf_counter() - t0
        assert inc_tok.merges == seed_merges

        # -- the seed cold dataset path, as a stage sum --------------------
        # profile pass + per-program render + per-occurrence count, with a
        # cold encode cache — what build_samples cost before this PR
        # (classify/prune/split are excluded, which only understates the
        # seed side).
        _fresh()
        seed_tok = BpeTokenizer(merges=list(seed_merges))
        t0 = time.perf_counter()
        profile_corpus(corpus, device, store=None)
        seed_sources = {
            p.uid: render_program(p).concatenated_source()
            for p in corpus.programs
        }
        seed_counts = {
            uid: seed_count_tokens(seed_tok, text)
            for uid, text in seed_sources.items()
        }
        t_seed_build = time.perf_counter() - t0
        t_seed = t_seed_train + t_seed_build

        # -- new cold path, no store ---------------------------------------
        # Best of two fully-fresh runs: the ≥3x gate below runs on shared
        # CI runners, and min-wall is the standard way to strip scheduler
        # noise from a ~1s measurement (the seed side is long enough that
        # noise is proportionally negligible).
        set_active_profile_store(None)
        set_active_artifact_cache(None)
        t_new_cold = float("inf")
        for _ in range(2):
            _fresh()
            t0 = time.perf_counter()
            ds_cold = paper_dataset(force_rebuild=True)
            t_new_cold = min(t_new_cold, time.perf_counter() - t0)

        # -- cold process writing the stores -------------------------------
        set_active_profile_store(ProfileStore(tmp_path / "profile-store"))
        set_active_artifact_cache(ArtifactCache(tmp_path / "artifact-cache"))
        _fresh()
        t0 = time.perf_counter()
        ds_store_cold = paper_dataset(force_rebuild=True)
        t_store_cold = time.perf_counter() - t0

        # -- warm-store cold process: 0 trainings, 0 renders ---------------
        _fresh()
        trainings = [0]
        renders = [0]
        real_train = BpeTokenizer.train.__func__
        real_render = text_mod.render_program

        def counting_train(cls, corpus_texts, **kwargs):
            trainings[0] += 1
            return real_train(cls, corpus_texts, **kwargs)

        def counting_render(program):
            renders[0] += 1
            return real_render(program)

        BpeTokenizer.train = classmethod(counting_train)
        text_mod.render_program = counting_render
        try:
            t0 = time.perf_counter()
            ds_warm = paper_dataset(force_rebuild=True)
            t_warm = time.perf_counter() - t0
        finally:
            BpeTokenizer.train = classmethod(real_train)
            text_mod.render_program = real_render

        rows = [
            ["seed train (40 texts, 900 merges)", t_seed_train, ""],
            ["incremental train", t_inc_train,
             f"{t_seed_train / t_inc_train:.2f}x"],
            ["seed build stages (profile+render+count)", t_seed_build, ""],
            ["seed cold paper_dataset (train+stages)", t_seed, "1.00x"],
            ["new cold paper_dataset, no store", t_new_cold,
             f"{t_seed / t_new_cold:.2f}x"],
            ["cold paper_dataset, writing stores", t_store_cold,
             f"{t_seed / t_store_cold:.2f}x"],
            ["warm-store cold paper_dataset", t_warm,
             f"{t_seed / t_warm:.2f}x"],
        ]
        print()
        print(format_table(
            ["strategy", "wall s", "vs seed"],
            [[label, f"{wall:.3f}", ratio] for label, wall, ratio in rows],
            title=(f"Text pipeline — {len(corpus.programs)} programs, "
                   f"{NUM_MERGES} merges"),
        ))
        print(f"warm-store trainings: {trainings[0]}, "
              f"renders: {renders[0]}")

        # Warm store recomputes nothing...
        assert trainings[0] == 0
        assert renders[0] == 0
        # ...the store is invisible in the results...
        assert ds_store_cold == ds_cold
        assert ds_warm == ds_cold
        # ...the seed text path agrees byte-for-byte...
        for sample in ds_cold.profiled:
            assert sample.source == seed_sources[sample.uid]
            assert sample.token_count == seed_counts[sample.uid]
        # ...and the whole pipeline is ≥3x faster than seed, storeless.
        assert t_seed / t_new_cold >= 3.0

        # -- matrix digests: store on/off must agree byte-for-byte ---------
        models = [get_model("o3-mini-high")]
        gpus = list(GPU_DATABASE.values())[:2]
        matrix_mod._SCENARIO_MEMO.clear()
        with_store = run_matrix(
            models, gpus, rqs=("rq2",), limit=25, engine=EvalEngine()
        ).digest()
        set_active_profile_store(None)
        set_active_artifact_cache(None)
        _fresh()
        without_store = run_matrix(
            models, gpus, rqs=("rq2",), limit=25, engine=EvalEngine()
        ).digest()
        assert with_store == without_store
    finally:
        reset_active_profile_store()
        reset_active_artifact_cache()
        _fresh()
