"""Tests for the LLM emulator core: registry, completion behaviour,
determinism, sampling semantics, pricing."""

import pytest

from repro.llm import (
    ALL_CONFIGS,
    MODEL_NAMES,
    SamplingNotSupported,
    SamplingParams,
    Usage,
    UsageMeter,
    all_models,
    get_config,
    get_model,
    non_reasoning_models,
    query_cost_usd,
    reasoning_models,
)
from repro.llm.sampling import sample_response
from repro.prompts import build_classify_prompt, build_rq1_prompt, generate_question
from repro.types import Boundedness
from repro.util.rng import RngStream


class TestRegistry:
    def test_nine_models(self):
        assert len(MODEL_NAMES) == 9
        assert len(all_models()) == 9

    def test_paper_row_order(self):
        assert MODEL_NAMES[0] == "o3-mini-high"
        assert MODEL_NAMES[-1] == "gpt-4o-mini-2024-07-18"

    def test_reasoning_partition(self):
        r = {m.name for m in reasoning_models()}
        nr = {m.name for m in non_reasoning_models()}
        assert r == {"o3-mini-high", "o1", "o3-mini", "o1-mini-2024-09-12"}
        assert len(r) + len(nr) == 9

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")

    def test_pricing_matches_table1(self):
        assert get_config("o1").input_cost_per_m == 15.0
        assert get_config("o1").output_cost_per_m == 60.0
        assert get_config("gpt-4.5-preview").input_cost_per_m == 75.0
        assert get_config("gemini-2.0-flash-001").input_cost_per_m == 0.1
        assert get_config("gpt-4o-mini").output_cost_per_m == 0.6


class TestCompletion:
    def test_vocabulary(self, balanced_samples):
        model = get_model("o3-mini-high")
        for s in balanced_samples[:10]:
            resp = model.complete(build_classify_prompt(s).text)
            assert resp.text in ("Compute", "Bandwidth")

    def test_deterministic_repeat(self, balanced_samples):
        model = get_model("gemini-2.0-flash-001")
        prompt = build_classify_prompt(balanced_samples[0]).text
        assert model.complete(prompt).text == model.complete(prompt).text

    def test_rq1_answers(self):
        model = get_model("o3-mini-high")
        q = generate_question(RngStream("t"), force_label=Boundedness.COMPUTE)
        resp = model.complete(build_rq1_prompt(q, shots=2))
        assert resp.boundedness() is Boundedness.COMPUTE  # reasoning: no slips

    def test_reasoning_model_rejects_sampling_params(self):
        model = get_model("o1")
        with pytest.raises(SamplingNotSupported):
            model.complete("whatever", temperature=0.7)

    def test_non_reasoning_accepts_sampling_params(self, balanced_samples):
        model = get_model("gpt-4o-mini")
        prompt = build_classify_prompt(balanced_samples[0]).text
        resp = model.complete(prompt, temperature=0.5, top_p=0.9)
        assert resp.text in ("Compute", "Bandwidth")

    def test_off_task_prompt_gets_fallback(self):
        resp = get_model("gpt-4o-mini").complete("tell me a joke")
        assert resp.text == "Bandwidth"

    def test_usage_reported(self, balanced_samples):
        model = get_model("o1")
        prompt = build_classify_prompt(balanced_samples[0]).text
        resp = model.complete(prompt)
        assert resp.usage.input_tokens > 100
        assert resp.usage.output_tokens == 1
        assert resp.usage.reasoning_tokens > 0  # o1 bills hidden tokens

    def test_ground_truth_never_leaks(self, balanced_samples):
        """The emulator must work from the prompt alone: masking the label
        field of the sample cannot change the response."""
        import dataclasses

        model = get_model("o3-mini-high")
        s = balanced_samples[0]
        masked = dataclasses.replace(s, label=s.label.other)
        p1 = build_classify_prompt(s).text
        p2 = build_classify_prompt(masked).text
        assert p1 == p2  # the label is not part of the prompt
        assert model.complete(p1).text == model.complete(p2).text


class TestSamplingLayer:
    def test_greedy_at_zero_temperature(self):
        rng = RngStream("s")
        p = SamplingParams(temperature=0.0, top_p=1.0)
        assert sample_response(0.4, p, rng) is Boundedness.COMPUTE
        assert sample_response(-0.4, p, rng) is Boundedness.BANDWIDTH

    def test_paper_settings_effectively_greedy(self):
        p = SamplingParams()  # 0.1 / 0.2
        rng = RngStream("s2")
        for i in range(200):
            assert sample_response(0.3, p, rng) is Boundedness.COMPUTE

    def test_high_temperature_can_flip_borderline(self):
        p = SamplingParams(temperature=3.0, top_p=1.0)
        rng = RngStream("s3")
        outcomes = {sample_response(0.01, p, rng.child(i)) for i in range(300)}
        assert outcomes == {Boundedness.COMPUTE, Boundedness.BANDWIDTH}

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingParams(temperature=-1.0)
        with pytest.raises(ValueError):
            SamplingParams(top_p=0.0)


class TestPricing:
    def test_query_cost(self):
        cfg = get_config("o1")
        usage = Usage(input_tokens=1_000_000, output_tokens=0, reasoning_tokens=1_000_000)
        assert query_cost_usd(usage, cfg) == pytest.approx(15.0 + 60.0)

    def test_meter_accumulates(self):
        cfg = get_config("gpt-4o-mini")
        meter = UsageMeter(cfg)
        for _ in range(10):
            meter.record(Usage(input_tokens=1000, output_tokens=1))
        s = meter.summary()
        assert s["requests"] == 10
        assert s["input_tokens"] == 10_000
        assert s["cost_usd"] > 0

    def test_meter_is_thread_safe(self):
        """Regression: ``record`` used unsynchronized ``+=`` on shared
        counters, dropping increments when completions were metered from
        concurrent workers. Hammer it from threads and demand exact totals."""
        import threading

        cfg = get_config("gpt-4o-mini")
        meter = UsageMeter(cfg)
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def worker() -> None:
            barrier.wait()
            for _ in range(per_thread):
                meter.record(
                    Usage(input_tokens=3, output_tokens=1, reasoning_tokens=2)
                )

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        s = meter.summary()
        assert s["requests"] == total
        assert s["input_tokens"] == total * 3
        assert s["output_tokens"] == total * 1
        assert s["reasoning_tokens"] == total * 2
        one = query_cost_usd(
            Usage(input_tokens=3, output_tokens=1, reasoning_tokens=2), cfg
        )
        assert s["cost_usd"] == pytest.approx(total * one)

    def test_cheap_models_cheaper(self, balanced_samples):
        prompt = build_classify_prompt(balanced_samples[0]).text
        costs = {}
        for name in ("gpt-4o-mini", "o1"):
            model = get_model(name)
            resp = model.complete(prompt)
            costs[name] = query_cost_usd(resp.usage, model.config)
        assert costs["gpt-4o-mini"] < costs["o1"]


class TestConfigValidation:
    def test_all_configs_valid(self):
        for cfg in ALL_CONFIGS:
            assert 0 <= cfg.base_fail <= 1
            assert cfg.input_cost_per_m > 0

    def test_fail_probability_capped(self):
        cfg = get_config("gemini-2.0-flash-001")
        assert cfg.fail_probability(10**9) <= 0.95

    def test_invalid_config_rejected(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(ALL_CONFIGS[0], base_fail=1.5)
        with pytest.raises(ValueError):
            dataclasses.replace(ALL_CONFIGS[0], attention_tokens=0.0)
