"""E-profile — two-phase profiler: walk-per-device vs trace reuse vs store.

The seed profiler walked every kernel IR once per (kernel × device): a
6-GPU matrix pass re-walked all 749 programs six times, in every process.
The two-phase split walks once and finalizes per device, and the
persistent profile store removes even that single walk from warm-store
processes — the shard/CI/repeated-CLI case the store exists for. This
bench times four strategies over the full corpus and all six database
GPUs (plus a single-device column), asserts they produce bit-identical
profiles, asserts the warm store re-walks **zero** kernels, and asserts
the warm-store pass beats the seed strategy by ≥3×.
"""

from __future__ import annotations

import time

from repro.gpusim import device_for, profile_corpus, profile_first_kernel
from repro.gpusim.profiler import _PROFILE_MEMO, _TRACE_MEMO, _Walker
from repro.gpusim.store import ProfileStore
from repro.kernels.corpus import default_corpus
from repro.roofline.hardware import GPU_DATABASE, short_gpu_name
from repro.util.tables import format_table

WALKS = [0]
_ORIG_RUN = _Walker.run


def _counting_run(self):
    WALKS[0] += 1
    return _ORIG_RUN(self)


def _fresh():
    _PROFILE_MEMO.clear()
    _TRACE_MEMO.clear()
    WALKS[0] = 0


def _seed_pass(corpus, devices):
    """The seed strategy: a full walk + finalize per (program, device)."""
    out = []
    for device in devices:
        out.append(
            {p.uid: profile_first_kernel(p, device) for p in corpus.programs}
        )
    return out


def _batched_pass(corpus, devices, store):
    return [
        profile_corpus(corpus, device, store=store) for device in devices
    ]


def test_profile_pass_walltime(tmp_path):
    corpus = default_corpus()
    devices = [device_for(g) for g in GPU_DATABASE.values()]
    store_root = tmp_path / "profile-store"

    _Walker.run = _counting_run
    try:
        rows = []
        results = {}

        def timed(label, fn, *, devs):
            _fresh()
            t0 = time.perf_counter()
            out = fn()
            wall = time.perf_counter() - t0
            results[label] = (out, wall, WALKS[0])
            return out, wall

        n = len(corpus.programs)
        timed("seed 1-dev", lambda: _seed_pass(corpus, devices[:1]), devs=1)
        _, t_seed = timed("seed 6-dev", lambda: _seed_pass(corpus, devices), devs=6)
        timed("two-phase 1-dev",
              lambda: _batched_pass(corpus, devices[:1], None), devs=1)
        timed("two-phase 6-dev",
              lambda: _batched_pass(corpus, devices, None), devs=6)
        timed("cold store 6-dev",
              lambda: _batched_pass(corpus, devices, ProfileStore(store_root)),
              devs=6)
        _, t_warm = timed(
            "warm store 6-dev",
            lambda: _batched_pass(corpus, devices, ProfileStore(store_root)),
            devs=6,
        )

        for label, (_, wall, walks) in results.items():
            rows.append([label, f"{wall:.3f}", walks, f"{t_seed / wall:.2f}x"])
        print()
        print(format_table(
            ["strategy", "wall s", "IR walks", "vs seed 6-dev"],
            rows,
            title=(f"Corpus profile pass — {n} programs × "
                   f"{len(devices)} GPUs ({', '.join(short_gpu_name(g) for g in GPU_DATABASE)})"),
        ))

        # Bit-identical profiles whatever the strategy.
        seed6 = results["seed 6-dev"][0]
        for label in ("two-phase 6-dev", "cold store 6-dev", "warm store 6-dev"):
            assert results[label][0] == seed6, label

        # The seed strategy walks per (program, device); two-phase walks
        # once per program; the warm store never walks at all.
        assert results["seed 6-dev"][2] == len(devices) * n
        assert results["two-phase 6-dev"][2] == n
        assert results["warm store 6-dev"][2] == 0

        # Trace reuse alone must beat walk-per-device on a multi-GPU pass,
        # and a warm store must make a cold process ≥3× faster than seed.
        assert results["two-phase 6-dev"][1] < t_seed
        assert t_seed / t_warm >= 3.0
    finally:
        _Walker.run = _ORIG_RUN
        _fresh()
