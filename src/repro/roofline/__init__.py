"""Roofline model core (paper §1–2): rooflines, balance points, BB/CB rules.

Quick use::

    from repro.roofline import RTX_3080, classify_kernel, IntensityProfile
    from repro.types import OpClass

    detail = classify_kernel(
        IntensityProfile(ops={OpClass.SP: 1e9}, dram_bytes=4e8),
        RTX_3080.rooflines(),
    )
    detail.label  # Boundedness.BANDWIDTH
"""

from repro.roofline.classify import (
    ClassificationDetail,
    IntensityProfile,
    classify_ai,
    classify_kernel,
)
from repro.roofline.hardware import (
    A100,
    GPU_DATABASE,
    GpuSpec,
    H100,
    MI100,
    RTX_2080_TI,
    RTX_3080,
    V100,
    default_gpu,
    get_gpu,
)
from repro.roofline.model import Roofline, RooflineSet

__all__ = [
    "Roofline",
    "RooflineSet",
    "IntensityProfile",
    "ClassificationDetail",
    "classify_ai",
    "classify_kernel",
    "GpuSpec",
    "GPU_DATABASE",
    "get_gpu",
    "default_gpu",
    "RTX_3080",
    "RTX_2080_TI",
    "V100",
    "A100",
    "MI100",
    "H100",
]
