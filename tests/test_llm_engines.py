"""Unit tests for the emulator's decision engines: lexical heuristic, deep
reasoner, arithmetic solver, attention model."""

import dataclasses

import pytest

from repro.llm.arithmetic import solve_roofline
from repro.llm.config import ALL_CONFIGS
from repro.llm.heuristic import LexicalFeatures, lexical_logit
from repro.llm.promptio import ClassifyQuery, RooflineQuery
from repro.llm.reasoner import deep_logit
from repro.llm import get_config
from repro.types import Boundedness, Language
from repro.util.rng import RngStream

SAXPY_SRC = """
__global__ void saxpy(const float *__restrict__ x, float *__restrict__ y, float a, int n)
{
  const int gx = blockIdx.x * blockDim.x + threadIdx.x;
  if (gx >= n) return;
  y[gx] = a * x[gx] + y[gx];
}
"""

NBODY_SRC = """
__global__ void forces(const float *__restrict__ px, float *__restrict__ out, float eps, int n)
{
  const int gx = blockIdx.x * blockDim.x + threadIdx.x;
  if (gx >= n) return;
  float xi = px[gx];
  float acc = 0.0f;
  for (int j = 0; j < n; j++) {
    float dx = px[j] - xi;
    float r2 = dx * dx + eps;
    acc = acc + rsqrtf(r2) * dx;
  }
  out[gx] = acc;
}
"""


def _query(source, kernel_name, argv="./p --n 65536"):
    return ClassifyQuery(
        language=Language.CUDA,
        kernel_name=kernel_name,
        gpu_name="NVIDIA GeForce RTX 3080",
        sp_peak=29770.0,
        dp_peak=465.1,
        int_peak=14885.0,
        bandwidth=760.3,
        block=(256, 1, 1),
        grid=(256, 1, 1),
        argv=argv,
        source=source,
        has_real_examples=False,
    )


class TestLexicalFeatures:
    def test_extraction(self):
        feats = LexicalFeatures.extract(NBODY_SRC)
        assert feats.math_fn_count == 1  # rsqrtf
        assert feats.loop_count == 1
        assert feats.double_mentions == 0
        assert not feats.atomic_present
        assert feats.distinct_arrays >= 2

    def test_atomic_detection(self):
        feats = LexicalFeatures.extract("atomicAdd(&out[0], v);")
        assert feats.atomic_present

    def test_score_bounded(self):
        for src in (SAXPY_SRC, NBODY_SRC, "", "double " * 50):
            s = LexicalFeatures.extract(src).score()
            assert -1.5 <= s <= 1.5

    def test_zero_skill_is_idiosyncratic(self):
        cfg = dataclasses.replace(ALL_CONFIGS[0], heuristic_skill=0.0)
        q = _query(SAXPY_SRC, "saxpy")
        v1 = lexical_logit(q, cfg, RngStream("a"))
        v2 = lexical_logit(q, cfg, RngStream("b"))
        assert v1 != v2  # pure per-stream opinion

    def test_full_skill_is_deterministic_feature_score(self):
        cfg = dataclasses.replace(ALL_CONFIGS[0], heuristic_skill=1.0,
                                  fewshot_skill_bonus=0.0)
        q = _query(SAXPY_SRC, "saxpy")
        v1 = lexical_logit(q, cfg, RngStream("a"))
        v2 = lexical_logit(q, cfg, RngStream("b"))
        assert v1 == v2


class TestDeepReasoner:
    def test_streaming_kernel_negative_logit(self):
        cfg = dataclasses.replace(get_config("o3-mini-high"), deep_noise=0.0)
        result = deep_logit(_query(SAXPY_SRC, "saxpy"), cfg, RngStream("t"))
        assert result.succeeded
        assert result.logit < 0  # bandwidth-bound
        assert result.raw_margin < 0

    def test_pairwise_kernel_positive_logit(self):
        cfg = dataclasses.replace(get_config("o3-mini-high"), deep_noise=0.0)
        result = deep_logit(_query(NBODY_SRC, "forces"), cfg, RngStream("t"))
        assert result.succeeded
        assert result.logit > 0  # compute-bound

    def test_missing_kernel_fails_gracefully(self):
        cfg = get_config("o3-mini-high")
        result = deep_logit(_query(SAXPY_SRC, "wrong_name"), cfg, RngStream("t"))
        assert not result.succeeded
        assert result.logit == 0.0

    def test_noise_perturbs_logit(self):
        q = _query(NBODY_SRC, "forces")
        quiet = dataclasses.replace(get_config("o1"), deep_noise=0.0)
        noisy = dataclasses.replace(get_config("o1"), deep_noise=3.0)
        a = deep_logit(q, quiet, RngStream("x"))
        b = deep_logit(q, noisy, RngStream("x"))
        assert a.raw_margin == b.raw_margin  # same analysis
        assert a.logit != b.logit  # different decision value

    def test_logit_bounded(self):
        cfg = get_config("o1")
        for src, name in ((SAXPY_SRC, "saxpy"), (NBODY_SRC, "forces")):
            r = deep_logit(_query(src, name), cfg, RngStream("b"))
            assert -1.0 <= r.logit <= 1.0


class TestArithmeticSolver:
    def _q(self, ai, bw=100.0, peak=200.0, cot=False, examples=2):
        return RooflineQuery(
            bandwidth_gbs=bw, peak_gflops=peak, ai=ai,
            has_chain_of_thought_examples=cot, num_examples=examples,
        )

    def test_reasoning_never_slips(self):
        cfg = get_config("o1")
        rng = RngStream("s")
        for i in range(100):
            ai = 0.1 + i * 0.05
            truth = Boundedness.BANDWIDTH if ai < 2.0 else Boundedness.COMPUTE
            assert solve_roofline(self._q(ai), cfg, rng.child(i)) is truth

    def test_slippy_model_errs_sometimes(self):
        cfg = dataclasses.replace(get_config("gpt-4o-mini"), arithmetic_slip=0.3)
        rng = RngStream("s2")
        wrong = sum(
            solve_roofline(self._q(0.5), cfg, rng.child(i)) is Boundedness.COMPUTE
            for i in range(300)
        )
        assert 40 <= wrong <= 150  # ~30% slip rate

    def test_cot_reduces_slips(self):
        cfg = get_config("gpt-4o-mini")  # slip 0.10, cot 0.0
        rng = RngStream("s3")
        plain_wrong = sum(
            solve_roofline(self._q(0.5), cfg, rng.child("p", i)).value != "BB"
            for i in range(200)
        )
        cot_wrong = sum(
            solve_roofline(self._q(0.5, cot=True), cfg, rng.child("c", i)).value != "BB"
            for i in range(200)
        )
        assert cot_wrong < plain_wrong
        assert cot_wrong == 0

    def test_more_examples_reduce_slips(self):
        cfg = dataclasses.replace(get_config("gpt-4o-mini"), arithmetic_slip=0.4)
        rng = RngStream("s4")
        few = sum(
            solve_roofline(self._q(0.5, examples=2), cfg, rng.child("f", i)).value != "BB"
            for i in range(400)
        )
        many = sum(
            solve_roofline(self._q(0.5, examples=8), cfg, rng.child("f", i)).value != "BB"
            for i in range(400)
        )
        assert many <= few


class TestAttentionModel:
    def test_fail_probability_monotone_in_tokens(self):
        cfg = get_config("o1")
        assert cfg.fail_probability(1000) < cfg.fail_probability(50_000)

    def test_fail_probability_capped(self):
        for cfg in ALL_CONFIGS:
            assert cfg.fail_probability(1e12) <= 0.95

    def test_longer_prompt_only_derails_superset(self, balanced_samples):
        """The shared-draw design: if a model's deep path survives a long
        prompt, it must also survive the short one for the same code."""
        from repro.llm import get_model
        from repro.prompts import build_classify_prompt

        model = get_model("o1-mini-2024-09-12")
        flips_to_better = 0
        for s in balanced_samples[:60]:
            p2 = model.complete(build_classify_prompt(s, few_shot=False).text)
            p3 = model.complete(build_classify_prompt(s, few_shot=True).text)
            # no strict per-sample assertion possible at the response level,
            # but the pair must be deterministic
            assert p2.text in ("Compute", "Bandwidth")
            assert p3.text in ("Compute", "Bandwidth")
