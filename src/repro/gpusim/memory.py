"""Memory-system model: warp coalescing and cache-reuse traffic estimation.

For every static global-memory access site the profiler walker produces an
:class:`AccessSite`; this module turns it into DRAM byte counts through a
two-stage model:

1. **Coalescing** — bytes a warp must transfer per executed access, from the
   access's stride across adjacent threads (coefficient of ``gx``):
   unit stride moves one element per thread, larger strides waste sectors,
   broadcast costs one sector per warp, data-dependent scatter costs a full
   sector per thread.
2. **Reuse** — the unique-byte *footprint* of the site bounds compulsory
   traffic; a footprint that fits in L2 is fetched once regardless of how
   many times it is re-read (this is precisely the dynamic effect that makes
   static source-level intensity estimation hard, §2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import DeviceModel


@dataclass(frozen=True)
class AccessSite:
    """One static global-memory access with its dynamic execution facts."""

    array: str
    elem_size: int
    is_write: bool
    executions: float
    #: stride (in elements) between adjacent threads of a warp; 0 = broadcast
    gx_stride: int
    #: unique elements this site touches over the whole invocation
    footprint_elems: float
    #: "affine" | "random" | "local"
    pattern: str = "affine"
    is_atomic: bool = False

    def __post_init__(self) -> None:
        if self.elem_size not in (4, 8):
            raise ValueError(f"unsupported element size {self.elem_size}")
        if self.executions < 0 or self.footprint_elems < 0:
            raise ValueError("executions/footprint must be non-negative")

    def to_dict(self) -> dict:
        """JSON-ready form for the persistent profile store.

        Floats survive a JSON round trip bit-exactly (``json`` serialises
        via the shortest round-tripping repr), so a site read back from
        disk aggregates to byte-identical traffic.
        """
        return {
            "array": self.array,
            "elem_size": self.elem_size,
            "is_write": self.is_write,
            "executions": self.executions,
            "gx_stride": self.gx_stride,
            "footprint_elems": self.footprint_elems,
            "pattern": self.pattern,
            "is_atomic": self.is_atomic,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AccessSite":
        return cls(
            array=str(data["array"]),
            elem_size=int(data["elem_size"]),
            is_write=bool(data["is_write"]),
            executions=float(data["executions"]),
            gx_stride=int(data["gx_stride"]),
            footprint_elems=float(data["footprint_elems"]),
            pattern=str(data["pattern"]),
            is_atomic=bool(data["is_atomic"]),
        )


@dataclass(frozen=True)
class SiteTraffic:
    """Traffic estimate for one site."""

    dram_read_bytes: float
    dram_write_bytes: float
    #: bytes the program semantically needed (elem per execution)
    useful_bytes: float
    #: bytes moved by the warps before cache filtering (coalescing cost)
    transaction_bytes: float


def bytes_per_execution(site: AccessSite, device: DeviceModel) -> float:
    """Post-coalescing bytes one executed access costs a thread."""
    sector = device.sector_bytes
    warp = device.warp_size
    if site.pattern == "random":
        # Uniform scatter/gather: every thread lands in its own sector.
        return float(sector)
    if site.pattern == "local":
        # Neighbourhood-limited indirection: partial sector sharing.
        return float(min(sector, 2 * site.elem_size))
    stride = abs(site.gx_stride)
    if stride == 0:
        # Warp-wide broadcast of one address: one sector per warp.
        return sector / warp
    return float(min(sector, stride * site.elem_size))


def estimate_site_traffic(site: AccessSite, device: DeviceModel) -> SiteTraffic:
    """Apply the coalescing + reuse model to one access site."""
    per_exec = bytes_per_execution(site, device)
    transactions = site.executions * per_exec
    useful = site.executions * site.elem_size
    footprint = site.footprint_elems * site.elem_size

    l2 = device.l2_capacity_bytes
    if footprint <= 0.0:
        dram = 0.0
    elif footprint <= l2:
        # Everything after the compulsory fetch hits in cache.
        dram = min(footprint, transactions)
    else:
        # Partial reuse: the resident fraction of the footprint filters the
        # re-reference stream; the rest pays full transaction cost.
        reuse_fraction = l2 / footprint
        dram = footprint + (transactions - footprint) * (1.0 - reuse_fraction)
        dram = max(0.0, min(dram, transactions))

    if site.is_atomic:
        # Read-modify-write: traffic in both directions, but atomics resolve
        # in L2, so a cache-resident footprint stays cheap.
        return SiteTraffic(
            dram_read_bytes=dram,
            dram_write_bytes=dram,
            useful_bytes=2 * useful,
            transaction_bytes=2 * transactions,
        )
    if site.is_write:
        return SiteTraffic(0.0, dram, useful, transactions)
    return SiteTraffic(dram, 0.0, useful, transactions)


def merge_sites(sites: list[AccessSite]) -> list[AccessSite]:
    """Merge access sites that share a cache footprint.

    Stencil neighbours (``x[i-1]``, ``x[i]``, ``x[i+1]``) are distinct static
    sites touching essentially the same unique lines; counting each footprint
    separately would overcharge compulsory traffic several-fold. Sites with
    the same (array, direction, pattern, stride, footprint) are merged into
    one site whose executions are summed and whose footprint is counted
    once — one fetch, many cache re-reads.
    """
    groups: dict[tuple, AccessSite] = {}
    for s in sites:
        key = (
            s.array,
            s.is_write,
            s.is_atomic,
            s.pattern,
            abs(s.gx_stride),
            s.elem_size,
            round(s.footprint_elems),
        )
        if key in groups:
            prev = groups[key]
            groups[key] = AccessSite(
                array=prev.array,
                elem_size=prev.elem_size,
                is_write=prev.is_write,
                executions=prev.executions + s.executions,
                gx_stride=prev.gx_stride,
                footprint_elems=prev.footprint_elems,
                pattern=prev.pattern,
                is_atomic=prev.is_atomic,
            )
        else:
            groups[key] = s
    return list(groups.values())


def batch_site_traffic(
    sites: list[AccessSite], device: DeviceModel
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`estimate_site_traffic` over a flat site list.

    Returns per-site ``(read, write, useful, transaction)`` float64 columns.
    Every branch of the scalar model is reproduced as an elementwise
    ``np.where`` select over the identical float64 operations, so each
    column entry is bit-identical to the scalar function on the same site —
    callers may mix and match the two paths freely.
    """
    n = len(sites)
    elem = np.empty(n)
    execs = np.empty(n)
    foot = np.empty(n)
    stride = np.empty(n)
    code = np.empty(n, dtype=np.int8)  # 0 affine | 1 random | 2 local
    is_write = np.empty(n, dtype=bool)
    is_atomic = np.empty(n, dtype=bool)
    for i, s in enumerate(sites):
        elem[i] = s.elem_size
        execs[i] = s.executions
        foot[i] = s.footprint_elems
        stride[i] = abs(s.gx_stride)
        code[i] = 1 if s.pattern == "random" else 2 if s.pattern == "local" else 0
        is_write[i] = s.is_write
        is_atomic[i] = s.is_atomic

    sector = float(device.sector_bytes)
    warp = float(device.warp_size)
    affine = np.where(
        stride == 0.0, sector / warp, np.minimum(sector, stride * elem)
    )
    per_exec = np.where(
        code == 1, sector, np.where(code == 2, np.minimum(sector, 2.0 * elem), affine)
    )
    transactions = execs * per_exec
    useful = execs * elem
    footprint = foot * elem

    l2 = float(device.l2_capacity_bytes)
    # The spill branch divides by footprint; where footprint is 0 the lane
    # is discarded by the outer select, so silence the 0/0 warnings.
    with np.errstate(divide="ignore", invalid="ignore"):
        reuse_fraction = l2 / footprint
        spill = footprint + (transactions - footprint) * (1.0 - reuse_fraction)
    spill = np.maximum(0.0, np.minimum(spill, transactions))
    dram = np.where(
        footprint <= 0.0,
        0.0,
        np.where(footprint <= l2, np.minimum(footprint, transactions), spill),
    )

    zero = np.zeros(n)
    read = np.where(is_atomic, dram, np.where(is_write, zero, dram))
    write = np.where(is_atomic, dram, np.where(is_write, dram, zero))
    useful = np.where(is_atomic, 2.0 * useful, useful)
    transactions = np.where(is_atomic, 2.0 * transactions, transactions)
    return read, write, useful, transactions


def aggregate_traffic(
    sites: list[AccessSite],
    device: DeviceModel,
    *,
    assume_merged: bool = False,
) -> tuple[float, float, float, float]:
    """Total (read, write, useful, transaction) bytes across merged sites.

    ``assume_merged=True`` skips the :func:`merge_sites` pass for callers
    that already hold merged sites (the profiler's device-independent
    :class:`~repro.gpusim.profiler.SymbolicTrace` merges once per kernel
    instead of once per kernel × device). Merging is idempotent and
    order-preserving, so both paths accumulate in the same order and the
    float sums are bit-identical.
    """
    r = w = u = t = 0.0
    for site in sites if assume_merged else merge_sites(sites):
        st = estimate_site_traffic(site, device)
        r += st.dram_read_bytes
        w += st.dram_write_bytes
        u += st.useful_bytes
        t += st.transaction_bytes
    return r, w, u, t


def coalescing_quality(useful_bytes: float, transaction_bytes: float) -> float:
    """Fraction of moved bytes that were semantically useful, in [0, 1]."""
    if transaction_bytes <= 0.0:
        return 1.0
    return max(0.0, min(1.0, useful_bytes / transaction_bytes))
