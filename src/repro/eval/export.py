"""CSV/JSON export of figure, table, and result data.

The benchmark harness renders ASCII; downstream users who want to re-plot
the figures in their own tooling get machine-readable exports here. Any
experiment result speaking :class:`~repro.eval.report.Reportable` goes
through the single :func:`write_report` writer — run, matrix, and stats
reports all serialise the same way (``repro-paper export``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.eval.figures import RooflineFigure, TokenDistributionFigure
from repro.eval.report import Reportable
from repro.eval.table1 import Table1
from repro.types import OpClass


def write_report(report: Reportable, path: str | Path) -> Path:
    """Write one :class:`Reportable`'s JSON value form to ``path``.

    The common export path for every result type: sorted keys and a fixed
    layout, so identical results produce byte-identical files (the
    ``digest`` field inside makes that checkable at a glance).
    """
    if not isinstance(report, Reportable):
        raise TypeError(
            f"{type(report).__name__} does not implement Reportable "
            "(digest/render/to_json)"
        )
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(
        json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return p


def export_figure1_csv(figure: RooflineFigure, path: str | Path) -> None:
    """One row per kernel point: op class, AI, achieved Gop/s, plus the
    roofline parameters as a commented header."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", newline="", encoding="utf-8") as fh:
        fh.write(f"# gpu: {figure.gpu.name}\n")
        for op_class in OpClass:
            bp, peak = figure.balance[op_class]
            fh.write(
                f"# roofline {op_class.display}: peak={peak} "
                f"balance_point={bp}\n"
            )
        writer = csv.writer(fh)
        writer.writerow(["op_class", "arithmetic_intensity", "achieved_gops"])
        for op_class in OpClass:
            for ai, perf in figure.points[op_class]:
                writer.writerow([op_class.value, f"{ai:.6g}", f"{perf:.6g}"])


def export_figure2_csv(figure: TokenDistributionFigure, path: str | Path) -> None:
    """One row per group with the five-number summary."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    stats = figure.box_stats()
    with p.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["group", "n", "min", "q1", "median", "q3", "max",
             "whisker_low", "whisker_high", "outliers"]
        )
        for name, s in stats.items():
            writer.writerow([
                name, s.n, s.minimum, s.q1, s.median, s.q3, s.maximum,
                s.whisker_low, s.whisker_high, len(s.outliers),
            ])


def export_table1_json(table: Table1, path: str | Path) -> None:
    """Full Table 1 as JSON, measured values only."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    rows = []
    for row in table.rows:
        rows.append({
            "model": row.model_name,
            "reasoning": row.reasoning,
            "cost": row.cost,
            "rq1_acc": row.rq1.best_accuracy if row.rq1 else None,
            "rq1_cot_acc": row.rq1.best_accuracy_cot if row.rq1 else None,
            "rq2": {
                "accuracy": row.rq2.metrics.accuracy,
                "macro_f1": row.rq2.metrics.macro_f1,
                "mcc": row.rq2.metrics.mcc,
            },
            "rq3": {
                "accuracy": row.rq3.metrics.accuracy,
                "macro_f1": row.rq3.metrics.macro_f1,
                "mcc": row.rq3.metrics.mcc,
            },
        })
    p.write_text(json.dumps(rows, indent=2), encoding="utf-8")


def load_figure1_csv(path: str | Path) -> dict[OpClass, list[tuple[float, float]]]:
    """Round-trip reader for :func:`export_figure1_csv` (used in tests and
    by downstream plotting scripts)."""
    out: dict[OpClass, list[tuple[float, float]]] = {oc: [] for oc in OpClass}
    with Path(path).open("r", encoding="utf-8") as fh:
        rows = [ln for ln in fh if not ln.startswith("#")]
    reader = csv.DictReader(rows)
    for rec in reader:
        oc = OpClass(rec["op_class"])
        out[oc].append(
            (float(rec["arithmetic_intensity"]), float(rec["achieved_gops"]))
        )
    return out
