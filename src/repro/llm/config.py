"""Per-model capability profiles.

Each emulated LLM is described by a :class:`ModelConfig`: identity and
pricing (Table 1, columns 1-3) plus the capability knobs that drive the
emulator's behaviour. The knobs are calibrated so aggregate metrics land in
the paper's reported bands (DESIGN.md §5); the *mechanisms* they control are
generic:

* ``arithmetic_slip`` / ``arithmetic_slip_cot`` — probability of a slip in
  the RQ1 balance-point arithmetic, reduced by chain-of-thought scaffolding
  (zero for reasoning models).
* ``analysis_depth`` — how much the model's decision weighs the deep static
  AI analysis versus surface lexical cues.
* ``base_fail`` / ``attention_tokens`` — probability that the deep analysis
  derails entirely (falling back to surface cues), growing with prompt
  length (the paper's "lost in the middle" citation [22]).
* ``deep_noise`` — noise on the estimated log-intensity margin (imperfect
  reading of loop bounds, byte counts).
* ``heuristic_skill`` — how informative the model's surface-cue scoring is
  (0 = coin flip, 1 = best lexical heuristic).
* ``response_bias`` — constant pull toward one response word (source of the
  low macro-F1 of some non-reasoning models).
* ``fewshot_skill_bonus`` — surface-cue improvement from the two real
  examples in RQ3 prompts (non-reasoning models benefit; reasoning models
  mostly pay the context-length cost instead).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """Identity, pricing, and capability profile of one emulated LLM."""

    name: str
    reasoning: bool
    input_cost_per_m: float
    output_cost_per_m: float
    # RQ1 arithmetic
    arithmetic_slip: float
    arithmetic_slip_cot: float
    # RQ2/RQ3 classification
    analysis_depth: float
    base_fail: float
    attention_tokens: float
    deep_noise: float
    heuristic_skill: float
    response_bias: float
    fewshot_skill_bonus: float
    #: additive response-bias shift when real example shots are present
    fewshot_bias_shift: float = 0.0
    #: hidden reasoning tokens billed per query (reasoning models)
    reasoning_output_tokens: int = 0
    #: whether temperature/top_p are accepted (reasoning APIs reject them)
    supports_sampling_params: bool = True
    #: whether the paper reports RQ1 numbers for this model
    rq1_reported: bool = True

    def __post_init__(self) -> None:
        for f in ("arithmetic_slip", "arithmetic_slip_cot", "analysis_depth",
                  "base_fail", "heuristic_skill"):
            v = getattr(self, f)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{self.name}: {f} must be in [0, 1], got {v}")
        if self.attention_tokens <= 0:
            raise ValueError(f"{self.name}: attention_tokens must be positive")

    def fail_probability(self, prompt_tokens: float) -> float:
        """Probability the deep analysis derails for a prompt of this size."""
        return min(0.95, self.base_fail + prompt_tokens / self.attention_tokens)


# ---------------------------------------------------------------------------
# The nine models of Table 1. Pricing as of April 2025 (paper column 3).
# Capability values are calibration outputs; see tests/test_calibration.py
# for the bands they are held to.
# ---------------------------------------------------------------------------

O3_MINI_HIGH = ModelConfig(
    name="o3-mini-high",
    reasoning=True,
    input_cost_per_m=1.1,
    output_cost_per_m=4.4,
    arithmetic_slip=0.0,
    arithmetic_slip_cot=0.0,
    analysis_depth=0.96,
    base_fail=0.7,
    attention_tokens=150_000.0,
    deep_noise=1.1,
    heuristic_skill=0.55,
    response_bias=0.02,
    fewshot_skill_bonus=0.0,
    reasoning_output_tokens=2048,
    supports_sampling_params=False,
)

O1 = ModelConfig(
    name="o1",
    reasoning=True,
    input_cost_per_m=15.0,
    output_cost_per_m=60.0,
    arithmetic_slip=0.0,
    arithmetic_slip_cot=0.0,
    analysis_depth=0.96,
    base_fail=0.2,
    attention_tokens=28_000.0,
    deep_noise=1.8,
    heuristic_skill=0.55,
    response_bias=0.0,
    fewshot_skill_bonus=0.0,
    reasoning_output_tokens=3072,
    supports_sampling_params=False,
    rq1_reported=False,
)

O3_MINI = ModelConfig(
    name="o3-mini",
    reasoning=True,
    input_cost_per_m=1.1,
    output_cost_per_m=4.4,
    arithmetic_slip=0.0,
    arithmetic_slip_cot=0.0,
    analysis_depth=0.93,
    base_fail=0.6,
    attention_tokens=150_000.0,
    deep_noise=1.8,
    heuristic_skill=0.5,
    response_bias=0.02,
    fewshot_skill_bonus=0.02,
    reasoning_output_tokens=1536,
    supports_sampling_params=False,
)

GPT_45_PREVIEW = ModelConfig(
    name="gpt-4.5-preview",
    reasoning=False,
    input_cost_per_m=75.0,
    output_cost_per_m=150.0,
    arithmetic_slip=0.05,
    arithmetic_slip_cot=0.02,
    analysis_depth=0.82,
    base_fail=0.70,
    attention_tokens=150_000.0,
    deep_noise=1.4,
    heuristic_skill=0.6,
    response_bias=-0.02,
    fewshot_skill_bonus=0.08,
    rq1_reported=False,
)

O1_MINI = ModelConfig(
    name="o1-mini-2024-09-12",
    reasoning=True,
    input_cost_per_m=1.1,
    output_cost_per_m=4.4,
    arithmetic_slip=0.0,
    arithmetic_slip_cot=0.0,
    analysis_depth=0.88,
    base_fail=0.5,
    attention_tokens=30_000.0,
    deep_noise=0.7,
    heuristic_skill=0.5,
    response_bias=-0.04,
    fewshot_skill_bonus=0.0,
    reasoning_output_tokens=1024,
    supports_sampling_params=False,
)

GEMINI_FLASH = ModelConfig(
    name="gemini-2.0-flash-001",
    reasoning=False,
    input_cost_per_m=0.1,
    output_cost_per_m=0.4,
    arithmetic_slip=0.0875,
    arithmetic_slip_cot=0.075,
    analysis_depth=0.42,
    base_fail=0.90,
    attention_tokens=25_000.0,
    deep_noise=2.0,
    heuristic_skill=0.1,
    response_bias=-0.4,
    fewshot_skill_bonus=0.0,
    fewshot_bias_shift=-0.06,
)

GPT_4O = ModelConfig(
    name="gpt-4o-2024-11-20",
    reasoning=False,
    input_cost_per_m=2.5,
    output_cost_per_m=10.0,
    arithmetic_slip=0.0875,
    arithmetic_slip_cot=0.0375,
    analysis_depth=0.18,
    base_fail=0.1,
    attention_tokens=40_000.0,
    deep_noise=2.2,
    heuristic_skill=0.35,
    response_bias=-0.5,
    fewshot_skill_bonus=0.05,
)

GPT_4O_MINI = ModelConfig(
    name="gpt-4o-mini",
    reasoning=False,
    input_cost_per_m=0.15,
    output_cost_per_m=0.6,
    arithmetic_slip=0.10,
    arithmetic_slip_cot=0.0,
    analysis_depth=0.06,
    base_fail=0.35,
    attention_tokens=40_000.0,
    deep_noise=2.5,
    heuristic_skill=0.10,
    response_bias=0.2,
    fewshot_skill_bonus=0.04,
)

GPT_4O_MINI_2024 = ModelConfig(
    name="gpt-4o-mini-2024-07-18",
    reasoning=False,
    input_cost_per_m=0.15,
    output_cost_per_m=0.6,
    arithmetic_slip=0.10,
    arithmetic_slip_cot=0.0,
    analysis_depth=0.05,
    base_fail=0.80,
    attention_tokens=40_000.0,
    deep_noise=2.5,
    heuristic_skill=0.5,
    response_bias=-0.12,
    fewshot_skill_bonus=0.08,
)

ALL_CONFIGS: tuple[ModelConfig, ...] = (
    O3_MINI_HIGH,
    O1,
    O3_MINI,
    GPT_45_PREVIEW,
    O1_MINI,
    GEMINI_FLASH,
    GPT_4O,
    GPT_4O_MINI,
    GPT_4O_MINI_2024,
)
