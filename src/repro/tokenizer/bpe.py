"""Byte-level BPE tokenizer (trainable).

The paper uses the gpt-4o-mini tokenizer to enforce its 8e3-token prompt
cutoff and to draw Figure 2's token-count distributions. Offline, we train
our own byte-level BPE on the generated corpus: what matters downstream is a
consistent subword token count with code-like statistics (≈3-4 characters
per token on C sources), which BPE delivers by construction.

Implementation follows the classic algorithm: pre-tokenize into words with a
GPT-style regex, then repeatedly merge the most frequent adjacent symbol
pair. Training is deterministic (ties broken lexicographically) and
**incremental**: rather than recounting every pair frequency across the
whole word dict on each merge iteration (the seed trainer's O(merges ×
corpus) inner loop), it maintains exact pair counts plus a pair →
affected-words index and, after a merge, updates only the words that
actually contained the merged pair. The learned merge sequence is
*byte-identical* to the naive recount-everything trainer — the counts
maintained are exact and the argmax tie-break is order-independent — and a
hypothesis property in ``tests/test_tokenizer.py`` pins that equivalence.
"""

from __future__ import annotations

import json
import re
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Iterable

from repro.util.hashing import stable_hash_hex

#: Bump whenever pretokenization or trainer *semantics* change (the
#: incremental trainer is semantics-preserving, so it did not): hashed
#: into tokenizer store keys and digests so stale persisted merges read
#: as misses.
BPE_VERSION = "bpe-v1"

#: Default bound on the per-tokenizer word→symbols encode memo.
DEFAULT_ENCODE_CACHE_SIZE = 200_000

#: GPT-style pre-tokenization: identifiers (with one leading space), numbers,
#: punctuation runs, whitespace runs.
_PRETOKEN_RE = re.compile(
    r" ?[A-Za-z_]+|[0-9]+|[^\sA-Za-z_0-9]+| +|\n+|\t+"
)


def pretokenize(text: str) -> list[str]:
    """Split text into BPE word units."""
    return _PRETOKEN_RE.findall(text)


def _word_to_symbols(word: str) -> tuple[str, ...]:
    return tuple(word)


@dataclass
class BpeTokenizer:
    """A trained byte-level BPE tokenizer.

    ``merges`` is an ordered list of symbol pairs; rank order defines merge
    priority during encoding (lower rank merges first), exactly as in the
    original BPE formulation.

    ``cache_size`` bounds the word-encode memo: entries are kept LRU, so a
    long multi-scenario sweep can never grow the memo without limit while
    the hot vocabulary (code identifiers repeat heavily) stays resident.
    """

    merges: list[tuple[str, str]] = field(default_factory=list)
    cache_size: int = field(
        default=DEFAULT_ENCODE_CACHE_SIZE, repr=False, compare=False
    )
    _ranks: dict[tuple[str, str], int] = field(default_factory=dict, repr=False)
    _vocab: dict[str, int] = field(default_factory=dict, repr=False)
    _cache: "OrderedDict[str, tuple[str, ...]]" = field(
        default_factory=OrderedDict, repr=False, compare=False
    )
    _digest: str | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._rebuild()

    def _rebuild(self) -> None:
        self._ranks = {pair: i for i, pair in enumerate(self.merges)}
        symbols: dict[str, int] = {}
        for ch in map(chr, range(256)):
            symbols.setdefault(ch, len(symbols))
        for a, b in self.merges:
            symbols.setdefault(a + b, len(symbols))
        self._vocab = symbols
        self._cache = OrderedDict()
        self._digest = None

    def digest(self) -> str:
        """SHA-256 content address of this tokenizer's behaviour.

        Depends only on the merge list (and :data:`BPE_VERSION`), so the
        seed and incremental trainers — which learn identical merges —
        digest identically, and render-store token counts key cleanly.
        """
        if self._digest is None:
            self._digest = stable_hash_hex(BPE_VERSION, self.merges)
        return self._digest

    # -- training ------------------------------------------------------------
    @classmethod
    def train(
        cls, corpus: Iterable[str], *, num_merges: int = 3000, min_pair_count: int = 2
    ) -> "BpeTokenizer":
        """Learn ``num_merges`` merge rules from the corpus texts.

        Incremental pair counting: ``pair_counts`` holds the exact
        frequency of every adjacent symbol pair over the current word
        dict (zero-count pairs are deleted, so the candidate set always
        equals what a full recount would produce), and ``occ`` maps each
        pair to the set of words currently containing it. One merge
        iteration touches only the words in ``occ[best_pair]`` —
        subtracting their old pair contributions, rewriting them, and
        adding the new ones — instead of rescanning the entire dict.
        """
        if num_merges < 0:
            raise ValueError("num_merges must be non-negative")
        word_freq: Counter[str] = Counter()
        for text in corpus:
            word_freq.update(pretokenize(text))

        words: dict[tuple[str, ...], int] = {}
        for word, freq in word_freq.items():
            key = _word_to_symbols(word)
            words[key] = words.get(key, 0) + freq

        pair_counts: dict[tuple[str, str], int] = {}
        occ: dict[tuple[str, str], set[tuple[str, ...]]] = {}
        for word, freq in words.items():
            for i in range(len(word) - 1):
                pair = (word[i], word[i + 1])
                pair_counts[pair] = pair_counts.get(pair, 0) + freq
                occ.setdefault(pair, set()).add(word)

        merges: list[tuple[str, str]] = []
        for _ in range(num_merges):
            if not pair_counts:
                break
            # Deterministic: max count, ties broken lexicographically —
            # a total order, so the winner is independent of dict order.
            # zip() keeps the comparison in C: (count, pair) tuples order
            # exactly like the classic key=(count, pair) argmax.
            best_count, best_pair = max(
                zip(pair_counts.values(), pair_counts.keys())
            )
            if best_count < min_pair_count:
                break
            merges.append(best_pair)
            a, b = best_pair
            merged = a + b
            # Greedy left-to-right merging removes every occurrence of
            # best_pair, so no rewritten word re-enters the affected set.
            for word in occ.pop(best_pair, ()):
                freq = words.pop(word)
                for i in range(len(word) - 1):
                    pair = (word[i], word[i + 1])
                    remaining = pair_counts[pair] - freq
                    if remaining:
                        pair_counts[pair] = remaining
                    else:
                        del pair_counts[pair]
                    witnesses = occ.get(pair)
                    if witnesses is not None:
                        witnesses.discard(word)
                        if not witnesses:
                            del occ[pair]
                out: list[str] = []
                i = 0
                n = len(word)
                while i < n:
                    if i < n - 1 and word[i] == a and word[i + 1] == b:
                        out.append(merged)
                        i += 2
                    else:
                        out.append(word[i])
                        i += 1
                new_word = tuple(out)
                words[new_word] = words.get(new_word, 0) + freq
                for i in range(len(new_word) - 1):
                    pair = (new_word[i], new_word[i + 1])
                    pair_counts[pair] = pair_counts.get(pair, 0) + freq
                    occ.setdefault(pair, set()).add(new_word)
        return cls(merges=merges)

    # -- encoding ------------------------------------------------------------
    def _encode_word(self, word: str) -> tuple[str, ...]:
        cache = self._cache
        try:
            result = cache[word]
            cache.move_to_end(word)
            return result
        except KeyError:
            pass
        symbols = list(word)
        n = len(symbols)
        if n > 1:
            ranks_get = self._ranks.get
            while True:
                best_rank = None
                best_i = -1
                prev = symbols[0]
                for i in range(n - 1):
                    nxt = symbols[i + 1]
                    rank = ranks_get((prev, nxt))
                    if rank is not None and (
                        best_rank is None or rank < best_rank
                    ):
                        best_rank = rank
                        best_i = i
                    prev = nxt
                if best_rank is None:
                    break
                symbols[best_i : best_i + 2] = [
                    symbols[best_i] + symbols[best_i + 1]
                ]
                n -= 1
        result = tuple(symbols)
        if self.cache_size > 0:
            while len(cache) >= self.cache_size:
                try:
                    cache.popitem(last=False)
                except KeyError:  # racing evictor emptied it
                    break
            cache[word] = result
        return result

    def encode(self, text: str) -> list[int]:
        """Encode text into token ids."""
        ids: list[int] = []
        vocab = self._vocab
        encode_word = self._encode_word
        for word in pretokenize(text):
            for sym in encode_word(word):
                ids.append(vocab[sym])
        return ids

    def tokenize(self, text: str) -> list[str]:
        """Encode text into token strings (for inspection)."""
        out: list[str] = []
        encode_word = self._encode_word
        for word in pretokenize(text):
            out.extend(encode_word(word))
        return out

    def count_tokens(self, text: str) -> int:
        """Token count without materializing ids (the pruning hot path).

        Counts unique words first (code text repeats identifiers
        heavily), so the per-word encode runs once per *distinct* word
        instead of once per occurrence — same total, ~6× fewer Python
        iterations on rendered program text.
        """
        total = 0
        encode_word = self._encode_word
        for word, freq in Counter(pretokenize(text)).items():
            total += freq * len(encode_word(word))
        return total

    def decode(self, ids: list[int]) -> str:
        rev = {i: s for s, i in self._vocab.items()}
        try:
            return "".join(rev[i] for i in ids)
        except KeyError as e:
            raise ValueError(f"unknown token id {e.args[0]}") from None

    @property
    def vocab_size(self) -> int:
        return len(self._vocab)

    # -- persistence -----------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"merges": [list(p) for p in self.merges]})

    @classmethod
    def from_json(cls, payload: str) -> "BpeTokenizer":
        data = json.loads(payload)
        return cls(merges=[tuple(p) for p in data["merges"]])
