"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["rq2"])
        assert args.model == "all"
        assert args.limit == 0


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "o3-mini-high" in out
        assert "$15 / $60" in out

    def test_dataset(self, capsys, dataset):
        assert main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert "balanced: 340" in out

    def test_dataset_save(self, capsys, tmp_path, dataset):
        out_file = tmp_path / "ds.jsonl"
        assert main(["dataset", "--out", str(out_file), "--compact"]) == 0
        assert out_file.exists()
        assert out_file.stat().st_size > 10_000

    def test_classify_known_uid(self, capsys, dataset):
        uid = dataset.balanced[0].uid
        rc = main(["classify", uid, "--model", "o3-mini-high"])
        out = capsys.readouterr().out
        assert rc in (0, 1)  # 0 correct, 1 incorrect — both valid runs
        assert f"program:    {uid}" in out
        assert "prediction:" in out

    def test_classify_unknown_uid(self, capsys, dataset):
        assert main(["classify", "cuda/zzz-v99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_rq1_single_model(self, capsys):
        assert main(["rq1", "--model", "gpt-4o-mini", "--rooflines", "20"]) == 0
        out = capsys.readouterr().out
        assert "gpt-4o-mini" in out

    def test_rq2_with_limit(self, capsys, dataset):
        assert main(["rq2", "--model", "o3-mini", "--limit", "15"]) == 0
        out = capsys.readouterr().out
        assert "15 samples" in out

    def test_rq3_with_limit(self, capsys, dataset):
        assert main(["rq3", "--model", "gpt-4o-mini", "--limit", "10"]) == 0
        assert "two-shot" in capsys.readouterr().out

    def test_rq4(self, capsys, dataset):
        assert main(["rq4", "--scope", "all"]) == 0
        out = capsys.readouterr().out
        assert "collapsed:          True" in out

    def test_decompose_with_limit(self, capsys, dataset):
        assert main(["decompose", "--model", "o3-mini", "--limit", "10"]) == 0
        assert "Decomposed" in capsys.readouterr().out

    def test_figures(self, capsys, dataset):
        assert main(["figures", "--which", "2"]) == 0
        assert "train/CUDA/BB" in capsys.readouterr().out

    def test_matrix_two_gpus(self, capsys, dataset):
        assert main([
            "matrix", "--model", "o3-mini", "--gpus", "v100,h100",
            "--limit", "12", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Hardware matrix" in out
        assert "V100" in out and "H100" in out

    def test_matrix_process_backend(self, capsys, dataset):
        assert main([
            "matrix", "--model", "gpt-4o-mini", "--gpus", "rtx 3080",
            "--limit", "8", "--jobs", "2", "--backend", "process",
        ]) == 0
        assert "RTX 3080" in capsys.readouterr().out

    def test_matrix_unknown_gpu(self, capsys, dataset):
        assert main(["matrix", "--gpus", "tpu-v5", "--limit", "4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_backend_flag_on_rq_commands(self, capsys, dataset):
        assert main([
            "rq2", "--model", "o3-mini", "--limit", "8",
            "--backend", "sequential",
        ]) == 0
        assert "8 samples" in capsys.readouterr().out
