"""Classification metrics (paper §3.1).

Accuracy, macro-F1, and Matthews Correlation Coefficient, all reported ×100
as in Table 1. Macro-F1 and MCC are class-symmetric, which is why the paper
chooses them for a task whose two classes have no natural positive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.types import Boundedness


@dataclass(frozen=True)
class ConfusionCounts:
    """2x2 confusion matrix with Compute as the reference positive class."""

    tp: int  # truth CB, predicted CB
    tn: int  # truth BB, predicted BB
    fp: int  # truth BB, predicted CB
    fn: int  # truth CB, predicted BB

    @property
    def total(self) -> int:
        return self.tp + self.tn + self.fp + self.fn


def confusion(
    truths: Sequence[Boundedness], predictions: Sequence[Boundedness]
) -> ConfusionCounts:
    if len(truths) != len(predictions):
        raise ValueError("truths/predictions length mismatch")
    if not truths:
        raise ValueError("empty evaluation")
    tp = tn = fp = fn = 0
    for t, p in zip(truths, predictions):
        if t is Boundedness.COMPUTE and p is Boundedness.COMPUTE:
            tp += 1
        elif t is Boundedness.BANDWIDTH and p is Boundedness.BANDWIDTH:
            tn += 1
        elif t is Boundedness.BANDWIDTH and p is Boundedness.COMPUTE:
            fp += 1
        else:
            fn += 1
    return ConfusionCounts(tp=tp, tn=tn, fp=fp, fn=fn)


def accuracy(c: ConfusionCounts) -> float:
    """Accuracy ×100."""
    return 100.0 * (c.tp + c.tn) / c.total


def _f1(tp: int, fp: int, fn: int) -> float:
    denom = 2 * tp + fp + fn
    if denom == 0:
        # Class absent and never predicted: nothing was gotten wrong.
        return 1.0
    return 2 * tp / denom


def macro_f1(c: ConfusionCounts) -> float:
    """Macro-averaged F1 ×100: mean of per-class F1 with each class as
    positive in turn."""
    f1_cb = _f1(c.tp, c.fp, c.fn)
    f1_bb = _f1(c.tn, c.fn, c.fp)
    return 100.0 * (f1_cb + f1_bb) / 2.0


def mcc(c: ConfusionCounts) -> float:
    """Matthews Correlation Coefficient ×100.

    +100 = perfect, -100 = perfectly inverted, 0 = uninformative. Degenerate
    margins (a constant predictor) give 0 by convention.
    """
    num = c.tp * c.tn - c.fp * c.fn
    denom = math.sqrt(
        float(c.tp + c.fp) * (c.tp + c.fn) * (c.tn + c.fp) * (c.tn + c.fn)
    )
    if denom == 0.0:
        return 0.0
    return 100.0 * num / denom


@dataclass(frozen=True)
class MetricReport:
    """The paper's metric triple for one experiment run."""

    accuracy: float
    macro_f1: float
    mcc: float
    n: int

    @classmethod
    def from_predictions(
        cls, truths: Sequence[Boundedness], predictions: Sequence[Boundedness]
    ) -> "MetricReport":
        c = confusion(truths, predictions)
        return cls(
            accuracy=accuracy(c), macro_f1=macro_f1(c), mcc=mcc(c), n=c.total
        )
