"""Tests for the C lexer and kernel discovery."""

import pytest

from repro.analysis import (
    TokKind,
    find_kernel,
    find_kernels,
    first_kernel,
    lex,
    strip_comments,
)
from repro.analysis.clexer import number_is_f32, number_is_float, number_value
from repro.types import Language


class TestLex:
    def test_identifiers_and_numbers(self):
        toks = lex("int foo = 42;")
        kinds = [(t.kind, t.text) for t in toks]
        assert (TokKind.IDENT, "int") in kinds
        assert (TokKind.IDENT, "foo") in kinds
        assert (TokKind.NUMBER, "42") in kinds

    def test_float_literals(self):
        toks = lex("x = 2.5f + 1e-3;")
        nums = [t.text for t in toks if t.kind is TokKind.NUMBER]
        assert "2.5f" in nums
        assert "1e-3" in nums

    def test_hex_literals(self):
        toks = lex("mask = 0xFF00u;")
        assert any(t.text == "0xFF00u" for t in toks)

    def test_comments_stripped(self):
        toks = lex("a /* comment */ b // trailing\nc")
        idents = [t.text for t in toks if t.kind is TokKind.IDENT]
        assert idents == ["a", "b", "c"]

    def test_multichar_operators(self):
        toks = lex("a <<= b >> c <= d == e && f")
        ops = [t.text for t in toks if t.kind is TokKind.PUNCT]
        assert "<<=" in ops and ">>" in ops and "<=" in ops
        assert "==" in ops and "&&" in ops

    def test_triple_angle_launch(self):
        toks = lex("k<<<grid, block>>>(a);")
        ops = [t.text for t in toks if t.kind is TokKind.PUNCT]
        assert "<<<" in ops and ">>>" in ops

    def test_strings_preserved(self):
        toks = lex('printf("hello %d\\n", x);')
        assert any(t.kind is TokKind.STRING for t in toks)

    def test_pragma_captured(self):
        toks = lex("#pragma omp target teams\nint x;")
        assert any(t.kind is TokKind.PRAGMA for t in toks)

    def test_garbage_bytes_skipped(self):
        toks = lex("a $ b")
        assert [t.text for t in toks if t.kind is TokKind.IDENT] == ["a", "b"]


class TestNumberHelpers:
    def test_values(self):
        assert number_value("42") == 42.0
        assert number_value("2.5f") == 2.5
        assert number_value("0x10") == 16.0

    def test_float_detection(self):
        assert number_is_float("2.5f")
        assert number_is_float("1e9")
        assert not number_is_float("42")
        assert not number_is_float("0x42")

    def test_f32_detection(self):
        assert number_is_f32("2.5f")
        assert not number_is_f32("2.5")


class TestStripComments:
    def test_line_comment(self):
        assert strip_comments("a // x\nb") == "a \nb"

    def test_block_comment(self):
        assert strip_comments("a /* x\ny */ b") == "a  b"

    def test_string_with_slashes_preserved(self):
        src = 'printf("// not a comment");'
        assert strip_comments(src) == src

    def test_unterminated_block(self):
        assert strip_comments("a /* never ends") == "a "


CUDA_SRC = """
__global__ void first_k(const float *x, float *y, int n)
{
  const int gx = blockIdx.x * blockDim.x + threadIdx.x;
  if (gx >= n) return;
  y[gx] = x[gx];
}

__global__ void second_k(float *z, int n)
{
  const int gx = blockIdx.x * blockDim.x + threadIdx.x;
  if (gx >= n) return;
  z[gx] = 0.0f;
}

int main() { return 0; }
"""

OMP_SRC = """
void offload_k(const float *x, float *y, int n)
{
  #pragma omp target teams distribute parallel for thread_limit(256)
  for (int gx = 0; gx < n; gx++) {
    y[gx] = x[gx];
  }
}

void helper(float *p) { p[0] = 1.0f; }
"""


class TestKernelDiscovery:
    def test_cuda_kernels_in_order(self):
        ks = find_kernels(CUDA_SRC, Language.CUDA)
        assert [k.name for k in ks] == ["first_k", "second_k"]

    def test_first_kernel(self):
        assert first_kernel(CUDA_SRC, Language.CUDA).name == "first_k"

    def test_find_by_name(self):
        k = find_kernel(CUDA_SRC, "second_k", Language.CUDA)
        assert "z[gx] = 0.0f" in k.body_text

    def test_missing_name_raises(self):
        with pytest.raises(KeyError):
            find_kernel(CUDA_SRC, "third_k", Language.CUDA)

    def test_params_text(self):
        k = find_kernel(CUDA_SRC, "first_k", Language.CUDA)
        assert "const float *x" in k.params_text

    def test_omp_kernels_require_target_pragma(self):
        ks = find_kernels(OMP_SRC, Language.OMP)
        assert [k.name for k in ks] == ["offload_k"]  # helper is not a kernel

    def test_no_kernels_raises(self):
        with pytest.raises(ValueError):
            first_kernel("int main() { return 0; }", Language.CUDA)

    def test_declaration_not_matched(self):
        src = "__global__ void declared_only(int n);\n" + CUDA_SRC
        ks = find_kernels(src, Language.CUDA)
        assert "declared_only" not in [k.name for k in ks]
