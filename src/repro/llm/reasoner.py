"""Deep-analysis decision path — what reasoning models do.

Runs the full source-level static pipeline (:mod:`repro.analysis`) on the
queried kernel: find the kernel by name, resolve trip counts from the argv
in the prompt, estimate per-class arithmetic intensity, and compare against
the balance points derivable from the prompt's hardware bullet list.

The decision value is the maximum log-ratio of estimated intensity to
balance point across op classes (positive = some class looks compute-bound,
the paper's CB rule), perturbed by model-specific reading noise that grows
with how much of the estimate rests on guesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis import analyze_kernel, find_kernel
from repro.llm.config import ModelConfig
from repro.llm.promptio import ClassifyQuery
from repro.types import OpClass
from repro.util.rng import RngStream


@dataclass(frozen=True)
class DeepAnalysis:
    """Outcome of the deep path."""

    logit: float          # positive = Compute
    raw_margin: float     # noise-free log2 margin
    guess_fraction: float
    succeeded: bool


def deep_logit(
    query: ClassifyQuery,
    model: ModelConfig,
    rng: RngStream,
) -> DeepAnalysis:
    """Run the static pipeline and produce a decision value."""
    try:
        kernel = find_kernel(query.source, query.kernel_name, query.language)
        estimate = analyze_kernel(
            kernel,
            param_values=query.argv_values(),
            branch_taken=0.5,
        )
    except Exception:
        return DeepAnalysis(logit=0.0, raw_margin=0.0, guess_fraction=1.0, succeeded=False)

    balance = query.balance_points()
    margin = -math.inf
    for op_class in OpClass:
        ai = estimate.intensity(op_class)
        bp = balance[op_class]
        if ai <= 0.0 or bp <= 0.0:
            continue
        margin = max(margin, math.log2(ai / bp))
    if not math.isfinite(margin):
        return DeepAnalysis(logit=0.0, raw_margin=0.0, guess_fraction=1.0, succeeded=False)

    # Reading noise: scaled up when the estimate rests on guessed trip
    # counts, branch densities, or data-dependent accesses.
    sigma = model.deep_noise * (1.0 + estimate.guess_fraction)
    noisy = margin + rng.normal(0.0, sigma)
    # Squash: far-from-boundary kernels are confidently classified; the
    # squash keeps the deep logit commensurate with the lexical one.
    logit = math.tanh(noisy / 3.0)
    return DeepAnalysis(
        logit=logit,
        raw_margin=margin,
        guess_fraction=estimate.guess_fraction,
        succeeded=True,
    )
