"""Distributed sweep via the shard planner and cache merging.

Splits a (model × RQ × GPU × kernel) grid into three deterministic shards,
executes each against its own isolated disk cache (in one process here —
on real infrastructure each shard is its own machine running
``repro-paper sweep --shard i/3``), merges the shard caches, and replays
the full hardware matrix from the merged store with **zero** new
completions. Equivalent CLI::

    repro-paper sweep --gpus v100,h100 --shard 0/3 --cache-dir shard-0
    repro-paper sweep --gpus v100,h100 --shard 1/3 --cache-dir shard-1
    repro-paper sweep --gpus v100,h100 --shard 2/3 --cache-dir shard-2
    repro-paper merge-caches shard-0 shard-1 shard-2 --into merged
    repro-paper sweep --gpus v100,h100 --cache-dir merged

Run:  python examples/sharded_sweep.py
"""

import tempfile
from pathlib import Path

from repro.eval.engine import DiskResponseStore, EvalEngine
from repro.eval.matrix import grid_uids, run_matrix
from repro.eval.shard import grid_units, merge_caches, plan_shards, run_shard
from repro.llm import get_model
from repro.roofline.hardware import get_gpu

MODELS = ("o3-mini-high", "gpt-4o-mini")
GPUS = ("V100", "H100")
SLICE = 20  # kernels per device; the full sweep uses all 340
NUM_SHARDS = 3

models = [get_model(n) for n in MODELS]
gpus = [get_gpu(n) for n in GPUS]

# The plan is pure arithmetic over the grid: every worker computes the same
# one locally and picks its slice — no coordinator, no messages.
units = grid_units(
    [m.name for m in models], [g.name for g in gpus], ("rq2",),
    grid_uids(SLICE),
)
plan = plan_shards(units, NUM_SHARDS)
print(f"grid: {plan.total_units} units -> "
      f"{[len(s) for s in plan.shards]} per shard")

with tempfile.TemporaryDirectory() as tmp:
    root = Path(tmp)

    # "Machines": one engine + isolated cache per shard.
    for i in range(NUM_SHARDS):
        engine = EvalEngine(jobs=2, store=DiskResponseStore(root / f"shard-{i}"))
        report = run_shard(
            models, gpus, shard_index=i, num_shards=NUM_SHARDS,
            rqs=("rq2",), limit=SLICE, engine=engine,
        )
        print(f"shard {i}: {report.units} units, "
              f"{engine.stats.completions} completions")

    # Merge: content-addressed keys union cleanly; conflicts are impossible
    # for shards of one grid and would raise rather than corrupt.
    merged = merge_caches(
        [root / f"shard-{i}" for i in range(NUM_SHARDS)], root / "merged"
    )
    print()
    print(merged.render())

    # Replay the full matrix from the merged cache: all hits, and the
    # result is byte-identical to a single-machine sweep.
    warm = EvalEngine(jobs=2, store=DiskResponseStore(root / "merged"))
    result = run_matrix(models, gpus, rqs=("rq2",), limit=SLICE, engine=warm)
    print()
    print(result.render_accuracy_table())
    print(f"\nreplay: {warm.stats.summary()}")
    assert warm.stats.completions == 0
    print(f"sweep digest: {result.digest()[:16]}…  "
          "(same value on any worker count, backend, or shard plan)")
