"""E5 — Table 1 columns 9-11: RQ3 two-shot classification.

Same 340 samples; the prompt's pseudo-code examples are replaced with two
real code examples in the queried language (held-out program variants).

Paper shape reproduced: reasoning models don't gain (o1 drops ~2.7 points
from the longer context); the mini non-reasoning models gain ~2 points;
gemini's macro-F1 degrades sharply.
"""

from __future__ import annotations

from repro.eval.report import Comparison, render_comparisons
from repro.eval.rq23 import run_rq2, run_rq3
from repro.eval.table1 import PAPER_TABLE1
from repro.llm import all_models
from repro.util.tables import format_table


def _run_all(balanced):
    return {m.name: run_rq3(m, balanced) for m in all_models()}


def test_table1_rq3(benchmark, balanced):
    results = benchmark.pedantic(_run_all, args=(balanced,), rounds=1, iterations=1)

    rows = []
    comparisons = []
    for name, r in results.items():
        pa = PAPER_TABLE1[name]
        m = r.metrics
        rows.append([name, m.accuracy, m.macro_f1, m.mcc, pa[5], pa[6], pa[7]])
        comparisons.append(Comparison("RQ3", f"{name} acc", pa[5], m.accuracy))
    print()
    print(format_table(
        ["Model", "Acc", "F1", "MCC", "Paper Acc", "Paper F1", "Paper MCC"],
        rows, title="E5 — Table 1 cols 9-11 (RQ3 two-shot)",
    ))
    print()
    print(render_comparisons("E5 — RQ3 paper vs measured", comparisons))

    for name in PAPER_TABLE1:
        assert abs(results[name].metrics.accuracy - PAPER_TABLE1[name][5]) <= 3.5, name

    # Direction checks against RQ2 (the paper's §3.6 narrative).
    rq2_o1 = run_rq2(all_models()[1], balanced).metrics.accuracy
    assert results["o1"].metrics.accuracy < rq2_o1  # o1 pays the context cost
