"""Integer-dominated families — hashing, PRNGs, bit manipulation, sorting
network steps. These populate the INTOP roofline of Figure 1: mostly
bandwidth-bound, with round-heavy crypto/PRNG kernels crossing into the
integer compute-bound region."""

from __future__ import annotations

from repro.kernels.families import family
from repro.kernels.families.helpers import assemble, draw_size_1d, variant_rng
from repro.kernels.ir import (
    ArrayDecl,
    Assign,
    AtomicAdd,
    BinOp,
    BinOpKind,
    Cast,
    Const,
    DType,
    DynamicIndex,
    For,
    If,
    Kernel,
    Let,
    Load,
    ScalarParam,
    Select,
    Store,
    Var,
    add,
    aff,
    load,
    mul,
    sub,
    var,
)
from repro.types import Language

I32 = DType.I32


def _i(v: int) -> Const:
    return Const(v, I32)


def _iv(name: str) -> Var:
    return Var(name, I32)


def _ib(op: BinOpKind, a, b) -> BinOp:
    return BinOp(op, a, b, I32)


@family("histogram", "integer", tendency="bb")
def build_histogram(variant: int, language: Language):
    rng = variant_rng("histogram", variant, language)
    n = draw_size_1d(rng)
    nbins = int(rng.choice([256, 1024, 4096, 16384]))
    bin_expr = _ib(BinOpKind.MOD, load("keys", aff("gx"), I32), _iv("nbins"))
    body = (
        AtomicAdd(
            "hist",
            DynamicIndex(expr=bin_expr, range_hint="nbins", pattern="random"),
            _i(1),
            I32,
        ),
    )
    kernel = Kernel(
        name="histogram_kernel",
        arrays=(
            ArrayDecl("keys", I32, "n"),
            ArrayDecl("hist", I32, "nbins", is_output=True),
        ),
        params=(ScalarParam("nbins", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="histogram", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "nbins": nbins},
        binding_exprs={"nbins": "nbins", "n": "n"},
        description="atomic histogram of integer keys",
    )


@family("xorshift_stream", "integer", tendency="cb")
def build_xorshift(variant: int, language: Language):
    rng = variant_rng("xorshift_stream", variant, language)
    n = draw_size_1d(rng)
    rounds = int(rng.choice([32, 48, 64]))
    body = (
        Let("state", _ib(BinOpKind.ADD, load("seeds", aff("gx"), I32), _i(88172645)), I32),
        For(
            "r", "rounds",
            (
                Assign("state", _ib(BinOpKind.XOR, _iv("state"),
                                    _ib(BinOpKind.SHL, _iv("state"), _i(13))), I32),
                Assign("state", _ib(BinOpKind.XOR, _iv("state"),
                                    _ib(BinOpKind.SHR, _iv("state"), _i(7))), I32),
                Assign("state", _ib(BinOpKind.XOR, _iv("state"),
                                    _ib(BinOpKind.SHL, _iv("state"), _i(17))), I32),
            ),
        ),
        Store("out", aff("gx"), _iv("state"), I32),
    )
    kernel = Kernel(
        name="xorshift_stream_kernel",
        arrays=(ArrayDecl("seeds", I32, "n"), ArrayDecl("out", I32, "n", is_output=True)),
        params=(ScalarParam("rounds", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="xorshift_stream", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "rounds": rounds},
        binding_exprs={"rounds": "rounds", "n": "n"},
        description="xorshift PRNG stream generation",
    )


@family("pcg_hash", "integer", tendency="bb")
def build_pcg(variant: int, language: Language):
    rng = variant_rng("pcg_hash", variant, language)
    n = draw_size_1d(rng)
    body = (
        Let("h", _ib(BinOpKind.MUL, load("keys", aff("gx"), I32), _i(747796405)), I32),
        Assign("h", _ib(BinOpKind.ADD, _iv("h"), _i(2891336453)), I32),
        Let("w", _ib(BinOpKind.SHR, _iv("h"),
                     _ib(BinOpKind.ADD, _ib(BinOpKind.SHR, _iv("h"), _i(28)), _i(4))), I32),
        Assign("w", _ib(BinOpKind.MUL, _ib(BinOpKind.XOR, _iv("w"), _iv("h")), _i(277803737)), I32),
        Store("out", aff("gx"), _ib(BinOpKind.XOR, _iv("w"),
                                    _ib(BinOpKind.SHR, _iv("w"), _i(22))), I32),
    )
    kernel = Kernel(
        name="pcg_hash_kernel",
        arrays=(ArrayDecl("keys", I32, "n"), ArrayDecl("out", I32, "n", is_output=True)),
        params=(ScalarParam("n", I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="pcg_hash", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description="PCG output-permutation hash per element",
    )


@family("crc_rounds", "integer", tendency="cb")
def build_crc(variant: int, language: Language):
    rng = variant_rng("crc_rounds", variant, language)
    n = draw_size_1d(rng)
    rounds = 32
    body = (
        Let("crc", load("words", aff("gx"), I32), I32),
        For(
            "b", "rounds",
            (
                Let("mask", sub(_i(0), _ib(BinOpKind.AND, _iv("crc"), _i(1)), I32), I32),
                Assign(
                    "crc",
                    _ib(BinOpKind.XOR,
                        _ib(BinOpKind.SHR, _iv("crc"), _i(1)),
                        _ib(BinOpKind.AND, _i(0x6DB88320), _iv("mask"))),
                    I32,
                ),
            ),
        ),
        Store("out", aff("gx"), _iv("crc"), I32),
    )
    kernel = Kernel(
        name="crc32_bitwise_kernel",
        arrays=(ArrayDecl("words", I32, "n"), ArrayDecl("out", I32, "n", is_output=True)),
        params=(ScalarParam("rounds", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="crc_rounds", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "rounds": rounds},
        binding_exprs={"rounds": "rounds", "n": "n"},
        description="bitwise CRC32 over one word per thread",
    )


@family("fnv1a_chunks", "integer", tendency="bb")
def build_fnv(variant: int, language: Language):
    rng = variant_rng("fnv1a_chunks", variant, language)
    n = draw_size_1d(rng)
    chunk = int(rng.choice([4, 8, 16]))
    body = (
        Let("h", _i(-2128831035), I32),
        For(
            "k", "chunk",
            (
                Let("byte_val", load("data", aff(("gx", "chunk"), "k"), I32), I32),
                Assign("h", _ib(BinOpKind.XOR, _iv("h"), _iv("byte_val")), I32),
                Assign("h", _ib(BinOpKind.MUL, _iv("h"), _i(16777619)), I32),
            ),
        ),
        Store("hashes", aff("gx"), _iv("h"), I32),
    )
    kernel = Kernel(
        name="fnv1a_hash_kernel",
        arrays=(
            ArrayDecl("data", I32, "n*chunk"),
            ArrayDecl("hashes", I32, "n", is_output=True),
        ),
        params=(ScalarParam("chunk", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="fnv1a_chunks", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "chunk": chunk},
        binding_exprs={"chunk": "chunk", "n": "n"},
        description=f"FNV-1a hash of {chunk}-word chunks",
    )


@family("murmur_mix", "integer", tendency="bb")
def build_murmur(variant: int, language: Language):
    rng = variant_rng("murmur_mix", variant, language)
    n = draw_size_1d(rng)
    body = (
        Let("h", load("keys", aff("gx"), I32), I32),
        Assign("h", _ib(BinOpKind.XOR, _iv("h"), _ib(BinOpKind.SHR, _iv("h"), _i(16))), I32),
        Assign("h", _ib(BinOpKind.MUL, _iv("h"), _i(-2048144789)), I32),
        Assign("h", _ib(BinOpKind.XOR, _iv("h"), _ib(BinOpKind.SHR, _iv("h"), _i(13))), I32),
        Assign("h", _ib(BinOpKind.MUL, _iv("h"), _i(-1028477387)), I32),
        Assign("h", _ib(BinOpKind.XOR, _iv("h"), _ib(BinOpKind.SHR, _iv("h"), _i(16))), I32),
        Store("out", aff("gx"), _iv("h"), I32),
    )
    kernel = Kernel(
        name="murmur3_finalizer_kernel",
        arrays=(ArrayDecl("keys", I32, "n"), ArrayDecl("out", I32, "n", is_output=True)),
        params=(ScalarParam("n", I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="murmur_mix", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description="MurmurHash3 finalizer mix",
    )


@family("bit_reverse", "integer", tendency="bb")
def build_bit_reverse(variant: int, language: Language):
    rng = variant_rng("bit_reverse", variant, language)
    n = draw_size_1d(rng)
    body = (
        Let("v", load("words", aff("gx"), I32), I32),
        Assign("v", _ib(
            BinOpKind.OR,
            _ib(BinOpKind.SHR, _ib(BinOpKind.AND, _iv("v"), _i(-1431655766)), _i(1)),
            _ib(BinOpKind.SHL, _ib(BinOpKind.AND, _iv("v"), _i(1431655765)), _i(1))), I32),
        Assign("v", _ib(
            BinOpKind.OR,
            _ib(BinOpKind.SHR, _ib(BinOpKind.AND, _iv("v"), _i(-858993460)), _i(2)),
            _ib(BinOpKind.SHL, _ib(BinOpKind.AND, _iv("v"), _i(858993459)), _i(2))), I32),
        Assign("v", _ib(
            BinOpKind.OR,
            _ib(BinOpKind.SHR, _ib(BinOpKind.AND, _iv("v"), _i(-252645136)), _i(4)),
            _ib(BinOpKind.SHL, _ib(BinOpKind.AND, _iv("v"), _i(252645135)), _i(4))), I32),
        Assign("v", _ib(
            BinOpKind.OR,
            _ib(BinOpKind.SHR, _ib(BinOpKind.AND, _iv("v"), _i(-16711936)), _i(8)),
            _ib(BinOpKind.SHL, _ib(BinOpKind.AND, _iv("v"), _i(16711935)), _i(8))), I32),
        Store("out", aff("gx"),
              _ib(BinOpKind.OR,
                  _ib(BinOpKind.SHR, _iv("v"), _i(16)),
                  _ib(BinOpKind.SHL, _iv("v"), _i(16))), I32),
    )
    kernel = Kernel(
        name="bit_reverse_kernel",
        arrays=(ArrayDecl("words", I32, "n"), ArrayDecl("out", I32, "n", is_output=True)),
        params=(ScalarParam("n", I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="bit_reverse", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description="32-bit bit-reversal via mask-and-shift",
    )


@family("popcount_chunks", "integer", tendency="bb")
def build_popcount(variant: int, language: Language):
    rng = variant_rng("popcount_chunks", variant, language)
    n = draw_size_1d(rng)
    body = (
        Let("v", load("words", aff("gx"), I32), I32),
        Assign("v", sub(_iv("v"),
                        _ib(BinOpKind.AND, _ib(BinOpKind.SHR, _iv("v"), _i(1)),
                            _i(1431655765)), I32), I32),
        Assign("v", add(_ib(BinOpKind.AND, _iv("v"), _i(858993459)),
                        _ib(BinOpKind.AND, _ib(BinOpKind.SHR, _iv("v"), _i(2)),
                            _i(858993459)), I32), I32),
        Assign("v", _ib(BinOpKind.AND,
                        add(_iv("v"), _ib(BinOpKind.SHR, _iv("v"), _i(4)), I32),
                        _i(252645135)), I32),
        Store("counts", aff("gx"),
              _ib(BinOpKind.SHR, _ib(BinOpKind.MUL, _iv("v"), _i(16843009)), _i(24)), I32),
    )
    kernel = Kernel(
        name="popcount_kernel",
        arrays=(ArrayDecl("words", I32, "n"), ArrayDecl("counts", I32, "n", is_output=True)),
        params=(ScalarParam("n", I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="popcount_chunks", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description="SWAR population count per word",
    )


@family("modexp", "integer", tendency="cb")
def build_modexp(variant: int, language: Language):
    rng = variant_rng("modexp", variant, language)
    n = draw_size_1d(rng)
    rounds = int(rng.choice([24, 32, 48]))
    body = (
        Let("base", load("bases", aff("gx"), I32), I32),
        Let("result", _i(1), I32),
        Let("e", load("exps", aff("gx"), I32), I32),
        For(
            "r", "rounds",
            (
                If(
                    cond=_ib(BinOpKind.AND, _iv("e"), _i(1)),
                    then=(
                        Assign("result",
                               _ib(BinOpKind.MOD,
                                   _ib(BinOpKind.MUL, _iv("result"), _iv("base")),
                                   _iv("modulus")), I32),
                    ),
                    taken_fraction=0.5,
                ),
                Assign("base",
                       _ib(BinOpKind.MOD,
                           _ib(BinOpKind.MUL, _iv("base"), _iv("base")),
                           _iv("modulus")), I32),
                Assign("e", _ib(BinOpKind.SHR, _iv("e"), _i(1)), I32),
            ),
        ),
        Store("out", aff("gx"), _iv("result"), I32),
    )
    kernel = Kernel(
        name="modexp_kernel",
        arrays=(
            ArrayDecl("bases", I32, "n"),
            ArrayDecl("exps", I32, "n"),
            ArrayDecl("out", I32, "n", is_output=True),
        ),
        params=(ScalarParam("modulus", I32), ScalarParam("rounds", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="modexp", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "rounds": rounds},
        binding_exprs={"modulus": 1000000007, "rounds": "rounds", "n": "n"},
        description="square-and-multiply modular exponentiation",
    )


@family("bitonic_pass", "integer", tendency="bb")
def build_bitonic(variant: int, language: Language):
    rng = variant_rng("bitonic_pass", variant, language)
    n = draw_size_1d(rng)
    stride = int(rng.choice([1, 2, 4, 8]))
    lo = Load("keys", aff("gx"), I32)
    hi = Load("keys", aff("gx", const=stride), I32)
    body = (
        Let("a_val", lo, I32),
        Let("b_val", hi, I32),
        Let("lo_val", _ib(BinOpKind.MIN, _iv("a_val"), _iv("b_val")), I32),
        Let("hi_val", _ib(BinOpKind.MAX, _iv("a_val"), _iv("b_val")), I32),
        Store("out", aff("gx"), _iv("lo_val"), I32),
        Store("out", aff("gx", const=stride), _iv("hi_val"), I32),
    )
    kernel = Kernel(
        name="bitonic_compare_swap",
        arrays=(ArrayDecl("keys", I32, "m"), ArrayDecl("out", I32, "m", is_output=True)),
        params=(ScalarParam("n", I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="bitonic_pass", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "m": n + stride},
        binding_exprs={"n": "n"},
        description=f"bitonic compare-exchange pass at stride {stride}",
    )


@family("sha_rounds", "integer", tendency="cb")
def build_sha_rounds(variant: int, language: Language):
    rng = variant_rng("sha_rounds", variant, language)
    n = int(rng.choice([1 << 17, 1 << 18, 1 << 19]))
    rounds = int(rng.choice([48, 64, 80]))
    body = (
        Let("a_reg", load("msg", aff(("gx", 2)), I32), I32),
        Let("b_reg", load("msg", aff(("gx", 2), const=1), I32), I32),
        Let("c_reg", _i(0x67452301), I32),
        For(
            "r", "rounds",
            (
                Let("f_mix", _ib(
                    BinOpKind.XOR,
                    _ib(BinOpKind.AND, _iv("a_reg"), _iv("b_reg")),
                    _ib(BinOpKind.AND,
                        _ib(BinOpKind.XOR, _iv("a_reg"), _i(-1)), _iv("c_reg"))), I32),
                Let("rot", _ib(
                    BinOpKind.OR,
                    _ib(BinOpKind.SHL, _iv("a_reg"), _i(5)),
                    _ib(BinOpKind.SHR, _iv("a_reg"), _i(27))), I32),
                Let("tmp_val", add(add(_iv("rot"), _iv("f_mix"), I32),
                                   add(_iv("c_reg"), _i(0x5A827999), I32), I32), I32),
                Assign("c_reg", _iv("b_reg"), I32),
                Assign("b_reg",
                       _ib(BinOpKind.OR,
                           _ib(BinOpKind.SHL, _iv("a_reg"), _i(30)),
                           _ib(BinOpKind.SHR, _iv("a_reg"), _i(2))), I32),
                Assign("a_reg", _iv("tmp_val"), I32),
            ),
        ),
        Store("digest", aff("gx"),
              _ib(BinOpKind.XOR, _iv("a_reg"),
                  _ib(BinOpKind.XOR, _iv("b_reg"), _iv("c_reg"))), I32),
    )
    kernel = Kernel(
        name="sha1_round_kernel",
        arrays=(
            ArrayDecl("msg", I32, "2*n"),
            ArrayDecl("digest", I32, "n", is_output=True),
        ),
        params=(ScalarParam("rounds", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="sha_rounds", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "rounds": rounds},
        binding_exprs={"rounds": "rounds", "n": "n"},
        description="SHA-1 style round compression per message pair",
    )


@family("adler32_chunks", "integer", tendency="bb")
def build_adler(variant: int, language: Language):
    rng = variant_rng("adler32_chunks", variant, language)
    n = draw_size_1d(rng)
    chunk = int(rng.choice([8, 16, 32]))
    body = (
        Let("s1", _i(1), I32),
        Let("s2", _i(0), I32),
        For(
            "k", "chunk",
            (
                Assign("s1",
                       _ib(BinOpKind.MOD,
                           add(_iv("s1"), load("data", aff(("gx", "chunk"), "k"), I32), I32),
                           _i(65521)), I32),
                Assign("s2", _ib(BinOpKind.MOD, add(_iv("s2"), _iv("s1"), I32), _i(65521)), I32),
            ),
        ),
        Store("checksums", aff("gx"),
              _ib(BinOpKind.OR, _ib(BinOpKind.SHL, _iv("s2"), _i(16)), _iv("s1")), I32),
    )
    kernel = Kernel(
        name="adler32_kernel",
        arrays=(
            ArrayDecl("data", I32, "n*chunk"),
            ArrayDecl("checksums", I32, "n", is_output=True),
        ),
        params=(ScalarParam("chunk", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="adler32_chunks", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "chunk": chunk},
        binding_exprs={"chunk": "chunk", "n": "n"},
        description=f"Adler-32 checksum of {chunk}-word chunks",
    )
