"""Generic content-addressed artifact stores.

The repo grew three persistent caches with the same shape — the response
cache (PR 1), the kernel-profile store (PR 4), and now the text-artifact
stores for tokenizers and rendered sources. This package factors the
shared segment/eviction/atomic-write/manifest machinery into one
:class:`ArtifactStore` base so every store obeys the same contract:

* entries are addressed by SHA-256 content digests that hash in a version
  string — a stale entry can only read as a *miss*, never as a wrong
  value;
* storage is segment-per-batch JSON (one file per reuse unit), written
  atomically (temp file + ``os.replace``); torn/corrupt/foreign files
  read as empty and the next put repairs them;
* stores can be size-bounded, evicting whole oldest-written segments
  until they fit.

Concrete stores: :class:`repro.gpusim.store.ProfileStore` (kernel
profiles + symbolic traces), :class:`repro.store.text.TokenizerStore`
(learned BPE merges), and :class:`repro.store.text.RenderStore`
(rendered program sources + per-tokenizer token counts).
"""

from repro.store.base import ArtifactStore, memoized_object_key
from repro.store.doctor import (
    DoctorReport,
    StoreIssue,
    diagnose_store,
    doctor_store,
    quiet_attach,
    repair_store,
)
from repro.store.text import (
    ARTIFACT_CACHE_ENV,
    ARTIFACT_CACHE_MAX_BYTES_ENV,
    DEFAULT_ARTIFACT_CACHE_DIRNAME,
    TEXT_VERSION,
    ArtifactCache,
    ArtifactCacheManifest,
    RenderStore,
    TokenizerStore,
    active_artifact_cache,
    default_artifact_cache_dir,
    default_artifact_cache_max_bytes,
    program_text_key,
    reset_active_artifact_cache,
    set_active_artifact_cache,
    tokenizer_train_key,
)

__all__ = [
    "ArtifactStore",
    "memoized_object_key",
    "DoctorReport",
    "StoreIssue",
    "diagnose_store",
    "doctor_store",
    "quiet_attach",
    "repair_store",
    "TEXT_VERSION",
    "ARTIFACT_CACHE_ENV",
    "ARTIFACT_CACHE_MAX_BYTES_ENV",
    "DEFAULT_ARTIFACT_CACHE_DIRNAME",
    "ArtifactCache",
    "ArtifactCacheManifest",
    "TokenizerStore",
    "RenderStore",
    "active_artifact_cache",
    "set_active_artifact_cache",
    "reset_active_artifact_cache",
    "default_artifact_cache_dir",
    "default_artifact_cache_max_bytes",
    "program_text_key",
    "tokenizer_train_key",
]
