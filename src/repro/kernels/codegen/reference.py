"""CPU reference implementation generation.

Benchmark suites routinely ship a sequential reference implementation used
to validate device results; for heavyweight (bloat level 2) programs we
generate one — the same kernel IR rendered as plain nested host loops plus a
validation driver. Kernels that depend on block-local shared memory have no
direct sequential transliteration and are skipped with a note, as real
suites often do.
"""

from __future__ import annotations

from repro.kernels.codegen.common import BackendHooks, render_stmts
from repro.kernels.ir import ArrayDecl, DType, Kernel
from repro.kernels.launch import KernelInstance
from repro.kernels.program import ProgramSpec, SourceFile


def _rsqrt(args: str, dtype: DType) -> str:
    one = "1.0f" if dtype is DType.F32 else "1.0"
    fn = "sqrtf" if dtype is DType.F32 else "sqrt"
    return f"({one} / {fn}({args}))"


def _atomic_add(target: str, value: str, dtype: DType) -> list[str]:
    # Sequential execution needs no atomicity.
    return [f"{target} += {value};"]


def _sync() -> list[str]:
    raise NotImplementedError("shared-memory kernels have no sequential transliteration")


def _unroll(n: int) -> str:
    return f"// unroll({n}) elided in reference build"


CPU_HOOKS = BackendHooks(
    rsqrt_spelling=_rsqrt,
    atomic_add=_atomic_add,
    sync_threads=_sync,
    unroll_pragma=_unroll,
)


def _param_decl(arr: ArrayDecl) -> str:
    qual = "" if arr.is_output else "const "
    return f"{qual}{arr.dtype.c_name} *{arr.name}"


def render_reference_kernel(kernel: Kernel) -> str:
    """Render the sequential CPU version of one kernel."""
    if kernel.shared_arrays():
        return (
            f"// NOTE: {kernel.name} uses block-local shared memory; the tiled\n"
            f"// schedule has no direct sequential transliteration. Validate this\n"
            f"// kernel against the naive device variant instead."
        )
    params = [_param_decl(a) for a in kernel.global_arrays()]
    params += [f"{p.dtype.c_name} {p.name}" for p in kernel.params]
    lines = [f"static void {kernel.name}_cpu({', '.join(params)})", "{"]
    nx = kernel.work_items if isinstance(kernel.work_items, str) else str(kernel.work_items)
    if kernel.work_items_y is None:
        lines.append(f"  for (int gx = 0; gx < {nx}; gx++) {{")
        lines.extend(render_stmts(kernel.body, CPU_HOOKS, 2))
        lines.append("  }")
    else:
        ny = (
            kernel.work_items_y
            if isinstance(kernel.work_items_y, str)
            else str(kernel.work_items_y)
        )
        lines.append(f"  for (int gy = 0; gy < {ny}; gy++) {{")
        lines.append(f"    for (int gx = 0; gx < {nx}; gx++) {{")
        lines.extend(render_stmts(kernel.body, CPU_HOOKS, 3))
        lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def render_reference_file(spec: ProgramSpec) -> SourceFile:
    """Render ``reference_impl.h``: CPU kernels + a validation driver."""
    first = spec.first_kernel
    kern = first.kernel
    lines = [
        f"// reference_impl.h — sequential CPU reference for {spec.name}",
        "// Used by the validation pass to cross-check device output.",
        "#ifndef REFERENCE_IMPL_H",
        "#define REFERENCE_IMPL_H",
        "",
        render_reference_kernel(kern),
        "",
    ]
    outputs = [a for a in kern.global_arrays() if a.is_output]
    if outputs and not kern.shared_arrays():
        out = outputs[0]
        ct = out.dtype.c_name
        size = out.size if isinstance(out.size, str) else str(out.size)
        arrays = kern.global_arrays()
        alloc_lines = []
        call_args = []
        for a in arrays:
            asize = a.size if isinstance(a.size, str) else str(a.size)
            an = f"ref_{a.name}"
            alloc_lines.append(
                f"  {a.dtype.c_name} *{an} = ({a.dtype.c_name} *)"
                f"malloc((size_t)({asize}) * sizeof({a.dtype.c_name}));"
            )
            alloc_lines.append(
                f"  memcpy({an}, {a.name}, (size_t)({asize}) * sizeof({a.dtype.c_name}));"
            )
            call_args.append(an)
        scalar_args = [p.name for p in kern.params]
        flag_params = ", ".join(
            f"{p.dtype.c_name} {p.name}" for p in kern.params
        )
        array_params = ", ".join(
            f"const {a.dtype.c_name} *{a.name}" for a in arrays
        )
        lines.extend(
            [
                f"static double validate_{kern.name}({array_params}"
                + (", " if flag_params else "")
                + f"{flag_params}) {{",
                *alloc_lines,
                f"  {kern.name}_cpu({', '.join(call_args + scalar_args)});",
                "  double err = 0.0;",
                f"  for (long i = 0; i < (long)({size}); i++) {{",
                f"    double d = (double)ref_{out.name}[i] - (double){out.name}[i];",
                "    err += d * d;",
                "  }",
                *[f"  free(ref_{a.name});" for a in arrays],
                f"  return sqrt(err / (double)({size}));",
                "}",
            ]
        )
    lines.append("")
    lines.append("#endif // REFERENCE_IMPL_H")
    return SourceFile("reference_impl.h", "\n".join(lines))
