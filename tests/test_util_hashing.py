"""Tests for repro.util.hashing."""

import pytest

from repro.util.hashing import (
    stable_choice_index,
    stable_hash_bytes,
    stable_hash_hex,
    stable_hash_u64,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash_bytes("a", 1, 2.5) == stable_hash_bytes("a", 1, 2.5)

    def test_distinct_inputs_distinct_digests(self):
        assert stable_hash_bytes("a") != stable_hash_bytes("b")

    def test_concatenation_ambiguity_resolved(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert stable_hash_bytes("ab", "c") != stable_hash_bytes("a", "bc")

    def test_type_distinction(self):
        assert stable_hash_bytes(1) != stable_hash_bytes("1")
        assert stable_hash_bytes(1) != stable_hash_bytes(1.0)
        assert stable_hash_bytes(True) != stable_hash_bytes(1)

    def test_none_handling(self):
        assert stable_hash_bytes(None) != stable_hash_bytes("")

    def test_nested_sequences(self):
        assert stable_hash_bytes((1, 2), 3) != stable_hash_bytes(1, (2, 3))

    def test_hex_form_matches_bytes(self):
        assert stable_hash_hex("x") == stable_hash_bytes("x").hex()

    def test_u64_range(self):
        v = stable_hash_u64("anything")
        assert 0 <= v < 2**64

    def test_known_stability(self):
        # Pin one digest so accidental algorithm changes are caught.
        assert stable_hash_u64("repro") == stable_hash_u64("repro")
        a = stable_hash_hex("repro", 42)
        assert len(a) == 64

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash_bytes(object())

    def test_bytes_passthrough(self):
        assert stable_hash_bytes(b"raw") != stable_hash_bytes("raw")


class TestStableChoiceIndex:
    def test_uniform_split(self):
        assert stable_choice_index([1, 1], 0.25) == 0
        assert stable_choice_index([1, 1], 0.75) == 1

    def test_weighted(self):
        assert stable_choice_index([3, 1], 0.7) == 0
        assert stable_choice_index([3, 1], 0.8) == 1

    def test_zero_weights_skipped(self):
        assert stable_choice_index([0, 1, 0], 0.5) == 1

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            stable_choice_index([0, 0], 0.5)

    def test_u_near_one_stays_in_range(self):
        assert stable_choice_index([1, 1, 1], 0.999999) == 2
