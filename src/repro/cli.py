"""Command-line interface: run any of the paper's experiments from a shell.

Installed as ``repro-paper``; every subcommand is also reachable via
``python -m repro.cli``. Examples::

    repro-paper models
    repro-paper dataset --out balanced.jsonl
    repro-paper classify cuda/saxpy-v1 --model o3-mini-high
    repro-paper rq1 --model gpt-4o-mini
    repro-paper rq2 --model o3-mini-high --limit 50
    repro-paper rq4 --scope cuda
    repro-paper decompose --model o1 --limit 50
    repro-paper table1 --jobs 8
    repro-paper matrix --gpus all --jobs 4 --backend process
    repro-paper matrix --gpus v100,h100 --rq both --stats
    repro-paper stats --gpus v100,h100 --rq both --stats-seed 7
    repro-paper variants
    repro-paper export stats --gpus v100,h100 --rq both --out stats.json
    repro-paper sweep --gpus v100,h100 --shard 0/3 --cache-dir shard-0
    repro-paper merge-caches shard-0 shard-1 shard-2 --into merged
    repro-paper figures --which 1
    repro-paper cache --wipe
    repro-paper doctor --dry-run
    repro-paper serve --port 8077 --warm
    repro-paper sweep --gpus all --resume --failure-mode collect

Experiment commands accept ``--jobs`` (workers; 0 = all cores) and
``--backend`` (``thread`` default; ``process`` sidesteps the GIL for cold
sweeps), and share a content-addressed response cache (``--cache-dir``,
default ``$REPRO_CACHE_DIR`` or ``.repro-cache``; size-bound it with
``--cache-max-bytes``, disable with ``--no-cache``), so a repeated run
replays memoized completions instead of re-querying the models. Kernel
profiling persists the same way in a content-addressed profile store
(``--profile-cache``, default ``$REPRO_PROFILE_CACHE`` or
``.repro-profile-cache``; ``--profile-cache-max-bytes`` /
``--no-profile-cache``), so a warm store skips the symbolic IR walk
entirely on later runs, shards, and CI jobs. Text artifacts — the
trained BPE tokenizer, rendered program sources, and token counts —
persist in a third content-addressed store (``--artifact-cache``,
default ``$REPRO_ARTIFACT_CACHE`` or ``.repro-artifact-cache``;
``--artifact-cache-max-bytes`` / ``--no-artifact-cache``), so a warm
cache trains zero tokenizers and renders zero programs.

Distributed sweeps: ``sweep --shard I/N`` executes one deterministic shard
of the (model × regime × GPU × kernel) grid on any machine, and
``merge-caches`` unions the shard caches into one store whose replayed
report is byte-identical to a single-machine run.

Fault tolerance: experiment commands take ``--failure-mode collect`` (record
units that exhaust their retries instead of aborting; bound with
``--max-failures``), ``--resume`` (journal completed units into the cache
dir and skip them on the next run — Ctrl-C/SIGTERM checkpoint the journal
and exit 130), and ``--inject-faults SPEC`` (a seeded, deterministic fault
plan for chaos testing; also ``$REPRO_FAULT_PLAN``). ``repro-paper
doctor`` fscks all three stores and quarantines damage (``--dry-run``
reports only).

Matrix regimes are prompt variants: ``--rq rq2|rq3|both`` selects the two
seed regimes and ``--variants name,…`` appends ablation variants
(``no-hint``, ``problem-hint``, ``few-shot-K``; see
``repro-paper variants``). ``matrix --stats`` / ``stats`` append the
significance report (paired Wilcoxon, A12 effect sizes, seeded bootstrap
CIs — ``--stats-seed``, ``--resamples``, ``--ci-method``), and ``export``
writes any run/matrix/stats result as JSON through the shared
``Reportable`` writer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence


def _add_store_flags(p: argparse.ArgumentParser) -> None:
    from repro.gpusim.store import DEFAULT_PROFILE_CACHE_DIRNAME
    from repro.store.text import DEFAULT_ARTIFACT_CACHE_DIRNAME

    p.add_argument("--profile-cache", default=None,
                   help="persistent kernel-profile store directory "
                        "(default: $REPRO_PROFILE_CACHE or "
                        f"{DEFAULT_PROFILE_CACHE_DIRNAME})")
    p.add_argument("--profile-cache-max-bytes", type=int, default=None,
                   help="size-bound the profile store, evicting oldest "
                        "segments (default: $REPRO_PROFILE_CACHE_MAX_BYTES "
                        "or unbounded)")
    p.add_argument("--no-profile-cache", action="store_true",
                   help="disable the persistent profile store for this run")
    p.add_argument("--artifact-cache", default=None,
                   help="persistent text-artifact store directory: trained "
                        "tokenizers, rendered sources, token counts "
                        "(default: $REPRO_ARTIFACT_CACHE or "
                        f"{DEFAULT_ARTIFACT_CACHE_DIRNAME})")
    p.add_argument("--artifact-cache-max-bytes", type=int, default=None,
                   help="size-bound the artifact cache, evicting oldest "
                        "segments (default: $REPRO_ARTIFACT_CACHE_MAX_BYTES "
                        "or unbounded)")
    p.add_argument("--no-artifact-cache", action="store_true",
                   help="disable the persistent text-artifact store for "
                        "this run")


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    from repro.eval.engine import DEFAULT_CACHE_DIRNAME

    p.add_argument("--cache-dir", default=None,
                   help="response cache directory (default: $REPRO_CACHE_DIR "
                        f"or {DEFAULT_CACHE_DIRNAME})")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   help="size-bound the cache, evicting oldest entries "
                        "(default: $REPRO_CACHE_MAX_BYTES or unbounded)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the response cache for this run")
    _add_store_flags(p)


def _add_fault_flags(p: argparse.ArgumentParser) -> None:
    from repro.eval.engine import FAILURE_MODES

    p.add_argument("--failure-mode", choices=FAILURE_MODES,
                   default="fail_fast",
                   help="what to do when a unit exhausts its retries: "
                        "fail_fast aborts the run (default); collect "
                        "records the unit as failed and keeps going")
    p.add_argument("--max-failures", type=int, default=None,
                   help="with --failure-mode collect, abort once this many "
                        "units have failed (default: unlimited)")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault plan for chaos testing, e.g. "
                        "'seed=7;provider_error:rate=0.25,attempts=2;"
                        "torn_write:rate=0.5' (default: $REPRO_FAULT_PLAN "
                        "if set)")
    p.add_argument("--resume", action="store_true",
                   help="journal completed units to the response cache and "
                        "skip units an earlier interrupted run already "
                        "journaled")


def _add_engine_flags(p: argparse.ArgumentParser) -> None:
    from repro.util.parallel import BACKENDS, DEFAULT_BACKEND

    p.add_argument("--jobs", type=int, default=1,
                   help="workers for (model, item) work units "
                        "(0 = all cores; default 1)")
    p.add_argument("--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
                   help="executor backend: threads share memory (best warm); "
                        "processes sidestep the GIL (best cold); "
                        f"default {DEFAULT_BACKEND}")
    _add_fault_flags(p)
    _add_cache_flags(p)


def _flag_or_default(args: argparse.Namespace, attr: str, default_fn):
    """One rule for every store flag with an env-backed default: an
    explicit CLI value wins, otherwise the env/default resolver applies.
    """
    value = getattr(args, attr, None)
    # "" falls through like None (empty dir flag); 0 does not (a zero size
    # bound means "keep nothing", which is a real request).
    return value if value not in (None, "") else default_fn()


def _configure_stores(args: argparse.Namespace) -> None:
    """Install the process-wide profile store and artifact cache from CLI
    flags.

    Every consumer downstream (dataset build, tokenizer training, matrix
    scenarios, shard execution) picks them up via
    :func:`repro.gpusim.store.active_profile_store` /
    :func:`repro.store.text.active_artifact_cache` — no threading of
    store objects through call chains.
    """
    from repro.gpusim.store import (
        ProfileStore,
        default_profile_cache_dir,
        default_profile_cache_max_bytes,
        set_active_profile_store,
    )
    from repro.store.text import (
        ArtifactCache,
        default_artifact_cache_dir,
        default_artifact_cache_max_bytes,
        set_active_artifact_cache,
    )

    if getattr(args, "no_profile_cache", False):
        set_active_profile_store(None)
    else:
        set_active_profile_store(ProfileStore(
            _flag_or_default(args, "profile_cache", default_profile_cache_dir),
            max_bytes=_flag_or_default(
                args, "profile_cache_max_bytes",
                default_profile_cache_max_bytes,
            ),
        ))

    if getattr(args, "no_artifact_cache", False):
        set_active_artifact_cache(None)
    else:
        set_active_artifact_cache(ArtifactCache(
            _flag_or_default(
                args, "artifact_cache", default_artifact_cache_dir
            ),
            max_bytes=_flag_or_default(
                args, "artifact_cache_max_bytes",
                default_artifact_cache_max_bytes,
            ),
        ))


def _configure_faults(args: argparse.Namespace) -> None:
    """Install the fault plan named by ``--inject-faults`` process-wide.

    Without the flag any ``$REPRO_FAULT_PLAN`` plan stays in effect (that
    is how sharded workers and subprocess chaos tests inherit one). A
    malformed spec is a usage error: print it and exit 2 like argparse.
    """
    from repro.util.faults import FaultPlan, set_active_fault_plan

    spec = getattr(args, "inject_faults", None)
    if spec is None:
        return
    try:
        plan = FaultPlan.parse(spec)
    except ValueError as exc:
        print(f"error: --inject-faults: {exc}", file=sys.stderr)
        raise SystemExit(2)
    set_active_fault_plan(plan)


def _add_stats_flags(p: argparse.ArgumentParser) -> None:
    from repro.analysis.stats import DEFAULT_RESAMPLES, DEFAULT_STATS_SEED

    p.add_argument("--stats-seed", type=int, default=DEFAULT_STATS_SEED,
                   help="seed for the bootstrap resampling streams "
                        f"(default {DEFAULT_STATS_SEED}; same seed = "
                        "same report digest)")
    p.add_argument("--resamples", type=int, default=DEFAULT_RESAMPLES,
                   help="bootstrap resamples per (cell, metric) CI "
                        f"(default {DEFAULT_RESAMPLES})")
    p.add_argument("--ci-method", choices=("bca", "percentile"),
                   default="bca",
                   help="bootstrap CI construction (default bca)")
    p.add_argument("--confidence", type=float, default=0.95,
                   help="CI confidence level (default 0.95)")


def _add_regime_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--rq", choices=("rq2", "rq3", "both"), default="rq2",
                   help="classification regime(s) to sweep (default rq2)")
    p.add_argument("--variants", default="",
                   help="comma-separated extra prompt-variant regimes to "
                        "sweep alongside --rq (e.g. no-hint,problem-hint,"
                        "few-shot-4); see 'repro-paper variants'")


def _resolve_regimes(args: argparse.Namespace) -> tuple[str, ...]:
    """Compose the regime axis from ``--rq`` plus ``--variants``."""
    regimes = list(("rq2", "rq3") if args.rq == "both" else (args.rq,))
    for label in (getattr(args, "variants", "") or "").split(","):
        label = label.strip()
        if label and label not in regimes:
            regimes.append(label)
    return tuple(regimes)


def _build_stats(args: argparse.Namespace, result):
    from repro.analysis.stats import build_stats_report

    return build_stats_report(
        result,
        seed=args.stats_seed,
        n_resamples=args.resamples,
        confidence=args.confidence,
        ci_method=args.ci_method,
    )


def _make_store(args: argparse.Namespace):
    """The response store selected by the cache flags (None = disabled)."""
    from repro.eval.engine import (
        DiskResponseStore,
        default_cache_dir,
        default_cache_max_bytes,
    )

    if args.no_cache:
        return None
    return DiskResponseStore(
        _flag_or_default(args, "cache_dir", default_cache_dir),
        max_bytes=_flag_or_default(
            args, "cache_max_bytes", default_cache_max_bytes
        ),
    )


def _sweep_label(args: argparse.Namespace) -> str:
    """A stable human-readable label for the journal header line."""
    bits = [getattr(args, "command", "run")]
    for attr in ("model", "gpus", "rq", "variants", "limit", "shard"):
        value = getattr(args, attr, None)
        if value:
            bits.append(f"{attr}={value}")
    return " ".join(bits)


def _make_engine(args: argparse.Namespace):
    from repro.eval.engine import EvalEngine
    from repro.eval.journal import DEFAULT_JOURNAL_NAME, SweepJournal

    _configure_stores(args)
    _configure_faults(args)
    store = _make_store(args)
    journal = None
    if getattr(args, "resume", False):
        if store is None:
            print("error: --resume journals into the response cache; "
                  "drop --no-cache", file=sys.stderr)
            raise SystemExit(2)
        journal = SweepJournal(
            store.root / DEFAULT_JOURNAL_NAME, label=_sweep_label(args)
        )
    try:
        return EvalEngine(
            jobs=args.jobs,
            store=store,
            backend=args.backend,
            failure_mode=getattr(args, "failure_mode", "fail_fast"),
            max_failures=getattr(args, "max_failures", None),
            journal=journal,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _report_cache(engine) -> None:
    if engine.store is None:
        return
    print(f"cache: {engine.stats.summary()} "
          f"({len(engine.store)} entries @ {engine.store.root})")


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.llm import all_models
    from repro.util.tables import format_table

    rows = []
    for m in all_models():
        c = m.config
        rows.append([
            c.name,
            "yes" if c.reasoning else "",
            f"${c.input_cost_per_m:g} / ${c.output_cost_per_m:g}",
            "yes" if c.supports_sampling_params else "no",
        ])
    print(format_table(
        ["Model", "Reasoning", "$/1M in/out", "Accepts temperature"],
        rows, title="Emulated model zoo (Table 1)",
    ))
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.dataset import cell_counts, paper_dataset, save_samples

    _configure_stores(args)
    ds = paper_dataset(jobs=args.jobs)
    r = ds.prune_report
    print(f"profiled: {r.total_before} ({r.cuda_before} CUDA + {r.omp_before} OMP)")
    print(f"pruned @ {r.cutoff} tokens: kept {r.total_after} "
          f"({r.cuda_after} CUDA + {r.omp_after} OMP)")
    print(f"balanced: {len(ds.balanced)}; split {len(ds.train)}/{len(ds.validation)}")
    for (lang, label), n in sorted(cell_counts(list(ds.balanced)).items(), key=str):
        print(f"  {lang.display:4s} {label.value}: {n}")
    if args.out:
        save_samples(list(ds.balanced), args.out, include_source=not args.compact)
        print(f"wrote {args.out}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.dataset import paper_dataset
    from repro.llm import get_model, query_cost_usd
    from repro.prompts import build_classify_prompt

    _configure_stores(args)
    ds = paper_dataset()
    matches = [s for s in ds.balanced if s.uid == args.uid]
    if not matches:
        print(f"error: {args.uid!r} is not in the balanced dataset "
              f"(try one of: {', '.join(s.uid for s in ds.balanced[:3])} ...)",
              file=sys.stderr)
        return 2
    sample = matches[0]
    model = get_model(args.model)
    prompt = build_classify_prompt(sample, few_shot=args.few_shot)
    response = model.complete(prompt.text)
    pred = response.boundedness()
    print(f"program:    {sample.uid}")
    print(f"kernel:     {sample.kernel_name}")
    print(f"model:      {model.name} ({'few-shot' if args.few_shot else 'zero-shot'})")
    print(f"prediction: {pred.word}")
    print(f"truth:      {sample.label.word}")
    print(f"correct:    {pred == sample.label}")
    print(f"cost:       ${query_cost_usd(response.usage, model.config):.5f}")
    return 0 if pred == sample.label else 1


def _select_models(name: str):
    from repro.llm import all_models, get_model

    if name == "all":
        return all_models()
    return [get_model(name)]


def _cmd_rq1(args: argparse.Namespace) -> int:
    from repro.eval.rq1 import run_rq1
    from repro.util.tables import format_table

    engine = _make_engine(args)
    rows = []
    for model in _select_models(args.model):
        r = run_rq1(model, num_rooflines=args.rooflines, engine=engine)
        rows.append([model.name, r.best_accuracy, r.best_accuracy_cot])
    print(format_table(["Model", "RQ1 Acc", "RQ1 CoT Acc"], rows,
                       title=f"RQ1 over {args.rooflines} rooflines"))
    _report_cache(engine)
    return 0


def _cmd_rq23(args: argparse.Namespace, few_shot: bool) -> int:
    from repro.dataset import paper_dataset
    from repro.eval.rq23 import run_classification
    from repro.util.tables import format_table

    engine = _make_engine(args)
    samples = list(paper_dataset(jobs=args.jobs).balanced)
    if args.limit:
        samples = samples[: args.limit]
    rows = []
    for model in _select_models(args.model):
        r = run_classification(model, samples, few_shot=few_shot, engine=engine)
        m = r.metrics
        rows.append([model.name, m.accuracy, m.macro_f1, m.mcc])
    title = f"{'RQ3 (two-shot)' if few_shot else 'RQ2 (zero-shot)'} over {len(samples)} samples"
    print(format_table(["Model", "Acc", "F1", "MCC"], rows, title=title))
    _report_cache(engine)
    return 0


def _cmd_rq4(args: argparse.Namespace) -> int:
    from repro.eval.rq4 import run_rq4

    _configure_stores(args)
    r = run_rq4(scope=args.scope, jobs=args.jobs, backend=args.backend)
    print(f"scope:              {r.scope}")
    print(f"train/validation:   {r.train_size}/{r.validation_size}")
    print(f"validation acc:     {r.validation_metrics.accuracy:.2f}")
    print(f"prediction entropy: {r.validation_prediction_entropy:.3f}")
    print(f"collapsed:          {r.collapsed}"
          + (f" (always answers {r.collapsed_to.word})" if r.collapsed_to else ""))
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.dataset import paper_dataset
    from repro.eval.decompose import run_decompose_experiment
    from repro.eval.rq23 import run_rq2
    from repro.util.tables import format_table

    engine = _make_engine(args)
    samples = list(paper_dataset(jobs=args.jobs).balanced)
    if args.limit:
        samples = samples[: args.limit]
    rows = []
    for model in _select_models(args.model):
        rq2 = run_rq2(model, samples, engine=engine).metrics
        dec = run_decompose_experiment(model, samples, engine=engine).metrics()
        rows.append([model.name, rq2.accuracy, dec.accuracy,
                     dec.accuracy - rq2.accuracy])
    print(format_table(
        ["Model", "RQ2 Acc", "Decomposed Acc", "Delta"], rows,
        title=f"Question decomposition over {len(samples)} samples",
    ))
    _report_cache(engine)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.dataset import paper_dataset
    from repro.eval.table1 import build_table1

    engine = _make_engine(args)
    samples = list(paper_dataset(jobs=args.jobs).balanced)
    if args.limit:
        samples = samples[: args.limit]
    models = _select_models(args.model)
    table = build_table1(
        samples, models=models, num_rooflines=args.rooflines, engine=engine
    )
    print(table.render_markdown() if args.markdown else table.render())
    _report_cache(engine)
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.eval.matrix import run_matrix
    from repro.roofline.hardware import resolve_gpus

    try:
        gpus = resolve_gpus(args.gpus)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine = _make_engine(args)
    try:
        result = run_matrix(
            _select_models(args.model),
            gpus,
            rqs=_resolve_regimes(args),
            limit=args.limit,
            engine=engine,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render(flip_limit=args.flip_limit))
    if getattr(args, "stats", False):
        print()
        print(_build_stats(args, result).render())
    _report_cache(engine)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.eval.export import write_report
    from repro.eval.matrix import run_matrix
    from repro.roofline.hardware import resolve_gpus

    try:
        gpus = resolve_gpus(args.gpus)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine = _make_engine(args)
    try:
        result = run_matrix(
            _select_models(args.model),
            gpus,
            rqs=_resolve_regimes(args),
            limit=args.limit,
            engine=engine,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = _build_stats(args, result)
    print(report.render())
    if args.out:
        print(f"wrote {write_report(report, args.out)}")
    _report_cache(engine)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.dataset import paper_dataset
    from repro.eval.export import write_report
    from repro.eval.matrix import regime_variant, run_matrix
    from repro.eval.rq23 import classification_items
    from repro.eval.runner import run_queries
    from repro.roofline.hardware import resolve_gpus

    engine = _make_engine(args)
    try:
        if args.kind == "run":
            models = _select_models(args.model)
            if len(models) != 1:
                print("error: 'export run' needs one --model, not 'all'",
                      file=sys.stderr)
                return 2
            samples = list(paper_dataset(jobs=args.jobs).balanced)
            if args.limit:
                samples = samples[: args.limit]
            regime = _resolve_regimes(args)
            if len(regime) != 1:
                print("error: 'export run' takes a single regime",
                      file=sys.stderr)
                return 2
            items = classification_items(
                samples, variant=regime_variant(regime[0])
            )
            report = run_queries(models[0], items, engine=engine)
        else:
            gpus = resolve_gpus(args.gpus)
            matrix = run_matrix(
                _select_models(args.model),
                gpus,
                rqs=_resolve_regimes(args),
                limit=args.limit,
                engine=engine,
            )
            report = (
                _build_stats(args, matrix) if args.kind == "stats" else matrix
            )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {write_report(report, args.out)} "
          f"(digest {report.digest()[:12]}…)")
    _report_cache(engine)
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    from repro.prompts import all_variants
    from repro.util.tables import format_table

    rows = []
    for v in all_variants():
        rows.append([
            v.name,
            v.examples,
            v.shots or "",
            "yes" if v.hint else "",
        ])
    print(format_table(
        ["Variant", "Examples", "Shots", "Hint"],
        rows,
        title="Registered prompt variants (regimes for matrix/sweep/stats)",
    ))
    print("\nAny few-shot-K (K <= 8) resolves on demand; rq2/rq3 alias "
          "zero-shot/few-shot-2.")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.eval.shard import parse_shard_spec, run_shard
    from repro.roofline.hardware import resolve_gpus

    try:
        shard_index, num_shards = parse_shard_spec(args.shard)
        gpus = resolve_gpus(args.gpus)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if num_shards == 1:
        # An unsharded sweep IS a matrix run (same flags, same report).
        return _cmd_matrix(args)
    models = _select_models(args.model)
    engine = _make_engine(args)
    if engine.store is None:
        print("error: a sharded sweep's output is its cache; "
              "drop --no-cache (or point --cache-dir at the shard's store)",
              file=sys.stderr)
        return 2
    try:
        report = run_shard(
            models,
            gpus,
            shard_index=shard_index,
            num_shards=num_shards,
            rqs=_resolve_regimes(args),
            limit=args.limit,
            engine=engine,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    _report_cache(engine)
    return 0


def _cmd_merge_caches(args: argparse.Namespace) -> int:
    from repro.eval.engine import DiskResponseStore, EvalEngine
    from repro.eval.shard import CacheMergeConflict, merge_caches

    try:
        report = merge_caches(
            args.sources, args.into, max_bytes=args.cache_max_bytes
        )
    except CacheMergeConflict as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    store = DiskResponseStore(args.into, max_bytes=args.cache_max_bytes)
    print(store.manifest().render())
    if not args.report:
        return 0

    from repro.eval.matrix import run_matrix
    from repro.roofline.hardware import resolve_gpus

    try:
        gpus = resolve_gpus(args.gpus)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _configure_stores(args)
    engine = EvalEngine(jobs=args.jobs, store=store, backend=args.backend)
    result = run_matrix(
        _select_models(args.model), gpus, rqs=_resolve_regimes(args),
        limit=args.limit, engine=engine,
    )
    print()
    print(result.render())
    _report_cache(engine)
    # Replaying may have recomputed entries the size bound evicted;
    # re-apply the bound before exiting (no-op when unbounded).
    store.evict()
    return 0


def _doctor_families(args: argparse.Namespace):
    """(label, store) pairs for the three store families the doctor and
    the cache manifest inspect, honouring the shared dir flags."""
    from repro.eval.engine import DiskResponseStore, default_cache_dir
    from repro.gpusim.store import ProfileStore, default_profile_cache_dir
    from repro.store.text import ArtifactCache, default_artifact_cache_dir

    store = DiskResponseStore(
        _flag_or_default(args, "cache_dir", default_cache_dir)
    )
    profiles = ProfileStore(
        _flag_or_default(args, "profile_cache", default_profile_cache_dir)
    )
    artifacts = ArtifactCache(
        _flag_or_default(args, "artifact_cache", default_artifact_cache_dir)
    )
    return store, profiles, artifacts


def _doctor_hint(store, label: str) -> None:
    """One summary line when a store has doctor-visible damage — printed
    uniformly for all three families by ``repro-paper cache``."""
    from repro.store.doctor import diagnose_store

    report = diagnose_store(store, label)
    if report.healthy:
        return
    kinds: dict[str, int] = {}
    for issue in report.issues:
        kinds[issue.kind] = kinds.get(issue.kind, 0) + 1
    summary = ", ".join(f"{n} {kind}" for kind, n in sorted(kinds.items()))
    print(f"doctor:    {summary} — run 'repro-paper doctor' to repair")


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.store.doctor import doctor_store, quiet_attach

    # Attach without the stale-tmp sweep: a --dry-run must *report* leaked
    # tmp files, not clean them up as a side effect of looking.
    with quiet_attach():
        store, profiles, artifacts = _doctor_families(args)
    families = (
        ("responses", store),
        ("profiles", profiles),
        ("artifacts", artifacts.renders),
    )
    issues = 0
    first = True
    for label, family in families:
        if not first:
            print()
        first = False
        if not family.root.is_dir():
            print(f"{label}: {family.root} (missing; nothing to check)")
            continue
        report = doctor_store(family, label, repair=not args.dry_run)
        print(report.render())
        issues += len(report.issues)
    if args.dry_run and issues:
        # Same convention as linters: a dry run that found problems fails,
        # so CI can gate on store health without repairing anything.
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.eval.journal import DEFAULT_JOURNAL_NAME, SweepJournal

    store, profiles, artifacts = _doctor_families(args)
    if args.wipe:
        if not store.root.is_dir():
            print(f"cache dir: {store.root} (missing; treated as empty)")
        else:
            n = len(store)
            store.clear()
            print(f"wiped {n} entries @ {store.root}")
        if not profiles.root.is_dir():
            print(f"profile store: {profiles.root} (missing; treated as empty)")
        else:
            n = len(profiles)
            profiles.clear()
            print(f"wiped {n} profile entries @ {profiles.root}")
        if not artifacts.root.is_dir():
            print(f"artifact cache: {artifacts.root} "
                  "(missing; treated as empty)")
        else:
            m = artifacts.manifest()
            n = m.tokenizer_entries + m.source_entries + m.count_entries
            artifacts.clear()
            print(f"wiped {n} artifact entries @ {artifacts.root}")
        return 0
    if not store.root.is_dir():
        # A missing directory is an empty cache, not an error — common on
        # fresh checkouts and CI runners inspecting never-populated stores.
        print(f"cache dir: {store.root} (missing; treated as empty)")
        print(store.manifest().render())
    else:
        if args.max_bytes is not None:
            removed = store.evict(args.max_bytes)
            print(f"evicted {removed} segments @ {store.root}")
        print(f"cache dir: {store.root}")
        print(store.manifest().render())
        journal = SweepJournal.stats_at(store.root / DEFAULT_JOURNAL_NAME)
        if journal is not None:
            print(f"journal:   {journal.render()}")
        snapshot = store.root / SERVE_STATS_NAME
        if snapshot.is_file():
            try:
                data = json.loads(snapshot.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = None
            if isinstance(data, dict):
                print(f"serve:     {_render_serve_snapshot(data)}")
        _doctor_hint(store, "responses")
    print()
    if not profiles.root.is_dir():
        print(f"profile store: {profiles.root} (missing; treated as empty)")
    else:
        if args.profile_max_bytes is not None:
            removed = profiles.evict(args.profile_max_bytes)
            print(f"evicted {removed} profile segments @ {profiles.root}")
        print(f"profile store: {profiles.root}")
    print(profiles.manifest().render())
    if profiles.root.is_dir():
        _doctor_hint(profiles, "profiles")
    print()
    if not artifacts.root.is_dir():
        print(f"artifact cache: {artifacts.root} (missing; treated as empty)")
    else:
        if args.artifact_max_bytes is not None:
            removed = artifacts.evict(args.artifact_max_bytes)
            print(f"evicted {removed} artifact segments @ {artifacts.root}")
        print(f"artifact cache: {artifacts.root}")
    print(artifacts.manifest().render())
    if artifacts.root.is_dir():
        _doctor_hint(artifacts.renders, "artifacts")
    return 0


#: Stats snapshot the serve command leaves in the cache dir on shutdown,
#: so ``repro-paper cache`` can report the last session's resilience story.
SERVE_STATS_NAME = "serve-stats.json"


def _write_serve_snapshot(store, service) -> None:
    if store is None:
        return
    payload = service.stats()
    path = store.root / SERVE_STATS_NAME
    try:
        store.root.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    except OSError:  # pragma: no cover - snapshot is best-effort
        return
    print(f"stats snapshot: {path}", flush=True)


def _render_serve_snapshot(data: dict) -> str:
    line = (
        f"{data.get('hits', 0)} hits, {data.get('misses', 0)} misses, "
        f"{data.get('shed', 0)} shed, "
        f"{data.get('failed_over', 0)} failed over, "
        f"{data.get('hedged', 0)} hedged"
    )
    breakers = data.get("breakers") or {}
    if isinstance(breakers, dict) and breakers:
        states = ", ".join(
            f"{label}={entry.get('state', '?')}"
            f" (opened {entry.get('opened', 0)}x)"
            for label, entry in sorted(breakers.items())
            if isinstance(entry, dict)
        )
        line += f"; breakers: {states}"
    return line


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serve import (
        AsyncEvalEngine,
        BreakerPolicy,
        HedgePolicy,
        PredictionServer,
        PredictionService,
        RateLimiter,
        RetryPolicy,
    )

    _configure_stores(args)
    _configure_faults(args)
    store = _make_store(args)
    hedge = None if args.no_hedge else HedgePolicy(delay_s=args.hedge_delay)
    try:
        breaker = BreakerPolicy(
            window=args.breaker_window,
            threshold=args.breaker_threshold,
            cooldown_s=args.breaker_cooldown,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    engine = AsyncEvalEngine(
        store=store,
        retry=RetryPolicy(
            max_attempts=args.retries,
            timeout_s=args.attempt_timeout,
        ),
        limiter=RateLimiter(args.rate_limit, burst=args.burst),
        max_concurrency=args.max_concurrency,
        breaker=breaker,
        hedge=hedge,
    )
    service = PredictionService(
        engine,
        provider_family=args.provider_family,
        jobs=args.jobs,
        queue_budget=args.queue_budget,
    )
    if args.warm:
        print(f"warming sample index... {service.warm()} samples", flush=True)
    server = PredictionServer(
        service,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
    )
    if store is not None:
        print(f"cache: {len(store)} entries @ {store.root}", flush=True)
    print(f"serving on {server.url} "
          f"(providers: {args.provider_family}; Ctrl-C to stop, "
          f"SIGTERM to drain)", flush=True)

    # SIGTERM means *drain*: stop taking work, let in-flight requests
    # finish (bounded by --drain-timeout), exit 0 — the contract the CI
    # chaos job asserts. Ctrl-C/SIGINT keeps the fast-close path. The
    # serve loop runs on background threads so this main thread is free
    # to wait on the event (a handler can't join the serve thread from
    # inside `serve_forever` without deadlocking).
    stop = threading.Event()
    drain_requested = threading.Event()

    def _on_sigterm(signum, frame):
        drain_requested.set()
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass

    server.start()
    try:
        while not stop.is_set():
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        if drain_requested.is_set():
            print("draining...", flush=True)
            clean = server.drain(args.drain_timeout)
            print(
                "drained clean" if clean
                else "drain timed out; stragglers cancelled",
                flush=True,
            )
        else:
            server.close()
        _write_serve_snapshot(store, service)
        print(f"served: {engine.stats.summary()}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.dataset import paper_dataset
    from repro.eval.figures import figure1_data, figure2_data

    _configure_stores(args)
    ds = paper_dataset()
    if args.which in ("1", "both"):
        print(figure1_data(list(ds.profiled)).render_ascii())
        print()
    if args.which in ("2", "both"):
        print(figure2_data(ds).render_ascii())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description="Reproduction of 'Can Large Language Models Predict "
        "Parallel Code Performance?' (Bolet et al., 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the emulated model zoo")

    p = sub.add_parser("dataset", help="build the paper's dataset pipeline")
    p.add_argument("--out", help="write the balanced dataset to a JSONL file")
    p.add_argument("--compact", action="store_true",
                   help="omit source text from the output file")
    p.add_argument("--jobs", type=int, default=1,
                   help="workers for the profile/render pass (0 = all cores)")
    _add_store_flags(p)

    p = sub.add_parser("classify", help="classify one dataset program")
    p.add_argument("uid", help="program uid, e.g. cuda/saxpy-v1")
    p.add_argument("--model", default="o3-mini-high")
    p.add_argument("--few-shot", action="store_true")
    _add_store_flags(p)

    p = sub.add_parser("rq1", help="RQ1: explicit roofline arithmetic")
    p.add_argument("--model", default="all")
    p.add_argument("--rooflines", type=int, default=240)
    _add_engine_flags(p)

    for name, help_text in (("rq2", "RQ2: zero-shot classification"),
                            ("rq3", "RQ3: two-shot classification")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--model", default="all")
        p.add_argument("--limit", type=int, default=0,
                       help="evaluate only the first N samples")
        _add_engine_flags(p)

    from repro.util.parallel import BACKENDS, DEFAULT_BACKEND

    p = sub.add_parser("rq4", help="RQ4: fine-tuning study")
    p.add_argument("--scope", choices=("all", "cuda", "omp"), default="all")
    p.add_argument("--jobs", type=int, default=1,
                   help="workers for validation inference")
    p.add_argument("--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
                   help="executor backend for validation inference")
    _add_store_flags(p)

    p = sub.add_parser("decompose", help="question-decomposition extension")
    p.add_argument("--model", default="all")
    p.add_argument("--limit", type=int, default=0)
    _add_engine_flags(p)

    p = sub.add_parser("table1", help="regenerate the paper's full Table 1")
    p.add_argument("--model", default="all")
    p.add_argument("--rooflines", type=int, default=240)
    p.add_argument("--limit", type=int, default=0,
                   help="evaluate only the first N samples")
    p.add_argument("--markdown", action="store_true",
                   help="emit a markdown table instead of ASCII")
    _add_engine_flags(p)

    p = sub.add_parser("matrix",
                       help="hardware scenario matrix: sweep models × "
                            "regimes over several GPUs and report label "
                            "flips")
    p.add_argument("--model", default="all")
    p.add_argument("--gpus", default="all",
                   help="comma-separated GPU names (substring match) or "
                        "'all' (default)")
    _add_regime_flags(p)
    p.add_argument("--limit", type=int, default=0,
                   help="evaluate only the first N kernels per device")
    p.add_argument("--flip-limit", type=int, default=20,
                   help="max label-flip rows to print (default 20)")
    p.add_argument("--stats", action="store_true",
                   help="append the statistical significance report "
                        "(paired Wilcoxon, A12, bootstrap CIs)")
    _add_stats_flags(p)
    _add_engine_flags(p)

    p = sub.add_parser("stats",
                       help="statistical significance report over the "
                            "matrix grid (Wilcoxon, A12, bootstrap CIs)")
    p.add_argument("--model", default="all")
    p.add_argument("--gpus", default="all",
                   help="comma-separated GPU names (substring match) or "
                        "'all' (default)")
    _add_regime_flags(p)
    p.add_argument("--limit", type=int, default=0,
                   help="evaluate only the first N kernels per device")
    p.add_argument("--out", default=None,
                   help="also write the report as JSON to this file")
    _add_stats_flags(p)
    _add_engine_flags(p)

    p = sub.add_parser("export",
                       help="write a run / matrix / stats result as JSON "
                            "through the shared Reportable writer")
    p.add_argument("kind", choices=("run", "matrix", "stats"),
                   help="which result type to compute and export")
    p.add_argument("--out", required=True, help="destination JSON file")
    p.add_argument("--model", default="all",
                   help="model selection ('run' needs exactly one)")
    p.add_argument("--gpus", default="all",
                   help="GPU selection for matrix/stats exports")
    _add_regime_flags(p)
    p.add_argument("--limit", type=int, default=0,
                   help="evaluate only the first N kernels")
    _add_stats_flags(p)
    _add_engine_flags(p)

    sub.add_parser("variants",
                   help="list the registered prompt variants")

    p = sub.add_parser("sweep",
                       help="matrix sweep, optionally one shard of a "
                            "distributed plan (--shard I/N)")
    p.add_argument("--model", default="all")
    p.add_argument("--gpus", default="all",
                   help="comma-separated GPU names (substring match) or "
                        "'all' (default)")
    _add_regime_flags(p)
    p.add_argument("--limit", type=int, default=0,
                   help="evaluate only the first N kernels per device")
    p.add_argument("--shard", default="0/1",
                   help="execute shard I of a deterministic N-shard plan "
                        "(e.g. 1/3); the default 0/1 runs the whole grid "
                        "and prints the matrix report")
    p.add_argument("--flip-limit", type=int, default=20,
                   help="max label-flip rows to print (unsharded runs)")
    p.add_argument("--stats", action="store_true",
                   help="append the statistical report (unsharded runs)")
    _add_stats_flags(p)
    _add_engine_flags(p)

    p = sub.add_parser("merge-caches",
                       help="union shard caches into one store, verifying "
                            "no conflicting entries")
    p.add_argument("sources", nargs="+", help="shard cache directories")
    p.add_argument("--into", required=True, help="destination cache directory")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   help="size-bound the merged store, evicting oldest "
                        "entries after the union")
    p.add_argument("--report", action="store_true",
                   help="after merging, replay the sweep grid from the "
                        "merged cache and print the matrix report")
    p.add_argument("--model", default="all")
    p.add_argument("--gpus", default="all")
    _add_regime_flags(p)
    p.add_argument("--limit", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--backend", choices=BACKENDS, default=DEFAULT_BACKEND)
    _add_store_flags(p)

    p = sub.add_parser("cache", help="inspect, bound, or wipe the response "
                                     "cache, the kernel-profile store, and "
                                     "the text-artifact cache")
    p.add_argument("--cache-dir", default=None)
    p.add_argument("--max-bytes", type=int, default=None,
                   help="evict oldest entries until the cache fits this size")
    p.add_argument("--profile-cache", default=None,
                   help="kernel-profile store directory (default: "
                        "$REPRO_PROFILE_CACHE or .repro-profile-cache)")
    p.add_argument("--profile-max-bytes", type=int, default=None,
                   help="evict oldest profile segments until the store "
                        "fits this size")
    p.add_argument("--artifact-cache", default=None,
                   help="text-artifact store directory (default: "
                        "$REPRO_ARTIFACT_CACHE or .repro-artifact-cache)")
    p.add_argument("--artifact-max-bytes", type=int, default=None,
                   help="evict oldest artifact segments until the store "
                        "fits this size")
    p.add_argument("--wipe", action="store_true",
                   help="delete every cached response, stored profile, "
                        "and text artifact")

    p = sub.add_parser("doctor",
                       help="fsck all three stores: detect torn writes, "
                            "forged indexes, version skew, corrupt entries, "
                            "and stale tmp files; quarantine or delete the "
                            "damage unless --dry-run")
    p.add_argument("--dry-run", action="store_true",
                   help="report issues without touching the stores; exits 1 "
                        "when any are found")
    p.add_argument("--cache-dir", default=None,
                   help="response cache directory (default: $REPRO_CACHE_DIR "
                        "or .repro-cache)")
    p.add_argument("--profile-cache", default=None,
                   help="kernel-profile store directory (default: "
                        "$REPRO_PROFILE_CACHE or .repro-profile-cache)")
    p.add_argument("--artifact-cache", default=None,
                   help="text-artifact store directory (default: "
                        "$REPRO_ARTIFACT_CACHE or .repro-artifact-cache)")

    p = sub.add_parser("serve",
                       help="answer classification queries over HTTP from "
                            "the warm response/profile/artifact stores")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8077,
                   help="bind port; 0 picks an ephemeral port (default 8077)")
    p.add_argument("--provider-family", default="emulated",
                   help="completion path, or a comma-separated failover "
                        "chain (first = primary): 'emulated' calls the zoo "
                        "directly; 'wire' routes through each model's "
                        "API-shaped adapter (OpenAI/Gemini/Anthropic "
                        "payloads) backed by the emulated transport. "
                        "'emulated,wire' fails over from the zoo to the "
                        "wire adapters when the primary's breaker opens "
                        "(default emulated)")
    p.add_argument("--retries", type=int, default=4,
                   help="max attempts per upstream completion (default 4)")
    p.add_argument("--attempt-timeout", type=float, default=None,
                   help="per-attempt deadline in seconds, jittered "
                        "(default: none)")
    p.add_argument("--rate-limit", type=float, default=None,
                   help="max upstream completions/s, token-bucket "
                        "(default: unlimited)")
    p.add_argument("--burst", type=int, default=8,
                   help="rate-limit burst size (default 8)")
    p.add_argument("--max-concurrency", type=int, default=64,
                   help="max in-flight completions per batch (default 64)")
    p.add_argument("--breaker-window", type=int, default=16,
                   help="circuit-breaker sliding window of attempt outcomes "
                        "per provider (default 16)")
    p.add_argument("--breaker-threshold", type=float, default=0.5,
                   help="failure fraction that opens a provider's breaker "
                        "(default 0.5)")
    p.add_argument("--breaker-cooldown", type=float, default=5.0,
                   help="seconds an open breaker waits before half-open "
                        "probes (default 5)")
    p.add_argument("--hedge-delay", type=float, default=None,
                   help="seconds before hedging a slow request to the next "
                        "healthy provider (default: derived from observed "
                        "p95 latency)")
    p.add_argument("--no-hedge", action="store_true",
                   help="never issue hedged backup requests")
    p.add_argument("--queue-budget", type=int, default=64,
                   help="max classifications in flight before shedding "
                        "with 429 + Retry-After (default 64)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds SIGTERM waits for in-flight requests "
                        "before closing (default 10)")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault plan for chaos testing, e.g. "
                        "'seed=7;provider_brownout:attempts=6,after=0,"
                        "provider=emulated:o3-mini-high' "
                        "(default: $REPRO_FAULT_PLAN if set)")
    p.add_argument("--warm", action="store_true",
                   help="build the sample index before accepting requests")
    p.add_argument("--verbose", action="store_true",
                   help="log one line per HTTP request")
    p.add_argument("--jobs", type=int, default=1,
                   help="workers for dataset/profile builds (0 = all cores)")
    _add_cache_flags(p)

    p = sub.add_parser("figures", help="render Figures 1-2 as ASCII")
    p.add_argument("--which", choices=("1", "2", "both"), default="both")
    _add_store_flags(p)

    return parser


def _install_sigterm_handler() -> None:
    """Convert SIGTERM into KeyboardInterrupt so an orchestrator's kill
    gets the same graceful shutdown as Ctrl-C: pending store buffers are
    discarded (the durability contract), the journal checkpoint in the
    engine's ``finally`` runs, and ``main`` exits 130 with a resume hint.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return  # signal handlers are a main-thread privilege

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": _cmd_models,
        "dataset": _cmd_dataset,
        "classify": _cmd_classify,
        "rq1": _cmd_rq1,
        "rq2": lambda a: _cmd_rq23(a, few_shot=False),
        "rq3": lambda a: _cmd_rq23(a, few_shot=True),
        "rq4": _cmd_rq4,
        "decompose": _cmd_decompose,
        "table1": _cmd_table1,
        "matrix": _cmd_matrix,
        "stats": _cmd_stats,
        "export": _cmd_export,
        "variants": _cmd_variants,
        "sweep": _cmd_sweep,
        "merge-caches": _cmd_merge_caches,
        "cache": _cmd_cache,
        "doctor": _cmd_doctor,
        "serve": _cmd_serve,
        "figures": _cmd_figures,
    }
    _install_sigterm_handler()
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        print("\ninterrupted — unflushed store buffers were discarded (by "
              "design); journaled completions are durable. Re-run with "
              "--resume to skip them.", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
