"""First-class prompt variants for the classification experiments.

The paper compares exactly two prompt forms — RQ2's zero-shot prompt with
pseudo-code examples and RQ3's two-shot prompt with real code examples —
which the seed code expressed as a ``few_shot`` boolean. That boolean
cannot express a prompt-*ablation* axis (how much does the example block,
the hint, or the shot count actually matter?), so prompts are now described
by a :class:`PromptVariant` and collected in a process-wide registry:

* ``zero-shot`` — the RQ2 form (pseudo-code examples). Byte-identical to
  the seed ``few_shot=False`` prompt, so existing response-cache entries
  keep replaying.
* ``few-shot-2`` — the RQ3 form (two real code examples in the queried
  language). Byte-identical to the seed ``few_shot=True`` prompt.
* ``no-hint`` — the bare task statement with no example block at all.
* ``problem-hint`` — pseudo-code examples plus an explicit roofline
  reasoning hint (estimate AI, compare against the balance point).
* ``few-shot-K`` — K real code examples (K is parsed dynamically, e.g.
  ``few-shot-1`` / ``few-shot-4``; shots are drawn from held-out program
  variants that never enter the evaluation dataset).

The registry is append-only and name-keyed; :func:`get_variant` resolves
names (materialising ``few-shot-K`` on demand) and
:func:`variant_for_few_shot` maps the deprecated boolean onto the two seed
variants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.prompts.examples import PSEUDO_EXAMPLES, real_examples_block
from repro.types import Language

#: Ceiling on few-shot example counts: each shot pair profiles two held-out
#: program variants, so an unbounded K would quietly turn prompt building
#: into a profiling sweep.
MAX_FEW_SHOT = 8

#: The roofline reasoning hint carried by the ``problem-hint`` variant.
PROBLEM_HINT_BLOCK = """Hint: estimate the kernel's arithmetic intensity (operations performed
per byte of memory traffic) from its loop body, then compare it against
the balance point implied by the hardware's peak compute rate and memory
bandwidth. Kernels whose intensity falls below the balance point are
Bandwidth bound; kernels above it are Compute bound.
"""

_EXAMPLE_MODES = ("pseudo", "real", "none")

_FEW_SHOT_NAME = re.compile(r"^few-shot-([1-9][0-9]*)$")


@dataclass(frozen=True)
class PromptVariant:
    """One point on the prompt-ablation axis.

    ``examples`` selects the example block: ``"pseudo"`` (the paper's
    Figure 4 pseudo-code shots), ``"real"`` (``shots`` held-out real code
    examples in the queried language), or ``"none"``. ``hint`` is an
    optional guidance block inserted after the examples (``""`` = none).
    """

    name: str
    examples: str
    shots: int = 0
    hint: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("prompt variant needs a name")
        if self.examples not in _EXAMPLE_MODES:
            raise ValueError(
                f"examples must be one of {_EXAMPLE_MODES}, "
                f"got {self.examples!r}"
            )
        if self.examples == "real":
            if not 1 <= self.shots <= MAX_FEW_SHOT:
                raise ValueError(
                    f"real-example variants need 1..{MAX_FEW_SHOT} shots, "
                    f"got {self.shots}"
                )
        elif self.shots:
            raise ValueError(
                f"shots={self.shots} is only meaningful with examples='real'"
            )

    @property
    def few_shot(self) -> bool:
        """Whether this variant carries real code examples (the RQ3 sense
        of the deprecated boolean)."""
        return self.examples == "real"

    def examples_block(self, language: Language) -> str:
        """The example section for one queried language ("" = no block)."""
        if self.examples == "pseudo":
            return PSEUDO_EXAMPLES
        if self.examples == "real":
            return real_examples_block(language, shots=self.shots)
        return ""


def few_shot_variant(shots: int) -> PromptVariant:
    """The canonical K-real-example variant (``few-shot-K``)."""
    return PromptVariant(name=f"few-shot-{shots}", examples="real", shots=shots)


#: The two seed variants — byte-for-byte the prompts the ``few_shot``
#: boolean used to build, which is what keeps pre-registry response caches
#: warm (pinned by golden digests in tests/test_prompt_variants.py).
ZERO_SHOT = PromptVariant(name="zero-shot", examples="pseudo")
FEW_SHOT_2 = few_shot_variant(2)

#: Ablation variants beyond the paper's two regimes.
NO_HINT = PromptVariant(name="no-hint", examples="none")
PROBLEM_HINT = PromptVariant(
    name="problem-hint", examples="pseudo", hint=PROBLEM_HINT_BLOCK
)

_REGISTRY: dict[str, PromptVariant] = {}


def register_variant(variant: PromptVariant) -> PromptVariant:
    """Add a variant to the registry (idempotent for identical definitions).

    Re-registering a name with a *different* definition raises — silently
    shadowing a variant would corrupt cache-key expectations downstream.
    """
    existing = _REGISTRY.get(variant.name)
    if existing is not None and existing != variant:
        raise ValueError(
            f"prompt variant {variant.name!r} is already registered with a "
            "different definition"
        )
    _REGISTRY[variant.name] = variant
    return variant


for _v in (ZERO_SHOT, FEW_SHOT_2, NO_HINT, PROBLEM_HINT, few_shot_variant(1),
           few_shot_variant(4)):
    register_variant(_v)


def get_variant(name: str | PromptVariant) -> PromptVariant:
    """Resolve a variant by name (``few-shot-K`` materialises on demand)."""
    if isinstance(name, PromptVariant):
        return name
    hit = _REGISTRY.get(name)
    if hit is not None:
        return hit
    match = _FEW_SHOT_NAME.match(name)
    if match and int(match.group(1)) <= MAX_FEW_SHOT:
        return register_variant(few_shot_variant(int(match.group(1))))
    raise KeyError(
        f"unknown prompt variant {name!r}; registered: "
        f"{', '.join(sorted(_REGISTRY))}"
    )


def all_variants() -> tuple[PromptVariant, ...]:
    """Every registered variant, in registration order."""
    return tuple(_REGISTRY.values())


def variant_for_few_shot(few_shot: bool) -> PromptVariant:
    """Map the deprecated ``few_shot`` boolean onto its seed variant."""
    return FEW_SHOT_2 if few_shot else ZERO_SHOT
