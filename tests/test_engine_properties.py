"""Property-based determinism tests for the evaluation engine.

Seeded corpus + seeded (deterministic) models must yield byte-identical
``RunResult`` artefacts no matter how the work is executed: any worker
count, any executor backend (sequential/thread/process), any submission
shuffle, cold or warm cache, memory or disk store.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.eval.engine import EvalEngine, MemoryResponseStore
from repro.eval.runner import run_queries
from repro.llm import MODEL_NAMES, get_model
from repro.prompts.rq1 import build_rq1_prompt, generate_rq1_questions
from repro.util.parallel import BACKENDS
from repro.util.rng import RngStream

#: One shared seeded workload: RQ1 questions are corpus-free and cheap.
_QUESTIONS = generate_rq1_questions(12, seed_key="engine-props")
_ITEMS = tuple(
    (f"q{i}", build_rq1_prompt(q, shots=2), q.truth)
    for i, q in enumerate(_QUESTIONS)
)

run_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_bytes(result) -> bytes:
    """Canonical byte form of a RunResult (records + usage + name).

    ``repr`` is value-based (float reprs are exact), unlike ``pickle``
    whose output depends on object-identity sharing between records.
    """
    return repr(
        (result.model_name, result.records, sorted(result.usage.items()))
    ).encode("utf-8")


class TestParallelismInvariance:
    @run_settings
    @given(
        model_name=st.sampled_from(MODEL_NAMES),
        jobs=st.integers(min_value=1, max_value=12),
    )
    def test_jobs_never_change_result(self, model_name, jobs):
        model = get_model(model_name)
        baseline = run_queries(model, _ITEMS)
        parallel = run_queries(model, _ITEMS, jobs=jobs)
        assert run_bytes(parallel) == run_bytes(baseline)

    @run_settings
    @given(
        model_name=st.sampled_from(MODEL_NAMES),
        jobs=st.integers(min_value=1, max_value=8),
        shuffle_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_item_order_only_permutes_records(self, model_name, jobs, shuffle_seed):
        """Shuffled submission yields the same per-item records, permuted."""
        model = get_model(model_name)
        shuffled = RngStream("shuffle", shuffle_seed).shuffle(list(_ITEMS))
        baseline = {r.item_id: r for r in run_queries(model, _ITEMS).records}
        result = run_queries(model, shuffled, jobs=jobs)
        assert [r.item_id for r in result.records] == [i[0] for i in shuffled]
        for record in result.records:
            assert record == baseline[record.item_id]

    @run_settings
    @given(
        model_name=st.sampled_from(MODEL_NAMES),
        cold_jobs=st.integers(min_value=1, max_value=8),
        warm_jobs=st.integers(min_value=1, max_value=8),
    )
    def test_cache_warmth_never_changes_result(
        self, model_name, cold_jobs, warm_jobs
    ):
        model = get_model(model_name)
        baseline = run_queries(model, _ITEMS)
        store = MemoryResponseStore()
        cold = run_queries(model, _ITEMS, jobs=cold_jobs, cache=store)
        warm = run_queries(model, _ITEMS, jobs=warm_jobs, cache=store)
        assert run_bytes(cold) == run_bytes(baseline)
        assert run_bytes(warm) == run_bytes(baseline)

    @run_settings
    @given(jobs=st.integers(min_value=1, max_value=8))
    def test_disk_and_memory_stores_agree(self, jobs, tmp_path_factory):
        from repro.eval.engine import DiskResponseStore

        model = get_model("o3-mini-high")
        mem = run_queries(
            model, _ITEMS, jobs=jobs, cache=MemoryResponseStore()
        )
        disk_dir = tmp_path_factory.mktemp("store")
        disk_cold = run_queries(
            model, _ITEMS, jobs=jobs, cache=DiskResponseStore(disk_dir)
        )
        disk_warm = run_queries(
            model, _ITEMS, jobs=jobs, cache=DiskResponseStore(disk_dir)
        )
        assert run_bytes(disk_cold) == run_bytes(mem)
        assert run_bytes(disk_warm) == run_bytes(mem)


class TestBackendInvariance:
    """``thread``/``process``/``sequential`` are pure execution details."""

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        model_name=st.sampled_from(MODEL_NAMES),
        backend=st.sampled_from(BACKENDS),
        jobs=st.integers(min_value=1, max_value=6),
    )
    def test_backend_never_changes_result(self, model_name, backend, jobs):
        model = get_model(model_name)
        baseline = run_queries(model, _ITEMS)
        result = run_queries(model, _ITEMS, jobs=jobs, backend=backend)
        assert run_bytes(result) == run_bytes(baseline)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        backend=st.sampled_from(BACKENDS),
        cold_jobs=st.integers(min_value=1, max_value=6),
        warm_jobs=st.integers(min_value=1, max_value=6),
    )
    def test_backend_cache_contents_identical(self, backend, cold_jobs, warm_jobs):
        """Every backend writes the same key → response mapping, and warm
        replays stay byte-identical across backends."""
        model = get_model("o3-mini-high")
        reference = MemoryResponseStore()
        baseline = run_queries(model, _ITEMS, jobs=1, cache=reference)
        store = MemoryResponseStore()
        cold = run_queries(
            model, _ITEMS, jobs=cold_jobs, backend=backend, cache=store
        )
        assert store._data == reference._data
        warm = run_queries(
            model, _ITEMS, jobs=warm_jobs, backend=backend, cache=store
        )
        assert store._data == reference._data
        assert run_bytes(cold) == run_bytes(baseline)
        assert run_bytes(warm) == run_bytes(baseline)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_backends_share_disk_cache_files(self, jobs, tmp_path):
        """A disk cache written by one backend is replayed verbatim by the
        others: same file set, zero new completions."""
        from repro.eval.engine import DiskResponseStore

        model = get_model("gpt-4o-mini")
        root = tmp_path / "store"
        writer = EvalEngine(
            jobs=jobs, store=DiskResponseStore(root), backend="process"
        )
        baseline = writer.run(model, _ITEMS)
        files = sorted(p.name for p in root.glob("responses-*.bin"))
        assert writer.stats.misses == len(_ITEMS)
        for backend in BACKENDS:
            reader = EvalEngine(
                jobs=jobs, store=DiskResponseStore(root), backend=backend
            )
            replay = reader.run(model, _ITEMS)
            assert run_bytes(replay) == run_bytes(baseline)
            assert reader.stats.hits == len(_ITEMS)
            assert reader.stats.completions == 0
        assert sorted(p.name for p in root.glob("responses-*.bin")) == files

    def test_process_backend_mixed_warmth(self):
        """A half-warm store: hits come from the parent, misses from the
        workers, stitched back in submission order."""
        model = get_model("o1")
        store = MemoryResponseStore()
        half = list(_ITEMS[::2])
        run_queries(model, half, jobs=1, cache=store)
        engine = EvalEngine(jobs=4, store=store, backend="process")
        result = engine.run(model, _ITEMS)
        assert run_bytes(result) == run_bytes(run_queries(model, _ITEMS))
        assert engine.stats.hits == len(half)
        assert engine.stats.misses == len(_ITEMS) - len(half)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            EvalEngine(backend="fibers")
        with pytest.raises(ValueError):
            run_queries(get_model("o1"), _ITEMS, backend="gpu")


class TestSeededPipelineDeterminism:
    @pytest.mark.slow
    def test_seeded_corpus_classification_reproduces(self, balanced_samples):
        """Same seeded dataset + model ⇒ byte-identical results at any
        execution plan, including across engine instances."""
        from repro.prompts import build_classify_prompt

        model = get_model("gemini-2.0-flash-001")
        items = [
            (s.uid, build_classify_prompt(s).text, s.label)
            for s in balanced_samples[:60]
        ]
        baseline = run_queries(model, items)
        store = MemoryResponseStore()
        plans = [
            dict(jobs=1),
            dict(jobs=7),
            dict(jobs=3, cache=store),
            dict(jobs=5, cache=store),  # warm
        ]
        for plan in plans:
            assert run_bytes(run_queries(model, items, **plan)) == run_bytes(
                baseline
            )
