"""Shared utilities: deterministic RNG streams, stable hashing, statistics
helpers, ASCII plotting, and table rendering.

Everything in :mod:`repro` that needs randomness draws it from
:class:`repro.util.rng.RngStream` so that corpus generation, profiling noise,
and LLM-emulator behaviour are bit-reproducible across runs and platforms.
"""

from repro.util.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    reset_active_fault_plan,
    set_active_fault_plan,
)
from repro.util.hashing import stable_hash_bytes, stable_hash_hex, stable_hash_u64
from repro.util.retry import (
    AttemptTimeout,
    RetryPolicy,
    TransientError,
    call_with_retry,
    retry_call,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.stats import (
    BoxStats,
    chi_squared_independence,
    chi2_sf,
    describe,
    five_number_summary,
)
from repro.util.tables import format_table, format_markdown_table
from repro.util.textplot import ascii_boxplot, ascii_scatter

__all__ = [
    "RngStream",
    "derive_seed",
    "stable_hash_bytes",
    "stable_hash_hex",
    "stable_hash_u64",
    "BoxStats",
    "chi_squared_independence",
    "chi2_sf",
    "describe",
    "five_number_summary",
    "format_table",
    "format_markdown_table",
    "ascii_boxplot",
    "ascii_scatter",
]
