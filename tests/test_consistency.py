"""Cross-subsystem consistency: codegen ↔ profiler ↔ static analyst.

The profiler counts ops from IR; the analyst counts ops from the *rendered
source*. They use the same op-cost conventions, so for kernels whose
dynamic behaviour is statically visible (no data-dependent branches, no
cache subtleties in the op counts), per-thread op counts must agree closely.
This pins the two independent implementations against each other — a bug in
either one breaks the agreement.
"""

import pytest

from repro.analysis import analyze_kernel, find_kernel
from repro.gpusim import profile_first_kernel
from repro.kernels.codegen import render_program
from repro.kernels.families import all_families, get_family
from repro.types import Language, OpClass


def _per_thread_profiler_ops(spec):
    prof = profile_first_kernel(spec)
    inst = spec.first_kernel
    active = inst.active_threads(spec.cmdline)
    c = prof.counters
    return {
        OpClass.SP: c.sp_flops / active,
        OpClass.DP: c.dp_flops / active,
        OpClass.INT: c.int_ops / active,
    }


def _static_estimate(spec):
    rendered = render_program(spec)
    source = rendered.concatenated_source()
    kernel = find_kernel(source, spec.first_kernel.kernel.name, spec.language)
    values = spec.cmdline.bindings()
    return analyze_kernel(kernel, param_values=values)


#: Families whose first kernel has no branches and no dynamic indexing:
#: static per-thread FLOP counts should track the profiler's within noise.
STRAIGHT_LINE_FAMILIES = (
    "saxpy", "vecadd", "triad", "axpby", "hadamard", "gelu_map",
    "blackscholes", "murmur_mix", "pcg_hash", "verlet_step",
)

LOOPED_FAMILIES = (
    "gemv_row", "horner_poly", "newton_roots", "logistic_map",
    "conv1d_taps", "xorshift_stream",
)


class TestAnalystProfilerAgreement:
    @pytest.mark.parametrize("family", STRAIGHT_LINE_FAMILIES)
    @pytest.mark.parametrize("language", [Language.CUDA, Language.OMP])
    def test_straight_line_flop_agreement(self, family, language):
        spec = get_family(family).build(0, language)
        prof_ops = _per_thread_profiler_ops(spec)
        est = _static_estimate(spec)
        for op_class, static_val in (
            (OpClass.SP, est.ops_sp), (OpClass.DP, est.ops_dp)
        ):
            dynamic_val = prof_ops[op_class]
            if dynamic_val < 0.5 and static_val < 0.5:
                continue  # class unused by this kernel
            ratio = (static_val + 1.0) / (dynamic_val + 1.0)
            assert 0.5 <= ratio <= 2.0, (family, language, op_class, ratio)

    @pytest.mark.parametrize("family", LOOPED_FAMILIES)
    def test_looped_flop_agreement(self, family):
        """Loop trip counts come from argv in both pipelines — per-thread
        float ops must agree within 2x even for loop-heavy kernels."""
        spec = get_family(family).build(0, Language.CUDA)
        prof_ops = _per_thread_profiler_ops(spec)
        est = _static_estimate(spec)
        dyn_f = prof_ops[OpClass.SP] + prof_ops[OpClass.DP]
        sta_f = est.ops_sp + est.ops_dp
        if dyn_f < 1.0 and sta_f < 1.0:
            pytest.skip("integer-only kernel")
        ratio = (sta_f + 1.0) / (dyn_f + 1.0)
        assert 0.4 <= ratio <= 2.5, (family, ratio)

    def test_int_ops_same_order_of_magnitude(self):
        for family in ("saxpy", "pcg_hash", "gemv_row"):
            spec = get_family(family).build(0, Language.CUDA)
            prof_ops = _per_thread_profiler_ops(spec)
            est = _static_estimate(spec)
            ratio = (est.ops_int + 1.0) / (prof_ops[OpClass.INT] + 1.0)
            assert 0.2 <= ratio <= 5.0, (family, ratio)


class TestAnalystCoverage:
    @pytest.mark.parametrize("name", sorted(all_families()))
    def test_every_family_statically_analyzable(self, name):
        """The analyst must produce a finite, positive estimate for every
        family's first kernel, in every supported language."""
        fam = get_family(name)
        for language in fam.languages:
            spec = fam.build(0, language)
            est = _static_estimate(spec)
            assert est.bytes_per_thread > 0, (name, language)
            total = est.ops_sp + est.ops_dp + est.ops_int
            assert total > 0, (name, language)
            assert est.guess_fraction <= 1.0


class TestCudaOmpConsistency:
    """The two language renders of the same family/variant must expose the
    same first-kernel structure to the analyst."""

    # Families whose per-thread work is independent of the problem size
    # (variant sizes are language-keyed on purpose, mirroring real ports).
    @pytest.mark.parametrize(
        "family", ["saxpy", "blackscholes", "gelu_map", "murmur_mix", "verlet_step"]
    )
    def test_cross_language_op_agreement(self, family):
        fam = get_family(family)
        if Language.OMP not in fam.languages:
            pytest.skip("CUDA-only family")
        cuda_est = _static_estimate(fam.build(0, Language.CUDA))
        omp_est = _static_estimate(fam.build(0, Language.OMP))
        # Same variant → same kernel body per thread: float ops must agree
        # exactly; integer ops differ only by the CUDA-side thread-index
        # computation and bounds guard (3 int ops).
        assert omp_est.ops_sp == pytest.approx(cuda_est.ops_sp, abs=0.5), family
        assert omp_est.ops_dp == pytest.approx(cuda_est.ops_dp, abs=0.5), family
        assert abs(cuda_est.ops_int - omp_est.ops_int) <= 4.0, family
        assert omp_est.bytes_per_thread == pytest.approx(
            cuda_est.bytes_per_thread, rel=0.05
        ), family
