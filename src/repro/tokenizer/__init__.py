"""Trainable byte-level BPE tokenizer — the gpt-4o-mini tokenizer stand-in
used for the paper's 8e3-token pruning cutoff (§2.2) and Figure 2."""

from repro.tokenizer.bpe import BpeTokenizer, pretokenize
from repro.tokenizer.pretrained import corpus_tokenizer, train_corpus_tokenizer

__all__ = [
    "BpeTokenizer",
    "pretokenize",
    "corpus_tokenizer",
    "train_corpus_tokenizer",
]
