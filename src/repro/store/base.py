"""The :class:`ArtifactStore` base: segments, eviction, atomic writes.

Extracted from the profile store (PR 4) so that every content-addressed
disk cache in the repo shares one implementation of the risky parts —
atomic read-merge-write segment I/O, corruption-tolerant reads, and
size-bounded oldest-first eviction. Subclasses declare their ``version``
string (recorded in and checked against every segment) and their
``segment_prefixes`` (the filename prefixes of every segment kind the
store *family* owns — stores sharing one root directory list the union,
so a shared size bound spans all of them).

Segments are **packed binary** files (PR 6)::

    magic | total size | meta len | index len     (20-byte struct header)
    meta JSON   {"version": ..., "key": ..., ...} (payload sans entries)
    index       "\n"-joined key blob + packed (offset, length) span array
    body        u32-length-prefixed JSON blobs, one per entry, key-sorted

Reads are mmap-backed and **lazy**: opening a segment parses only the
header and index; each requested entry decodes exactly its own blob, so a
warm single-entry probe of a 5 000-entry segment never touches the other
4 999. The recorded total size makes torn writes detectable — a segment
truncated at *any* byte reads as empty, never raises. Encoding is
canonical (sorted keys, deterministic JSON), so two stores holding the
same entries hold byte-identical segment files.

Legacy ``.json`` segments (PR 4/5 era) remain readable: reads fall back
to the ``.json`` twin when no binary segment exists, and the next write
to that segment migrates it (merge into binary, unlink the legacy file).
Existing ``.repro-*-cache`` directories therefore keep serving without a
flag day.

Writes are buffered: each ``put`` lands in an in-process pending map that
:meth:`ArtifactStore.flush` merges into disk segments — one
read-merge-write per segment per flush, not per entry batch. Outside a
:meth:`ArtifactStore.deferred` block every put flushes immediately (the
pre-PR-6 durability contract); hot sweep paths open a ``deferred()``
block to batch many put calls into one merge. A ``deferred`` block that
exits with an exception (including ``KeyboardInterrupt``) deterministically
**discards** its unflushed buffer rather than flushing mid-unwind — see
:meth:`ArtifactStore.deferred` for the exact contract.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
import time
import warnings
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence, TypeVar

from repro.util.faults import active_fault_plan

T = TypeVar("T")

# ---------------------------------------------------------------------------
# Identity-memoized content keys
# ---------------------------------------------------------------------------

# Content digests cover deep object trees (kernel IR, program specs), so
# they are memoized per object identity — the corpus programs, the
# per-spec DeviceModels, and the trained tokenizer are long-lived shared
# instances. Weakref callbacks evict entries when the object dies, which
# also defuses id() reuse.
_KEY_LOCK = threading.Lock()


def memoized_object_key(
    obj: object, memo: dict, compute: Callable[[object], str]
) -> str:
    """``compute(obj)``, cached per object identity in ``memo``."""
    ident = id(obj)
    with _KEY_LOCK:
        hit = memo.get(ident)
        if hit is not None and hit[0]() is obj:
            return hit[1]
    key = compute(obj)

    # The lock rides in as a default arg: at interpreter shutdown module
    # globals are torn down to None before late weakref callbacks fire.
    def _evict(_ref, *, ident=ident, memo=memo, lock=_KEY_LOCK) -> None:
        with lock:
            memo.pop(ident, None)

    with _KEY_LOCK:
        memo[ident] = (weakref.ref(obj, _evict), key)
    return key


# ---------------------------------------------------------------------------
# Size-bound parsing (shared by every store's env override)
# ---------------------------------------------------------------------------

def parse_max_bytes(raw: object, *, source: str = "") -> int | None:
    """Parse a store size bound.

    ``None``/blank → unbounded; ``"0"`` → keep nothing (evict everything);
    anything unparseable or negative is **warned about** and treated as
    unbounded — silently honouring ``1GB`` as "never evict" is exactly the
    bug this guards against.
    """
    if raw is None:
        return None
    text = str(raw).strip()
    if not text:
        return None
    origin = f" from {source}" if source else ""
    try:
        value = int(text)
    except ValueError:
        warnings.warn(
            f"ignoring unparseable size bound {text!r}{origin}: expected an "
            "integer byte count (e.g. 1073741824, not '1GB'); the store "
            "stays unbounded",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if value < 0:
        warnings.warn(
            f"ignoring negative size bound {value}{origin}: use 0 to keep "
            "nothing or omit the bound for an unbounded store",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return value


# ---------------------------------------------------------------------------
# The packed binary segment codec
# ---------------------------------------------------------------------------

SEGMENT_MAGIC = b"RSG1"

#: magic, total file size, meta length, index length (little-endian).
_SEGMENT_HEADER = struct.Struct("<4sQII")
_BLOB_PREFIX = struct.Struct("<I")
#: index layout: u32 key-blob length, the "\n"-joined key blob, then one
#: packed (u64 offset, u32 length) span per key in the same order. Packed
#: rather than JSON so attaching a segment decodes the whole index with
#: three C-level calls (split / iter_unpack / dict-of-zip) — the
#: attach-and-probe-one-entry path must never pay a per-key Python loop.
_KEY_BLOB_PREFIX = struct.Struct("<I")
_SPAN = struct.Struct("<QI")

_MISS = object()


def _encode_blob(value: object) -> bytes:
    """One entry's canonical JSON blob — byte-identical to the encoding
    legacy JSON segments used for entry values, so format migration never
    changes a value's bytes."""
    if isinstance(value, bytes):
        return value
    return json.dumps(value, sort_keys=True).encode("utf-8")


def encode_segment(payload: Mapping, entries: Mapping[str, object]) -> bytes:
    """Pack ``payload`` + ``entries`` into one binary segment.

    Deterministic: entries are laid out in sorted key order and every JSON
    piece is canonically encoded, so equal logical content yields equal
    bytes (the shard-merge suite compares whole segment files on this).
    Entry keys must not contain newlines (they delimit the key blob) —
    every store keys entries by hex digests or identifiers, so this is a
    codec constraint, not a practical one.
    """
    keys = sorted(entries)
    spans: list[bytes] = []
    parts: list[bytes] = []
    offset = 0
    for key in keys:
        if "\n" in key:
            raise ValueError(f"segment entry key contains newline: {key!r}")
        blob = _encode_blob(entries[key])
        spans.append(_SPAN.pack(offset, len(blob)))
        parts.append(_BLOB_PREFIX.pack(len(blob)))
        parts.append(blob)
        offset += _BLOB_PREFIX.size + len(blob)
    meta = json.dumps(dict(payload), sort_keys=True).encode("utf-8")
    key_blob = "\n".join(keys).encode("utf-8")
    index_len = _KEY_BLOB_PREFIX.size + len(key_blob) + len(b"".join(spans))
    total = _SEGMENT_HEADER.size + len(meta) + index_len + offset
    return b"".join(
        [
            _SEGMENT_HEADER.pack(SEGMENT_MAGIC, total, len(meta), index_len),
            meta,
            _KEY_BLOB_PREFIX.pack(len(key_blob)),
            key_blob,
            *spans,
            *parts,
        ]
    )


class SegmentView:
    """Parsed header + lazily decodable entries of one readable segment.

    Binary segments keep an mmap of the file and decode single entries on
    demand; legacy JSON segments arrive fully decoded (the whole file was
    one JSON document) and merely present the same interface.
    """

    __slots__ = ("payload", "_index", "_buf", "_body_start", "_entries")

    def __init__(
        self,
        payload: dict,
        *,
        index: dict | None = None,
        buf=None,
        body_start: int = 0,
        entries: dict | None = None,
    ):
        self.payload = payload
        self._index = index
        self._buf = buf
        self._body_start = body_start
        self._entries = entries

    def __len__(self) -> int:
        if self._entries is not None:
            return len(self._entries)
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        if self._entries is not None:
            return key in self._entries
        return key in self._index

    def keys(self):
        if self._entries is not None:
            return self._entries.keys()
        return self._index.keys()

    def blob(self, key: str) -> bytes | None:
        """The entry's canonical JSON bytes, or ``None`` when absent."""
        if self._entries is not None:
            if key not in self._entries:
                return None
            return _encode_blob(self._entries[key])
        span = self._index.get(key)
        # Spans come straight from the untrusted index JSON; validate here,
        # per probe, so attaching never pays a whole-index scan.
        if (
            not isinstance(span, (list, tuple))
            or len(span) != 2
            or not all(isinstance(v, int) for v in span)
        ):
            return None
        offset, length = span
        if offset < 0 or length < 0:
            return None
        start = self._body_start + offset
        try:
            (prefixed,) = _BLOB_PREFIX.unpack_from(self._buf, start)
        except struct.error:
            return None
        if prefixed != length:
            return None  # index/body disagree: corrupt entry == miss
        blob = bytes(self._buf[start + _BLOB_PREFIX.size : start + _BLOB_PREFIX.size + length])
        if len(blob) != length:
            return None
        return blob

    def get(self, key: str, default=None):
        """Decode exactly one entry (lazy for binary segments)."""
        if self._entries is not None:
            return self._entries.get(key, default)
        blob = self.blob(key)
        if blob is None:
            return default
        try:
            return json.loads(blob)
        except ValueError:
            return default

    def entries(self) -> dict:
        """Full decode — the manifest/merge path, not the warm-read path."""
        if self._entries is not None:
            return dict(self._entries)
        out = {}
        for key in self._index:
            value = self.get(key, _MISS)
            if value is not _MISS:
                out[key] = value
        return out


def _load_binary_view(path: Path) -> SegmentView | None:
    """Parse one binary segment's header and index; ``None`` when the file
    is missing, torn (size mismatch with the recorded total), or trash."""
    try:
        with open(path, "rb") as f:
            st = os.fstat(f.fileno())
            size = st.st_size
            if size < _SEGMENT_HEADER.size:
                return None
            try:
                buf = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            except (OSError, ValueError):
                buf = f.read()
    except OSError:
        return None
    try:
        magic, total, meta_len, index_len = _SEGMENT_HEADER.unpack_from(buf, 0)
        if magic != SEGMENT_MAGIC or total != size:
            return None
        meta_start = _SEGMENT_HEADER.size
        index_start = meta_start + meta_len
        body_start = index_start + index_len
        if body_start > size:
            return None
        payload = json.loads(bytes(buf[meta_start:index_start]))
        if not isinstance(payload, dict):
            return None
        (key_blob_len,) = _KEY_BLOB_PREFIX.unpack_from(buf, index_start)
        keys_start = index_start + _KEY_BLOB_PREFIX.size
        spans_start = keys_start + key_blob_len
        if spans_start > body_start:
            return None
        if key_blob_len:
            keys = bytes(buf[keys_start:spans_start]).decode("utf-8").split("\n")
        else:
            keys = []
        span_bytes = bytes(buf[spans_start:body_start])
        if len(span_bytes) != len(keys) * _SPAN.size:
            return None
        # All C-level: attach cost is index I/O, never a per-key loop.
        index = dict(zip(keys, _SPAN.iter_unpack(span_bytes)))
        if len(index) != len(keys):
            return None  # duplicate keys: not a segment we wrote
    except (struct.error, ValueError, TypeError, UnicodeDecodeError):
        return None
    # Span *contents* are validated lazily in :meth:`SegmentView.blob` — a
    # span pointing outside the body is a per-entry miss.
    return SegmentView(payload, index=index, buf=buf, body_start=body_start)


def _load_legacy_view(path: Path) -> SegmentView | None:
    """Parse one legacy whole-JSON segment into an eager view."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    entries = data.get("entries")
    if not isinstance(entries, dict):
        return None
    payload = {k: v for k, v in data.items() if k != "entries"}
    return SegmentView(payload, entries=entries)


# Parsed views are cached process-wide by (path, stat signature): a warm
# replay probes the same segment thousands of times, and re-parsing the
# index (let alone re-reading a legacy JSON file) per probe would defeat
# the lazy format. A rewrite changes the signature and reloads; mmaps of
# replaced files stay valid until dropped.
_VIEW_CACHE_LOCK = threading.Lock()
_VIEW_CACHE: "OrderedDict[str, tuple[tuple, SegmentView | None]]" = OrderedDict()
_VIEW_CACHE_CAP = 512


def _segment_view(path: Path) -> SegmentView | None:
    """The cached view of ``path`` (binary or legacy by suffix), or ``None``
    for anything missing or unreadable."""
    try:
        st = os.stat(path)
    except OSError:
        return None
    sig = (st.st_mtime_ns, st.st_size, st.st_ino)
    cache_key = str(path)
    with _VIEW_CACHE_LOCK:
        hit = _VIEW_CACHE.get(cache_key)
        if hit is not None and hit[0] == sig:
            _VIEW_CACHE.move_to_end(cache_key)
            return hit[1]
    if path.suffix == ".json":
        view = _load_legacy_view(path)
    else:
        view = _load_binary_view(path)
    with _VIEW_CACHE_LOCK:
        _VIEW_CACHE[cache_key] = (sig, view)
        _VIEW_CACHE.move_to_end(cache_key)
        while len(_VIEW_CACHE) > _VIEW_CACHE_CAP:
            _VIEW_CACHE.popitem(last=False)
    return view


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM): treat as alive
    return True


# ---------------------------------------------------------------------------
# The store base
# ---------------------------------------------------------------------------

class ArtifactStore:
    """Disk-backed packed-binary segments with size-bounded eviction.

    One segment per reuse unit (a device's profiles, a corpus's sources, a
    tokenizer's counts). Writes are atomic and read-merge-write, so
    concurrent writers can at worst lose some of each other's *warmth* —
    entries are content-addressed and deterministic, so no interleaving
    can install a wrong value.

    ``max_bytes`` semantics: ``None`` (default) is unbounded; ``0`` keeps
    nothing — every eviction pass deletes every segment (useful to force a
    cache-off sweep without unplumbing the store); a positive bound evicts
    whole segments oldest-written-first until the store fits. Negative
    bounds are rejected. Eviction also garbage-collects version-skewed and
    unreadable segments (stranded by version bumps) and sweeps stale
    ``*.tmp.*`` files leaked by crashed writers; live tmp files count
    toward the bound so it stays honest.
    """

    #: Recorded in every segment payload and checked on read; bump in the
    #: subclass whenever the artifact's semantics change.
    version: str = ""

    #: Filename prefixes of every segment kind this store's family owns.
    #: Size accounting, eviction, and ``clear`` operate over the union, so
    #: stores sharing one root share one bound.
    segment_prefixes: tuple[str, ...] = ()

    #: Inside a ``deferred()`` block, flush anyway once this many entries
    #: are buffered (bounds memory on huge sweeps).
    DEFERRED_FLUSH_ENTRIES = 4096

    #: A ``*.tmp.*`` file older than this is stale even if a process with
    #: its recorded pid is still alive (pids recycle).
    STALE_TMP_AGE_S = 3600.0

    #: Attaching to a directory sweeps dead writers' tmp files. The store
    #: doctor flips this off (:func:`repro.store.doctor.quiet_attach`) so a
    #: read-only diagnosis can observe the leak instead of cleaning it.
    ATTACH_SWEEP = True

    def __init__(self, root: str | Path, *, max_bytes: int | None = None):
        self.root = Path(root)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(
                f"max_bytes must be >= 0 or None, got {max_bytes} "
                "(0 keeps nothing; None is unbounded)"
            )
        self.max_bytes = max_bytes
        self._store_lock = threading.RLock()
        self._pending: dict[Path, list] = {}
        self._pending_entries = 0
        self._defer_depth = 0
        # Crashed writers leak tmp files that no size check used to see;
        # sweep the stale ones whenever a store attaches to a directory.
        if self.ATTACH_SWEEP and self.root.is_dir():
            self._sweep_stale_tmp_files()

    # -- segment naming ------------------------------------------------------
    def _segment_path(self, prefix: str, key: str) -> Path:
        return self.root / f"{prefix}{key[:32]}.bin"

    def _legacy_segment_path(self, prefix: str, key: str) -> Path:
        return self.root / f"{prefix}{key[:32]}.json"

    def _segment_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        try:
            return sorted(
                p
                for p in self.root.iterdir()
                if p.name.endswith((".bin", ".json"))
                and p.name.startswith(self.segment_prefixes)
            )
        except OSError:
            return []  # root vanished mid-scan (concurrent wipe)

    def _iter_tmp_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        try:
            return [p for p in self.root.glob("*.tmp.*") if p.is_file()]
        except OSError:
            return []

    def _extra_data_files(self) -> list[Path]:
        """Non-segment files the store also owns (counted and evictable);
        hook for :class:`~repro.eval.engine.DiskResponseStore`'s legacy
        per-entry files."""
        return []

    # -- reads ---------------------------------------------------------------
    def _view_for(
        self, prefix: str, key: str, *, expect_key: str | None
    ) -> SegmentView | None:
        """The readable current-version view of one logical segment —
        binary first, legacy ``.json`` fallback.

        ``expect_key`` guards against prefix-truncated filename collisions
        and version skew: a segment whose recorded key differs is ignored.
        """
        for path in (
            self._segment_path(prefix, key),
            self._legacy_segment_path(prefix, key),
        ):
            view = _segment_view(path)
            if view is None:
                continue
            if view.payload.get("version") != self.version:
                continue
            if expect_key is not None and view.payload.get("key") != expect_key:
                continue
            return view
        return None

    def _get_entries(
        self,
        prefix: str,
        key: str,
        entry_keys: Sequence[str],
        *,
        expect_key: str | None,
    ) -> dict:
        """entry key → raw (JSON-shaped) value for every requested key
        present, decoding **only** the requested entries. Buffered puts
        overlay the on-disk segment, so a deferred batch reads its own
        writes."""
        out: dict = {}
        view = self._view_for(prefix, key, expect_key=expect_key)
        if view is not None:
            for k in entry_keys:
                value = view.get(k, _MISS)
                if value is not _MISS:
                    out[k] = value
        with self._store_lock:
            pend = self._pending.get(self._segment_path(prefix, key))
            if pend is not None:
                entries = pend[3]
                for k in entry_keys:
                    if k in entries:
                        out[k] = entries[k]
        return out

    def _read_segment(self, path: Path, *, expect_key: str | None) -> dict:
        """A segment file's full ``entries`` dict; anything unreadable,
        version-skewed, or mis-keyed reads as empty."""
        view = _segment_view(path)
        if view is None or view.payload.get("version") != self.version:
            return {}
        if expect_key is not None and view.payload.get("key") != expect_key:
            return {}
        return view.entries()

    def iter_segments(self) -> Iterator[tuple[Path, dict]]:
        """Yield ``(path, payload)`` for every readable current-version
        segment — the raw material for subclass manifests. A legacy
        ``.json`` segment shadowed by its migrated binary twin is skipped,
        so entries are never double-counted."""
        self.flush()
        for path in self._segment_files():
            if path.suffix == ".json" and path.with_suffix(".bin").is_file():
                continue
            view = _segment_view(path)
            if view is None or view.payload.get("version") != self.version:
                continue
            data = dict(view.payload)
            data["entries"] = view.entries()
            yield path, data

    def stale_segment_count(self) -> int:
        """Segment files that can no longer serve reads — version-skewed
        (stranded by a version bump) or unreadable — plus legacy files
        shadowed by a migrated binary twin. The next :meth:`evict` call
        garbage-collects them; manifests surface this count."""
        stale = 0
        for path in self._segment_files():
            if path.suffix == ".json" and path.with_suffix(".bin").is_file():
                stale += 1
                continue
            view = _segment_view(path)
            if view is None or view.payload.get("version") != self.version:
                stale += 1
        return stale

    # -- writes --------------------------------------------------------------
    def _merge_entries(
        self,
        prefix: str,
        key: str,
        payload: dict,
        entries: Mapping,
        *,
        expect_key: str | None,
    ) -> None:
        """Buffer ``entries`` for the segment at ``(prefix, key)``; outside
        a :meth:`deferred` block this flushes (one read-merge-write)
        immediately."""
        if not entries:
            return
        path = self._segment_path(prefix, key)
        with self._store_lock:
            pend = self._pending.get(path)
            if pend is None:
                self._pending[path] = [prefix, key, dict(payload), dict(entries), expect_key]
            else:
                pend[2] = dict(payload)
                pend[3].update(entries)
            self._pending_entries += len(entries)
            flush_now = (
                self._defer_depth == 0
                or self._pending_entries >= self.DEFERRED_FLUSH_ENTRIES
            )
        if flush_now:
            self.flush()

    def flush(self) -> None:
        """Merge every buffered batch into its disk segment — one
        read-merge-write per segment regardless of how many put calls
        accumulated. A no-op with nothing pending.

        The whole merge loop holds the store lock: two threads flushing
        the same segment would otherwise interleave their read-merge-write
        cycles and the last replace would drop the other's entries.
        Blocking a ``put`` until an in-flight flush lands is also what
        makes read-your-writes hold when another thread's flush happens to
        carry this thread's pending batch."""
        with self._store_lock:
            if not self._pending:
                return
            pending = self._pending
            self._pending = {}
            self._pending_entries = 0
            for path, (prefix, key, payload, entries, expect_key) in pending.items():
                merged = {}
                view = self._view_for(prefix, key, expect_key=expect_key)
                if view is not None:
                    merged = view.entries()
                merged.update(entries)
                self._write_segment(path, payload, merged)
        self._maybe_evict()

    @contextmanager
    def deferred(self):
        """Batch puts: inside the block they buffer in memory (reads still
        see them); the block exit flushes once per touched segment.

        Exception semantics are deterministic: a **clean** exit of the
        outermost block flushes everything buffered; an **exceptional**
        exit (any ``BaseException``, including ``KeyboardInterrupt``)
        discards the store's entire pending buffer instead — no disk I/O
        happens while unwinding, so a flush failure can never shadow the
        real error and a second Ctrl-C can never tear a half-written
        flush. Batches already spilled mid-block by the
        ``DEFERRED_FLUSH_ENTRIES`` interval stay on disk, so an aborted
        sweep loses at most one interval of warmth — and entries are
        content-addressed, so a lost batch costs recomputation, never
        correctness. The buffer is store-global: the discard also drops
        batches buffered by other threads' concurrently open ``deferred``
        blocks (they would have shared the same flush).

        Nested blocks defer to the outermost one: an exception *caught
        inside* the outer block leaves the buffer intact, and the outer
        clean exit still flushes it.
        """
        with self._store_lock:
            self._defer_depth += 1
        try:
            yield self
        except BaseException:
            with self._store_lock:
                self._defer_depth -= 1
                if self._defer_depth == 0:
                    self._pending.clear()
                    self._pending_entries = 0
            raise
        else:
            with self._store_lock:
                self._defer_depth -= 1
                flush_now = self._defer_depth == 0
            if flush_now:
                self.flush()

    def _write_segment(self, path: Path, payload: dict, entries: dict) -> None:
        """Atomically install the binary segment; a same-stem legacy
        ``.json`` segment is unlinked afterwards (its entries were merged
        in, completing the migration). Unwritable stores degrade to
        uncached, never crash the computing pass."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            data = encode_segment(payload, entries)
            plan = active_fault_plan()
            if plan is not None:
                # Chaos hook: the active plan may tear/forge/skew these
                # bytes or veto the write with ENOSPC. Still installed via
                # tmp+replace, so injected corruption models damage that
                # predates this process — exactly what the doctor fscks.
                data = plan.mangle_segment(path, payload, entries, data)
            tmp = path.with_suffix(
                f".tmp.{os.getpid()}.{threading.get_ident()}"
            )
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            return
        legacy = path.with_suffix(".json")
        try:
            legacy.unlink()
        except OSError:
            pass  # usually just absent

    # -- lifecycle -----------------------------------------------------------
    def size_bytes(self) -> int:
        """Bytes the store occupies on disk: segments, legacy files, and
        ``*.tmp.*`` leftovers — everything the eviction bound must cover."""
        self.flush()
        total = 0
        for p in (
            *self._segment_files(),
            *self._extra_data_files(),
            *self._iter_tmp_files(),
        ):
            try:
                total += p.stat().st_size
            except OSError:
                continue
        return total

    def _sweep_stale_tmp_files(self) -> int:
        """Delete tmp files leaked by crashed writers: their recorded pid
        is dead, or they outlived :data:`STALE_TMP_AGE_S`. A live writer's
        in-flight tmp file survives."""
        removed = 0
        now = time.time()
        for p in self._iter_tmp_files():
            pid: int | None = None
            _, _, tail = p.name.partition(".tmp.")
            head = tail.split(".", 1)[0]
            if head.isdigit():
                pid = int(head)
            stale = True
            if pid is not None and _pid_alive(pid):
                try:
                    stale = now - p.stat().st_mtime > self.STALE_TMP_AGE_S
                except OSError:
                    continue  # vanished mid-sweep: nothing left to do
            if stale:
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def _maybe_evict(self) -> None:
        if self.max_bytes is not None:
            self.evict()

    def evict(self, max_bytes: int | None = None) -> int:
        """Garbage-collect stale segments and tmp leftovers, then delete
        oldest-written segments until the store fits ``max_bytes``
        (defaults to the configured bound; ``0`` keeps nothing; ``None``
        skips the bound pass). Returns segment/data files removed."""
        self.flush()
        self._sweep_stale_tmp_files()
        removed = 0
        stats: list[tuple[float, int, Path]] = []
        total = 0
        for p in self._segment_files():
            try:
                st = p.stat()
            except OSError:
                continue
            shadowed = (
                p.suffix == ".json" and p.with_suffix(".bin").is_file()
            )
            view = _segment_view(p)
            if (
                shadowed
                or view is None
                or view.payload.get("version") != self.version
            ):
                # Version-skewed, unreadable, or superseded: unreachable
                # disk garbage regardless of any size bound.
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
                continue
            stats.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        for p in self._extra_data_files():
            try:
                st = p.stat()
            except OSError:
                continue
            stats.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        for p in self._iter_tmp_files():
            try:
                total += p.stat().st_size  # live writers count, too
            except OSError:
                continue
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None or total <= bound:
            return removed
        for _, size, path in sorted(stats):
            if total <= bound:
                break
            try:
                path.unlink()
            except OSError:
                continue  # lost a race with a concurrent evictor
            total -= size
            removed += 1
        return removed

    def clear(self) -> None:
        # Remove only files the store owns, never the root wholesale: the
        # directory may contain unrelated files.
        with self._store_lock:
            self._pending.clear()
            self._pending_entries = 0
        for path in (*self._segment_files(), *self._extra_data_files()):
            try:
                path.unlink()
            except OSError:
                pass
        for stale in self._iter_tmp_files():
            try:
                stale.unlink()
            except OSError:
                pass
