"""Model registry: the nine LLMs of Table 1, in the paper's row order."""

from __future__ import annotations

from repro.llm.base import LlmModel
from repro.llm.config import ALL_CONFIGS, ModelConfig

#: Table 1 row order (sorted by RQ1 accuracy in the paper).
MODEL_NAMES: tuple[str, ...] = tuple(c.name for c in ALL_CONFIGS)

_CONFIGS: dict[str, ModelConfig] = {c.name: c for c in ALL_CONFIGS}


def get_config(name: str) -> ModelConfig:
    try:
        return _CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(_CONFIGS)}"
        ) from None


def get_model(name: str) -> LlmModel:
    """Instantiate one emulated model by name."""
    return LlmModel(get_config(name))


def all_models() -> list[LlmModel]:
    """All Table 1 models in row order."""
    return [LlmModel(c) for c in ALL_CONFIGS]


def reasoning_models() -> list[LlmModel]:
    return [m for m in all_models() if m.config.reasoning]


def non_reasoning_models() -> list[LlmModel]:
    return [m for m in all_models() if not m.config.reasoning]
