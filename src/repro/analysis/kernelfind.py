"""Kernel discovery in concatenated source text.

Finds GPU kernels the way a careful reader would: CUDA kernels are
``__global__`` functions; OpenMP offload kernels are functions whose body
contains a ``#pragma omp target`` construct. Returns each kernel's name,
parameter list text, and body text (balanced-brace extraction).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analysis.clexer import strip_comments
from repro.types import Language


@dataclass(frozen=True)
class KernelSource:
    """One kernel as found in source text."""

    name: str
    params_text: str
    body_text: str
    language: Language
    start: int


_CUDA_KERNEL_RE = re.compile(
    r"__global__\s+void\s+([A-Za-z_][A-Za-z_0-9]*)\s*\(", re.MULTILINE
)
_FUNC_RE = re.compile(
    r"(?:^|\n)\s*(?:static\s+)?void\s+([A-Za-z_][A-Za-z_0-9]*)\s*\(", re.MULTILINE
)


def _matching(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Index just past the matching close bracket, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _extract(text: str, m: re.Match, language: Language) -> KernelSource | None:
    name = m.group(1)
    paren_open = text.index("(", m.end() - 1)
    paren_close = _matching(text, paren_open, "(", ")")
    if paren_close == -1:
        return None
    brace_open = text.find("{", paren_close)
    if brace_open == -1:
        return None
    # Only whitespace may sit between ')' and '{' for a definition.
    if text[paren_close:brace_open].strip():
        return None
    brace_close = _matching(text, brace_open, "{", "}")
    if brace_close == -1:
        return None
    return KernelSource(
        name=name,
        params_text=text[paren_open + 1 : paren_close - 1],
        body_text=text[brace_open + 1 : brace_close - 1],
        language=language,
        start=m.start(),
    )


def find_kernels(source: str, language: Language) -> list[KernelSource]:
    """All kernels in source order."""
    text = strip_comments(source)
    out: list[KernelSource] = []
    if language is Language.CUDA:
        for m in _CUDA_KERNEL_RE.finditer(text):
            ks = _extract(text, m, language)
            if ks is not None:
                out.append(ks)
    else:
        for m in _FUNC_RE.finditer(text):
            ks = _extract(text, m, language)
            if ks is not None and "#pragma omp target" in ks.body_text:
                out.append(ks)
    return out


def find_kernel(source: str, name: str, language: Language) -> KernelSource:
    """The kernel with the given name (raises KeyError if absent)."""
    for ks in find_kernels(source, language):
        if ks.name == name:
            return ks
    raise KeyError(f"kernel {name!r} not found in source")


def first_kernel(source: str, language: Language) -> KernelSource:
    """The program's first kernel in source order (the paper's query target
    is the first kernel of the object dump; generated sources list kernels
    in launch order)."""
    kernels = find_kernels(source, language)
    if not kernels:
        raise ValueError("no kernels found in source")
    return kernels[0]
