"""Store fsck: diagnose and quarantine damaged segments.

``repro-paper doctor`` runs this over all three store families (response,
profile, text-artifact). Diagnosis is read-only and classifies every way
a store file can stop serving reads:

* ``torn_write`` — file shorter/longer than the total its header records
  (a crashed or interrupted writer);
* ``corrupt`` — bad magic, unparseable header/meta/index (bit rot,
  foreign file under a store prefix);
* ``version_skew`` — readable segment recorded under another store
  version (stranded by a version bump);
* ``forged_index`` — header parses but an index span points outside the
  body, or the span/blob prefixes disagree (per-entry misses at read
  time);
* ``bad_entry`` — a span resolves but its blob is not valid JSON;
* ``shadowed_legacy`` — a ``.json`` segment superseded by its migrated
  ``.bin`` twin;
* ``corrupt_entry`` — an unreadable legacy per-entry file
  (:class:`~repro.eval.engine.DiskResponseStore`'s pre-segment layout);
* ``stale_tmp`` — a ``*.tmp.*`` file leaked by a dead writer.

Every class is a *degradation* the stores already survive (reads miss and
recompute); the doctor exists so an operator can see the damage and
reclaim it deliberately. Repair quarantines bad segment files into a
``quarantine/`` subdirectory (out of every store's segment scan, so the
store re-attaches clean, but recoverable by hand) and deletes the
trash that has nothing to recover (stale tmp files, shadowed legacy
twins).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.store.base import (
    _KEY_BLOB_PREFIX,
    _SEGMENT_HEADER,
    SEGMENT_MAGIC,
    ArtifactStore,
    _pid_alive,
    _segment_view,
)

QUARANTINE_DIRNAME = "quarantine"

#: Issue kinds whose files carry nothing recoverable: repair deletes them
#: instead of quarantining.
_DELETE_KINDS = frozenset({"stale_tmp", "shadowed_legacy"})


@contextmanager
def quiet_attach() -> Iterator[None]:
    """Suspend the attach-time stale-tmp sweep while constructing stores.

    A normal attach deletes dead writers' tmp files as a convenience; the
    doctor must attach *without* that side effect so a ``--dry-run`` can
    report the leak and leave the store byte-identical.
    """
    prior = ArtifactStore.ATTACH_SWEEP
    ArtifactStore.ATTACH_SWEEP = False
    try:
        yield
    finally:
        ArtifactStore.ATTACH_SWEEP = prior


@dataclass(frozen=True)
class StoreIssue:
    """One damaged file (or entry) found by :func:`diagnose_store`."""

    store: str  # which store family flagged it
    path: Path
    kind: str
    detail: str

    @property
    def action(self) -> str:
        """What repair does about it: ``delete`` or ``quarantine``."""
        return "delete" if self.kind in _DELETE_KINDS else "quarantine"

    def render(self) -> str:
        return f"[{self.store}] {self.path.name}: {self.kind} — {self.detail}"


@dataclass(frozen=True)
class DoctorReport:
    """One doctor pass over one store."""

    store: str
    scanned: int
    issues: tuple[StoreIssue, ...]
    repaired: int  # files quarantined or deleted (0 on dry runs)

    @property
    def healthy(self) -> bool:
        return not self.issues

    def render(self) -> str:
        head = (
            f"{self.store}: scanned {self.scanned} file(s), "
            f"{len(self.issues)} issue(s)"
        )
        if self.repaired:
            head += f", {self.repaired} repaired"
        if not self.issues:
            return head + " — healthy"
        lines = "\n".join(f"  {issue.render()}" for issue in self.issues)
        return f"{head}\n{lines}"


def _classify_binary(path: Path, version: str) -> tuple[str, str] | None:
    """(kind, detail) for a damaged binary segment, ``None`` when clean."""
    try:
        data = path.read_bytes()
    except OSError as exc:
        return "corrupt", f"unreadable: {exc.strerror or exc}"
    if len(data) < _SEGMENT_HEADER.size:
        return "torn_write", f"{len(data)} bytes, header needs {_SEGMENT_HEADER.size}"
    magic, total, meta_len, index_len = _SEGMENT_HEADER.unpack_from(data, 0)
    if magic != SEGMENT_MAGIC:
        return "corrupt", f"bad magic {magic!r}"
    if total != len(data):
        return "torn_write", f"header records {total} bytes, file has {len(data)}"
    view = _segment_view(path)
    if view is None:
        return "corrupt", "header parses but meta/index do not"
    recorded = view.payload.get("version")
    if recorded != version:
        return "version_skew", f"segment version {recorded!r}, store wants {version!r}"
    for key in view.keys():
        blob = view.blob(key)
        if blob is None:
            return "forged_index", f"entry {key[:16]}… span resolves to no blob"
        try:
            json.loads(blob)
        except ValueError:
            return "bad_entry", f"entry {key[:16]}… blob is not JSON"
    return None


def _classify_legacy(path: Path, version: str) -> tuple[str, str] | None:
    """(kind, detail) for a damaged legacy ``.json`` segment."""
    view = _segment_view(path)
    if view is None:
        return "corrupt", "not a readable legacy JSON segment"
    recorded = view.payload.get("version")
    if recorded != version:
        return "version_skew", f"segment version {recorded!r}, store wants {version!r}"
    return None


def _stale_tmp_files(store: ArtifactStore) -> list[tuple[Path, str]]:
    out = []
    now = time.time()
    for p in store._iter_tmp_files():
        pid: int | None = None
        _, _, tail = p.name.partition(".tmp.")
        head = tail.split(".", 1)[0]
        if head.isdigit():
            pid = int(head)
        if pid is not None and not _pid_alive(pid):
            out.append((p, f"writer pid {pid} is dead"))
            continue
        try:
            age = now - p.stat().st_mtime
        except OSError:
            continue
        if age > store.STALE_TMP_AGE_S:
            out.append((p, f"tmp file is {age:.0f}s old"))
    return out


def diagnose_store(store: ArtifactStore, label: str) -> DoctorReport:
    """Read-only fsck of one store; never modifies anything on disk."""
    store.flush()
    issues: list[StoreIssue] = []
    scanned = 0
    for path in store._segment_files():
        scanned += 1
        if path.suffix == ".json" and path.with_suffix(".bin").is_file():
            issues.append(
                StoreIssue(
                    label, path, "shadowed_legacy",
                    "superseded by its migrated .bin twin",
                )
            )
            continue
        found = (
            _classify_legacy(path, store.version)
            if path.suffix == ".json"
            else _classify_binary(path, store.version)
        )
        if found is not None:
            issues.append(StoreIssue(label, path, found[0], found[1]))
    for path in store._extra_data_files():
        scanned += 1
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            issues.append(
                StoreIssue(
                    label, path, "corrupt_entry",
                    "unreadable legacy per-entry file",
                )
            )
    for path, detail in _stale_tmp_files(store):
        scanned += 1
        issues.append(StoreIssue(label, path, "stale_tmp", detail))
    return DoctorReport(
        store=label, scanned=scanned, issues=tuple(issues), repaired=0
    )


def repair_store(store: ArtifactStore, report: DoctorReport) -> DoctorReport:
    """Apply ``report``'s repairs: quarantine damaged segments, delete
    trash. Returns the report with ``repaired`` filled in; the store then
    re-attaches clean (``diagnose_store`` finds nothing, every surviving
    read works)."""
    quarantine = store.root / QUARANTINE_DIRNAME
    repaired = 0
    for issue in report.issues:
        try:
            if issue.action == "delete":
                issue.path.unlink()
            else:
                quarantine.mkdir(parents=True, exist_ok=True)
                dest = quarantine / issue.path.name
                n = 0
                while dest.exists():
                    n += 1
                    dest = quarantine / f"{issue.path.name}.{n}"
                os.replace(issue.path, dest)
        except OSError:
            continue  # vanished or unmovable: the next pass re-reports it
        repaired += 1
    return DoctorReport(
        store=report.store,
        scanned=report.scanned,
        issues=report.issues,
        repaired=repaired,
    )


def doctor_store(
    store: ArtifactStore, label: str, *, repair: bool = False
) -> DoctorReport:
    """Diagnose ``store``; optionally repair what was found."""
    report = diagnose_store(store, label)
    if repair and report.issues:
        report = repair_store(store, report)
    return report
