"""Dataset record types.

A :class:`Sample` is one (program, first-kernel) pair with everything the
evaluation needs: the ground-truth label and its provenance (profiled
counters), the concatenated source text shown to LLMs, the prompt metadata
(kernel name, launch geometry, argv), and the token count used for pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.types import Boundedness, Language, OpClass


@dataclass(frozen=True)
class CounterSummary:
    """The profiled metrics the paper collects per kernel (§2.1)."""

    sp_flops: float
    dp_flops: float
    int_ops: float
    dram_read_bytes: float
    dram_write_bytes: float
    time_s: float

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    def intensity(self, op_class: OpClass) -> float:
        ops = {
            OpClass.SP: self.sp_flops,
            OpClass.DP: self.dp_flops,
            OpClass.INT: self.int_ops,
        }[op_class]
        return ops / self.dram_bytes

    def to_dict(self) -> dict:
        return {
            "sp_flops": self.sp_flops,
            "dp_flops": self.dp_flops,
            "int_ops": self.int_ops,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "time_s": self.time_s,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "CounterSummary":
        return cls(
            sp_flops=float(d["sp_flops"]),
            dp_flops=float(d["dp_flops"]),
            int_ops=float(d["int_ops"]),
            dram_read_bytes=float(d["dram_read_bytes"]),
            dram_write_bytes=float(d["dram_write_bytes"]),
            time_s=float(d["time_s"]),
        )


@dataclass(frozen=True)
class Sample:
    """One labelled dataset sample (one program, first kernel)."""

    uid: str
    language: Language
    family: str
    program_name: str
    kernel_name: str
    label: Boundedness
    counters: CounterSummary
    token_count: int
    source: str
    block: tuple[int, int, int]
    grid: tuple[int, int, int]
    argv: str
    gpu_name: str

    def __post_init__(self) -> None:
        if self.token_count < 0:
            raise ValueError("token_count must be non-negative")

    @property
    def cell(self) -> tuple[Language, Boundedness]:
        """The (language, class) balancing cell (paper §2.2)."""
        return (self.language, self.label)

    def to_dict(self, *, include_source: bool = True) -> dict:
        d = {
            "uid": self.uid,
            "language": self.language.value,
            "family": self.family,
            "program_name": self.program_name,
            "kernel_name": self.kernel_name,
            "label": self.label.value,
            "counters": self.counters.to_dict(),
            "token_count": self.token_count,
            "block": list(self.block),
            "grid": list(self.grid),
            "argv": self.argv,
            "gpu_name": self.gpu_name,
        }
        if include_source:
            d["source"] = self.source
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "Sample":
        return cls(
            uid=d["uid"],
            language=Language(d["language"]),
            family=d["family"],
            program_name=d["program_name"],
            kernel_name=d["kernel_name"],
            label=Boundedness(d["label"]),
            counters=CounterSummary.from_dict(d["counters"]),
            token_count=int(d["token_count"]),
            source=d.get("source", ""),
            block=tuple(d["block"]),
            grid=tuple(d["grid"]),
            argv=d["argv"],
            gpu_name=d["gpu_name"],
        )


def cell_counts(samples: list[Sample]) -> dict[tuple[Language, Boundedness], int]:
    """Count samples per (language, class) cell."""
    out: dict[tuple[Language, Boundedness], int] = {}
    for s in samples:
        out[s.cell] = out.get(s.cell, 0) + 1
    return out
