"""Prompt construction (paper Figures 3 and 4)."""

from repro.prompts.classify import ClassifyPrompt, SYSTEM_HEADER, build_classify_prompt
from repro.prompts.examples import (
    EXAMPLE_VARIANT,
    PSEUDO_EXAMPLES,
    CodeExample,
    real_examples,
    real_examples_block,
)
from repro.prompts.rq1 import (
    NUM_ROOFLINES,
    SHOT_COUNTS,
    RooflineQuestion,
    build_rq1_prompt,
    generate_question,
    generate_rq1_questions,
)

__all__ = [
    "ClassifyPrompt",
    "SYSTEM_HEADER",
    "build_classify_prompt",
    "PSEUDO_EXAMPLES",
    "EXAMPLE_VARIANT",
    "CodeExample",
    "real_examples",
    "real_examples_block",
    "RooflineQuestion",
    "build_rq1_prompt",
    "generate_question",
    "generate_rq1_questions",
    "NUM_ROOFLINES",
    "SHOT_COUNTS",
]
