"""Tests for the metric triple (accuracy, macro-F1, MCC)."""

import pytest

from repro.eval.metrics import (
    ConfusionCounts,
    MetricReport,
    accuracy,
    confusion,
    macro_f1,
    mcc,
)
from repro.types import Boundedness

CB = Boundedness.COMPUTE
BB = Boundedness.BANDWIDTH


class TestConfusion:
    def test_counts(self):
        c = confusion([CB, CB, BB, BB], [CB, BB, CB, BB])
        assert (c.tp, c.fn, c.fp, c.tn) == (1, 1, 1, 1)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion([CB], [CB, BB])

    def test_empty(self):
        with pytest.raises(ValueError):
            confusion([], [])


class TestAccuracy:
    def test_perfect(self):
        c = confusion([CB, BB], [CB, BB])
        assert accuracy(c) == 100.0

    def test_chance(self):
        c = confusion([CB, CB, BB, BB], [CB, BB, CB, BB])
        assert accuracy(c) == 50.0


class TestMacroF1:
    def test_perfect(self):
        c = confusion([CB, BB], [CB, BB])
        assert macro_f1(c) == 100.0

    def test_symmetry_under_class_swap(self):
        truths = [CB, CB, CB, BB, BB]
        preds = [CB, BB, CB, BB, CB]
        direct = macro_f1(confusion(truths, preds))
        swapped = macro_f1(
            confusion([t.other for t in truths], [p.other for p in preds])
        )
        assert direct == pytest.approx(swapped)

    def test_constant_predictor_penalized(self):
        # always Compute on a balanced set: acc 50, macro-F1 ~33
        truths = [CB] * 5 + [BB] * 5
        preds = [CB] * 10
        c = confusion(truths, preds)
        assert accuracy(c) == 50.0
        assert macro_f1(c) == pytest.approx(33.33, abs=0.01)


class TestMcc:
    def test_perfect(self):
        assert mcc(confusion([CB, BB], [CB, BB])) == 100.0

    def test_inverted(self):
        assert mcc(confusion([CB, BB], [BB, CB])) == -100.0

    def test_random_near_zero(self):
        assert mcc(confusion([CB, CB, BB, BB], [CB, BB, CB, BB])) == 0.0

    def test_constant_predictor_zero(self):
        assert mcc(confusion([CB, BB], [CB, CB])) == 0.0

    def test_known_value(self):
        # tp=6, tn=3, fp=1, fn=2  →  classic textbook value
        c = ConfusionCounts(tp=6, tn=3, fp=1, fn=2)
        expected = (6 * 3 - 1 * 2) / ((7 * 8 * 4 * 5) ** 0.5) * 100
        assert mcc(c) == pytest.approx(expected)


class TestMetricReport:
    def test_from_predictions(self):
        rep = MetricReport.from_predictions([CB, BB, CB, BB], [CB, BB, BB, BB])
        assert rep.n == 4
        assert rep.accuracy == 75.0
        assert 0 < rep.macro_f1 < 100
