"""Tests for the fine-tuning simulator (RQ4)."""

import pytest

from repro.llm.finetune import (
    FineTuneConfig,
    FineTunedClassifier,
    featurize,
    prediction_entropy,
)
from repro.types import Boundedness

CB = Boundedness.COMPUTE
BB = Boundedness.BANDWIDTH


class TestFeaturize:
    def test_normalized(self):
        x = featurize("float x = a * b;", 1024)
        norm = sum(v * v for v in x.values()) ** 0.5
        assert norm == pytest.approx(1.0)

    def test_empty_prompt(self):
        assert featurize("", 1024) == {}

    def test_dim_respected(self):
        x = featurize("many words " * 50, 64)
        assert all(0 <= i < 64 for i in x)

    def test_deterministic(self):
        assert featurize("same text", 512) == featurize("same text", 512)


class TestConfigValidation:
    def test_defaults_valid(self):
        FineTuneConfig()

    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            FineTuneConfig(epochs=0)

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            FineTuneConfig(learning_rate=0)

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            FineTuneConfig(feature_dim=4)


class TestTraining:
    def test_untrained_predict_raises(self):
        clf = FineTunedClassifier()
        with pytest.raises(RuntimeError):
            clf.predict("x")

    def test_length_mismatch(self):
        clf = FineTunedClassifier()
        with pytest.raises(ValueError):
            clf.train(["a"], [])

    def test_empty_rejected(self):
        clf = FineTunedClassifier()
        with pytest.raises(ValueError):
            clf.train([], [])

    def test_history_recorded(self):
        clf = FineTunedClassifier(FineTuneConfig(epochs=3, learning_rate=0.1,
                                                 bias_lr_multiplier=1.0))
        hist = clf.train(["alpha beta"] * 4 + ["gamma delta"] * 4, [CB] * 4 + [BB] * 4)
        assert len(hist.epoch_losses) == 3
        assert len(hist.epoch_train_accuracy) == 3

    def test_gentle_settings_can_learn_separable_data(self):
        """With sane hyperparameters the head is a working classifier —
        the collapse is a property of the aggressive regime, not a bug."""
        cfg = FineTuneConfig(epochs=20, learning_rate=0.05, momentum=0.0,
                             bias_lr_multiplier=1.0)
        clf = FineTunedClassifier(cfg)
        train = ["compute kernel loop flops"] * 8 + ["memory stream copy bytes"] * 8
        labels = [CB] * 8 + [BB] * 8
        clf.train(train, labels)
        assert clf.predict("compute kernel loop flops") is CB
        assert clf.predict("memory stream copy bytes") is BB


@pytest.mark.slow
class TestCollapse:
    def test_paper_regime_collapses(self, dataset):
        """The paper's RQ4: after two epochs the tuned model answers one
        class for the whole validation set, in every scope."""
        from repro.eval.rq4 import run_rq4_all_scopes

        for result in run_rq4_all_scopes(dataset):
            assert result.collapsed, result.scope
            assert result.validation_prediction_entropy == 0.0
            assert result.validation_metrics.accuracy == pytest.approx(50.0)
            assert result.validation_metrics.mcc == 0.0

    def test_split_sizes_match_paper(self, dataset):
        from repro.eval.rq4 import run_rq4

        r = run_rq4(dataset, scope="all")
        assert r.train_size == 272
        assert r.validation_size == 68


class TestPredictionEntropy:
    def test_constant_predictions(self):
        assert prediction_entropy([CB, CB, CB]) == 0.0

    def test_balanced_predictions(self):
        assert prediction_entropy([CB, BB, CB, BB]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            prediction_entropy([])
