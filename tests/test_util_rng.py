"""Tests for repro.util.rng — determinism and stream independence."""

import numpy as np
import pytest

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)

    def test_distinct(self):
        assert derive_seed("a") != derive_seed("b")


class TestRngStream:
    def test_same_key_same_sequence(self):
        a = [RngStream("x", 1).uniform() for _ in range(5)]
        b = [RngStream("x", 1).uniform() for _ in range(5)]
        # each constructor restarts the stream
        assert a[0] == b[0]
        seq1 = RngStream("x", 1)
        seq2 = RngStream("x", 1)
        assert [seq1.uniform() for _ in range(10)] == [seq2.uniform() for _ in range(10)]

    def test_different_keys_different_sequences(self):
        assert RngStream("x").uniform() != RngStream("y").uniform()

    def test_child_independent_of_parent(self):
        parent = RngStream("p")
        before = parent.uniform()
        child = parent.child("c")
        cv = child.uniform()
        # re-derive: child value must not depend on parent's draw position
        parent2 = RngStream("p")
        parent2.uniform()
        parent2.uniform()
        child2 = parent2.child("c")
        assert child2.uniform() == cv
        assert before != cv

    def test_uniform_bounds(self):
        rng = RngStream("u")
        for _ in range(100):
            v = rng.uniform(2.0, 3.0)
            assert 2.0 <= v < 3.0

    def test_randint_bounds(self):
        rng = RngStream("i")
        vals = {rng.randint(0, 4) for _ in range(200)}
        assert vals == {0, 1, 2, 3}

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            RngStream("i").randint(5, 5)

    def test_bernoulli_extremes(self):
        rng = RngStream("b")
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_choice_unweighted(self):
        rng = RngStream("c")
        seq = ["a", "b", "c"]
        assert all(rng.choice(seq) in seq for _ in range(50))

    def test_choice_weighted_extreme(self):
        rng = RngStream("cw")
        assert all(rng.choice(["a", "b"], [1.0, 0.0]) == "a" for _ in range(30))

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RngStream("c").choice([])

    def test_choice_weight_mismatch_raises(self):
        with pytest.raises(ValueError):
            RngStream("c").choice(["a"], [1.0, 2.0])

    def test_sample_distinct(self):
        rng = RngStream("s")
        picked = rng.sample(list(range(10)), 5)
        assert len(set(picked)) == 5

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            RngStream("s").sample([1, 2], 3)

    def test_shuffle_preserves_elements(self):
        rng = RngStream("sh")
        out = rng.shuffle([1, 2, 3, 4])
        assert sorted(out) == [1, 2, 3, 4]

    def test_shuffle_does_not_mutate_input(self):
        src = [1, 2, 3, 4, 5, 6, 7, 8]
        RngStream("sh2").shuffle(src)
        assert src == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_permutation_is_permutation(self):
        p = RngStream("perm").permutation(16)
        assert sorted(p.tolist()) == list(range(16))

    def test_uniform_array_shape(self):
        arr = RngStream("ua").uniform_array(7)
        assert arr.shape == (7,)
        assert np.all((arr >= 0) & (arr < 1))

    def test_lognormal_positive(self):
        rng = RngStream("ln")
        assert all(rng.lognormal(0, 0.5) > 0 for _ in range(50))

    def test_statistical_sanity(self):
        rng = RngStream("stat")
        mean = np.mean(rng.uniform_array(20_000))
        assert abs(mean - 0.5) < 0.02
