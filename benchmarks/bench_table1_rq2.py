"""E4 — Table 1 columns 6-8: RQ2 zero-shot classification.

All 340 balanced samples through all nine models with the Figure 4 prompt.

Paper shape reproduced: best models (o3-mini-high, o1) ≈ 64% accuracy;
reasoning tier clearly above the gpt-4o tier; mini models near chance with
MCC ≈ 0; gpt-4o's macro-F1 far below its accuracy.
"""

from __future__ import annotations

from repro.eval.report import Comparison, ordering_agreement, render_comparisons
from repro.eval.rq23 import run_rq2
from repro.eval.table1 import PAPER_TABLE1
from repro.llm import all_models
from repro.util.tables import format_table


def _run_all(balanced):
    return {m.name: run_rq2(m, balanced) for m in all_models()}


def test_table1_rq2(benchmark, balanced):
    results = benchmark.pedantic(_run_all, args=(balanced,), rounds=1, iterations=1)

    rows = []
    comparisons = []
    for name, r in results.items():
        pa = PAPER_TABLE1[name]
        m = r.metrics
        rows.append([name, m.accuracy, m.macro_f1, m.mcc, pa[2], pa[3], pa[4]])
        comparisons.append(Comparison("RQ2", f"{name} acc", pa[2], m.accuracy))
    print()
    print(format_table(
        ["Model", "Acc", "F1", "MCC", "Paper Acc", "Paper F1", "Paper MCC"],
        rows, title="E4 — Table 1 cols 6-8 (RQ2 zero-shot)",
    ))
    print()
    print(render_comparisons("E4 — RQ2 paper vs measured", comparisons))

    names = list(PAPER_TABLE1)
    paper_accs = [PAPER_TABLE1[n][2] for n in names]
    our_accs = [results[n].metrics.accuracy for n in names]
    agreement = ordering_agreement(paper_accs, our_accs)
    print(f"\nmodel-ordering agreement vs paper: {agreement:.2f}")

    for name in names:
        assert abs(results[name].metrics.accuracy - PAPER_TABLE1[name][2]) <= 3.5, name
    assert agreement >= 0.75
    best = max(our_accs)
    assert 61.0 <= best <= 67.5  # the paper's "up to 64%" headline
