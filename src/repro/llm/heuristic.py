"""Surface-cue (lexical) classification — what non-reasoning models do.

Scores a source listing on cheap textual features a skimming reader keys on:
math-intrinsic density, loop nesting, precision keywords, atomic use, array
fan-in. The feature weights encode plausible (weak) priors, not fitted
parameters — by construction this scorer captures only part of the truth,
which is exactly how the paper's non-reasoning models behave (near-chance
accuracy, MCC ≈ 0).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.llm.config import ModelConfig
from repro.llm.promptio import ClassifyQuery
from repro.util.rng import RngStream

_MATH_FN_RE = re.compile(
    r"\b(?:sqrtf?|rsqrtf?|expf?|logf?|sinf?|cosf?|tanhf?|powf?|erff?|fmaf?)\s*\("
)
_FOR_RE = re.compile(r"\bfor\s*\(")
_DOUBLE_RE = re.compile(r"\bdouble\b")
_ATOMIC_RE = re.compile(r"\batomic|#pragma omp atomic")
_ARRAY_RE = re.compile(r"\b([A-Za-z_][A-Za-z_0-9]*)\s*\[")


@dataclass(frozen=True)
class LexicalFeatures:
    """The surface cues a skimming reader extracts."""

    math_fn_count: int
    loop_count: int
    double_mentions: int
    atomic_present: bool
    distinct_arrays: int
    source_kilochars: float

    @classmethod
    def extract(cls, source: str) -> "LexicalFeatures":
        return cls(
            math_fn_count=len(_MATH_FN_RE.findall(source)),
            loop_count=len(_FOR_RE.findall(source)),
            double_mentions=len(_DOUBLE_RE.findall(source)),
            atomic_present=bool(_ATOMIC_RE.search(source)),
            distinct_arrays=len(set(_ARRAY_RE.findall(source))),
            source_kilochars=len(source) / 1000.0,
        )

    def score(self) -> float:
        """Compute-leaning score in roughly [-1, 1].

        Positive = looks compute-bound. Weights are fixed priors: math
        functions and loops suggest arithmetic per byte; many distinct
        arrays and atomics suggest data movement.
        """
        s = 0.0
        s += 0.22 * math.log1p(self.math_fn_count)
        s += 0.18 * math.log1p(self.loop_count)
        s += 0.30 * (1.0 if self.double_mentions > 2 else 0.0)
        s -= 0.25 * (1.0 if self.atomic_present else 0.0)
        s -= 0.06 * max(0, self.distinct_arrays - 3)
        s -= 0.35  # most kernels on most hardware are bandwidth-bound
        return max(-1.5, min(1.5, s))


def lexical_logit(
    query: ClassifyQuery,
    model: ModelConfig,
    rng: RngStream,
) -> float:
    """The model's surface-cue decision value (positive = Compute).

    Skill interpolates between the feature score and an idiosyncratic
    per-(model, prompt) reading — a deterministic pseudo-random opinion that
    stands in for whatever an uninformed model keys on.
    """
    feats = LexicalFeatures.extract(query.source)
    skill = model.heuristic_skill
    if query.has_real_examples:
        skill = min(1.0, skill + model.fewshot_skill_bonus)
    informed = feats.score()
    idiosyncratic = rng.uniform(-0.8, 0.8)
    return skill * informed + (1.0 - skill) * idiosyncratic
