"""Generated ``benchmark_utils.h`` — the shared-utility header that real
benchmark suites accumulate (timers, allocation wrappers, validation
helpers, argument parsing).

The paper concatenates *all* source files of a program into the prompt
(§2.2 "Source Scraping"), so utility headers inflate token counts exactly
like they do for HeCBench programs; the 8e3-token pruning cutoff then drops
the heavier programs. ``level`` controls how much utility machinery a
program carries (0 = none, 1 = timers + init, 2 = full validation suite).
"""

from __future__ import annotations

from repro.types import Language


def _timer_block(language: Language) -> list[str]:
    if language is Language.CUDA:
        return [
            "// ---- device timing helpers -------------------------------------------",
            "struct GpuTimer {",
            "  cudaEvent_t start_ev;",
            "  cudaEvent_t stop_ev;",
            "  GpuTimer() {",
            "    cudaEventCreate(&start_ev);",
            "    cudaEventCreate(&stop_ev);",
            "  }",
            "  ~GpuTimer() {",
            "    cudaEventDestroy(start_ev);",
            "    cudaEventDestroy(stop_ev);",
            "  }",
            "  void begin() { cudaEventRecord(start_ev); }",
            "  float end_ms() {",
            "    cudaEventRecord(stop_ev);",
            "    cudaEventSynchronize(stop_ev);",
            "    float ms = 0.0f;",
            "    cudaEventElapsedTime(&ms, start_ev, stop_ev);",
            "    return ms;",
            "  }",
            "};",
            "",
            "static inline void device_sync_checked(const char *where) {",
            "  cudaError_t err = cudaDeviceSynchronize();",
            "  if (err != cudaSuccess) {",
            '    fprintf(stderr, "sync error at %s: %s\\n", where, cudaGetErrorString(err));',
            "    exit(1);",
            "  }",
            "}",
        ]
    return [
        "// ---- host timing helpers ----------------------------------------------",
        "struct WallTimer {",
        "  double t0;",
        "  void begin() { t0 = omp_get_wtime(); }",
        "  double end_ms() { return (omp_get_wtime() - t0) * 1e3; }",
        "};",
        "",
        "static inline int device_count_checked(void) {",
        "  int ndev = omp_get_num_devices();",
        "  if (ndev < 1) {",
        '    fprintf(stderr, "warning: no offload device, falling back to host\\n");',
        "  }",
        "  return ndev;",
        "}",
    ]


def _init_block() -> list[str]:
    return [
        "// ---- input initialization ----------------------------------------------",
        "static inline void fill_linear_f32(float *buf, long n, float scale) {",
        "  for (long i = 0; i < n; i++) buf[i] = (float)(i % 1024) * scale;",
        "}",
        "",
        "static inline void fill_linear_f64(double *buf, long n, double scale) {",
        "  for (long i = 0; i < n; i++) buf[i] = (double)(i % 1024) * scale;",
        "}",
        "",
        "static inline void fill_lcg_i32(int *buf, long n, unsigned seed) {",
        "  unsigned state = seed ? seed : 1u;",
        "  for (long i = 0; i < n; i++) {",
        "    state = state * 1664525u + 1013904223u;",
        "    buf[i] = (int)(state >> 8);",
        "  }",
        "}",
        "",
        "static inline void fill_gaussian_like(float *buf, long n, unsigned seed) {",
        "  // sum of four uniforms, shifted: cheap approximately-normal input",
        "  unsigned state = seed ? seed : 7u;",
        "  for (long i = 0; i < n; i++) {",
        "    float acc = -2.0f;",
        "    for (int k = 0; k < 4; k++) {",
        "      state = state * 1664525u + 1013904223u;",
        "      acc += (float)(state >> 16) / 65536.0f;",
        "    }",
        "    buf[i] = acc;",
        "  }",
        "}",
    ]


def _validate_block() -> list[str]:
    return [
        "// ---- validation helpers --------------------------------------------------",
        "static inline double l2_norm_f32(const float *a, long n) {",
        "  double acc = 0.0;",
        "  for (long i = 0; i < n; i++) acc += (double)a[i] * (double)a[i];",
        "  return sqrt(acc);",
        "}",
        "",
        "static inline double max_abs_diff_f32(const float *a, const float *b, long n) {",
        "  double worst = 0.0;",
        "  for (long i = 0; i < n; i++) {",
        "    double d = fabs((double)a[i] - (double)b[i]);",
        "    if (d > worst) worst = d;",
        "  }",
        "  return worst;",
        "}",
        "",
        "static inline int compare_with_tolerance(const float *got, const float *want,",
        "                                         long n, double rtol, double atol) {",
        "  long bad = 0;",
        "  for (long i = 0; i < n; i++) {",
        "    double g = (double)got[i];",
        "    double w = (double)want[i];",
        "    double tol = atol + rtol * fabs(w);",
        "    if (fabs(g - w) > tol) {",
        "      if (bad < 8) {",
        '        fprintf(stderr, "mismatch at %ld: got %g want %g\\n", i, g, w);',
        "      }",
        "      bad++;",
        "    }",
        "  }",
        "  return bad == 0;",
        "}",
        "",
        "static inline void report_result(const char *bench, int ok, double ms) {",
        "  if (ok) {",
        '    printf("%s: PASS (%.3f ms)\\n", bench, ms);',
        "  } else {",
        '    printf("%s: FAIL (%.3f ms)\\n", bench, ms);',
        "  }",
        "}",
    ]


def _argparse_block() -> list[str]:
    return [
        "// ---- argument parsing ------------------------------------------------------",
        "struct BenchOptions {",
        "  int warmup_runs;",
        "  int timed_runs;",
        "  int verbose;",
        "  int csv_output;",
        "};",
        "",
        "static inline void default_options(struct BenchOptions *opt) {",
        "  opt->warmup_runs = 1;",
        "  opt->timed_runs = 3;",
        "  opt->verbose = 0;",
        "  opt->csv_output = 0;",
        "}",
        "",
        "static inline int parse_common_flag(struct BenchOptions *opt, const char *arg,",
        "                                    const char *value) {",
        '  if (!strcmp(arg, "--warmup") && value) {',
        "    opt->warmup_runs = atoi(value);",
        "    return 2;",
        "  }",
        '  if (!strcmp(arg, "--repeat") && value) {',
        "    opt->timed_runs = atoi(value);",
        "    return 2;",
        "  }",
        '  if (!strcmp(arg, "--verbose")) {',
        "    opt->verbose = 1;",
        "    return 1;",
        "  }",
        '  if (!strcmp(arg, "--csv")) {',
        "    opt->csv_output = 1;",
        "    return 1;",
        "  }",
        "  return 0;",
        "}",
        "",
        "static inline void emit_csv_row(const char *bench, const char *kernel,",
        "                                double ms, double gbps, double gflops) {",
        '  printf("%s,%s,%.4f,%.3f,%.3f\\n", bench, kernel, ms, gbps, gflops);',
        "}",
    ]


def _stats_block() -> list[str]:
    return [
        "// ---- run statistics ---------------------------------------------------------",
        "struct RunStats {",
        "  double best_ms;",
        "  double worst_ms;",
        "  double total_ms;",
        "  int runs;",
        "};",
        "",
        "static inline void stats_reset(struct RunStats *s) {",
        "  s->best_ms = 1e30;",
        "  s->worst_ms = 0.0;",
        "  s->total_ms = 0.0;",
        "  s->runs = 0;",
        "}",
        "",
        "static inline void stats_add(struct RunStats *s, double ms) {",
        "  if (ms < s->best_ms) s->best_ms = ms;",
        "  if (ms > s->worst_ms) s->worst_ms = ms;",
        "  s->total_ms += ms;",
        "  s->runs += 1;",
        "}",
        "",
        "static inline double stats_mean(const struct RunStats *s) {",
        "  return s->runs > 0 ? s->total_ms / (double)s->runs : 0.0;",
        "}",
        "",
        "static inline void stats_print(const struct RunStats *s, const char *label) {",
        '  printf("%s: best %.3f ms, mean %.3f ms, worst %.3f ms over %d runs\\n",',
        "         label, s->best_ms, stats_mean(s), s->worst_ms, s->runs);",
        "}",
        "",
        "static inline double bandwidth_gbps(double bytes_moved, double ms) {",
        "  return ms > 0.0 ? bytes_moved / (ms * 1e6) : 0.0;",
        "}",
        "",
        "static inline double throughput_gflops(double flops, double ms) {",
        "  return ms > 0.0 ? flops / (ms * 1e6) : 0.0;",
        "}",
    ]


def _io_block() -> list[str]:
    return [
        "// ---- output / logging --------------------------------------------------------",
        "static inline void dump_array_f32(const char *path, const float *buf, long n) {",
        '  FILE *fp = fopen(path, "w");',
        "  if (!fp) {",
        '    fprintf(stderr, "cannot open %s for writing\\n", path);',
        "    return;",
        "  }",
        "  for (long i = 0; i < n; i++) {",
        '    fprintf(fp, "%ld %.9g\\n", i, (double)buf[i]);',
        "  }",
        "  fclose(fp);",
        "}",
        "",
        "static inline void print_preview_f32(const char *label, const float *buf, long n) {",
        "  long shown = n < 8 ? n : 8;",
        '  printf("%s: [", label);',
        "  for (long i = 0; i < shown; i++) {",
        '    printf(i ? ", %.4g" : "%.4g", (double)buf[i]);',
        "  }",
        '  printf(n > shown ? ", ...]\\n" : "]\\n");',
        "}",
        "",
        "static inline long count_nonfinite_f32(const float *buf, long n) {",
        "  long bad = 0;",
        "  for (long i = 0; i < n; i++) {",
        "    if (!(buf[i] == buf[i]) || buf[i] > 1e38f || buf[i] < -1e38f) bad++;",
        "  }",
        "  return bad;",
        "}",
    ]


def _alloc_block() -> list[str]:
    return [
        "// ---- aligned allocation --------------------------------------------------------",
        "static inline void *alloc_aligned(size_t bytes, size_t alignment) {",
        "  void *ptr = NULL;",
        "  if (posix_memalign(&ptr, alignment, bytes) != 0) {",
        '    fprintf(stderr, "allocation of %zu bytes failed\\n", bytes);',
        "    exit(1);",
        "  }",
        "  memset(ptr, 0, bytes);",
        "  return ptr;",
        "}",
        "",
        "static inline float *alloc_f32(long n) {",
        "  return (float *)alloc_aligned((size_t)n * sizeof(float), 64);",
        "}",
        "",
        "static inline double *alloc_f64(long n) {",
        "  return (double *)alloc_aligned((size_t)n * sizeof(double), 64);",
        "}",
        "",
        "static inline int *alloc_i32(long n) {",
        "  return (int *)alloc_aligned((size_t)n * sizeof(int), 64);",
        "}",
    ]


def _device_info_block(language: Language) -> list[str]:
    if language is Language.CUDA:
        return [
            "// ---- device discovery ------------------------------------------------------",
            "static inline void print_device_info(int dev) {",
            "  cudaDeviceProp prop;",
            "  if (cudaGetDeviceProperties(&prop, dev) != cudaSuccess) {",
            '    fprintf(stderr, "cannot query device %d\\n", dev);',
            "    return;",
            "  }",
            '  printf("device %d: %s\\n", dev, prop.name);',
            '  printf("  SMs: %d, clock: %.2f GHz\\n", prop.multiProcessorCount,',
            "         prop.clockRate / 1e6);",
            '  printf("  global memory: %.1f GB\\n", prop.totalGlobalMem / 1073741824.0);',
            '  printf("  memory clock: %.2f GHz, bus width: %d bits\\n",',
            "         prop.memoryClockRate / 1e6, prop.memoryBusWidth);",
            "  double peak_bw = 2.0 * (prop.memoryClockRate / 1e6) *",
            "                   (prop.memoryBusWidth / 8.0);",
            '  printf("  theoretical bandwidth: %.1f GB/s\\n", peak_bw);',
            "}",
            "",
            "static inline int select_device(void) {",
            "  int count = 0;",
            "  cudaGetDeviceCount(&count);",
            "  if (count < 1) {",
            '    fprintf(stderr, "no CUDA device found\\n");',
            "    exit(1);",
            "  }",
            '  const char *env = getenv("BENCH_DEVICE");',
            "  int dev = env ? atoi(env) : 0;",
            "  if (dev >= count) dev = 0;",
            "  cudaSetDevice(dev);",
            "  return dev;",
            "}",
        ]
    return [
        "// ---- device discovery ------------------------------------------------------",
        "static inline void print_device_info(void) {",
        "  int ndev = omp_get_num_devices();",
        '  printf("offload devices available: %d\\n", ndev);',
        '  printf("default device: %d\\n", omp_get_default_device());',
        '  printf("host threads: %d\\n", omp_get_max_threads());',
        "}",
        "",
        "static inline int select_device(void) {",
        '  const char *env = getenv("BENCH_DEVICE");',
        "  int dev = env ? atoi(env) : omp_get_default_device();",
        "  omp_set_default_device(dev);",
        "  return dev;",
        "}",
    ]


def _reduction_block() -> list[str]:
    return [
        "// ---- host-side reductions ----------------------------------------------------",
        "static inline double sum_f32(const float *buf, long n) {",
        "  double acc = 0.0;",
        "  for (long i = 0; i < n; i++) acc += (double)buf[i];",
        "  return acc;",
        "}",
        "",
        "static inline double sum_f64(const double *buf, long n) {",
        "  double acc = 0.0;",
        "  for (long i = 0; i < n; i++) acc += buf[i];",
        "  return acc;",
        "}",
        "",
        "static inline float min_f32(const float *buf, long n) {",
        "  float best = buf[0];",
        "  for (long i = 1; i < n; i++)",
        "    if (buf[i] < best) best = buf[i];",
        "  return best;",
        "}",
        "",
        "static inline float max_f32(const float *buf, long n) {",
        "  float best = buf[0];",
        "  for (long i = 1; i < n; i++)",
        "    if (buf[i] > best) best = buf[i];",
        "  return best;",
        "}",
        "",
        "static inline long argmax_f32(const float *buf, long n) {",
        "  long best = 0;",
        "  for (long i = 1; i < n; i++)",
        "    if (buf[i] > buf[best]) best = i;",
        "  return best;",
        "}",
        "",
        "static inline double mean_f32(const float *buf, long n) {",
        "  return n > 0 ? sum_f32(buf, n) / (double)n : 0.0;",
        "}",
        "",
        "static inline double variance_f32(const float *buf, long n) {",
        "  if (n < 2) return 0.0;",
        "  double m = mean_f32(buf, n);",
        "  double acc = 0.0;",
        "  for (long i = 0; i < n; i++) {",
        "    double d = (double)buf[i] - m;",
        "    acc += d * d;",
        "  }",
        "  return acc / (double)(n - 1);",
        "}",
    ]


def render_util_header(level: int, language: Language, prog_name: str) -> str:
    """Render the utility header for a program at bloat ``level`` (1 or 2)."""
    if level not in (1, 2):
        raise ValueError(f"util header level must be 1 or 2, got {level}")
    guard = "BENCHMARK_UTILS_H"
    lines = [
        f"// benchmark_utils.h — shared helpers for the {prog_name} benchmark",
        f"#ifndef {guard}",
        f"#define {guard}",
        "",
        "#include <cstdio>",
        "#include <cstdlib>",
        "#include <cstring>",
        "#include <cmath>",
    ]
    if language is Language.CUDA:
        lines.append("#include <cuda_runtime.h>")
    else:
        lines.append("#include <omp.h>")
    lines.append("")
    lines.extend(_timer_block(language))
    lines.append("")
    lines.extend(_init_block())
    if level >= 2:
        lines.append("")
        lines.extend(_validate_block())
        lines.append("")
        lines.extend(_argparse_block())
        lines.append("")
        lines.extend(_stats_block())
        lines.append("")
        lines.extend(_io_block())
        lines.append("")
        lines.extend(_alloc_block())
        lines.append("")
        lines.extend(_device_info_block(language))
        lines.append("")
        lines.extend(_reduction_block())
    lines.append("")
    lines.append(f"#endif // {guard}")
    return "\n".join(lines)
