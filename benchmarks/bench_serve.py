"""G-serve — the async serving path: coalescing and warm-store latency.

Two load-bearing claims of ``repro.serve``:

* **Coalescing collapses duplicate bursts.** N identical in-flight
  requests against a slow upstream must cost ~1 upstream completion of
  wall clock, not N — the serving engine's inflight table shares one
  future across the burst. Asserted ≥5× faster than serving the same
  burst sequentially, with exactly 1 upstream call.
* **Warm stores serve without models.** Against a response store warmed
  by the batch engine, the async engine replays a classification grid
  with zero new completions and a digest identical to the sync engine's
  — the bench times that replay and the HTTP round-trip on top of it.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.request

from repro.eval.engine import (
    DiskResponseStore,
    EvalEngine,
    MemoryResponseStore,
)
from repro.eval.rq23 import classification_items
from repro.llm import get_model
from repro.serve import (
    AsyncEvalEngine,
    EmulatedProvider,
    PredictionServer,
    PredictionService,
)
from repro.util.tables import format_table

MODEL = "o3-mini-high"
SLICE = 60          # samples in the warm-replay grid
BURST = 32          # identical concurrent requests in the coalescing test
UPSTREAM_DELAY = 0.02  # artificial per-completion latency (s)
HTTP_REPS = 40


class _SlowProvider:
    """Emulated provider with a fixed artificial upstream latency."""

    def __init__(self, model_name: str, delay_s: float):
        self.model = get_model(model_name)
        self.config = self.model.config
        self.delay_s = delay_s
        self.calls = 0

    @property
    def name(self) -> str:
        return self.model.name

    async def complete(self, prompt, *, temperature=None, top_p=None):
        self.calls += 1
        await asyncio.sleep(self.delay_s)
        return self.model.complete(
            prompt, temperature=temperature, top_p=top_p
        )


def test_coalescing_collapses_identical_bursts():
    prompt = "Is the kernel compute bound or bandwidth bound?"

    async def burst_coalesced():
        provider = _SlowProvider(MODEL, UPSTREAM_DELAY)
        engine = AsyncEvalEngine(store=MemoryResponseStore())
        start = time.perf_counter()
        await asyncio.gather(
            *(engine.complete(provider, prompt) for _ in range(BURST))
        )
        return time.perf_counter() - start, provider.calls, engine.stats

    async def burst_sequential():
        provider = _SlowProvider(MODEL, UPSTREAM_DELAY)
        engine = AsyncEvalEngine(store=None)
        start = time.perf_counter()
        for _ in range(BURST):
            await engine.complete(provider, prompt)
        return time.perf_counter() - start, provider.calls

    t_coalesced, calls_coalesced, stats = asyncio.run(burst_coalesced())
    t_sequential, calls_sequential = asyncio.run(burst_sequential())

    print()
    print(format_table(
        ["serving pattern", "upstream calls", "wall clock (ms)"],
        [
            ["sequential, uncached", calls_sequential,
             f"{t_sequential * 1e3:,.1f}"],
            ["coalesced burst", calls_coalesced,
             f"{t_coalesced * 1e3:,.1f}"],
        ],
        title=f"{BURST} identical requests, {UPSTREAM_DELAY * 1e3:.0f} ms "
              "upstream latency",
    ))

    assert calls_coalesced == 1
    assert stats.coalesced == BURST - 1
    assert calls_sequential == BURST
    speedup = t_sequential / t_coalesced
    assert speedup >= 5.0, f"coalescing speedup {speedup:.1f}x < 5x floor"


def test_warm_store_replay_and_http_latency(tmp_path, balanced):
    samples = balanced[:SLICE]
    items = classification_items(samples, few_shot=False)
    model = get_model(MODEL)

    store = DiskResponseStore(tmp_path / "serve-cache")
    t0 = time.perf_counter()
    cold = EvalEngine(jobs=2, store=store).run(model, items)
    t_cold = time.perf_counter() - t0

    # Warm async replay: zero completions, digest-identical result.
    engine = AsyncEvalEngine(store=store)
    t0 = time.perf_counter()
    replay = asyncio.run(engine.run(EmulatedProvider(model), items))
    t_replay = time.perf_counter() - t0
    assert replay.digest() == cold.digest()
    assert engine.stats.completions == 0
    assert engine.stats.hits == len(items)

    # HTTP round-trips against the same warm store.
    http_engine = AsyncEvalEngine(store=store)
    server = PredictionServer(
        PredictionService(http_engine), port=0
    ).start()
    try:
        uids = [s.uid for s in samples]
        t0 = time.perf_counter()
        for i in range(HTTP_REPS):
            uid = uids[i % len(uids)]
            with urllib.request.urlopen(
                f"{server.url}/v1/classify?uid={uid}&model={MODEL}",
                timeout=60,
            ) as resp:
                body = json.loads(resp.read().decode("utf-8"))
            assert body["cached"] is True
        t_http = (time.perf_counter() - t0) / HTTP_REPS
    finally:
        server.close()
    assert http_engine.stats.completions == 0

    print()
    print(format_table(
        ["path", "total (ms)", "per item (us)"],
        [
            ["cold batch sweep (sync)", f"{t_cold * 1e3:,.1f}",
             f"{t_cold / len(items) * 1e6:,.0f}"],
            ["warm async replay", f"{t_replay * 1e3:,.1f}",
             f"{t_replay / len(items) * 1e6:,.0f}"],
            ["warm HTTP round-trip", f"{t_http * HTTP_REPS * 1e3:,.1f}",
             f"{t_http * 1e6:,.0f}"],
        ],
        title=f"{len(items)}-item grid, {MODEL}; HTTP over {HTTP_REPS} queries",
    ))

    # A warm HTTP query must stay interactive: well under one cold
    # completion's cost, and absolute-bounded for a UI-grade experience.
    assert t_http < 0.25, f"warm HTTP round-trip {t_http * 1e3:.0f} ms too slow"
