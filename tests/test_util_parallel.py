"""``parallel_map`` semantics: ordering, degradation, and fail-fast.

The fail-fast contract is the PR-7 regression pin: before it, a failing
shard let every remaining shard run to completion — a bad sweep burned
the whole grid's worth of doomed work before surfacing the error.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.util.parallel import (
    MAX_JOBS,
    parallel_map,
    resolve_backend,
    resolve_jobs,
    round_robin_partition,
)


class TestBasics:
    def test_preserves_input_order(self):
        items = list(range(100))
        assert parallel_map(lambda x: x * x, items, jobs=4) == [
            x * x for x in items
        ]

    def test_sequential_backend_and_single_job_degrade(self):
        items = [3, 1, 2]
        for kwargs in ({"jobs": 1}, {"backend": "sequential", "jobs": 8}):
            assert parallel_map(lambda x: -x, items, **kwargs) == [-3, -1, -2]

    def test_resolvers(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(10**6) == MAX_JOBS
        assert resolve_backend("THREAD ") == "thread"
        with pytest.raises(ValueError):
            resolve_backend("fibers")

    def test_round_robin_partition(self):
        assert round_robin_partition([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]


class TestFailFast:
    def test_sequential_path_raises_first_failure(self):
        def fn(x):
            if x == 2:
                raise RuntimeError("boom at 2")
            return x

        with pytest.raises(RuntimeError, match="boom at 2"):
            parallel_map(fn, [0, 1, 2, 3], jobs=1)

    def test_threaded_failure_propagates(self):
        def fn(x):
            if x == 7:
                raise KeyError("seven")
            return x

        with pytest.raises(KeyError):
            parallel_map(fn, list(range(64)), jobs=4)

    def test_later_shards_are_cancelled_after_first_failure(self):
        """A failing shard must cancel the not-yet-started shards instead
        of letting the whole grid run to completion.

        Layout: 2 workers, ~8 contiguous shards of 50 items. Shard 0
        fails on its very first item; each surviving item sleeps 1 ms, so
        a shard takes ~50 ms — while the failure lands in microseconds.
        At most the two in-flight shards (executors can't preempt) may
        finish; the queued majority must be cancelled unrun. Pre-fix,
        every one of the 399 surviving items executed.
        """
        items = list(range(400))  # jobs * 4 = 8 shards of 50
        executed: list[int] = []
        lock = threading.Lock()

        def fn(x):
            if x == 0:
                raise RuntimeError("first item of first shard")
            time.sleep(0.001)
            with lock:
                executed.append(x)
            return x

        with pytest.raises(RuntimeError, match="first item"):
            parallel_map(fn, items, jobs=2)

        # In-flight shards drain (executors can't preempt a running
        # shard, and a freed worker may grab one queued shard before the
        # shutdown lands) — but the cancelled majority never runs.
        assert len(executed) <= 3 * 50
        assert len(executed) < len(items) - 1

    def test_store_survives_failed_sweep(self):
        """After a failed fan-out the pool is shut down; a fresh call on
        the same inputs still works (no poisoned global state)."""

        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("first call fails")
            return x

        with pytest.raises(ValueError):
            parallel_map(flaky, [1, 2, 3, 4], jobs=2)
        assert parallel_map(lambda x: x + 1, [1, 2], jobs=2) == [2, 3]
