"""Tests for the question-decomposition extension (prompts, handlers, driver)."""

import pytest

from repro.eval.decompose import classify_decomposed, run_decompose_experiment
from repro.llm import get_model
from repro.llm.decompose_handler import answer, handles
from repro.prompts.decompose import (
    build_step1_prompt,
    build_step2_prompt,
    build_step3_prompt,
    parse_step1_answer,
    parse_step2_answer,
)
from repro.roofline import RTX_3080
from repro.types import Boundedness


class TestStepPrompts:
    def test_step1_contains_specs(self):
        p = build_step1_prompt()
        assert "29770.0 GFLOP/s" in p
        assert "SP=<GFLOP/s>" in p

    def test_step2_contains_source(self, balanced_samples):
        s = balanced_samples[0]
        p = build_step2_prompt(s)
        assert s.kernel_name in p
        assert s.argv in p
        assert s.source in p

    def test_step3_contains_numbers(self):
        p = build_step3_prompt(
            sp_ops=12.0, dp_ops=0.0, int_ops=8.0, bytes_per_thread=24.0,
            sp_peak=29770.0, dp_peak=465.1, int_peak=14885.0, bandwidth=760.3,
        )
        assert "12 single-precision FLOPs" in p
        assert "760.3 GB/s" in p


class TestAnswerParsing:
    def test_step1_roundtrip(self):
        a = parse_step1_answer("SP=29770 DP=465.1 INT=14885 BW=760.3")
        assert a.sp_peak == 29770.0
        assert a.bandwidth == 760.3

    def test_step2_roundtrip(self):
        a = parse_step2_answer("SP_OPS=12 DP_OPS=0 INT_OPS=8.5 BYTES=24")
        assert a.sp_ops == 12.0
        assert a.bytes_per_thread == 24.0

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            parse_step1_answer("I think the GPU is fast")
        with pytest.raises(ValueError):
            parse_step2_answer("lots of operations")


class TestHandlers:
    def test_handles_detection(self, balanced_samples):
        assert handles(build_step1_prompt())
        assert handles(build_step2_prompt(balanced_samples[0]))
        assert not handles("what is a roofline?")

    def test_step1_reasoning_model_exact(self):
        cfg = get_model("o3-mini-high").config
        text = answer(build_step1_prompt(), cfg)
        a = parse_step1_answer(text)
        assert a.sp_peak == pytest.approx(RTX_3080.sp_peak_gflops, rel=0.001)
        assert a.bandwidth == pytest.approx(RTX_3080.bandwidth_gbs, rel=0.001)

    def test_step2_answers_parse(self, balanced_samples):
        cfg = get_model("o3-mini-high").config
        for s in balanced_samples[:10]:
            a = parse_step2_answer(answer(build_step2_prompt(s), cfg))
            assert a.bytes_per_thread > 0

    def test_step3_verdict_correct_for_reasoning(self):
        cfg = get_model("o1").config
        # AI_sp = 100/2 = 50 > balance 39.2 -> Compute
        p = build_step3_prompt(
            sp_ops=100.0, dp_ops=0.0, int_ops=1.0, bytes_per_thread=2.0,
            sp_peak=29770.0, dp_peak=465.1, int_peak=14885.0, bandwidth=760.3,
        )
        assert answer(p, cfg) == "Compute"
        # AI_sp = 2/12 -> Bandwidth
        p = build_step3_prompt(
            sp_ops=2.0, dp_ops=0.0, int_ops=3.0, bytes_per_thread=12.0,
            sp_peak=29770.0, dp_peak=465.1, int_peak=14885.0, bandwidth=760.3,
        )
        assert answer(p, cfg) == "Bandwidth"

    def test_deterministic(self, balanced_samples):
        cfg = get_model("gemini-2.0-flash-001").config
        p = build_step2_prompt(balanced_samples[3])
        assert answer(p, cfg) == answer(p, cfg)


class TestDriver:
    def test_single_sample(self, balanced_samples):
        pred = classify_decomposed(get_model("o3-mini-high"), balanced_samples[0])
        assert pred.steps_completed == 3
        assert pred.prediction in (Boundedness.COMPUTE, Boundedness.BANDWIDTH)

    def test_experiment_shape(self, balanced_samples):
        result = run_decompose_experiment(
            get_model("o3-mini"), balanced_samples[:20]
        )
        assert len(result.predictions) == 20
        assert result.usage["requests"] == 60  # three steps per sample
        assert 0 <= result.metrics().accuracy <= 100

    def test_decomposition_beats_zero_shot_for_reasoning(self, balanced_samples):
        from repro.eval.rq23 import run_rq2

        model = get_model("o1")
        subset = balanced_samples[:80]
        rq2 = run_rq2(model, subset).metrics.accuracy
        dec = run_decompose_experiment(model, subset).metrics().accuracy
        assert dec >= rq2  # the extension's headline finding
