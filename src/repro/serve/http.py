"""Stdlib HTTP front end answering roofline-classification queries.

Two layers:

* :class:`PredictionService` — the async application: uid → sample lookup
  (the paper's balanced dataset, or any scenario GPU's re-profiled twin),
  prompt construction through the *same* :func:`build_classify_prompt`
  path as the batch CLI (so cache keys match entry for entry), and
  completion through an :class:`~repro.serve.engine.AsyncEvalEngine`.
  Against a warm :class:`~repro.eval.engine.DiskResponseStore` every
  query is a cache hit — zero new completions, no model inference on the
  request path.
* :class:`PredictionServer` — a :class:`ThreadingHTTPServer` whose
  handler threads bridge into one background asyncio event loop
  (``run_coroutine_threadsafe``), keeping the engine's single-loop
  coalescing semantics while the stdlib server deals with sockets.

Endpoints (all JSON):

* ``GET /healthz`` — liveness.
* ``GET /v1/models`` — servable model names.
* ``GET /v1/samples`` — balanced-dataset uids with ground-truth labels.
* ``GET /v1/stats`` — engine counters (hits/misses/coalesced/retries…).
* ``GET|POST /v1/classify`` — one prediction. Query params (GET) or a
  JSON body (POST): ``uid`` (required), ``model``, ``few_shot``, ``gpu``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Sequence
from urllib.parse import parse_qs, urlsplit

from repro.dataset import Sample, paper_dataset
from repro.eval.matrix import scenario_samples
from repro.llm.pricing import query_cost_usd
from repro.llm.registry import MODEL_NAMES
from repro.prompts import (
    build_classify_prompt,
    get_variant,
    variant_for_few_shot,
)
from repro.roofline.hardware import GpuSpec, get_gpu
from repro.serve.engine import AsyncEvalEngine
from repro.serve.providers import ProviderClient, resolve_provider

#: The paper's headline model — the default for unqualified queries.
DEFAULT_MODEL = "o3-mini-high"


class ServiceError(Exception):
    """A client-visible failure with an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class PredictionService:
    """The serving application: samples + providers + async engine.

    Sample indices and provider clients are built lazily and memoized:
    the first query against a GPU pays its (profile-store-backed) dataset
    build, later ones are dictionary lookups. Memo access is locked —
    handler threads funnel work onto one event loop, but the blocking
    builds run in ``to_thread`` workers.
    """

    def __init__(
        self,
        engine: AsyncEvalEngine,
        *,
        provider_family: str = "emulated",
        jobs: int = 1,
    ) -> None:
        self.engine = engine
        self.provider_family = provider_family
        self.jobs = jobs
        self._lock = threading.Lock()
        self._providers: dict[str, ProviderClient] = {}
        # gpu key (None = the paper's default target) → uid → sample
        self._samples: dict[str | None, dict[str, Sample]] = {}

    # -- lazy indices --------------------------------------------------------
    def provider(self, model_name: str) -> ProviderClient:
        with self._lock:
            client = self._providers.get(model_name)
        if client is not None:
            return client
        try:
            client = resolve_provider(model_name, family=self.provider_family)
        except KeyError:
            raise ServiceError(
                404, f"unknown model {model_name!r}; see /v1/models"
            ) from None
        with self._lock:
            return self._providers.setdefault(model_name, client)

    def _sample_index(self, gpu: GpuSpec | None) -> dict[str, Sample]:
        key = gpu.name if gpu is not None else None
        with self._lock:
            index = self._samples.get(key)
        if index is not None:
            return index
        if gpu is None:
            samples: Sequence[Sample] = paper_dataset(jobs=self.jobs).balanced
        else:
            samples = scenario_samples(gpu, jobs=self.jobs)
        index = {s.uid: s for s in samples}
        with self._lock:
            return self._samples.setdefault(key, index)

    def warm(self) -> int:
        """Build the default sample index up front; returns its size."""
        return len(self._sample_index(None))

    # -- queries -------------------------------------------------------------
    def sample_listing(self) -> list[dict]:
        index = self._sample_index(None)
        return [
            {"uid": uid, "label": sample.label.word}
            for uid, sample in sorted(index.items())
        ]

    def stats(self) -> dict:
        s = self.engine.stats
        return {
            "hits": s.hits,
            "misses": s.misses,
            "uncached": s.uncached,
            "coalesced": s.coalesced,
            "retries": s.retries,
            "completions": s.completions,
            "total": s.total,
        }

    async def classify(
        self,
        uid: str,
        *,
        model: str = DEFAULT_MODEL,
        few_shot: bool = False,
        variant: str | None = None,
        gpu: str | None = None,
    ) -> dict:
        """One roofline classification, served from the warm stores."""
        if variant is not None and few_shot:
            raise ServiceError(
                400, "pass either few_shot (deprecated) or variant, not both"
            )
        if variant is not None:
            try:
                resolved = get_variant(variant)
            except KeyError as exc:
                raise ServiceError(404, str(exc)) from None
        else:
            resolved = variant_for_few_shot(few_shot)
        provider = self.provider(model)
        spec: GpuSpec | None = None
        if gpu:
            try:
                spec = await asyncio.to_thread(get_gpu, gpu)
            except KeyError as exc:
                raise ServiceError(404, str(exc)) from None
        index = await asyncio.to_thread(self._sample_index, spec)
        sample = index.get(uid)
        if sample is None:
            raise ServiceError(
                404, f"unknown sample uid {uid!r}; see /v1/samples"
            )
        # The batch CLI's exact prompt path (classification_items), so the
        # cache key below equals the sweep's and warm stores answer it.
        prompt = (
            await asyncio.to_thread(
                build_classify_prompt, sample, variant=resolved, gpu=spec
            )
        ).text
        before = self.engine.stats.completions
        response = await self.engine.complete(provider, prompt)
        try:
            prediction = response.boundedness().word
        except ValueError:
            prediction = None
        return {
            "uid": uid,
            "model": provider.name,
            "gpu": spec.name if spec is not None else None,
            "variant": resolved.name,
            "few_shot": resolved.few_shot,
            "prediction": prediction,
            "truth": sample.label.word,
            "correct": prediction == sample.label.word,
            "cached": self.engine.stats.completions == before,
            "usage": {
                "input_tokens": response.usage.input_tokens,
                "output_tokens": response.usage.output_tokens,
                "reasoning_tokens": response.usage.reasoning_tokens,
            },
            "cost_usd": query_cost_usd(response.usage, provider.config),
        }


def _parse_bool(value: str | bool | None, name: str) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    lowered = str(value).strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("", "0", "false", "no", "off"):
        return False
    raise ServiceError(400, f"bad boolean for {name!r}: {value!r}")


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the service's event loop."""

    server: "PredictionServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _run(self, coro) -> object:
        future = asyncio.run_coroutine_threadsafe(coro, self.server.loop)
        return future.result(timeout=self.server.request_timeout_s)

    def _classify_params(self) -> dict:
        split = urlsplit(self.path)
        if self.command == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                params = json.loads(raw.decode("utf-8") or "{}")
            except ValueError:
                raise ServiceError(400, "request body is not valid JSON")
            if not isinstance(params, dict):
                raise ServiceError(400, "request body must be a JSON object")
        else:
            params = {
                k: v[-1] for k, v in parse_qs(split.query).items()
            }
        uid = params.get("uid")
        if not uid:
            raise ServiceError(400, "missing required parameter 'uid'")
        return {
            "uid": str(uid),
            "model": str(params.get("model") or DEFAULT_MODEL),
            "few_shot": _parse_bool(params.get("few_shot"), "few_shot"),
            "variant": (
                str(params["variant"]) if params.get("variant") else None
            ),
            "gpu": str(params["gpu"]) if params.get("gpu") else None,
        }

    # -- routes --------------------------------------------------------------
    def _route(self) -> None:
        service = self.server.service
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif path == "/v1/models" and self.command == "GET":
                self._send_json(200, {"models": list(MODEL_NAMES)})
            elif path == "/v1/samples" and self.command == "GET":
                self._send_json(200, {"samples": service.sample_listing()})
            elif path == "/v1/stats" and self.command == "GET":
                self._send_json(200, service.stats())
            elif path == "/v1/classify":
                params = self._classify_params()
                result = self._run(service.classify(**params))
                self._send_json(200, result)  # type: ignore[arg-type]
            else:
                raise ServiceError(404, f"no such endpoint: {path}")
        except ServiceError as exc:
            self._send_json(exc.status, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802
        self._route()

    def do_POST(self) -> None:  # noqa: N802
        self._route()


class PredictionServer(ThreadingHTTPServer):
    """The serving process: stdlib HTTP threads + one asyncio loop.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    real one. :meth:`start` spins up the loop and server threads and
    returns (tests drive requests, then :meth:`close`);
    :meth:`serve_forever` is inherited for the CLI's blocking mode.
    """

    daemon_threads = True

    def __init__(
        self,
        service: PredictionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 300.0,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service
        self.request_timeout_s = request_timeout_s
        self.verbose = verbose
        self.loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self.loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._serve_thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def start(self) -> "PredictionServer":
        """Run the loop and accept requests in background threads."""
        if not self._loop_thread.is_alive():
            self._loop_thread.start()
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        if not self._loop_thread.is_alive():
            self._loop_thread.start()
        super().serve_forever(poll_interval)

    def close(self) -> None:
        """Stop accepting, stop the loop, release the socket."""
        self.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._loop_thread.is_alive():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._loop_thread.join(timeout=5.0)
        self.loop.close()
        self.server_close()
