"""Dataset pipeline walk-through (paper §2.1-2.2), stage by stage.

Builds the full artefact — corpus generation, simulated profiling, labeling,
token pruning, balancing, train/validation split — printing the counts the
paper reports at every stage, then saves the balanced dataset to JSON lines.

Run:  python examples/dataset_pipeline.py
"""

import statistics
import tempfile
from pathlib import Path

from repro.dataset import cell_counts, load_samples, paper_dataset, save_samples
from repro.types import Boundedness, Language

ds = paper_dataset()

print("=== stage 1: corpus + profiling (paper: 446 CUDA + 303 OMP) ===")
r = ds.prune_report
print(f"  profiled programs: {r.total_before} "
      f"({r.cuda_before} CUDA + {r.omp_before} OMP)")
labels = cell_counts(list(ds.profiled))
for (lang, label), n in sorted(labels.items(), key=str):
    print(f"    {lang.display:4s} {label.value}: {n}")
print()

print("=== stage 2: 8e3-token pruning (paper kept 297 CUDA / 242 OMP) ===")
print(f"  kept {r.total_after}/{r.total_before} "
      f"({r.cuda_after} CUDA, {r.omp_after} OMP, "
      f"{r.kept_fraction * 100:.0f}% overall)")
tokens = [s.token_count for s in ds.pruned]
print(f"  token counts after pruning: median {statistics.median(tokens):.0f}, "
      f"max {max(tokens)}")
print()

print("=== stage 3: balancing (paper: 85 per language x class = 340) ===")
counts = cell_counts(list(ds.balanced))
for (lang, label), n in sorted(counts.items(), key=str):
    print(f"    {lang.display:4s} {label.value}: {n}")
print(f"  total: {len(ds.balanced)}")
print()

print("=== stage 4: 80/20 split (paper: 68/17 per cell) ===")
print(f"  train {len(ds.train)}, validation {len(ds.validation)}")
print()

print("=== stage 5: persistence ===")
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "balanced.jsonl"
    save_samples(list(ds.balanced), path)
    print(f"  wrote {path.stat().st_size / 1e6:.1f} MB to {path.name}")
    reloaded = load_samples(path)
    assert reloaded == list(ds.balanced)
    print(f"  reloaded {len(reloaded)} samples, bit-identical round trip")
