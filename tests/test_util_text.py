"""Tests for repro.util.tables and repro.util.textplot."""

import pytest

from repro.util.tables import format_markdown_table, format_table
from repro.util.textplot import ascii_boxplot, ascii_scatter


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.split("\n")
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all rows same width

    def test_none_renders_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out.split("\n")[-1]

    def test_float_format(self):
        out = format_table(["x"], [[3.14159]], float_fmt=".1f")
        assert "3.1" in out
        assert "3.14" not in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_string_cells_pass_through(self):
        out = format_table(["m"], [["hello"]])
        assert "hello" in out


class TestMarkdownTable:
    def test_structure(self):
        out = format_markdown_table(["a", "b"], [[1, 2]])
        lines = out.split("\n")
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 |" in lines[2]

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])


class TestAsciiScatter:
    def test_renders_points(self):
        out = ascii_scatter(
            {"s": [(1.0, 1.0), (10.0, 100.0), (100.0, 10.0)]},
            width=40,
            height=10,
        )
        assert "o" in out
        assert "s" in out  # legend

    def test_multiple_series_markers(self):
        out = ascii_scatter(
            {"a": [(1, 1)], "b": [(2, 2)]}, width=30, height=8
        )
        assert "o = a" in out
        assert "x = b" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_scatter({})

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_scatter({"s": [(0.0, 1.0), (1.0, 2.0)]}, log_x=True)

    def test_linear_axes_allow_zero(self):
        out = ascii_scatter(
            {"s": [(0.0, 0.0), (1.0, 1.0)]}, log_x=False, log_y=False,
            width=20, height=6,
        )
        assert "o" in out


class TestAsciiBoxplot:
    def test_renders_groups(self):
        out = ascii_boxplot(
            {"g1": [1, 2, 3, 4, 5], "g2": [10, 20, 30, 40, 50]}, width=40
        )
        assert "g1" in out
        assert "g2" in out
        assert "M" in out  # median markers

    def test_summary_line_present(self):
        out = ascii_boxplot({"g": [5, 6, 7, 8, 9]}, width=30)
        assert "med=" in out
        assert "n=5" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_boxplot({})
