"""Retry with jittered exponential backoff, attempt deadlines, rate limiting.

Nothing in ``src/`` retried anything before this module: the batch path
talks only to deterministic in-process models, where a failure is a bug.
A serving path talks (in shape, at least) to remote APIs, where timeouts,
429s, and transient 5xxs are weather, not bugs — so the serving engine
wraps every upstream completion in :func:`call_with_retry` under a
:class:`RetryPolicy`, and meters its request rate through an async
token-bucket :class:`RateLimiter`.

Determinism note: backoff delays and attempt timeouts are *jittered*
(decorrelating clients that fail together), which makes wall-clock timing
random — but never results. The jitter RNG is injectable for tests, and
``sleep`` is injectable so tests run in virtual time.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.serve.providers import (
    RETRYABLE_ERRORS,
    ProviderTimeout,
    RateLimitError,
)

#: Async sleep hook type — tests inject a virtual clock.
Sleep = Callable[[float], Awaitable[None]]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule for one upstream completion.

    Attempt ``k`` (0-based) that fails retryably sleeps
    ``base_delay_s * multiplier**k``, capped at ``max_delay_s``, then
    scaled by a uniform jitter factor in ``[1 - jitter, 1 + jitter]``.
    A :class:`RateLimitError` whose ``retry_after`` exceeds the computed
    delay waits the server's hint instead (never less than asked).
    ``timeout_s`` bounds each attempt, itself jittered by
    ``timeout_jitter`` so a thundering herd of identical requests doesn't
    time out in lockstep; ``None`` disables attempt deadlines.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    timeout_s: float | None = None
    timeout_jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if not 0.0 <= self.timeout_jitter < 1.0:
            raise ValueError(
                f"timeout_jitter must be in [0, 1), got {self.timeout_jitter}"
            )

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered delay after failed attempt ``attempt`` (0-based)."""
        delay = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        if self.jitter:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay

    def attempt_timeout(self, rng: random.Random) -> float | None:
        """This attempt's jittered deadline (``None`` = no deadline)."""
        if self.timeout_s is None:
            return None
        if not self.timeout_jitter:
            return self.timeout_s
        return self.timeout_s * rng.uniform(
            1.0 - self.timeout_jitter, 1.0 + self.timeout_jitter
        )


async def call_with_retry(
    fn: Callable[[], Awaitable],
    *,
    policy: RetryPolicy,
    rng: random.Random | None = None,
    sleep: Sleep = asyncio.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
):
    """Await ``fn()`` with bounded retries under ``policy``.

    Retries only :data:`~repro.serve.providers.RETRYABLE_ERRORS`; an
    attempt that overruns its jittered deadline is surfaced as
    :class:`~repro.serve.providers.ProviderTimeout` (itself retryable).
    Non-retryable exceptions and the final retryable failure propagate
    unchanged. ``on_retry(attempt, error)`` fires before each backoff
    sleep — the serving engine counts retries through it.
    """
    rng = rng if rng is not None else random.Random()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            timeout = policy.attempt_timeout(rng)
            if timeout is None:
                return await fn()
            try:
                return await asyncio.wait_for(fn(), timeout)
            except asyncio.TimeoutError:
                raise ProviderTimeout(
                    f"attempt {attempt + 1} exceeded {timeout:.3f}s"
                ) from None
        except RETRYABLE_ERRORS as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                raise
            delay = policy.backoff_delay(attempt, rng)
            if isinstance(exc, RateLimitError) and exc.retry_after is not None:
                delay = max(delay, exc.retry_after)
            if on_retry is not None:
                on_retry(attempt, exc)
            await sleep(delay)
    raise last if last is not None else RuntimeError("unreachable")


class RateLimiter:
    """Async token bucket: sustained ``rate`` acquisitions/s, bursts of
    ``burst``.

    Single-event-loop discipline: state is mutated only between awaits, so
    no lock is needed. Waiters self-schedule — each sleeps exactly until
    its own token matures — and ``_reserved`` tokens make concurrent
    waiters queue FIFO-fairly instead of stampeding the bucket when it
    refills. ``rate=None`` (or ``<= 0``) disables limiting;
    ``clock``/``sleep`` are injectable for virtual-time tests.
    """

    def __init__(
        self,
        rate: float | None,
        burst: int = 1,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Sleep = asyncio.sleep,
    ) -> None:
        if rate is not None and rate <= 0:
            rate = None
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._sleep = sleep
        self._tokens = float(burst)
        self._reserved = 0.0  # tokens promised to already-queued waiters
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        assert self.rate is not None
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    async def acquire(self) -> None:
        """Take one token, sleeping until the bucket can cover it."""
        if self.rate is None:
            return
        self._refill()
        # Claim a place in line: our token is the (_reserved + 1)-th to
        # mature. Reserving before sleeping keeps arrivals FIFO.
        deficit = self._reserved + 1.0 - self._tokens
        if deficit <= 0:
            self._tokens -= 1.0
            return
        self._reserved += 1.0
        try:
            await self._sleep(deficit / self.rate)
        finally:
            self._reserved -= 1.0
        self._refill()
        self._tokens -= 1.0  # may briefly dip below 0 under cancellation
