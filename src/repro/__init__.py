"""repro — reproduction of "Can Large Language Models Predict Parallel Code
Performance?" (Bolet et al., 2025).

The package frames GPU performance prediction as a roofline classification
task: given a kernel's source code and target-GPU specs, predict whether it
is compute-bound or bandwidth-bound. Because the original study depends on
proprietary LLM APIs, physical GPUs, and the HeCBench suite, this library
ships simulated substitutes for all three (see DESIGN.md section 2) while
keeping the paper's pipeline intact: corpus -> profile -> label -> prompt ->
model -> metrics.
"""

from repro.types import Boundedness, Language, OpClass

__version__ = "1.0.0"

__all__ = ["Boundedness", "Language", "OpClass", "__version__"]
