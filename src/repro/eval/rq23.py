"""RQ2 (zero-shot) and RQ3 (two-shot) classification experiments
(Table 1 cols 6-11).

Both query all 340 balanced samples; RQ3 swaps the pseudo-code examples for
two real code examples in the queried sample's language (paper §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dataset import Sample, paper_dataset
from repro.eval.engine import EvalEngine
from repro.eval.metrics import MetricReport
from repro.eval.runner import RunResult, run_queries
from repro.llm.base import LlmModel
from repro.prompts import PromptVariant, build_classify_prompt
from repro.roofline.hardware import GpuSpec
from repro.types import Boundedness


@dataclass(frozen=True)
class ClassificationResult:
    """One model's metrics on one classification regime."""

    model_name: str
    few_shot: bool
    metrics: MetricReport
    run: RunResult


def classification_items(
    samples: Sequence[Sample],
    *,
    few_shot: bool | None = None,
    variant: str | PromptVariant | None = None,
    gpu: GpuSpec | None = None,
) -> list[tuple[str, str, Boundedness]]:
    """(item_id, prompt, truth) work units for one classification cell.

    The single source of classification prompt construction — shared by
    RQ2/RQ3, the hardware matrix, and the shard executor
    (:mod:`repro.eval.shard`), so a sharded sweep's cache keys are
    guaranteed to match the single-machine run's. ``variant`` selects the
    prompt form (``few_shot`` is the deprecated boolean alias — see
    :func:`repro.prompts.build_classify_prompt`); ``gpu=None`` keeps the
    paper's default profiling target.
    """
    return [
        (
            s.uid,
            build_classify_prompt(s, few_shot=few_shot, variant=variant, gpu=gpu).text,
            s.label,
        )
        for s in samples
    ]


def run_classification(
    model: LlmModel,
    samples: Sequence[Sample] | None = None,
    *,
    few_shot: bool,
    engine: EvalEngine | None = None,
) -> ClassificationResult:
    """Run RQ2 (few_shot=False) or RQ3 (few_shot=True) for one model."""
    engine = engine or EvalEngine()
    if samples is None:
        # Cold start builds (and profiles) the dataset here: fan it over
        # the engine's workers instead of a single thread.
        samples = paper_dataset(jobs=engine.jobs).balanced
    items = classification_items(samples, few_shot=few_shot)
    run = run_queries(model, items, engine=engine)
    return ClassificationResult(
        model_name=model.name,
        few_shot=few_shot,
        metrics=run.metrics(),
        run=run,
    )


def run_rq2(
    model: LlmModel,
    samples: Sequence[Sample] | None = None,
    *,
    engine: EvalEngine | None = None,
) -> ClassificationResult:
    """Zero-shot classification (RQ2)."""
    return run_classification(model, samples, few_shot=False, engine=engine)


def run_rq3(
    model: LlmModel,
    samples: Sequence[Sample] | None = None,
    *,
    engine: EvalEngine | None = None,
) -> ClassificationResult:
    """Two-shot classification with real examples (RQ3)."""
    return run_classification(model, samples, few_shot=True, engine=engine)
