"""RQ2/RQ3 classification prompt (paper Figure 4).

The system prompt declares the task and the response vocabulary; the user
portion carries the queried kernel's language, name, target-GPU hardware
bullet list, launch geometry, command line, and the program's concatenated
source. Which example block (and optional hint) precedes the task is
decided by a :class:`~repro.prompts.variants.PromptVariant` — ``zero-shot``
is the RQ2 form, ``few-shot-2`` the RQ3 form, and further registered
variants span the prompt-ablation axis. The deprecated ``few_shot`` boolean
still maps onto the two seed variants with unchanged prompt bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.records import Sample
from repro.prompts.variants import PromptVariant, get_variant, variant_for_few_shot
from repro.roofline.hardware import GpuSpec, default_gpu

SYSTEM_HEADER = """You are a GPU performance analysis expert that classifies kernels into
Arithmetic Intensity Roofline model categories based on their source code
characteristics. Your task is to provide one of the following performance
boundedness classifications: Compute or Bandwidth.

A kernel is considered Compute bound if its performance is primarily
limited by the number of operations it performs, and Bandwidth bound
if its performance is primarily limited by the rate at which data can be
moved between memory and processing units.

Provide only one word as your response, chosen from the set:
['Compute', 'Bandwidth'].
"""


@dataclass(frozen=True)
class ClassifyPrompt:
    """A fully-assembled classification prompt plus its metadata."""

    text: str
    sample_uid: str
    variant: PromptVariant

    @property
    def few_shot(self) -> bool:
        """Deprecated boolean view: does the prompt carry real examples?"""
        return self.variant.few_shot


def build_classify_prompt(
    sample: Sample,
    *,
    few_shot: bool | None = None,
    variant: str | PromptVariant | None = None,
    gpu: GpuSpec | None = None,
) -> ClassifyPrompt:
    """Assemble the Figure 4 prompt for one dataset sample.

    ``variant`` names a registered :class:`PromptVariant` (``zero-shot`` is
    the RQ2 form, ``few-shot-2`` the RQ3 form). The deprecated ``few_shot``
    boolean maps onto those two seed variants; passing both is an error.
    Omitting both builds the zero-shot prompt.
    """
    if few_shot is not None and variant is not None:
        raise ValueError("pass either few_shot (deprecated) or variant, not both")
    if variant is None:
        variant = variant_for_few_shot(bool(few_shot))
    resolved = get_variant(variant)
    gpu = gpu or default_gpu()
    lang = sample.language.display
    bx, by, bz = sample.block
    gx, gy, gz = sample.grid
    # Seed variants must keep producing the exact pre-registry bytes (the
    # response cache is keyed on them): SYSTEM_HEADER and each optional
    # section end in "\n" already, so a plain join reproduces the old
    # f"{SYSTEM_HEADER}\n{examples}\n" layout.
    sections = [SYSTEM_HEADER]
    examples = resolved.examples_block(sample.language)
    if examples:
        sections.append(examples)
    if resolved.hint:
        sections.append(resolved.hint)
    body = (
        "\n".join(sections) + "\n"
        "Now, analyze the following source codes for the requested kernel of the\n"
        "specified hardware.\n\n"
        f"Classify the {lang} kernel called {sample.kernel_name} as Bandwidth or\n"
        f"Compute bound. The system it will execute on is a {gpu.name} with:\n"
        f"{gpu.prompt_block()}\n\n"
        f"The block and grid sizes of the invoked kernel are ({bx},{by},{bz}) and "
        f"({gx},{gy},{gz}),\nrespectively. The executable running this kernel is "
        f"launched with the following\ncommand-line arguments: {sample.argv}.\n\n"
        f"Below is the source code of the requested {lang} kernel:\n\n"
        f"{sample.source}\n"
    )
    return ClassifyPrompt(text=body, sample_uid=sample.uid, variant=resolved)
