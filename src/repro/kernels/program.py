"""Program-level containers: a benchmark program spec and its rendered source.

A :class:`ProgramSpec` is language-neutral metadata plus one or more
:class:`~repro.kernels.launch.KernelInstance`; rendering it through a codegen
backend yields a :class:`RenderedProgram` whose concatenated source is what
gets tokenized, pruned, and pasted into LLM prompts (paper §2.2 "Source
Scraping").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.kernels.launch import CommandLine, KernelInstance
from repro.types import Language


@dataclass(frozen=True)
class ProgramSpec:
    """A language-neutral benchmark program definition.

    ``kernels[0]`` is the program's *first kernel* — the one the paper
    profiles, labels, and asks the LLMs about; later entries are auxiliary
    kernels that appear in the source as realistic distractors.
    """

    name: str
    family: str
    variant: int
    language: Language
    kernels: tuple[KernelInstance, ...]
    cmdline: CommandLine
    description: str
    host_verbosity: int = 1
    split_files: bool = False
    #: 0 = no utility header, 1 = timers + init helpers, 2 = full suite
    #: (validation, arg parsing, run statistics, IO, allocators)
    util_header: int = 0
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError(f"program {self.name} has no kernels")
        if self.host_verbosity not in (0, 1, 2):
            raise ValueError("host_verbosity must be 0, 1, or 2")
        if self.util_header not in (0, 1, 2):
            raise ValueError("util_header must be 0, 1, or 2")

    @property
    def first_kernel(self) -> KernelInstance:
        return self.kernels[0]

    @property
    def uid(self) -> str:
        """Stable unique id across the corpus."""
        return f"{self.language.value}/{self.name}"


@dataclass(frozen=True)
class SourceFile:
    filename: str
    text: str

    @property
    def line_count(self) -> int:
        return self.text.count("\n") + 1


@dataclass(frozen=True)
class RenderedProgram:
    """A program spec together with its generated source files."""

    spec: ProgramSpec
    files: tuple[SourceFile, ...]

    def concatenated_source(self) -> str:
        """All source files joined into one string (paper's scraping step).

        Files are separated by a banner naming the file, mirroring a simple
        ``cat``-style concatenation of a real benchmark directory.
        """
        parts = []
        for f in self.files:
            parts.append(f"// ===== file: {f.filename} =====")
            parts.append(f.text)
        return "\n".join(parts)

    @property
    def total_lines(self) -> int:
        return sum(f.line_count for f in self.files)
