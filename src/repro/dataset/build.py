"""Dataset construction: profile the corpus and attach ground-truth labels.

Reproduces paper §2.1-2.2: every program's *first kernel* is profiled on the
simulated RTX 3080, labelled BB/CB against the three theoretical rooflines,
rendered to concatenated source text, and token-counted with the
corpus-trained tokenizer.
"""

from __future__ import annotations

from repro.dataset.records import CounterSummary, Sample
from repro.dataset.text import TextArtifact, program_texts
from repro.gpusim import (
    DeviceModel,
    KernelProfile,
    default_device,
    profile_corpus,
    profile_first_kernel,
)
from repro.kernels.codegen import render_program
from repro.kernels.corpus import Corpus, default_corpus
from repro.roofline import classify_kernel
from repro.tokenizer import BpeTokenizer, corpus_tokenizer
from repro.util.parallel import parallel_map


def build_sample(
    program,
    device: DeviceModel,
    tokenizer: BpeTokenizer,
    profile: KernelProfile | None = None,
    text: TextArtifact | None = None,
) -> Sample:
    """Profile, label, render, and token-count one program.

    Pass ``profile`` to reuse a counter set from a batched
    :func:`repro.gpusim.profile_corpus` pass, and ``text`` to reuse a
    device-independent render/token-count from a batched
    :func:`repro.dataset.text.program_texts` pass, instead of recomputing
    either per device.
    """
    if profile is None:
        profile = profile_first_kernel(program, device)
    counters = profile.counters
    detail = classify_kernel(
        counters.intensity_profile(), device.spec.rooflines()
    )
    if text is None:
        source = render_program(program).concatenated_source()
        token_count = tokenizer.count_tokens(source)
    else:
        source = text.source
        token_count = text.token_count
    first = program.first_kernel
    return Sample(
        uid=program.uid,
        language=program.language,
        family=program.family,
        program_name=program.name,
        kernel_name=first.kernel.name,
        label=detail.label,
        counters=CounterSummary(
            sp_flops=counters.sp_flops,
            dp_flops=counters.dp_flops,
            int_ops=counters.int_ops,
            dram_read_bytes=counters.dram_read_bytes,
            dram_write_bytes=counters.dram_write_bytes,
            time_s=counters.time_s,
        ),
        token_count=token_count,
        source=source,
        block=(first.launch.block.x, first.launch.block.y, first.launch.block.z),
        grid=(first.launch.grid.x, first.launch.grid.y, first.launch.grid.z),
        argv=program.cmdline.argv_string(),
        gpu_name=device.spec.name,
    )


def build_samples(
    corpus: Corpus | None = None,
    device: DeviceModel | None = None,
    tokenizer: BpeTokenizer | None = None,
    *,
    jobs: int = 1,
) -> list[Sample]:
    """Profile and label the whole corpus (the paper's 749 programs).

    The gpusim profiling runs as one batched, memoized, two-phase pass
    shared with every other consumer of this (corpus, device) pair — and,
    when a persistent profile store is active
    (:func:`repro.gpusim.store.active_profile_store`), served from disk
    with zero IR walks in warm-store processes. Rendering and
    token-counting run the same way through the device-independent
    :func:`repro.dataset.text.program_texts` pass (memoized, and served
    whole from a warm artifact cache), fanned over ``jobs`` threads.
    """
    corpus = corpus or default_corpus()
    device = device or default_device()
    tokenizer = tokenizer or corpus_tokenizer()
    profiles = profile_corpus(corpus, device, jobs=jobs)
    texts = program_texts(corpus.programs, tokenizer, jobs=jobs)
    return parallel_map(
        lambda p: build_sample(
            p,
            device,
            tokenizer,
            profile=profiles[p.uid],
            text=texts[p.uid],
        ),
        corpus.programs,
        jobs=jobs,
    )
