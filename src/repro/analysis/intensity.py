"""Static arithmetic-intensity estimation — the analyst's full pipeline.

Walks a parsed kernel body accumulating per-thread operation counts and
estimated DRAM bytes, resolving loop trip counts from literals and from the
program's command-line arguments (which the paper's prompt includes), and
returns per-class arithmetic intensities plus diagnostics about how much of
the estimate rests on guesses.

This module is the reasoning engine behind the "reasoning" LLM emulators:
its systematic blind spots (no cache-capacity model, guessed branch
densities, guessed trip counts for unresolvable bounds, pessimistic gather
costs) are what keep source-only roofline classification away from 100%
even for a perfect reader — the paper's central observation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.cparser import (
    Branch,
    Decl,
    ExprStmt,
    Loop,
    Pragma,
    Return,
    SharedDecl,
    parse_block,
    parse_params,
)
from repro.analysis.kernelfind import KernelSource
from repro.analysis.memtraffic import estimate_access
from repro.analysis.opcount import OpVector, TypeEnv, scan_statement
from repro.types import Boundedness, Language, OpClass


@dataclass(frozen=True)
class StaticEstimate:
    """Per-thread static estimate for one kernel."""

    ops_sp: float
    ops_dp: float
    ops_int: float
    sfu: float
    bytes_per_thread: float
    #: diagnostics
    unresolved_bounds: int
    dynamic_accesses: int
    branch_sites: int
    load_sites: int
    store_sites: int

    def ops(self, op_class: OpClass) -> float:
        return {
            OpClass.SP: self.ops_sp,
            OpClass.DP: self.ops_dp,
            OpClass.INT: self.ops_int,
        }[op_class]

    def intensity(self, op_class: OpClass) -> float:
        if self.bytes_per_thread <= 0.0:
            return 0.0
        return self.ops(op_class) / self.bytes_per_thread

    def intensities(self) -> dict[OpClass, float]:
        return {oc: self.intensity(oc) for oc in OpClass}

    @property
    def guess_fraction(self) -> float:
        """How much of the estimate rests on unresolvable facts (0..1)."""
        shaky = self.unresolved_bounds * 2 + self.dynamic_accesses + self.branch_sites
        sites = max(1, self.load_sites + self.store_sites)
        return min(1.0, shaky / (sites + 2.0))


@dataclass
class _Walk:
    env: TypeEnv
    param_values: dict[str, int]
    branch_taken: float
    default_trip: int
    ops: OpVector = field(default_factory=OpVector)
    bytes_total: float = 0.0
    unresolved: int = 0
    dynamic: int = 0
    branches: int = 0
    loads: int = 0
    stores: int = 0
    #: (array, kind, index_text, byte contribution) per access site
    site_log: list[tuple[str, str, str, float]] = field(default_factory=list)

    def resolve(self, bound_text: str) -> int:
        """Resolve a loop bound from literals and argv-known parameters."""
        text = bound_text.strip()
        if not text:
            self.unresolved += 1
            return self.default_trip
        if re.fullmatch(r"\d+", text):
            return int(text)
        # simple products / single identifiers resolvable from flags
        factors = [f.strip() for f in text.split("*")]
        total = 1
        for f in factors:
            if re.fullmatch(r"\d+", f):
                total *= int(f)
            elif f in self.param_values:
                total *= self.param_values[f]
            else:
                self.unresolved += 1
                return self.default_trip
        return max(1, total)

    def statement(self, text: str, mult: float, loop_vars: tuple[str, ...]) -> None:
        ops, accesses = scan_statement(text, self.env)
        self.ops.add(ops, mult)
        for acc in accesses:
            est = estimate_access(acc, self.env, loop_vars)
            if est is None:
                continue
            if est.is_write:
                self.stores += 1
            else:
                self.loads += 1
            if est.is_dynamic:
                self.dynamic += 1
            # Register hoisting: traffic multiplies only with the loops the
            # address varies in (plus the branch damping already in mult's
            # branch factors — approximated by scaling with mult relative to
            # full loop product).
            eff_mult = self._effective_multiplicity(mult, loop_vars, est.varying_loops)
            factor = 2.0 if est.is_rmw else 1.0
            contribution = est.bytes_per_exec * eff_mult * factor
            self.bytes_total += contribution
            self.site_log.append(
                (acc.array, acc.kind, acc.index_text, contribution)
            )

    def _effective_multiplicity(
        self,
        mult: float,
        loop_vars: tuple[str, ...],
        varying: tuple[str, ...],
    ) -> float:
        eff = mult
        for lv in loop_vars:
            if lv not in varying:
                trip = self._trip_of.get(lv, 1)
                if trip > 0:
                    eff /= trip
        return eff

    _trip_of: dict[str, int] = field(default_factory=dict)

    def walk(self, nodes, mult: float, loop_vars: tuple[str, ...]) -> None:
        for node in nodes:
            if isinstance(node, Decl):
                self.env.declare_scalar(node.name, node.type_name)
                if node.init_text:
                    self.statement(node.init_text, mult, loop_vars)
            elif isinstance(node, SharedDecl):
                self.env.declare_shared(node.name, node.type_name)
            elif isinstance(node, Pragma):
                continue
            elif isinstance(node, Return):
                continue
            elif isinstance(node, ExprStmt):
                self.statement(node.text, mult, loop_vars)
            elif isinstance(node, Branch):
                if node.is_early_exit_guard:
                    self.ops.int_ += 1.0 * mult
                    continue
                self.branches += 1
                self.statement(node.cond_text, mult, loop_vars)
                if node.then_body:
                    self.walk(node.then_body, mult * self.branch_taken, loop_vars)
                if node.else_body:
                    self.walk(node.else_body, mult * (1.0 - self.branch_taken), loop_vars)
            elif isinstance(node, Loop):
                trip = self.resolve(node.bound_text)
                step = _step_of(node.step_text)
                trips = max(1, (trip + step - 1) // step)
                self.ops.int_ += 2.0 * trips * mult
                self._trip_of[node.var] = trips
                self.env.declare_scalar(node.var, "int")
                self.walk(node.body, mult * trips, loop_vars + (node.var,))
                del self._trip_of[node.var]


def _step_of(step_text: str) -> int:
    m = re.search(r"\+=\s*(\d+)", step_text or "")
    if m:
        return max(1, int(m.group(1)))
    return 1


def _unwrap_omp_thread_loops(nodes) -> tuple:
    """Strip the OMP offload thread loop(s); return the per-thread body.

    The offload pattern is a pragma'd outer loop (optionally ``collapse(2)``
    with one more nested loop) whose iteration space is the thread grid.
    """
    for node in nodes:
        if isinstance(node, Loop) and node.pragma and "target teams distribute" in node.pragma:
            if "collapse(2)" in node.pragma:
                for inner in node.body:
                    if isinstance(inner, Loop):
                        return inner.body
                return node.body
            return node.body
    # Fallback: pragma may have been parsed as a sibling node.
    for i, node in enumerate(nodes):
        if isinstance(node, Pragma) and "target teams distribute" in node.text:
            for j in range(i + 1, len(nodes)):
                if isinstance(nodes[j], Loop):
                    loop = nodes[j]
                    if "collapse(2)" in node.text:
                        for inner in loop.body:
                            if isinstance(inner, Loop):
                                return inner.body
                    return loop.body
    return nodes


def analyze_kernel(
    kernel: KernelSource,
    *,
    param_values: Mapping[str, int] | None = None,
    branch_taken: float = 0.5,
    default_trip: int = 64,
) -> StaticEstimate:
    """Run the full static pipeline on one kernel's source.

    ``param_values`` supplies trip-count facts recoverable from the prompt
    (the executable's argv flags; the paper's prompt includes them).
    """
    env = TypeEnv()
    for p in parse_params(kernel.params_text):
        if p.is_pointer:
            env.declare_pointer(p.name, p.type_name)
        else:
            env.declare_scalar(p.name, p.type_name)
    for sym in ("gx", "gy", "lx", "ly"):
        env.declare_scalar(sym, "int")

    nodes = parse_block(kernel.body_text)
    if kernel.language is Language.OMP:
        nodes = _unwrap_omp_thread_loops(nodes)

    walker = _Walk(
        env=env,
        param_values=dict(param_values or {}),
        branch_taken=branch_taken,
        default_trip=default_trip,
    )
    walker.walk(nodes, 1.0, ())

    # A thread always moves at least one element of something (argument
    # loads); avoids divide-by-zero for degenerate kernels.
    bytes_per_thread = max(walker.bytes_total, 0.5)
    return StaticEstimate(
        ops_sp=walker.ops.sp,
        ops_dp=walker.ops.dp,
        ops_int=walker.ops.int_,
        sfu=walker.ops.sfu,
        bytes_per_thread=bytes_per_thread,
        unresolved_bounds=walker.unresolved,
        dynamic_accesses=walker.dynamic,
        branch_sites=walker.branches,
        load_sites=walker.loads,
        store_sites=walker.stores,
    )


def analyze_kernel_detailed(
    kernel: KernelSource,
    *,
    param_values: Mapping[str, int] | None = None,
    branch_taken: float = 0.5,
    default_trip: int = 64,
) -> tuple[StaticEstimate, list[tuple[str, str, str, float]]]:
    """Like :func:`analyze_kernel`, but also returns the per-access-site
    traffic breakdown: (array, kind, index text, estimated bytes/thread)."""
    env = TypeEnv()
    for p in parse_params(kernel.params_text):
        if p.is_pointer:
            env.declare_pointer(p.name, p.type_name)
        else:
            env.declare_scalar(p.name, p.type_name)
    for sym in ("gx", "gy", "lx", "ly"):
        env.declare_scalar(sym, "int")
    nodes = parse_block(kernel.body_text)
    if kernel.language is Language.OMP:
        nodes = _unwrap_omp_thread_loops(nodes)
    walker = _Walk(
        env=env,
        param_values=dict(param_values or {}),
        branch_taken=branch_taken,
        default_trip=default_trip,
    )
    walker.walk(nodes, 1.0, ())
    estimate = StaticEstimate(
        ops_sp=walker.ops.sp,
        ops_dp=walker.ops.dp,
        ops_int=walker.ops.int_,
        sfu=walker.ops.sfu,
        bytes_per_thread=max(walker.bytes_total, 0.5),
        unresolved_bounds=walker.unresolved,
        dynamic_accesses=walker.dynamic,
        branch_sites=walker.branches,
        load_sites=walker.loads,
        store_sites=walker.stores,
    )
    return estimate, list(walker.site_log)


def classify_static(
    estimate: StaticEstimate,
    balance_points: Mapping[OpClass, float],
) -> Boundedness:
    """Apply the paper's labeling rule to a static estimate.

    CB if the estimated AI of any op class exceeds that class's balance
    point, else BB — mirroring §2.1 exactly.
    """
    for op_class in OpClass:
        if estimate.intensity(op_class) >= balance_points[op_class]:
            return Boundedness.COMPUTE
    return Boundedness.BANDWIDTH
