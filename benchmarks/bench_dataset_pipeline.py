"""E8 — §2.1-2.2: the dataset pipeline counts.

Rebuilds the full pipeline from scratch (corpus → profile → label → token
prune → balance → split) and compares every stage's counts against the
paper's: 446 CUDA + 303 OMP profiled → 297 CUDA + 242 OMP after the
8e3-token cutoff → 340 balanced (85 per language x class) → 272/68 split
(68/17 per cell).
"""

from __future__ import annotations

from repro.dataset import cell_counts, paper_dataset
from repro.eval.report import Comparison, render_comparisons
from repro.types import Boundedness, Language


def _rebuild():
    return paper_dataset(force_rebuild=True)


def test_dataset_pipeline(benchmark):
    ds = benchmark.pedantic(_rebuild, rounds=1, iterations=1)

    r = ds.prune_report
    balanced_counts = cell_counts(list(ds.balanced))
    train_counts = cell_counts(list(ds.train))
    val_counts = cell_counts(list(ds.validation))
    comparisons = [
        Comparison("§2.1", "CUDA programs profiled", 446, r.cuda_before),
        Comparison("§2.1", "OMP programs profiled", 303, r.omp_before),
        Comparison("§2.2", "CUDA kept after 8e3-token prune", 297, r.cuda_after),
        Comparison("§2.2", "OMP kept after 8e3-token prune", 242, r.omp_after),
        Comparison("§2.2", "balanced dataset size", 340, len(ds.balanced)),
        Comparison("§2.2", "balanced cell size", 85, min(balanced_counts.values())),
        Comparison("§2.2", "training samples", 272, len(ds.train)),
        Comparison("§2.2", "validation samples", 68, len(ds.validation)),
        Comparison("§2.2", "train cell size", 68, min(train_counts.values())),
        Comparison("§2.2", "validation cell size", 17, min(val_counts.values())),
    ]
    print()
    print(render_comparisons("E8 — dataset pipeline, paper vs measured", comparisons))

    assert r.cuda_before == 446 and r.omp_before == 303
    assert abs(r.cuda_after - 297) <= 15
    assert 240 <= r.omp_after <= 290
    assert len(ds.balanced) == 340
    assert set(balanced_counts.values()) == {85}
    assert set(train_counts.values()) == {68}
    assert set(val_counts.values()) == {17}
    for lang in Language:
        for label in Boundedness:
            assert balanced_counts[(lang, label)] == 85
