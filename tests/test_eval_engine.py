"""Tests for the parallel, cached evaluation engine."""

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.eval.engine import (
    CachedResponse,
    DiskResponseStore,
    EvalEngine,
    MemoryResponseStore,
    cache_key,
)
from repro.eval.runner import run_queries
from repro.llm import get_model
from repro.llm.base import LlmModel
from repro.prompts import build_classify_prompt
from repro.types import Boundedness

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


class CountingModel(LlmModel):
    """LlmModel that counts how many completions it actually computes."""

    def __init__(self, config):
        super().__init__(config)
        self.calls = 0
        self._lock = threading.Lock()

    def complete(self, prompt, *, temperature=None, top_p=None):
        with self._lock:
            self.calls += 1
        return super().complete(prompt, temperature=temperature, top_p=top_p)


def classify_items(samples, n):
    return [
        (s.uid, build_classify_prompt(s).text, s.label) for s in samples[:n]
    ]


class TestPoolEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 5, 16])
    def test_records_and_metrics_match_sequential(self, balanced_samples, jobs):
        model = get_model("o3-mini-high")
        items = classify_items(balanced_samples, 24)
        sequential = run_queries(model, items)
        parallel = run_queries(model, items, jobs=jobs)
        assert parallel == sequential
        assert parallel.records == sequential.records
        assert parallel.usage == sequential.usage
        assert parallel.metrics() == sequential.metrics()

    def test_cached_run_matches_uncached(self, balanced_samples):
        model = get_model("gpt-4o-mini")
        items = classify_items(balanced_samples, 16)
        baseline = run_queries(model, items)
        store = MemoryResponseStore()
        cold = run_queries(model, items, jobs=4, cache=store)
        warm = run_queries(model, items, jobs=4, cache=store)
        assert cold == baseline
        assert warm == baseline

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            EvalEngine().run(get_model("o1"), [])

    def test_sampling_rejection_propagates(self, balanced_samples):
        items = classify_items(balanced_samples, 4)
        with pytest.raises(ValueError):
            run_queries(get_model("o1"), items, temperature=0.7, jobs=4)


class TestCacheAccounting:
    def test_hit_miss_counts(self, balanced_samples):
        model = CountingModel(get_model("o3-mini").config)
        items = classify_items(balanced_samples, 10)
        store = MemoryResponseStore()
        engine = EvalEngine(jobs=3, store=store)
        engine.run(model, items)
        assert engine.stats.hits == 0
        assert engine.stats.misses == 10
        assert engine.stats.completions == 10
        assert model.calls == 10
        assert len(store) == 10

        warm = EvalEngine(jobs=3, store=store)
        warm.run(model, items)
        assert warm.stats.hits == 10
        assert warm.stats.misses == 0
        assert warm.stats.completions == 0
        assert model.calls == 10  # zero new model completions

    def test_no_store_counts_uncached(self, balanced_samples):
        model = CountingModel(get_model("o3-mini").config)
        items = classify_items(balanced_samples, 5)
        engine = EvalEngine()
        engine.run(model, items)
        assert engine.stats.uncached == 5
        assert engine.stats.completions == 5
        assert engine.stats.hits == engine.stats.misses == 0

    def test_distinct_sampling_params_miss(self):
        model = get_model("gpt-4o-mini")
        store = MemoryResponseStore()
        engine = EvalEngine(store=store)
        engine.complete(model, "hello")
        engine.complete(model, "hello", temperature=0.1, top_p=0.2)
        # None params and explicit defaults are distinct cache entries.
        assert engine.stats.misses == 2


class TestCacheKeys:
    def test_distinct_configs_distinct_keys(self):
        a = get_model("gpt-4o-mini").config
        b = get_model("gpt-4o-mini-2024-07-18").config
        assert cache_key(a, "p") != cache_key(b, "p")

    def test_distinct_prompts_distinct_keys(self):
        cfg = get_model("o1").config
        assert cache_key(cfg, "p1") != cache_key(cfg, "p2")

    def test_params_change_key(self):
        cfg = get_model("gpt-4o-mini").config
        keys = {
            cache_key(cfg, "p"),
            cache_key(cfg, "p", temperature=0.1),
            cache_key(cfg, "p", temperature=0.1, top_p=0.2),
            cache_key(cfg, "p", top_p=0.2),
        }
        assert len(keys) == 4

    def test_stable_across_processes(self):
        cfg = get_model("o3-mini-high").config
        prompt = "Is saxpy compute-bound?\nAnswer:"
        local = cache_key(cfg, prompt, temperature=0.1, top_p=0.2)
        script = (
            "from repro.eval.engine import cache_key\n"
            "from repro.llm import get_model\n"
            "print(cache_key(get_model('o3-mini-high').config, "
            "'Is saxpy compute-bound?\\nAnswer:', temperature=0.1, top_p=0.2))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": SRC_DIR, "PYTHONHASHSEED": "random"},
        )
        assert out.stdout.strip() == local


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        store = DiskResponseStore(tmp_path / "cache")
        value = CachedResponse(
            text="Compute", input_tokens=11, output_tokens=1, reasoning_tokens=7
        )
        store.put("ab" + "0" * 62, value)
        assert store.get("ab" + "0" * 62) == value
        assert len(store) == 1
        assert store.size_bytes() > 0

    def test_missing_key_is_miss(self, tmp_path):
        store = DiskResponseStore(tmp_path / "cache")
        assert store.get("ff" + "0" * 62) is None

    def test_corrupt_segment_is_miss_and_put_repairs(self, tmp_path):
        store = DiskResponseStore(tmp_path / "cache")
        key = "cd" + "0" * 62
        value = CachedResponse("Bandwidth", 5, 1, 0)
        store.put(key, value)
        store._segment_path("responses-", "cd").write_text(
            "{not a segment", encoding="utf-8"
        )
        assert store.get(key) is None
        store.put(key, value)
        assert store.get(key) == value

    def test_legacy_per_entry_file_still_serves(self, tmp_path):
        # A pre-segment cache dir (one root/xx/<key>.json file per entry)
        # must keep hitting — and corrupt legacy files read as misses.
        store = DiskResponseStore(tmp_path / "cache")
        key = "cd" + "0" * 62
        value = CachedResponse("Bandwidth", 5, 1, 0)
        legacy = store._legacy_path(key)
        legacy.parent.mkdir(parents=True)
        legacy.write_text(
            json.dumps(value.to_dict(), sort_keys=True), encoding="utf-8"
        )
        assert store.get(key) == value
        assert len(store) == 1
        legacy.write_text("{not json", encoding="utf-8")
        assert store.get(key) is None

    def test_clear(self, tmp_path):
        store = DiskResponseStore(tmp_path / "cache")
        store.put("ab" + "0" * 62, CachedResponse("Compute", 1, 1, 0))
        store.clear()
        assert len(store) == 0

    def test_clear_spares_foreign_files(self, tmp_path):
        """Regression: --cache-dir may point at a dir with unrelated
        content; clear() must remove cache entries only, never the rest."""
        root = tmp_path / "shared"
        root.mkdir()
        (root / "precious.txt").write_text("keep me", encoding="utf-8")
        (root / "subdir").mkdir()
        (root / "subdir" / "data.json").write_text("{}", encoding="utf-8")
        (root / "ab").mkdir()
        (root / "ab" / "notes.md").write_text("mine", encoding="utf-8")
        store = DiskResponseStore(root)
        store.put("ab" + "1" * 62, CachedResponse("Compute", 1, 1, 0))
        store.put("cd" + "2" * 62, CachedResponse("Bandwidth", 2, 1, 0))
        store.clear()
        assert len(store) == 0
        assert (root / "precious.txt").read_text(encoding="utf-8") == "keep me"
        assert (root / "subdir" / "data.json").exists()
        assert (root / "ab" / "notes.md").exists()  # shard dir kept: not empty
        assert not (root / "cd").exists()  # pure-cache shard removed

    def test_engine_reuses_disk_entries_across_instances(
        self, tmp_path, balanced_samples
    ):
        model = CountingModel(get_model("gemini-2.0-flash-001").config)
        items = classify_items(balanced_samples, 8)
        cold = EvalEngine(jobs=2, store=DiskResponseStore(tmp_path / "c"))
        first = cold.run(model, items)
        warm = EvalEngine(jobs=2, store=DiskResponseStore(tmp_path / "c"))
        second = warm.run(model, items)
        assert second == first
        assert warm.stats.hits == 8
        assert model.calls == 8

    def test_entry_blobs_parse_as_json(self, tmp_path):
        store = DiskResponseStore(tmp_path / "cache")
        key = "ef" + "0" * 62
        store.put(key, CachedResponse("Compute", 3, 1, 2))
        data = json.loads(store.get_blob(key))
        assert data["text"] == "Compute"
        assert data["reasoning_tokens"] == 2


class TestRq1Equivalence:
    def test_rq1_engine_matches_sequential(self):
        from repro.eval.rq1 import run_rq1

        model = get_model("gpt-4o-mini")
        sequential = run_rq1(model, num_rooflines=15, shot_counts=(2,))
        store = MemoryResponseStore()
        cold = run_rq1(
            model,
            num_rooflines=15,
            shot_counts=(2,),
            engine=EvalEngine(jobs=6, store=store),
        )
        warm = run_rq1(
            model,
            num_rooflines=15,
            shot_counts=(2,),
            engine=EvalEngine(jobs=6, store=store),
        )
        assert cold == sequential
        assert warm == sequential


class TestDecomposeEquivalence:
    def test_decompose_engine_matches_sequential(self, balanced_samples):
        from repro.eval.decompose import run_decompose_experiment

        model = get_model("o3-mini")
        samples = balanced_samples[:10]
        sequential = run_decompose_experiment(model, samples)
        store = MemoryResponseStore()
        parallel = run_decompose_experiment(
            model, samples, engine=EvalEngine(jobs=4, store=store)
        )
        warm = run_decompose_experiment(
            model, samples, engine=EvalEngine(jobs=4, store=store)
        )
        assert parallel.predictions == sequential.predictions
        assert warm.predictions == sequential.predictions
        assert warm.usage == parallel.usage


@pytest.mark.slow
class TestTable1Equivalence:
    def test_parallel_cached_table_matches_sequential(self, balanced_samples):
        from repro.eval.table1 import build_table1

        models = [get_model("o3-mini-high"), get_model("gpt-4o-mini")]
        samples = balanced_samples[:40]
        sequential = build_table1(samples, models=models, num_rooflines=10)
        store = MemoryResponseStore()
        cold = build_table1(
            samples,
            models=models,
            num_rooflines=10,
            engine=EvalEngine(jobs=8, store=store),
        )
        warm_engine = EvalEngine(jobs=8, store=store)
        warm = build_table1(
            samples, models=models, num_rooflines=10, engine=warm_engine
        )
        assert cold.render() == sequential.render()
        assert warm.render() == sequential.render()
        assert warm_engine.stats.misses == 0
        assert warm_engine.stats.hits > 0
