"""RQ4 fine-tuning study: why 272 samples are not enough.

Reproduces the paper's §3.7 finding — fine-tuning on the small balanced
training split collapses the model into a constant-class predictor — and
then shows the contrast case: the same trainer with gentle hyperparameters
on cleanly separable data works fine, isolating the failure to the
aggressive-regime/small-data combination.

Run:  python examples/finetune_study.py
"""

from repro.dataset import paper_dataset
from repro.eval.rq4 import run_rq4_all_scopes
from repro.llm.finetune import FineTuneConfig, FineTunedClassifier
from repro.types import Boundedness
from repro.util.tables import format_table

ds = paper_dataset()

print("=== the paper's regime: 2 epochs on 272 prompts ===")
rows = []
for result in run_rq4_all_scopes(ds):
    rows.append([
        result.scope,
        result.train_size,
        result.validation_size,
        result.validation_metrics.accuracy,
        result.validation_prediction_entropy,
        result.collapsed_to.word if result.collapsed_to else "mixed",
    ])
print(format_table(
    ["Scope", "Train", "Val", "Val Acc", "Pred entropy", "Predicts"],
    rows, title="RQ4 — fine-tune outcomes",
))
print()
print('Paper: "the model had devolved and would always predict either CB or')
print('BB for the whole validation set" — entropy 0 rows above are exactly')
print("that behaviour, in all three scopes.")
print()

print("=== contrast: gentle hyperparameters, separable toy data ===")
cfg = FineTuneConfig(epochs=20, learning_rate=0.05, momentum=0.0,
                     bias_lr_multiplier=1.0)
clf = FineTunedClassifier(cfg, seed_key="toy")
train_prompts = (
    ["kernel with heavy compute loop flops iterations"] * 10
    + ["kernel streaming memory copy bandwidth bytes"] * 10
)
train_labels = [Boundedness.COMPUTE] * 10 + [Boundedness.BANDWIDTH] * 10
history = clf.train(train_prompts, train_labels)
print(f"final train accuracy: {history.epoch_train_accuracy[-1] * 100:.0f}%")
print(f"'compute loop flops'      -> {clf.predict('compute loop flops').word}")
print(f"'memory stream bandwidth' -> {clf.predict('memory stream bandwidth').word}")
print()
print("The trainer is a working classifier; the collapse is a property of")
print("the aggressive fine-tune regime on few samples — the paper's point")
print('that "a larger training dataset is necessary".')
