"""Tests for repro.kernels.launch."""

import pytest

from repro.kernels.ir import ArrayDecl, DType, Kernel, Let, ScalarParam, aff, load
from repro.kernels.launch import (
    CommandLine,
    Dim3,
    KernelInstance,
    LaunchConfig,
    plan_launch_1d,
    plan_launch_2d,
    validate_launch,
)


def _kernel(work="n"):
    return Kernel(
        name="k",
        arrays=(ArrayDecl("x", DType.F32, "n"),),
        params=(ScalarParam("n", DType.I32),),
        body=(Let("v", load("x", aff("gx")), DType.F32),),
        work_items=work,
    )


class TestDim3:
    def test_total(self):
        assert Dim3(4, 2, 3).total == 24

    def test_str(self):
        assert str(Dim3(1, 2, 3)) == "(1,2,3)"

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            Dim3(0)


class TestPlanLaunch:
    def test_1d_exact(self):
        lc = plan_launch_1d(1024, 256)
        assert lc.grid.x == 4
        assert lc.block.x == 256
        assert lc.total_threads == 1024

    def test_1d_round_up(self):
        lc = plan_launch_1d(1000, 256)
        assert lc.grid.x == 4
        assert lc.total_threads >= 1000

    def test_1d_invalid(self):
        with pytest.raises(ValueError):
            plan_launch_1d(0)

    def test_2d(self):
        lc = plan_launch_2d(100, 50, 16, 16)
        assert lc.grid.x == 7
        assert lc.grid.y == 4
        assert lc.total_threads >= 100 * 50


class TestCommandLine:
    def test_argv_rendering(self):
        cl = CommandLine(prog="saxpy", flags=(("n", 1024), ("iters", 8)))
        assert cl.argv_string() == "./saxpy --n 1024 --iters 8"

    def test_bindings(self):
        cl = CommandLine(prog="p", flags=(("n", 5),))
        assert cl.bindings() == {"n": 5}


class TestKernelInstance:
    def test_resolve_bindings_includes_flags(self):
        cl = CommandLine(prog="p", flags=(("n", 10), ("pad", 12)))
        inst = KernelInstance(
            kernel=_kernel(), launch=plan_launch_1d(10), binding_exprs=(("n", "n"),)
        )
        env = inst.resolve_bindings(cl)
        assert env["n"] == 10
        assert env["pad"] == 12  # non-param flags visible for array sizes

    def test_literal_binding(self):
        cl = CommandLine(prog="p", flags=(("n", 10),))
        inst = KernelInstance(
            kernel=_kernel(), launch=plan_launch_1d(10),
            binding_exprs=(("n", 10),),
        )
        assert inst.resolve_bindings(cl)["n"] == 10

    def test_unknown_flag_raises(self):
        cl = CommandLine(prog="p", flags=(("n", 10),))
        inst = KernelInstance(
            kernel=_kernel(), launch=plan_launch_1d(10),
            binding_exprs=(("n", "zebra"),),
        )
        with pytest.raises(KeyError):
            inst.resolve_bindings(cl)

    def test_param_bound_implicitly_by_matching_flag(self):
        # a kernel param named like a flag resolves through the flag env
        cl = CommandLine(prog="p", flags=(("n", 10),))
        inst = KernelInstance(
            kernel=_kernel(), launch=plan_launch_1d(10), binding_exprs=()
        )
        assert inst.resolve_bindings(cl)["n"] == 10

    def test_missing_param_raises(self):
        cl = CommandLine(prog="p", flags=(("m", 10),))
        inst = KernelInstance(
            kernel=_kernel(), launch=plan_launch_1d(10), binding_exprs=()
        )
        with pytest.raises(ValueError):
            inst.resolve_bindings(cl)

    def test_active_threads_guard_trim(self):
        cl = CommandLine(prog="p", flags=(("n", 1000),))
        inst = KernelInstance(
            kernel=_kernel(), launch=plan_launch_1d(1000, 256),
            binding_exprs=(("n", "n"),),
        )
        assert inst.active_threads(cl) == 1000  # guard masks the round-up


class TestValidateLaunch:
    def test_valid(self):
        cl = CommandLine(prog="p", flags=(("n", 512),))
        inst = KernelInstance(
            kernel=_kernel(), launch=plan_launch_1d(512),
            binding_exprs=(("n", "n"),),
        )
        validate_launch(inst, cl)  # no raise

    def test_undersized_launch_rejected(self):
        cl = CommandLine(prog="p", flags=(("n", 10_000),))
        inst = KernelInstance(
            kernel=_kernel(),
            launch=LaunchConfig(grid=Dim3(1), block=Dim3(32)),
            binding_exprs=(("n", "n"),),
        )
        with pytest.raises(ValueError):
            validate_launch(inst, cl)
