"""The corpus-trained tokenizer singleton.

Training draws a deterministic sample of rendered programs from the default
corpus (both languages, mixed verbosity) so the learned merges reflect the
exact text distribution that gets counted at pruning time.

Sample selection is ``programs[::step][:sample]`` with
``step = max(1, len(programs) // sample)``: an even stride across the
corpus-ordered program list. Corpus order interleaves family groups and
puts all CUDA programs before all OMP ones, so the stride covers every
family and both languages; the trailing ``[:sample]`` clips the one extra
program the flooring stride can produce. The selection depends only on
the corpus, so it is stable across processes — which is what lets learned
merges persist in the :class:`~repro.store.text.TokenizerStore` under a
content key derived from the sampled programs.
"""

from __future__ import annotations

from repro.tokenizer.bpe import BpeTokenizer

_PRETRAINED: BpeTokenizer | None = None

#: Number of programs sampled for training and merge budget. 900 merges on
#: ~40 programs yields ≈3.5 chars/token on generated CUDA/OMP text, in line
#: with code tokenization by production tokenizers.
TRAIN_SAMPLE = 40
NUM_MERGES = 900

#: Sentinel: "use the process-wide active artifact cache" (see
#: :func:`repro.store.text.active_artifact_cache`). Pass ``cache=None``
#: to force store-less training.
_ACTIVE_CACHE = object()


def training_programs(sample: int = TRAIN_SAMPLE) -> list:
    """The deterministic training sample (see module docstring)."""
    from repro.kernels.corpus import default_corpus

    programs = default_corpus().programs
    if not programs:
        raise RuntimeError("empty corpus")
    step = max(1, len(programs) // sample)
    return list(programs[::step][:sample])


def train_corpus_tokenizer(
    sample: int = TRAIN_SAMPLE,
    num_merges: int = NUM_MERGES,
    *,
    cache=_ACTIVE_CACHE,
) -> BpeTokenizer:
    """Train a fresh tokenizer on a deterministic corpus sample.

    When an artifact cache is active, learned merges are served from the
    :class:`~repro.store.text.TokenizerStore` under a content key over
    the training programs' text digests × ``num_merges`` × the tokenizer
    version — a warm store trains (and renders) nothing. On a miss, the
    training texts come through :func:`repro.dataset.text.rendered_sources`
    (so they land in the render store for the dataset pass to reuse), the
    tokenizer trains, and the merges persist for the next cold process.
    """
    from repro.dataset.text import rendered_sources
    from repro.store.text import active_artifact_cache, tokenizer_train_key

    chosen = training_programs(sample)
    if cache is _ACTIVE_CACHE:
        cache = active_artifact_cache()
    key = tokenizer_train_key(chosen, num_merges)
    if cache is not None:
        merges = cache.tokenizers.get_merges(key)
        if merges is not None:
            return BpeTokenizer(merges=merges)
    sources = rendered_sources(chosen, cache=cache)
    tokenizer = BpeTokenizer.train(
        [sources[p.uid] for p in chosen], num_merges=num_merges
    )
    if cache is not None:
        cache.tokenizers.put_merges(key, tokenizer.merges)
    return tokenizer


def corpus_tokenizer() -> BpeTokenizer:
    """The process-wide tokenizer used for pruning and Figure 2."""
    global _PRETRAINED
    if _PRETRAINED is None:
        _PRETRAINED = train_corpus_tokenizer()
    return _PRETRAINED


def reset_corpus_tokenizer() -> None:
    """Forget the process-wide tokenizer (tests and benchmarks only)."""
    global _PRETRAINED
    _PRETRAINED = None
