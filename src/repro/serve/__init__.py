"""Async prediction serving: provider adapters, retrying engine, HTTP API.

The bridge from batch reproduction to a traffic-serving system. The
pieces compose bottom-up:

* :mod:`repro.serve.providers` — one async :class:`ProviderClient` face
  over the emulated zoo and OpenAI/Gemini/Anthropic wire shapes, with
  injectable transports (no SDKs, no network required).
* :mod:`repro.serve.retry` — jittered exponential backoff, per-attempt
  deadlines, and an async token-bucket rate limiter.
* :mod:`repro.serve.engine` — :class:`AsyncEvalEngine`, the asyncio twin
  of the sync engine: same cache keys, byte-identical results, plus
  in-flight request coalescing.
* :mod:`repro.serve.http` — the stdlib HTTP front end behind
  ``repro-paper serve``.
"""

from repro.serve.engine import AsyncEvalEngine, ServeStats
from repro.serve.http import (
    DEFAULT_MODEL,
    PredictionServer,
    PredictionService,
    ServiceError,
)
from repro.serve.providers import (
    RETRYABLE_ERRORS,
    AnthropicProvider,
    EmulatedProvider,
    GeminiProvider,
    OpenAiProvider,
    ProviderClient,
    ProviderError,
    ProviderNotConfigured,
    ProviderTimeout,
    RateLimitError,
    TransientProviderError,
    emulated_transport,
    provider_family,
    resolve_provider,
)
from repro.serve.retry import RateLimiter, RetryPolicy, call_with_retry

__all__ = [
    "AsyncEvalEngine",
    "ServeStats",
    "DEFAULT_MODEL",
    "PredictionServer",
    "PredictionService",
    "ServiceError",
    "RETRYABLE_ERRORS",
    "AnthropicProvider",
    "EmulatedProvider",
    "GeminiProvider",
    "OpenAiProvider",
    "ProviderClient",
    "ProviderError",
    "ProviderNotConfigured",
    "ProviderTimeout",
    "RateLimitError",
    "TransientProviderError",
    "emulated_transport",
    "provider_family",
    "resolve_provider",
    "RateLimiter",
    "RetryPolicy",
    "call_with_retry",
]
