"""Fine-tuning simulator (RQ4).

Emulates supervised fine-tuning of an LLM's response head on the paper's
272-sample training split: a logistic head over sparse hashed bag-of-token
features of the prompt, trained by per-sample SGD with momentum at an
LLM-fine-tune-like learning rate for two epochs (the paper's setting).

The paper observed the tuned model *"had devolved and would always predict
either CB or BB for the whole validation set"*, including when tuned on one
language only. The same degeneracy emerges here mechanistically: with a few
hundred samples over a very high-dimensional sparse feature space, the head
memorizes the training set through example-specific features, while unseen
validation prompts activate mostly the boilerplate features shared by every
prompt. Those shared weights — and the always-active bias — receive large
oscillating updates whose final value reflects the tail of the sample order,
not the class signal, so every validation logit lands on the same side.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.types import Boundedness
from repro.util.hashing import stable_hash_u64
from repro.util.rng import RngStream

_WORD_RE = re.compile(r"[A-Za-z_]+|[0-9]+|[^\sA-Za-z_0-9]")


def featurize(prompt: str, dim: int) -> dict[int, float]:
    """Hashed bag-of-tokens with sqrt-damped counts, L2-normalized."""
    counts: dict[int, float] = {}
    for w in _WORD_RE.findall(prompt):
        idx = stable_hash_u64("ft-feature", w) % dim
        counts[idx] = counts.get(idx, 0.0) + 1.0
    if not counts:
        return {}
    damped = {i: float(np.sqrt(c)) for i, c in counts.items()}
    norm = float(np.sqrt(sum(v * v for v in damped.values())))
    return {i: v / norm for i, v in damped.items()}


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics."""

    epoch_losses: list[float] = field(default_factory=list)
    epoch_train_accuracy: list[float] = field(default_factory=list)


@dataclass
class FineTuneConfig:
    """Hyperparameters mirroring a typical hosted fine-tune job."""

    epochs: int = 2
    learning_rate: float = 4.0
    momentum: float = 0.9
    feature_dim: int = 8192
    #: the response head's bias learns faster than embeddings, as the
    #: output-token bias does in a real LM head
    bias_lr_multiplier: float = 16.0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.feature_dim < 16:
            raise ValueError("feature_dim too small")


class FineTunedClassifier:
    """A fine-tuned response head: predicts Compute/Bandwidth from a prompt."""

    def __init__(self, config: FineTuneConfig | None = None, *, seed_key: str = "finetune"):
        self.config = config or FineTuneConfig()
        self._seed_key = seed_key
        self.weights = np.zeros(self.config.feature_dim)
        self.bias = 0.0
        self.history = TrainingHistory()
        self._trained = False

    # -- training ------------------------------------------------------------
    def train(self, prompts: list[str], labels: list[Boundedness]) -> TrainingHistory:
        """SGD with momentum over (prompt, label) pairs; label Compute = +1."""
        if len(prompts) != len(labels):
            raise ValueError("prompts/labels length mismatch")
        if not prompts:
            raise ValueError("cannot fine-tune on an empty dataset")
        cfg = self.config
        feats = [featurize(p, cfg.feature_dim) for p in prompts]
        ys = np.array([1.0 if l is Boundedness.COMPUTE else -1.0 for l in labels])
        vel = np.zeros(cfg.feature_dim)
        bias_vel = 0.0
        rng = RngStream(self._seed_key, "order")
        n = len(prompts)
        for epoch in range(cfg.epochs):
            order = rng.child("epoch", epoch).permutation(n)
            total_loss = 0.0
            correct = 0
            for idx in order:
                x = feats[int(idx)]
                y = ys[int(idx)]
                logit = self.bias + sum(self.weights[i] * v for i, v in x.items())
                margin = y * logit
                total_loss += float(np.log1p(np.exp(-np.clip(margin, -30, 30))))
                if margin > 0:
                    correct += 1
                # logistic gradient
                g = -y / (1.0 + float(np.exp(np.clip(margin, -30, 30))))
                for i, v in x.items():
                    vel[i] = cfg.momentum * vel[i] - cfg.learning_rate * g * v
                    self.weights[i] += vel[i]
                bias_vel = (
                    cfg.momentum * bias_vel
                    - cfg.learning_rate * cfg.bias_lr_multiplier * g
                )
                self.bias += bias_vel
            self.history.epoch_losses.append(total_loss / n)
            self.history.epoch_train_accuracy.append(correct / n)
        self._trained = True
        return self.history

    # -- inference -------------------------------------------------------------
    def decision_value(self, prompt: str) -> float:
        if not self._trained:
            raise RuntimeError("classifier has not been trained")
        x = featurize(prompt, self.config.feature_dim)
        return self.bias + sum(self.weights[i] * v for i, v in x.items())

    def predict(self, prompt: str) -> Boundedness:
        return (
            Boundedness.COMPUTE
            if self.decision_value(prompt) >= 0
            else Boundedness.BANDWIDTH
        )

    def predict_many(
        self, prompts: list[str], *, jobs: int = 1, backend: str = "thread"
    ) -> list[Boundedness]:
        """Predict every prompt; inference is read-only, so it fans out.

        ``self.predict`` is a bound method of a picklable classifier, so the
        process backend works too (weights ship once per shard).
        """
        from repro.util.parallel import parallel_map

        return parallel_map(self.predict, prompts, jobs=jobs, backend=backend)


def prediction_entropy(predictions: list[Boundedness]) -> float:
    """Shannon entropy (bits) of the predicted-class distribution.

    0.0 means the model always answers the same word — the paper's observed
    fine-tune collapse.
    """
    if not predictions:
        raise ValueError("no predictions")
    p = sum(1 for x in predictions if x is Boundedness.COMPUTE) / len(predictions)
    if p in (0.0, 1.0):
        return 0.0
    return float(-(p * np.log2(p) + (1 - p) * np.log2(1 - p)))
