"""Streaming / BLAS-1 style families — low arithmetic intensity, typically
bandwidth-bound on any hardware (the dense cloud hugging the memory roofline
in the paper's Figure 1)."""

from __future__ import annotations

from repro.kernels.families import family
from repro.kernels.families.helpers import (
    assemble,
    draw_size_1d,
    variant_rng,
)
from repro.kernels.ir import (
    ArrayDecl,
    AtomicAdd,
    BinOp,
    BinOpKind,
    Call,
    CallFn,
    Cast,
    Const,
    DType,
    Kernel,
    Let,
    ScalarParam,
    Store,
    Var,
    add,
    aff,
    div,
    load,
    mul,
    sub,
    var,
)
from repro.types import Language


def _dt(variant: int, dp_variants: tuple[int, ...] = (1, 3)) -> DType:
    return DType.F64 if variant in dp_variants else DType.F32


def _c(v: float, dt: DType) -> Const:
    return Const(v, dt)


@family("vecadd", "streaming", tendency="bb")
def build_vecadd(variant: int, language: Language):
    rng = variant_rng("vecadd", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Let("av", load("a", aff("gx"), dt), dt),
        Let("bv", load("b", aff("gx"), dt), dt),
        Store("c", aff("gx"), add(var("av", dt), var("bv", dt), dt), dt),
    )
    kernel = Kernel(
        name="vector_add",
        arrays=(
            ArrayDecl("a", dt, "n"),
            ArrayDecl("b", dt, "n"),
            ArrayDecl("c", dt, "n", is_output=True),
        ),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="vecadd", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"n": "n"},
        description="element-wise vector addition c = a + b",
    )


@family("saxpy", "streaming", tendency="bb")
def build_saxpy(variant: int, language: Language):
    rng = variant_rng("saxpy", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Let("xv", load("x", aff("gx"), dt), dt),
        Let("yv", load("y", aff("gx"), dt), dt),
        Store(
            "y", aff("gx"),
            add(mul(var("alpha", dt), var("xv", dt), dt), var("yv", dt), dt), dt,
        ),
    )
    kernel = Kernel(
        name="saxpy_kernel",
        arrays=(ArrayDecl("x", dt, "n"), ArrayDecl("y", dt, "n", is_output=True)),
        params=(ScalarParam("alpha", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="saxpy", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"alpha": 2, "n": "n"},
        description="scaled vector update y = alpha * x + y",
    )


@family("triad", "streaming", tendency="bb")
def build_triad(variant: int, language: Language):
    rng = variant_rng("triad", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Store(
            "a", aff("gx"),
            add(
                load("b", aff("gx"), dt),
                mul(var("scalar", dt), load("c", aff("gx"), dt), dt), dt,
            ),
            dt,
        ),
    )
    kernel = Kernel(
        name="stream_triad",
        arrays=(
            ArrayDecl("a", dt, "n", is_output=True),
            ArrayDecl("b", dt, "n"),
            ArrayDecl("c", dt, "n"),
        ),
        params=(ScalarParam("scalar", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="triad", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"scalar": 3, "n": "n"},
        description="STREAM triad a = b + scalar * c",
    )


@family("vecscale", "streaming", tendency="bb")
def build_vecscale(variant: int, language: Language):
    rng = variant_rng("vecscale", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Store("y", aff("gx"), mul(var("s", dt), load("x", aff("gx"), dt), dt), dt),
    )
    kernel = Kernel(
        name="scale_kernel",
        arrays=(ArrayDecl("x", dt, "n"), ArrayDecl("y", dt, "n", is_output=True)),
        params=(ScalarParam("s", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="vecscale", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"s": 5, "n": "n"},
        description="vector scaling y = s * x",
    )


@family("veccopy", "streaming", tendency="bb")
def build_veccopy(variant: int, language: Language):
    rng = variant_rng("veccopy", variant, language)
    dt = _dt(variant, (2, 4))
    n = draw_size_1d(rng)
    body = (Store("dst", aff("gx"), load("src", aff("gx"), dt), dt),)
    kernel = Kernel(
        name="copy_kernel",
        arrays=(ArrayDecl("src", dt, "n"), ArrayDecl("dst", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="veccopy", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"n": "n"},
        description="device memory copy dst = src",
    )


@family("dotprod", "streaming", tendency="bb")
def build_dotprod(variant: int, language: Language):
    rng = variant_rng("dotprod", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Let("p", mul(load("x", aff("gx"), dt), load("y", aff("gx"), dt), dt), dt),
        AtomicAdd("result", aff(const=0), var("p", dt), dt),
    )
    kernel = Kernel(
        name="dot_product",
        arrays=(
            ArrayDecl("x", dt, "n"),
            ArrayDecl("y", dt, "n"),
            ArrayDecl("result", dt, 1, is_output=True),
        ),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="dotprod", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"n": "n"},
        description="dot product via atomic accumulation",
    )


@family("reduce_sum", "streaming", tendency="bb")
def build_reduce_sum(variant: int, language: Language):
    rng = variant_rng("reduce_sum", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Let("v", load("x", aff("gx"), dt), dt),
        AtomicAdd("total", aff(const=0), var("v", dt), dt),
    )
    kernel = Kernel(
        name="reduce_sum_kernel",
        arrays=(ArrayDecl("x", dt, "n"), ArrayDecl("total", dt, 1, is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="reduce_sum", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"n": "n"},
        description="global sum reduction",
    )


@family("axpby", "streaming", tendency="bb")
def build_axpby(variant: int, language: Language):
    rng = variant_rng("axpby", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Store(
            "y", aff("gx"),
            add(
                mul(var("a", dt), load("x", aff("gx"), dt), dt),
                mul(var("b", dt), load("y", aff("gx"), dt), dt),
                dt,
            ),
            dt,
        ),
    )
    kernel = Kernel(
        name="axpby_kernel",
        arrays=(ArrayDecl("x", dt, "n"), ArrayDecl("y", dt, "n", is_output=True)),
        params=(ScalarParam("a", dt), ScalarParam("b", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="axpby", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"a": 2, "b": 3, "n": "n"},
        description="BLAS-1 update y = a * x + b * y",
    )


@family("hadamard", "streaming", tendency="bb")
def build_hadamard(variant: int, language: Language):
    rng = variant_rng("hadamard", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Store(
            "c", aff("gx"),
            mul(load("a", aff("gx"), dt), load("b", aff("gx"), dt), dt), dt,
        ),
    )
    kernel = Kernel(
        name="hadamard_product",
        arrays=(
            ArrayDecl("a", dt, "n"),
            ArrayDecl("b", dt, "n"),
            ArrayDecl("c", dt, "n", is_output=True),
        ),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="hadamard", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"n": "n"},
        description="element-wise product c = a .* b",
    )


@family("absdiff", "streaming", tendency="bb")
def build_absdiff(variant: int, language: Language):
    rng = variant_rng("absdiff", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Store(
            "c", aff("gx"),
            Call(CallFn.FABS,
                 (sub(load("a", aff("gx"), dt), load("b", aff("gx"), dt), dt),), dt),
            dt,
        ),
    )
    kernel = Kernel(
        name="abs_difference",
        arrays=(
            ArrayDecl("a", dt, "n"),
            ArrayDecl("b", dt, "n"),
            ArrayDecl("c", dt, "n", is_output=True),
        ),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="absdiff", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"n": "n"},
        description="element-wise absolute difference",
    )


@family("lerp_blend", "streaming", tendency="bb")
def build_lerp(variant: int, language: Language):
    rng = variant_rng("lerp_blend", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Let("av", load("a", aff("gx"), dt), dt),
        Let("bv", load("b", aff("gx"), dt), dt),
        Store(
            "c", aff("gx"),
            add(var("av", dt),
                mul(var("t", dt), sub(var("bv", dt), var("av", dt), dt), dt), dt),
            dt,
        ),
    )
    kernel = Kernel(
        name="lerp_kernel",
        arrays=(
            ArrayDecl("a", dt, "n"),
            ArrayDecl("b", dt, "n"),
            ArrayDecl("c", dt, "n", is_output=True),
        ),
        params=(ScalarParam("t", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="lerp_blend", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"t": 1, "n": "n"},
        description="linear interpolation c = a + t * (b - a)",
    )


@family("clamp_scale", "streaming", tendency="bb")
def build_clamp_scale(variant: int, language: Language):
    rng = variant_rng("clamp_scale", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    scaled = mul(var("s", dt), load("x", aff("gx"), dt), dt)
    clamped = BinOp(
        BinOpKind.MIN,
        BinOp(BinOpKind.MAX, scaled, _c(0.0, dt), dt),
        _c(255.0, dt),
        dt,
    )
    kernel = Kernel(
        name="clamp_scale_kernel",
        arrays=(ArrayDecl("x", dt, "n"), ArrayDecl("y", dt, "n", is_output=True)),
        params=(ScalarParam("s", dt), ScalarParam("n", DType.I32)),
        body=(Store("y", aff("gx"), clamped, dt),),
        work_items="n",
    )
    return assemble(
        family="clamp_scale", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"s": 4, "n": "n"},
        description="scale then clamp to [0, 255]",
    )


@family("relu_map", "streaming", tendency="bb")
def build_relu(variant: int, language: Language):
    rng = variant_rng("relu_map", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Store(
            "y", aff("gx"),
            BinOp(BinOpKind.MAX, load("x", aff("gx"), dt), _c(0.0, dt), dt), dt,
        ),
    )
    kernel = Kernel(
        name="relu_kernel",
        arrays=(ArrayDecl("x", dt, "n"), ArrayDecl("y", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="relu_map", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"n": "n"},
        description="rectified linear activation y = max(x, 0)",
    )


@family("leaky_relu", "streaming", tendency="bb")
def build_leaky_relu(variant: int, language: Language):
    from repro.kernels.ir import Select

    rng = variant_rng("leaky_relu", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    xv = var("xv", dt)
    body = (
        Let("xv", load("x", aff("gx"), dt), dt),
        Store(
            "y", aff("gx"),
            Select(
                BinOp(BinOpKind.GT, xv, _c(0.0, dt), dt),
                xv,
                mul(_c(0.01, dt), xv, dt),
                dt,
            ),
            dt,
        ),
    )
    kernel = Kernel(
        name="leaky_relu_kernel",
        arrays=(ArrayDecl("x", dt, "n"), ArrayDecl("y", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="leaky_relu", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n}, binding_exprs={"n": "n"},
        description="leaky ReLU activation",
    )


@family("saturating_add", "streaming", tendency="bb")
def build_saturating_add(variant: int, language: Language):
    rng = variant_rng("saturating_add", variant, language)
    dt = _dt(variant, (2,))
    n = draw_size_1d(rng)
    body = (
        Store(
            "c", aff("gx"),
            BinOp(
                BinOpKind.MIN,
                add(load("a", aff("gx"), dt), load("b", aff("gx"), dt), dt),
                var("cap", dt),
                dt,
            ),
            dt,
        ),
    )
    kernel = Kernel(
        name="saturating_add_kernel",
        arrays=(
            ArrayDecl("a", dt, "n"),
            ArrayDecl("b", dt, "n"),
            ArrayDecl("c", dt, "n", is_output=True),
        ),
        params=(ScalarParam("cap", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="saturating_add", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"cap": 100, "n": "n"},
        description="saturating elementwise addition",
    )


@family("stream_update", "streaming", tendency="bb")
def build_stream_update(variant: int, language: Language):
    rng = variant_rng("stream_update", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Store(
            "y", aff("gx"),
            add(mul(var("a", dt), load("y", aff("gx"), dt), dt), var("b", dt), dt), dt,
        ),
    )
    kernel = Kernel(
        name="inplace_update",
        arrays=(ArrayDecl("y", dt, "n", is_output=True),),
        params=(ScalarParam("a", dt), ScalarParam("b", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="stream_update", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"a": 2, "b": 1, "n": "n"},
        description="in-place affine update y = a * y + b",
    )


@family("strided_gather", "streaming", tendency="bb")
def build_strided_gather(variant: int, language: Language):
    rng = variant_rng("strided_gather", variant, language)
    dt = _dt(variant, (3,))
    n = draw_size_1d(rng)
    stride = int(rng.choice([2, 4, 8, 16]))
    body = (
        Store("y", aff("gx"), load("x", aff(("gx", stride)), dt), dt),
    )
    kernel = Kernel(
        name="strided_gather_kernel",
        arrays=(
            ArrayDecl("x", dt, f"{stride}*n"),
            ArrayDecl("y", dt, "n", is_output=True),
        ),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="strided_gather", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description=f"strided load with stride {stride} (uncoalesced)",
    )


@family("reverse_copy", "streaming", tendency="bb")
def build_reverse_copy(variant: int, language: Language):
    rng = variant_rng("reverse_copy", variant, language)
    dt = _dt(variant, (2,))
    n = draw_size_1d(rng)
    # y[gx] = x[n - 1 - gx]; descending unit stride still coalesces.
    body = (
        Store("y", aff("gx"), load("x", aff(("gx", -1), ("n", 1), const=-1), dt), dt),
    )
    kernel = Kernel(
        name="reverse_copy_kernel",
        arrays=(ArrayDecl("x", dt, "n"), ArrayDecl("y", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="reverse_copy", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description="reversed copy y[i] = x[n-1-i]",
    )
