"""Benchmark family registry.

A *family* is one named benchmark (the analogue of one HeCBench program
directory, e.g. ``saxpy-cuda``); each family builds several parameter
*variants* (problem size, precision, block size, host verbosity), and may
support CUDA only or both CUDA and OpenMP offload — mirroring HeCBench's
uneven language coverage (446 CUDA vs 303 OMP programs in the paper).

Families register themselves via the :func:`family` decorator at import
time; :func:`all_families` triggers the imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kernels.program import ProgramSpec
from repro.types import Language

BuildFn = Callable[[int, Language], ProgramSpec]


@dataclass(frozen=True)
class FamilySpec:
    """Metadata + builder for one benchmark family."""

    name: str
    group: str
    build: BuildFn
    languages: tuple[Language, ...] = (Language.CUDA, Language.OMP)
    #: expected label tendency ("bb", "cb", "mixed") — documentation and
    #: corpus-mix diagnostics only; ground truth always comes from profiling
    tendency: str = "mixed"

    def supports(self, language: Language) -> bool:
        return language in self.languages


_REGISTRY: dict[str, FamilySpec] = {}


def family(
    name: str,
    group: str,
    *,
    languages: tuple[Language, ...] = (Language.CUDA, Language.OMP),
    tendency: str = "mixed",
) -> Callable[[BuildFn], BuildFn]:
    """Register a family builder.

    The decorated function receives ``(variant, language)`` and must return a
    fully-formed :class:`~repro.kernels.program.ProgramSpec`.
    """

    def deco(fn: BuildFn) -> BuildFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate family name {name!r}")
        _REGISTRY[name] = FamilySpec(
            name=name, group=group, build=fn, languages=languages, tendency=tendency
        )
        return fn

    return deco


_LOADED = False


def _load_all() -> None:
    global _LOADED
    if _LOADED:
        return
    # Import order fixes registry order, which fixes corpus enumeration.
    from repro.kernels.families import (  # noqa: F401
        streaming,
        stencil,
        linalg,
        physics,
        mathheavy,
        integer,
        misc,
    )

    _LOADED = True


def all_families() -> dict[str, FamilySpec]:
    """All registered families, keyed by name, in registration order."""
    _load_all()
    return dict(_REGISTRY)


def get_family(name: str) -> FamilySpec:
    _load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown family {name!r}") from None


def families_for(language: Language) -> list[FamilySpec]:
    return [f for f in all_families().values() if f.supports(language)]
